//! Barrier vs barrier-free control plane: the per-event barrier executor
//! (`Parallelism::Threads`) A/B'd against the epoch-log executor
//! (`Parallelism::Async`) — with the apply side serial and with the
//! out-of-order apply-lane scheduler (`apply_lanes: true`) — at 128 and
//! 512 shards under **fixed offered load**, written to
//! `BENCH_fleet.json` at the workspace root.
//!
//! The contract mirrors `fleet_massive`'s: all arms must produce
//! **bit-identical** placements and metrics (speculation and lane
//! scheduling are execution strategies, never policies — asserted here
//! before anything is recorded, and property-tested in
//! `crates/fleet/tests/async_exec.rs`); only the wall clock may differ.
//! The headline figure is events/sec per arm: the epoch log amortizes
//! the probe fan over a `max_epoch_lag + 1` event lookahead window and
//! reuses every speculative probe whose apply-time validation passes,
//! and the lane arm additionally prepares single-shard applies
//! concurrently between fences. Each arm also reports its
//! **speculation-waste ratio** — wasted probes over consulted probes
//! (`fleet_spec_probes_wasted_total` against reuses + waste) — the price
//! of running ahead. Multi-core speedup is host-dependent: on a
//! single-core runner the lane arm measures pure scheduling overhead,
//! so `host_threads` rides along in the section.
//!
//! `RANKMAP_BENCH_SMOKE=1` shrinks the horizon and skips the 512-shard
//! tier so CI keeps this bench compiling *and running* — including the
//! `apply_lanes` arm.

use rankmap_core::json::{obj, Json};
use rankmap_core::manager::ManagerConfig;
use rankmap_core::oracle::AnalyticalOracle;
use rankmap_fleet::{
    FleetConfig, FleetOutcome, FleetRuntime, LoadSpec, LoadStream, Parallelism, Popularity,
    TelemetrySpec,
};
use rankmap_platform::Platform;
use std::time::Instant;

fn smoke() -> bool {
    std::env::var_os("RANKMAP_BENCH_SMOKE").is_some()
}

/// The epoch log's staleness bound for the barrier-free arms: a deep
/// window so speculation batches are large, far below the executor's
/// internal lookahead clamp.
const MAX_EPOCH_LAG: u64 = 32;

/// Fixed offered load for both fleet sizes and all arms: ~5 arrivals/s
/// of Zipf-skewed traffic with short residencies, plus enough priority
/// churn to exercise the speculation flush.
fn load_spec() -> LoadSpec {
    let horizon = if smoke() { 300.0 } else { 6_000.0 };
    LoadSpec {
        horizon,
        process: rankmap_fleet::ArrivalProcess::Poisson { rate: 5.0 },
        mean_lifetime: 40.0,
        priority_churn_rate: 1.0 / 1_500.0,
        seed: 29,
        popularity: Popularity::Zipf { exponent: 1.05 },
        ..Default::default()
    }
}

/// Small search budgets, identical in all arms: the system under test
/// is the control plane's event loop, not the per-board mapper.
/// Telemetry rides along in every arm — the deterministic registry is
/// where the speculation-waste counters live, and enabled-vs-disabled
/// telemetry is bit-identical by contract (tested in
/// `crates/fleet/tests/telemetry.rs`), so it cannot tilt the A/B.
fn fleet_config(parallelism: Parallelism) -> FleetConfig {
    FleetConfig {
        manager: ManagerConfig {
            mcts_iterations: 16,
            warm_iterations: 8,
            plan_cache_capacity: 512,
            ..Default::default()
        },
        max_per_shard: 3,
        sample_dt: 250.0,
        telemetry: TelemetrySpec::on(),
        parallelism,
        ..Default::default()
    }
}

struct Run {
    outcome: FleetOutcome,
    events: usize,
    wall_s: f64,
    events_per_s: f64,
}

impl Run {
    /// Wasted speculative probes over all consulted speculation — the
    /// fraction of run-ahead work that bought nothing (expired entries,
    /// masked shards, `SetPriorities` flushes). 0 for the barrier arm,
    /// which never speculates.
    fn waste_ratio(&self) -> f64 {
        let snap = self.outcome.telemetry.as_ref().expect("telemetry enabled");
        let wasted = snap.registry.counter("fleet_spec_probes_wasted_total") as f64;
        let reused = snap.registry.counter("fleet_spec_probes_reused_total") as f64;
        if wasted + reused == 0.0 {
            0.0
        } else {
            wasted / (wasted + reused)
        }
    }
}

fn run(platform: &Platform, shards: usize, parallelism: Parallelism) -> Run {
    let oracle = AnalyticalOracle::new(platform);
    let spec = load_spec();
    let events = LoadStream::new(&spec).count();
    let fleet = FleetRuntime::homogeneous(platform, &oracle, shards, fleet_config(parallelism));
    let start = Instant::now();
    let outcome = fleet.execute_stream(LoadStream::new(&spec), spec.horizon);
    let wall_s = start.elapsed().as_secs_f64();
    Run { outcome, events, wall_s, events_per_s: events as f64 / wall_s }
}

fn row(shards: usize, arm: &str, r: &Run) -> Json {
    let m = &r.outcome.metrics;
    obj([
        ("shards", Json::Num(shards as f64)),
        ("arm", Json::Str(arm.into())),
        ("events", Json::Num(r.events as f64)),
        ("offered", Json::Num(m.offered as f64)),
        ("admitted", Json::Num(m.admitted as f64)),
        ("migrations", Json::Num(m.migrations as f64)),
        ("wall_s", Json::Num(r.wall_s)),
        ("events_per_s", Json::Num(r.events_per_s)),
        (
            "placement_p50_us",
            Json::Num(r.outcome.placement_latency.p50.as_secs_f64() * 1e6),
        ),
        (
            "placement_p99_us",
            Json::Num(r.outcome.placement_latency.p99.as_secs_f64() * 1e6),
        ),
        ("speculation_waste_ratio", Json::Num(r.waste_ratio())),
    ])
}

fn print_run(label: &str, r: &Run) {
    let m = &r.outcome.metrics;
    println!(
        "  {label}: {} events ({} offered, {} admitted) in {:.1}s — {:.0} events/s, \
         placement p50 {:?} p99 {:?}, waste {:.3}",
        r.events,
        m.offered,
        m.admitted,
        r.wall_s,
        r.events_per_s,
        r.outcome.placement_latency.p50,
        r.outcome.placement_latency.p99,
        r.waste_ratio(),
    );
}

/// Asserts the deterministic outcome of `candidate` is bit-identical to
/// the barrier reference before any figure of that arm is recorded.
fn assert_bit_identical(shards: usize, arm: &str, reference: &Run, candidate: &Run) {
    assert_eq!(
        candidate.outcome.metrics, reference.outcome.metrics,
        "the {arm} arm changed a decision at {shards} shards — \
         barrier-free execution must be bit-identical to the barrier"
    );
    assert_eq!(candidate.outcome.placements, reference.outcome.placements);
    assert_eq!(candidate.outcome.timelines, reference.outcome.timelines);
}

fn main() {
    let platform = Platform::orange_pi_5();
    let spec = load_spec();
    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let barrier = Parallelism::Threads(workers);
    let epoch_log =
        Parallelism::Async { workers, max_epoch_lag: MAX_EPOCH_LAG, apply_lanes: false };
    let lanes = Parallelism::Async { workers, max_epoch_lag: MAX_EPOCH_LAG, apply_lanes: true };
    println!(
        "fleet_async: Zipf load at {:.1}/s over {:.0}s, {workers} workers, \
         lag bound {MAX_EPOCH_LAG} ({} mode)",
        spec.process.mean_rate(),
        spec.horizon,
        if smoke() { "smoke" } else { "full" }
    );

    let tiers: &[usize] = if smoke() { &[128] } else { &[128, 512] };
    let mut rows = Vec::new();
    let mut speedup_128 = 0.0;
    let mut lanes_speedup_128 = 0.0;
    for &shards in tiers {
        let b = run(&platform, shards, barrier);
        print_run(&format!("{shards} shards, barrier    "), &b);
        let e = run(&platform, shards, epoch_log);
        print_run(&format!("{shards} shards, epoch log  "), &e);
        let l = run(&platform, shards, lanes);
        print_run(&format!("{shards} shards, apply lanes"), &l);
        // Bit-identity comes before any figure is recorded: a control
        // plane that trades determinism for throughput has no headline.
        assert_bit_identical(shards, "epoch_log", &b, &e);
        assert_bit_identical(shards, "apply_lanes", &b, &l);
        let speedup = e.events_per_s / b.events_per_s;
        let lanes_speedup = l.events_per_s / b.events_per_s;
        if shards == 128 {
            speedup_128 = speedup;
            lanes_speedup_128 = lanes_speedup;
        }
        println!(
            "  events/s over barrier at {shards} shards: epoch log {speedup:.2}x, \
             apply lanes {lanes_speedup:.2}x (host-dependent — see host_threads)"
        );
        rows.push(row(shards, "barrier", &b));
        rows.push(row(shards, "epoch_log", &e));
        rows.push(row(shards, "apply_lanes", &l));
    }

    let report = obj([
        ("smoke", Json::Bool(smoke())),
        ("workers", Json::Num(workers as f64)),
        ("host_threads", Json::Num(workers as f64)),
        ("max_epoch_lag", Json::Num(MAX_EPOCH_LAG as f64)),
        (
            "offered_load",
            obj([
                ("process", Json::Str("poisson+zipf".into())),
                ("base_rate_per_s", Json::Num(spec.process.mean_rate())),
                ("mean_lifetime_s", Json::Num(spec.mean_lifetime)),
                ("horizon_s", Json::Num(spec.horizon)),
                ("seed", Json::Num(spec.seed as f64)),
            ]),
        ),
        ("runs", Json::Arr(rows)),
        ("epoch_log_over_barrier_events_per_s_128", Json::Num(speedup_128)),
        ("apply_lanes_over_barrier_events_per_s_128", Json::Num(lanes_speedup_128)),
        ("ab_decisions_bit_identical", Json::Bool(true)),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fleet.json");
    rankmap_bench::merge_bench_report(path, "fleet_async", report);
    println!("wrote the fleet_async section of {path}");
}
