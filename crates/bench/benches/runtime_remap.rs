//! Runtime remap benchmark: the event→remap path of the serving runtime.
//!
//! Three latency arms land in `BENCH_runtime.json` at the workspace root:
//!
//! * `cold_map_4dnn` — a from-scratch `RankMapManager::map` of the 4-DNN
//!   post-arrival workload at the full search budget (what the seed's
//!   `DynamicRuntime` paid at *every* event).
//! * `warm_remap_arrival` — `remap_from` the 3-DNN incumbent plan when
//!   the fourth DNN arrives: warm-started search at the warm budget. The
//!   acceptance bar is ≥ 3× faster than the cold map.
//! * `plan_cache_hit_4dnn` — `map_cached` on a workload set the manager
//!   has seen before: no search at all.
//!
//! After the latency arms, the run replays a generated churny scenario
//! through the incremental migration-aware runtime and through the
//! migration-oblivious cold baseline, and prints both timeline-average
//! potentials — the incremental path must not lose quality.
//!
//! `RANKMAP_BENCH_SMOKE=1` shrinks sample counts and the scenario so CI
//! can keep this bench compiling *and running* without paying full
//! measurement time.

use criterion::{criterion_group, criterion_main, Criterion};
use rankmap_core::manager::{ManagerConfig, RankMapManager};
use rankmap_core::oracle::AnalyticalOracle;
use rankmap_core::priority::PriorityMode;
use rankmap_core::runtime::{
    timeline_average_potential, DynamicRuntime, RankMapMapper, WorkloadMapper,
};
use rankmap_core::scenario::{generate, MixProfile, ScenarioConfig};
use rankmap_models::ModelId;
use rankmap_platform::Platform;
use rankmap_sim::{Mapping, Workload};

const COLD_BUDGET: usize = 1_500;
const WARM_BUDGET: usize = 300;

fn smoke() -> bool {
    std::env::var_os("RANKMAP_BENCH_SMOKE").is_some()
}

fn incumbent_mix() -> Workload {
    Workload::from_ids([ModelId::AlexNet, ModelId::MobileNetV2, ModelId::SqueezeNetV2])
}

fn arrival_mix() -> Workload {
    Workload::from_ids([
        ModelId::AlexNet,
        ModelId::MobileNetV2,
        ModelId::SqueezeNetV2,
        ModelId::ResNet50,
    ])
}

/// RankMap re-mapping from scratch at every event — the seed's behaviour,
/// used as the quality baseline for the scenario comparison.
struct ColdRankMap<'p> {
    manager: RankMapManager<'p, AnalyticalOracle<'p>>,
}

impl WorkloadMapper for ColdRankMap<'_> {
    fn name(&self) -> String {
        "RankMapD-cold".into()
    }
    fn remap(&mut self, workload: &Workload) -> Mapping {
        self.manager.map(workload, &PriorityMode::Dynamic).mapping
    }
}

fn bench_runtime_remap(c: &mut Criterion) {
    let platform = Platform::orange_pi_5();
    let oracle = AnalyticalOracle::new(&platform);
    let config = ManagerConfig {
        mcts_iterations: COLD_BUDGET,
        warm_iterations: WARM_BUDGET,
        ..Default::default()
    };
    let mgr = RankMapManager::new(&platform, &oracle, config);
    let w3 = incumbent_mix();
    let w4 = arrival_mix();
    // Warm the measured ideal-rate cache so every arm pays search only.
    let plan3 = mgr.map(&w3, &PriorityMode::Dynamic);
    let _ = mgr.map_cached(&w4, &PriorityMode::Dynamic);

    let mut group = c.benchmark_group("runtime_remap");
    if smoke() {
        group.sample_size(3);
        group.measurement_time(std::time::Duration::from_millis(500));
    } else {
        group.sample_size(10);
    }
    group.bench_function("cold_map_4dnn", |b| {
        b.iter(|| mgr.map(&w4, &PriorityMode::Dynamic))
    });
    group.bench_function("warm_remap_arrival", |b| {
        b.iter(|| mgr.remap_from(&plan3, &w3, &w4, &PriorityMode::Dynamic))
    });
    group.bench_function("plan_cache_hit_4dnn", |b| {
        b.iter(|| mgr.map_cached(&w4, &PriorityMode::Dynamic))
    });
    group.finish();

    let results = c.results();
    let median = |needle: &str| {
        results
            .iter()
            .find(|r| r.id.ends_with(needle))
            .map(|r| r.median_ns)
            .unwrap_or(f64::NAN)
    };
    let cold = median("cold_map_4dnn");
    let warm = median("warm_remap_arrival");
    let hit = median("plan_cache_hit_4dnn");
    println!(
        "remap latency: cold {:.2} ms, warm {:.2} ms ({:.1}x), cache hit {:.3} ms ({:.0}x)",
        cold / 1e6,
        warm / 1e6,
        cold / warm,
        hit / 1e6,
        cold / hit.max(1.0)
    );

    // Quality check: the incremental migration-aware runtime against the
    // cold migration-oblivious baseline on one churny scenario.
    let cfg = ScenarioConfig {
        horizon: 900.0,
        arrival_rate: 1.0 / 45.0,
        mean_lifetime: 240.0,
        max_concurrent: 4,
        pool: vec![
            ModelId::AlexNet,
            ModelId::MobileNetV2,
            ModelId::SqueezeNetV2,
            ModelId::ResNet50,
            ModelId::GoogleNet,
        ],
        mix: MixProfile::Mixed,
        priority_churn_rate: 1.0 / 200.0,
        seed: 11,
    };
    let events = generate(&cfg);
    let scenario_budget = if smoke() { 120 } else { 400 };
    let scenario_config = ManagerConfig {
        mcts_iterations: scenario_budget,
        warm_iterations: scenario_budget / 2,
        ..Default::default()
    };
    let incremental = {
        let mgr = RankMapManager::new(&platform, &oracle, scenario_config);
        let mut mapper = RankMapMapper::new(mgr, PriorityMode::Dynamic, "RankMapD");
        let rt = DynamicRuntime::new(&platform, 30.0);
        timeline_average_potential(&rt.run(&events, &mut mapper, cfg.horizon))
    };
    let cold_baseline = {
        let mgr = RankMapManager::new(&platform, &oracle, scenario_config);
        let mut mapper = ColdRankMap { manager: mgr };
        let rt = DynamicRuntime::new(&platform, 30.0).with_migration_awareness(false);
        timeline_average_potential(&rt.run(&events, &mut mapper, cfg.horizon))
    };
    println!(
        "timeline-average potential over {} events: incremental+aware {:.4}, cold+oblivious {:.4} ({})",
        events.len(),
        incremental,
        cold_baseline,
        if incremental >= cold_baseline { "no quality loss" } else { "REGRESSION" }
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(8))
        .warm_up_time(std::time::Duration::from_millis(500))
        .json_output(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_runtime.json"));
    targets = bench_runtime_remap
}
criterion_main!(benches);
