//! Million-instance scale tier: 128–512 shards driven by the streaming
//! load generator, written to `BENCH_fleet.json` at the workspace root.
//!
//! The full run offers ≥10⁵ instance lifetimes (Zipf-skewed popularity
//! plus flash-crowd and correlated-tenant overlays) to a 128-shard fleet
//! through [`LoadStream`] + `execute_stream` — the event vector is never
//! materialized — and A/Bs the equivalence-class placement index against
//! the full probe scan at **fixed offered load**:
//!
//! * the two arms must produce **bit-identical** deterministic metrics
//!   (the index is an execution strategy, never a policy — asserted
//!   here and property-tested in `crates/fleet/tests/indexed.rs`);
//! * the indexed arm must win on events/sec (the report's headline);
//! * placement-decision latency p50/p99 is recorded per arm.
//!
//! A 256- and 512-shard indexed-only sweep extends the scale story.
//! `RANKMAP_BENCH_SMOKE=1` shrinks the horizon (and skips the wide
//! sweep) so CI keeps this tier compiling *and running*.

use rankmap_core::json::{obj, Json};
use rankmap_core::manager::ManagerConfig;
use rankmap_core::oracle::AnalyticalOracle;
use rankmap_fleet::{
    FlashSpec, FleetConfig, FleetOutcome, FleetRuntime, LoadSpec, LoadStream, Popularity,
    TenantSpec,
};
use rankmap_platform::Platform;
use std::time::Instant;

fn smoke() -> bool {
    std::env::var_os("RANKMAP_BENCH_SMOKE").is_some()
}

/// Fixed offered load for every fleet size: ~5 arrivals/s over a long
/// horizon (≥10⁵ lifetimes in full mode), short lifetimes so the live
/// set stays a fleet-sized working set rather than an ever-growing one.
fn load_spec() -> LoadSpec {
    let horizon = if smoke() { 400.0 } else { 22_000.0 };
    LoadSpec {
        horizon,
        process: rankmap_fleet::ArrivalProcess::Poisson { rate: 5.0 },
        mean_lifetime: 40.0,
        priority_churn_rate: 1.0 / 4_000.0,
        seed: 23,
        popularity: Popularity::Zipf { exponent: 1.05 },
        flash: Some(FlashSpec {
            rate: 1.0 / 2_500.0,
            mean_duration: 90.0,
            boost_rate: 2.0,
            mean_lifetime: 25.0,
            seed: 5,
        }),
        tenants: Some(TenantSpec {
            tenants: 6,
            mean_idle: 3_000.0,
            mean_burst: 60.0,
            rate: 1.0,
            correlation: 0.3,
            skew: 0.7,
            mean_lifetime: 30.0,
            seed: 11,
        }),
        ..Default::default()
    }
}

/// Deliberately small search budgets: at this tier the system under
/// test is the placement layer (probe fan-out + health scans), not the
/// per-board mapper, and both A/B arms share the identical budget.
fn fleet_config(indexed: bool) -> FleetConfig {
    FleetConfig {
        manager: ManagerConfig {
            mcts_iterations: 16,
            warm_iterations: 8,
            plan_cache_capacity: 512,
            ..Default::default()
        },
        max_per_shard: 3,
        // Long horizon: sample the serving timelines coarsely so the
        // recorded state stays small while the event stream does not.
        sample_dt: 250.0,
        indexed_placement: indexed,
        ..Default::default()
    }
}

struct Run {
    outcome: FleetOutcome,
    events: usize,
    wall_s: f64,
    events_per_s: f64,
}

fn run(platform: &Platform, shards: usize, indexed: bool) -> Run {
    let oracle = AnalyticalOracle::new(platform);
    let spec = load_spec();
    // Event count for the throughput figure (a generation-only pass;
    // the stream is cheap, the fleet is not).
    let events = LoadStream::new(&spec).count();
    let fleet = FleetRuntime::homogeneous(platform, &oracle, shards, fleet_config(indexed));
    let start = Instant::now();
    let outcome = fleet.execute_stream(LoadStream::new(&spec), spec.horizon);
    let wall_s = start.elapsed().as_secs_f64();
    Run { outcome, events, wall_s, events_per_s: events as f64 / wall_s }
}

fn row(shards: usize, indexed: bool, r: &Run) -> Json {
    let m = &r.outcome.metrics;
    obj([
        ("shards", Json::Num(shards as f64)),
        ("indexed", Json::Bool(indexed)),
        ("events", Json::Num(r.events as f64)),
        ("offered", Json::Num(m.offered as f64)),
        ("admitted", Json::Num(m.admitted as f64)),
        ("rejected", Json::Num(m.rejected as f64)),
        ("migrations", Json::Num(m.migrations as f64)),
        ("aggregate_potential_seconds", Json::Num(m.aggregate_potential_seconds)),
        ("wall_s", Json::Num(r.wall_s)),
        ("events_per_s", Json::Num(r.events_per_s)),
        (
            "placement_p50_us",
            Json::Num(r.outcome.placement_latency.p50.as_secs_f64() * 1e6),
        ),
        (
            "placement_p99_us",
            Json::Num(r.outcome.placement_latency.p99.as_secs_f64() * 1e6),
        ),
    ])
}

fn print_run(label: &str, r: &Run) {
    let m = &r.outcome.metrics;
    println!(
        "  {label}: {} events ({} offered, {} admitted, {} migrations) in {:.1}s — \
         {:.0} events/s, placement p50 {:?} p99 {:?}",
        r.events,
        m.offered,
        m.admitted,
        m.migrations,
        r.wall_s,
        r.events_per_s,
        r.outcome.placement_latency.p50,
        r.outcome.placement_latency.p99,
    );
}

fn main() {
    let platform = Platform::orange_pi_5();
    let spec = load_spec();
    println!(
        "fleet_massive: Zipf+flash+tenant load at {:.1}/s base rate over {:.0}s ({} mode)",
        spec.process.mean_rate(),
        spec.horizon,
        if smoke() { "smoke" } else { "full" }
    );

    // The A/B at 128 shards, fixed offered load: indexed placement vs
    // the full-scan oracle. Decisions must agree bit for bit; only the
    // wall clock may differ.
    let indexed = run(&platform, 128, true);
    print_run("128 shards, indexed", &indexed);
    let scan = run(&platform, 128, false);
    print_run("128 shards, scan   ", &scan);
    assert_eq!(
        indexed.outcome.metrics, scan.outcome.metrics,
        "indexed placement changed a decision — the index must be bit-identical to the scan"
    );
    assert_eq!(indexed.outcome.placements, scan.outcome.placements);
    let speedup = indexed.events_per_s / scan.events_per_s;
    println!(
        "  indexed/scan events/s = {speedup:.2}x ({})",
        if speedup > 1.0 { "index wins" } else { "INDEX SLOWER THAN SCAN" }
    );

    let mut rows = vec![row(128, true, &indexed), row(128, false, &scan)];

    // The wide sweep (indexed only — the scan arm at 512 shards would
    // dominate the run for no extra information).
    if !smoke() {
        for shards in [256usize, 512] {
            let r = run(&platform, shards, true);
            print_run(&format!("{shards} shards, indexed"), &r);
            rows.push(row(shards, true, &r));
        }
    }

    // Acceptance: the full run offers >=1e5 instance lifetimes to >=128
    // shards and the index beats the scan at fixed load.
    if !smoke() {
        assert!(
            indexed.outcome.metrics.offered >= 100_000,
            "full run must offer >=1e5 instance lifetimes, got {}",
            indexed.outcome.metrics.offered
        );
    }
    assert!(
        speedup > 1.0,
        "indexed placement must beat the full scan on events/sec at 128 shards \
         (indexed {:.0}/s vs scan {:.0}/s)",
        indexed.events_per_s,
        scan.events_per_s
    );

    let report = obj([
        ("smoke", Json::Bool(smoke())),
        (
            "host_threads",
            Json::Num(std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) as f64),
        ),
        (
            "offered_load",
            obj([
                ("process", Json::Str("poisson+zipf+flash+tenants".into())),
                ("base_rate_per_s", Json::Num(spec.process.mean_rate())),
                ("mean_lifetime_s", Json::Num(spec.mean_lifetime)),
                ("horizon_s", Json::Num(spec.horizon)),
                ("seed", Json::Num(spec.seed as f64)),
            ]),
        ),
        ("runs", Json::Arr(rows)),
        ("indexed_over_scan_events_per_s", Json::Num(speedup)),
        (
            "ab_decisions_bit_identical",
            Json::Bool(indexed.outcome.metrics == scan.outcome.metrics),
        ),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fleet.json");
    rankmap_bench::merge_bench_report(path, "fleet_massive", report);
    println!("wrote the fleet_massive section of {path}");
}
