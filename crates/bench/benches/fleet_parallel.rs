//! Shard-parallel executor benchmark: wall-clock of the fleet event loop
//! under `Parallelism::Sequential` vs `Parallelism::Threads(n)`, written
//! to the `fleet_parallel` section of `BENCH_fleet.json`.
//!
//! One seeded Poisson load is offered to an 8-shard fleet and executed
//! once per parallelism mode. Every run must produce **bit-identical**
//! placements, metrics, and timelines (the executor's determinism
//! contract — the bench double-checks what `crates/fleet/tests/parallel.rs`
//! property-tests); only the wall-clock may differ. The recorded speedup
//! is therefore purely an execution-strategy figure:
//!
//! * `threads = host cores` is the production default. On a single-core
//!   container it degrades to the serial schedule (spawning zero
//!   threads), so the ratio is ~1.0× there by construction — the
//!   multi-core speedup is host-dependent and must be (re-)measured on
//!   real hardware, like the oracle hot-path's rayon fan-out.
//! * An oversubscribed width (`threads = 4` on a 1-core host) is also
//!   recorded, pinning the overhead of real thread spawns per event
//!   barrier.
//!
//! `RANKMAP_BENCH_SMOKE=1` shrinks the horizon and search budgets so CI
//! can keep this bench compiling *and running*.

use rankmap_core::json::{obj, Json};
use rankmap_core::manager::ManagerConfig;
use rankmap_core::oracle::AnalyticalOracle;
use rankmap_fleet::{
    generate, ArrivalProcess, FleetConfig, FleetOutcome, FleetRuntime, LoadSpec, Parallelism,
};
use rankmap_platform::Platform;
use std::time::Instant;

fn smoke() -> bool {
    std::env::var_os("RANKMAP_BENCH_SMOKE").is_some()
}

fn load_spec() -> LoadSpec {
    LoadSpec {
        horizon: if smoke() { 300.0 } else { 900.0 },
        process: ArrivalProcess::Poisson { rate: 1.0 / 12.0 },
        mean_lifetime: 200.0,
        priority_churn_rate: 1.0 / 250.0,
        seed: 7,
        ..Default::default()
    }
}

fn fleet_config(parallelism: Parallelism) -> FleetConfig {
    let budget = if smoke() { 60 } else { 150 };
    FleetConfig {
        manager: ManagerConfig {
            mcts_iterations: budget,
            warm_iterations: budget / 2,
            plan_cache_capacity: 512,
            ..Default::default()
        },
        parallelism,
        ..Default::default()
    }
}

fn run(platform: &Platform, parallelism: Parallelism) -> (FleetOutcome, f64) {
    let oracle = AnalyticalOracle::new(platform);
    let spec = load_spec();
    let events = generate(&spec);
    let fleet = FleetRuntime::homogeneous(platform, &oracle, 8, fleet_config(parallelism));
    let started = Instant::now();
    let outcome = fleet.execute(&events, spec.horizon);
    (outcome, started.elapsed().as_secs_f64())
}

fn identical(a: &FleetOutcome, b: &FleetOutcome) -> bool {
    a.metrics == b.metrics && a.placements == b.placements && a.timelines == b.timelines
}

fn main() {
    let platform = Platform::orange_pi_5();
    let spec = load_spec();
    let host_threads = rayon::current_num_threads();
    println!(
        "fleet_parallel: 8 shards, Poisson {:.3}/s, horizon {:.0}s, host cores {} ({} mode)",
        spec.process.mean_rate(),
        spec.horizon,
        host_threads,
        if smoke() { "smoke" } else { "full" }
    );

    let (reference, sequential_s) = run(&platform, Parallelism::Sequential);
    println!(
        "  sequential: {:.2}s wall, {}/{} admitted, {} migrations",
        sequential_s, reference.metrics.admitted, reference.metrics.offered,
        reference.metrics.migrations
    );

    // The production default first (threads = host cores), then a fixed
    // ladder so runs on different hosts stay comparable.
    let mut widths = vec![host_threads];
    for n in [2usize, 4, 8] {
        if !widths.contains(&n) {
            widths.push(n);
        }
    }
    let mut rows = Vec::new();
    let mut all_identical = true;
    let mut default_speedup = None;
    for &n in &widths {
        let (outcome, wall_s) = run(&platform, Parallelism::Threads(n));
        let same = identical(&reference, &outcome);
        all_identical &= same;
        let speedup = sequential_s / wall_s;
        if n == host_threads {
            default_speedup = Some(speedup);
        }
        println!(
            "  threads({n}): {:.2}s wall, {:.3}x sequential, outcome {}",
            wall_s,
            speedup,
            if same { "bit-identical" } else { "DIVERGED" }
        );
        rows.push(obj([
            ("threads", Json::Num(n as f64)),
            ("wall_s", Json::Num(wall_s)),
            ("speedup_vs_sequential", Json::Num(speedup)),
            ("bit_identical", Json::Bool(same)),
        ]));
    }

    let report = obj([
        ("smoke", Json::Bool(smoke())),
        ("shards", Json::Num(8.0)),
        ("host_threads", Json::Num(host_threads as f64)),
        (
            "offered_load",
            obj([
                ("process", Json::Str("poisson".into())),
                ("rate_per_s", Json::Num(spec.process.mean_rate())),
                ("mean_lifetime_s", Json::Num(spec.mean_lifetime)),
                ("horizon_s", Json::Num(spec.horizon)),
                ("seed", Json::Num(spec.seed as f64)),
            ]),
        ),
        ("sequential_wall_s", Json::Num(sequential_s)),
        ("threads", Json::Arr(rows)),
        (
            "default_speedup_vs_sequential",
            default_speedup.map_or(Json::Null, Json::Num),
        ),
        ("all_outcomes_bit_identical", Json::Bool(all_identical)),
        (
            "note",
            Json::Str(
                "threads = host cores is the production default; multi-core speedup is \
                 host-dependent (a 1-core container degrades to the serial schedule, \
                 ratio ~1.0x). Oversubscribed widths pin the per-barrier spawn overhead."
                    .into(),
            ),
        ),
    ]);
    // BENCH_fleet.json is shared with the other fleet benches: each bench
    // owns one top-level section and preserves the others' on re-runs.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fleet.json");
    rankmap_bench::merge_bench_report(path, "fleet_parallel", report);
    println!("wrote the fleet_parallel section of {path}");
    // Fail the run (after recording the evidence) if any width diverged:
    // the CI smoke step leans on this to catch determinism regressions.
    assert!(
        all_identical,
        "parallel execution diverged from the sequential reference — see {path}"
    );
}
