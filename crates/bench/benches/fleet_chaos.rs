//! Chaos benchmark: what priority-aware evacuation buys under a
//! correlated 2-of-8 shard outage, written to the `fleet_chaos` section
//! of `BENCH_fleet.json`.
//!
//! One seeded Poisson load is offered to an 8-shard fleet with a planned
//! outage injected into the stream: shards 0 and 1 go down together at
//! `H/3` and come back at `2H/3` (a correlated rack failure). The same
//! stream is executed twice — evacuation on vs off — so the A/B isolates
//! the policy:
//!
//! * **Evacuation on** (the default): victims are triaged by priority and
//!   re-placed onto the six survivors, highest priority first, each move
//!   charged the destination's real migration stall.
//! * **Evacuation off**: every victim is shed — the "board dies, work
//!   dies" baseline.
//!
//! The headline figures are the high-priority tier's availability through
//! the outage and the aggregate potential-seconds retained; the
//! acceptance bar (asserted after recording) is that evacuation keeps
//! **strictly more** of both. The bench also records the chaos stream as
//! a version-3 trace and replays it under `Sequential` and `Threads(4)`,
//! asserting all three outcomes are bit-identical — the determinism
//! contract extended to fault handling.
//!
//! `RANKMAP_BENCH_SMOKE=1` shrinks the horizon and search budgets so CI
//! can keep this bench compiling *and running*.

use rankmap_core::json::{obj, Json};
use rankmap_core::manager::ManagerConfig;
use rankmap_core::oracle::AnalyticalOracle;
use rankmap_fleet::{
    generate, ArrivalProcess, FleetConfig, FleetEvent, FleetOutcome, FleetRuntime, LoadSpec,
    Parallelism, Trace, TraceMeta,
};
use rankmap_platform::Platform;
use std::time::Instant;

const SHARDS: usize = 8;
const DOWN: [usize; 2] = [0, 1];

fn smoke() -> bool {
    std::env::var_os("RANKMAP_BENCH_SMOKE").is_some()
}

fn load_spec() -> LoadSpec {
    LoadSpec {
        horizon: if smoke() { 300.0 } else { 900.0 },
        process: ArrivalProcess::Poisson { rate: 1.0 / 6.0 },
        mean_lifetime: 300.0,
        priority_churn_rate: 1.0 / 250.0,
        seed: 7,
        ..Default::default()
    }
}

/// The offered stream: the seeded load plus the planned correlated
/// outage, re-sorted by time (stable, so equal-time order is preserved).
fn chaos_events(spec: &LoadSpec) -> Vec<FleetEvent> {
    let mut events = generate(spec);
    let down_at = spec.horizon / 3.0;
    let up_at = 2.0 * spec.horizon / 3.0;
    for shard in DOWN {
        events.push(FleetEvent::ShardDown { at: down_at, shard });
        events.push(FleetEvent::ShardUp { at: up_at, shard });
    }
    events.sort_by(|a, b| a.at().total_cmp(&b.at()));
    events
}

fn fleet_config(evacuate: bool, parallelism: Parallelism) -> FleetConfig {
    let budget = if smoke() { 60 } else { 150 };
    FleetConfig {
        manager: ManagerConfig {
            mcts_iterations: budget,
            warm_iterations: budget / 2,
            plan_cache_capacity: 512,
            ..Default::default()
        },
        evacuate,
        // Rejected arrivals get two bounded retries: the degradation
        // path the outage exercises (capacity shrinks by a quarter).
        retry_limit: 2,
        retry_backoff: 20.0,
        parallelism,
        ..Default::default()
    }
}

fn run(
    platform: &Platform,
    events: &[FleetEvent],
    horizon: f64,
    evacuate: bool,
    parallelism: Parallelism,
) -> (FleetOutcome, f64) {
    let oracle = AnalyticalOracle::new(platform);
    let fleet =
        FleetRuntime::homogeneous(platform, &oracle, SHARDS, fleet_config(evacuate, parallelism));
    let started = Instant::now();
    let outcome = fleet.execute(events, horizon);
    (outcome, started.elapsed().as_secs_f64())
}

fn identical(a: &FleetOutcome, b: &FleetOutcome) -> bool {
    a.metrics == b.metrics && a.placements == b.placements && a.timelines == b.timelines
}

fn arm_report(outcome: &FleetOutcome, wall_s: f64) -> Json {
    let m = &outcome.metrics;
    let avail = m.tier_availability();
    obj([
        ("wall_s", Json::Num(wall_s)),
        ("admitted", Json::Num(m.admitted as f64)),
        ("rejected", Json::Num(m.rejected as f64)),
        ("evacuated", Json::Num(m.evacuated as f64)),
        ("shed", Json::Num(m.shed as f64)),
        ("retries", Json::Num(m.retries as f64)),
        ("retry_admitted", Json::Num(m.retry_admitted as f64)),
        ("evacuation_stall_s", Json::Num(m.evacuation_stall_seconds)),
        (
            "tier_availability",
            Json::Arr(avail.iter().map(|&v| Json::Num(v)).collect()),
        ),
        (
            "tier_triaged",
            Json::Arr(m.tier_triaged.iter().map(|&v| Json::Num(v as f64)).collect()),
        ),
        ("aggregate_potential_seconds", Json::Num(m.aggregate_potential_seconds)),
        ("accounting_balances", Json::Bool(m.accounting_balances())),
    ])
}

fn main() {
    let platform = Platform::orange_pi_5();
    let spec = load_spec();
    let events = chaos_events(&spec);
    println!(
        "fleet_chaos: {SHARDS} shards, {:?} down [{:.0}s, {:.0}s), Poisson {:.3}/s, \
         horizon {:.0}s ({} mode)",
        DOWN,
        spec.horizon / 3.0,
        2.0 * spec.horizon / 3.0,
        spec.process.mean_rate(),
        spec.horizon,
        if smoke() { "smoke" } else { "full" }
    );

    let (evac, evac_s) = run(&platform, &events, spec.horizon, true, Parallelism::Sequential);
    let (base, base_s) = run(&platform, &events, spec.horizon, false, Parallelism::Sequential);
    let evac_avail = evac.metrics.tier_availability();
    let base_avail = base.metrics.tier_availability();
    println!(
        "  evacuation on:  tier availability {:?}, {} evacuated / {} shed, {:.1} pot·s",
        evac_avail, evac.metrics.evacuated, evac.metrics.shed,
        evac.metrics.aggregate_potential_seconds
    );
    println!(
        "  evacuation off: tier availability {:?}, {} evacuated / {} shed, {:.1} pot·s",
        base_avail, base.metrics.evacuated, base.metrics.shed,
        base.metrics.aggregate_potential_seconds
    );

    // Determinism under chaos: the stream round-trips through a v3 trace
    // and replays bit-identically under both executors.
    let trace = Trace::new(
        TraceMeta::new(SHARDS, spec.horizon, spec.seed, "fleet-chaos"),
        events.clone(),
    );
    let parsed = Trace::from_jsonl(&trace.to_jsonl()).expect("chaos trace parses");
    let oracle = AnalyticalOracle::new(&platform);
    let replay_seq = FleetRuntime::homogeneous(
        &platform,
        &oracle,
        SHARDS,
        fleet_config(true, Parallelism::Sequential),
    )
    .execute_trace(&parsed);
    let replay_thr = FleetRuntime::homogeneous(
        &platform,
        &oracle,
        SHARDS,
        fleet_config(true, Parallelism::Threads(4)),
    )
    .execute_trace(&parsed);
    let replay_identical = identical(&evac, &replay_seq) && identical(&evac, &replay_thr);
    println!(
        "  v3 trace replay (Sequential + Threads(4)): {}",
        if replay_identical { "bit-identical" } else { "DIVERGED" }
    );

    let report = obj([
        ("smoke", Json::Bool(smoke())),
        (
            "host_threads",
            Json::Num(std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) as f64),
        ),
        ("shards", Json::Num(SHARDS as f64)),
        (
            "outage",
            obj([
                (
                    "shards",
                    Json::Arr(DOWN.iter().map(|&s| Json::Num(s as f64)).collect()),
                ),
                ("down_at_s", Json::Num(spec.horizon / 3.0)),
                ("up_at_s", Json::Num(2.0 * spec.horizon / 3.0)),
            ]),
        ),
        (
            "offered_load",
            obj([
                ("process", Json::Str("poisson".into())),
                ("rate_per_s", Json::Num(spec.process.mean_rate())),
                ("mean_lifetime_s", Json::Num(spec.mean_lifetime)),
                ("horizon_s", Json::Num(spec.horizon)),
                ("seed", Json::Num(spec.seed as f64)),
            ]),
        ),
        ("evacuation_on", arm_report(&evac, evac_s)),
        ("evacuation_off", arm_report(&base, base_s)),
        (
            "high_tier_availability_gain",
            Json::Num(evac_avail[0] - base_avail[0]),
        ),
        (
            "potential_seconds_gain",
            Json::Num(
                evac.metrics.aggregate_potential_seconds
                    - base.metrics.aggregate_potential_seconds,
            ),
        ),
        ("replay_bit_identical", Json::Bool(replay_identical)),
        (
            "note",
            Json::Str(
                "Same stream, same outage; the only difference is the evacuation policy. \
                 With evacuation off every outage victim is shed, so the availability and \
                 potential gaps are what priority-aware evacuation buys."
                    .into(),
            ),
        ),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fleet.json");
    rankmap_bench::merge_bench_report(path, "fleet_chaos", report);
    println!("wrote the fleet_chaos section of {path}");

    // The acceptance bars, checked after the evidence is on disk.
    assert!(
        evac.metrics.tier_triaged[0] > 0,
        "the outage must put high-priority instances at risk — see {path}"
    );
    assert!(
        evac_avail[0] > base_avail[0],
        "evacuation must retain strictly more high-priority availability \
         ({:?} vs {:?}) — see {path}",
        evac_avail,
        base_avail
    );
    assert!(
        evac.metrics.aggregate_potential_seconds > base.metrics.aggregate_potential_seconds,
        "evacuation must retain strictly more aggregate potential — see {path}"
    );
    assert!(
        evac.metrics.accounting_balances() && base.metrics.accounting_balances(),
        "instance accounting must balance in both arms — see {path}"
    );
    assert!(
        replay_identical,
        "the chaos trace must replay bit-for-bit under both executors — see {path}"
    );
}
