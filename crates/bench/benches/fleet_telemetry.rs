//! Telemetry overhead benchmark: wall-clock of the fleet event loop with
//! telemetry disabled vs enabled (and enabled + wall-clock stage timing),
//! written to the `fleet_telemetry` section of `BENCH_fleet.json`.
//!
//! One seeded Poisson load with a fault layer (so evacuation/shed flight
//! records and throttle gauges are exercised, not just the admit path) is
//! offered to an 8-shard fleet once per telemetry mode. Every run must
//! produce **bit-identical** placements, metrics, and timelines —
//! telemetry lives strictly off the decision path (the bench
//! double-checks what `crates/fleet/tests/telemetry.rs` property-tests);
//! only the wall-clock may differ. The recorded figure is events/sec per
//! mode and the enabled-vs-disabled overhead percentage, which the full
//! (non-smoke) run asserts stays ≤ 10%.
//!
//! `RANKMAP_BENCH_SMOKE=1` shrinks the horizon and search budgets so CI
//! can keep this bench compiling *and running*; the overhead assertion is
//! skipped there (sub-second smoke runs are all noise).

use rankmap_core::json::{obj, Json};
use rankmap_core::manager::ManagerConfig;
use rankmap_core::oracle::AnalyticalOracle;
use rankmap_fleet::{
    generate, ArrivalProcess, FaultSpec, FleetConfig, FleetOutcome, FleetRuntime, LoadSpec,
    TelemetrySpec,
};
use rankmap_platform::Platform;
use std::time::Instant;

fn smoke() -> bool {
    std::env::var_os("RANKMAP_BENCH_SMOKE").is_some()
}

fn load_spec() -> LoadSpec {
    LoadSpec {
        horizon: if smoke() { 300.0 } else { 900.0 },
        process: ArrivalProcess::Poisson { rate: 1.0 / 12.0 },
        mean_lifetime: 200.0,
        priority_churn_rate: 1.0 / 250.0,
        seed: 11,
        faults: Some(FaultSpec {
            shards: 8,
            mtbf: 400.0,
            mttr: 60.0,
            throttle_rate: 1.0 / 300.0,
            seed: 23,
            ..Default::default()
        }),
        ..Default::default()
    }
}

fn fleet_config(telemetry: TelemetrySpec) -> FleetConfig {
    let budget = if smoke() { 60 } else { 150 };
    FleetConfig {
        manager: ManagerConfig {
            mcts_iterations: budget,
            warm_iterations: budget / 2,
            plan_cache_capacity: 512,
            ..Default::default()
        },
        retry_limit: 1,
        telemetry,
        ..Default::default()
    }
}

/// Runs the workload under one telemetry mode; returns the outcome, the
/// event count, and the mean wall seconds over `reps` runs.
fn run(platform: &Platform, telemetry: TelemetrySpec, reps: usize) -> (FleetOutcome, usize, f64) {
    let oracle = AnalyticalOracle::new(platform);
    let spec = load_spec();
    let events = generate(&spec);
    let mut wall = 0.0;
    let mut outcome = None;
    for _ in 0..reps {
        let fleet = FleetRuntime::homogeneous(platform, &oracle, 8, fleet_config(telemetry));
        let started = Instant::now();
        outcome = Some(fleet.execute(&events, spec.horizon));
        wall += started.elapsed().as_secs_f64();
    }
    (outcome.unwrap(), events.len(), wall / reps as f64)
}

fn identical(a: &FleetOutcome, b: &FleetOutcome) -> bool {
    a.metrics == b.metrics && a.placements == b.placements && a.timelines == b.timelines
}

fn main() {
    let platform = Platform::orange_pi_5();
    let spec = load_spec();
    let reps = if smoke() { 1 } else { 3 };
    println!(
        "fleet_telemetry: 8 shards, Poisson {:.3}/s + faults, horizon {:.0}s, {} reps ({} mode)",
        spec.process.mean_rate(),
        spec.horizon,
        reps,
        if smoke() { "smoke" } else { "full" }
    );

    let modes: [(&str, TelemetrySpec); 3] = [
        ("disabled", TelemetrySpec::default()),
        ("enabled", TelemetrySpec::on()),
        ("enabled+wall", TelemetrySpec::on().with_wall_clock()),
    ];
    let mut rows = Vec::new();
    let mut all_identical = true;
    let mut reference: Option<FleetOutcome> = None;
    let mut disabled_eps = 0.0;
    let mut enabled_eps = 0.0;
    for (name, telemetry) in modes {
        let (outcome, events, wall_s) = run(&platform, telemetry, reps);
        let eps = events as f64 / wall_s;
        let same = reference.as_ref().is_none_or(|r| identical(r, &outcome));
        all_identical &= same;
        let flight = outcome
            .telemetry
            .as_ref()
            .map_or(0, |snap| snap.recorder.total());
        println!(
            "  {name}: {wall_s:.3}s wall, {eps:.0} events/s, {flight} flight records, outcome {}",
            if same { "bit-identical" } else { "DIVERGED" }
        );
        rows.push(obj([
            ("mode", Json::Str(name.into())),
            ("wall_s", Json::Num(wall_s)),
            ("events_per_s", Json::Num(eps)),
            ("flight_records", Json::Num(flight as f64)),
            ("bit_identical", Json::Bool(same)),
        ]));
        match name {
            "disabled" => disabled_eps = eps,
            "enabled" => enabled_eps = eps,
            _ => {}
        }
        if reference.is_none() {
            reference = Some(outcome);
        }
    }

    // Overhead of deterministic telemetry relative to off: how much
    // events/sec throughput the instrumentation costs.
    let overhead_pct = 100.0 * (disabled_eps / enabled_eps - 1.0);
    println!("  enabled-vs-disabled overhead: {overhead_pct:.2}%");

    let report = obj([
        ("smoke", Json::Bool(smoke())),
        (
            "host_threads",
            Json::Num(std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) as f64),
        ),
        ("shards", Json::Num(8.0)),
        (
            "offered_load",
            obj([
                ("process", Json::Str("poisson+faults".into())),
                ("rate_per_s", Json::Num(spec.process.mean_rate())),
                ("mean_lifetime_s", Json::Num(spec.mean_lifetime)),
                ("horizon_s", Json::Num(spec.horizon)),
                ("seed", Json::Num(spec.seed as f64)),
            ]),
        ),
        ("modes", Json::Arr(rows)),
        ("enabled_overhead_pct", Json::Num(overhead_pct)),
        ("all_outcomes_bit_identical", Json::Bool(all_identical)),
        (
            "note",
            Json::Str(
                "overhead = events/sec lost with deterministic telemetry on vs off; the \
                 full run asserts <= 10%. Wall-clock stage timing (enabled+wall) is the \
                 one non-deterministic extra and is recorded but not bounded."
                    .into(),
            ),
        ),
    ]);
    // BENCH_fleet.json is shared with the other fleet benches: each bench
    // owns one top-level section and preserves the others' on re-runs.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fleet.json");
    rankmap_bench::merge_bench_report(path, "fleet_telemetry", report);
    println!("wrote the fleet_telemetry section of {path}");
    // Fail (after recording the evidence) on a determinism regression in
    // any mode, and on runaway overhead in the full run.
    assert!(
        all_identical,
        "telemetry changed a decision — see {path}"
    );
    if !smoke() {
        assert!(
            overhead_pct <= 10.0,
            "deterministic telemetry overhead {overhead_pct:.2}% exceeds the 10% budget — see {path}"
        );
    }
}
