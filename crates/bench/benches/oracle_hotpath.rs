//! Oracle hot-path benchmark: mapping-search latency with the learned
//! oracle (paper-structured estimator), batched (`K ∈ {1, 8, 32}`)
//! against the seed's sequential baseline, at the default 1,500-iteration
//! budget.
//!
//! The baseline arm reconstructs the seed implementation faithfully: a
//! lock-guarded estimator queried one mapping at a time through the legacy
//! `Estimator::predict` (`&mut`, training-path forward with its allocation
//! traffic), driven by `Mcts::search_sequential` with per-step state
//! clones and no caching. The batched arms run the same decision problem
//! through the shipped hot path: `LearnedOracle` (`&self` inference,
//! stacked decoder matmuls), virtual-loss rounds, transposition cache.
//! A `manager_plan_default` arm measures the public
//! `RankMapManager::map` entry point end to end.
//!
//! Results land in `BENCH_oracle.json` at the workspace root (ns per call;
//! divide by the 1,500-evaluation budget for ns/eval) so future PRs have a
//! perf trajectory. The run also prints best-reward parity over 5 seeds:
//! the batched search must stay within noise of the sequential one.

use criterion::{criterion_group, criterion_main, Criterion};
use rankmap_core::manager::{ManagerConfig, RankMapManager};
use rankmap_core::oracle::{LearnedOracle, ThroughputOracle};
use rankmap_core::priority::PriorityMode;
use rankmap_core::reward::{RewardSpec, StarvationThreshold, DISQUALIFIED};
use rankmap_estimator::{
    EmbeddingTable, Estimator, EstimatorConfig, QTensorSpec, VqVae, VqVaeConfig,
};
use rankmap_models::ModelId;
use rankmap_platform::{ComponentId, Platform};
use rankmap_search::{DecisionProblem, Mcts, MctsConfig};
use rankmap_sim::{Mapping, Workload};
use std::sync::Mutex;

const BUDGET: usize = 1_500;
const IDEAL: f64 = 25.0;

fn mix() -> Workload {
    Workload::from_ids([
        ModelId::AlexNet,
        ModelId::MobileNetV2,
        ModelId::ResNet50,
        ModelId::SqueezeNetV2,
    ])
}

/// The seed's learned oracle, resurrected for the baseline arm: interior
/// mutability around the legacy `&mut` estimator forward, one mapping per
/// query, embeddings re-ensured on every call.
struct SeedLearnedOracle {
    vqvae: Mutex<VqVae>,
    embeddings: Mutex<EmbeddingTable>,
    estimator: Mutex<Estimator>,
    spec: QTensorSpec,
}

impl SeedLearnedOracle {
    fn new(vqvae: VqVae, embeddings: EmbeddingTable, estimator: Estimator) -> Self {
        let spec = estimator.config().spec;
        Self {
            vqvae: Mutex::new(vqvae),
            embeddings: Mutex::new(embeddings),
            estimator: Mutex::new(estimator),
            spec,
        }
    }
}

impl ThroughputOracle for SeedLearnedOracle {
    fn predict(&self, workload: &Workload, mapping: &Mapping) -> Vec<f64> {
        let mut emb = self.embeddings.lock().unwrap();
        let mut vq = self.vqvae.lock().unwrap();
        for m in workload.models() {
            emb.ensure(&mut vq, m);
        }
        let q = emb.q_tensor(&self.spec, workload, mapping);
        let preds = self.estimator.lock().unwrap().predict(&q);
        (0..workload.len()).map(|i| (preds[i].max(0.0) as f64) * IDEAL).collect()
    }

    fn name(&self) -> &'static str {
        "learned-seed"
    }
}

/// The mapping decision problem both arms share (fixed ideal rates so the
/// two searches optimize the identical objective). The batched methods are
/// only reachable from `Mcts::search`; `search_sequential` exercises the
/// seed behavior.
struct BenchMappingProblem<'a, O: ThroughputOracle> {
    workload: &'a Workload,
    oracle: &'a O,
    spec: &'a RewardSpec,
    components: usize,
    total_units: usize,
}

impl<O: ThroughputOracle> BenchMappingProblem<'_, O> {
    fn reward_of(&self, throughputs: &[f64]) -> f64 {
        let r = self.spec.reward(throughputs);
        if r == DISQUALIFIED {
            -1.0e6 + self.spec.fallback_score(throughputs)
        } else {
            r
        }
    }
}

impl<O: ThroughputOracle> DecisionProblem for BenchMappingProblem<'_, O> {
    type State = Vec<ComponentId>;

    fn root(&self) -> Self::State {
        Vec::new()
    }

    fn action_count(&self, state: &Self::State) -> usize {
        if state.len() >= self.total_units {
            0
        } else {
            self.components
        }
    }

    fn apply(&self, state: &Self::State, a: usize) -> Self::State {
        let mut s = state.clone();
        s.push(ComponentId::new(a));
        s
    }

    fn apply_in_place(&self, state: &mut Self::State, a: usize) {
        state.push(ComponentId::new(a));
    }

    fn evaluate(&self, state: &Self::State) -> f64 {
        let mapping = Mapping::from_flat(self.workload, state);
        self.reward_of(&self.oracle.predict(self.workload, &mapping))
    }

    fn evaluate_batch(&self, states: &[Self::State]) -> Vec<f64> {
        let mappings: Vec<Mapping> =
            states.iter().map(|s| Mapping::from_flat(self.workload, s)).collect();
        self.oracle
            .predict_batch(self.workload, &mappings)
            .iter()
            .map(|t| self.reward_of(t))
            .collect()
    }

    fn transposition_key(&self, state: &Self::State) -> Option<u64> {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for c in state {
            h ^= c.index() as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Some(h)
    }
}

struct Setup {
    platform: Platform,
    seed_oracle: SeedLearnedOracle,
    fast_oracle: LearnedOracle,
    spec: RewardSpec,
}

fn setup() -> Setup {
    let platform = Platform::orange_pi_5();
    let w = mix();
    let mut vqvae = VqVae::new(VqVaeConfig::default(), 0);
    let table = EmbeddingTable::build(&mut vqvae, w.models());
    let estimator = Estimator::new(EstimatorConfig::paper(), 0);
    let seed_oracle = SeedLearnedOracle::new(
        VqVae::new(VqVaeConfig::default(), 0),
        table.clone(),
        Estimator::new(EstimatorConfig::paper(), 0),
    );
    let fast_oracle = LearnedOracle::new(vqvae, table, estimator, Box::new(|_| IDEAL));
    // Untrained estimators predict near-zero throughput everywhere; a
    // permissive threshold keeps every mapping qualified so the parity
    // check below compares real rewards instead of fallback scores.
    let spec = RewardSpec::new(
        PriorityMode::Dynamic.vector(&w),
        StarvationThreshold::Absolute(-1.0),
        vec![IDEAL; w.len()],
    );
    Setup { platform, seed_oracle, fast_oracle, spec }
}

/// One full mapping search. `batch == None` runs the seed-faithful
/// sequential loop over the seed oracle; `batch == Some(k)` runs the
/// shipped batched path over the fast oracle.
fn plan(s: &Setup, w: &Workload, batch: Option<usize>, seed: u64) -> f64 {
    let cfg = MctsConfig {
        iterations: BUDGET,
        seed,
        batch: batch.unwrap_or(1),
        ..Default::default()
    };
    match batch {
        None => {
            let problem = BenchMappingProblem {
                workload: w,
                oracle: &s.seed_oracle,
                spec: &s.spec,
                components: s.platform.component_count(),
                total_units: w.total_units(),
            };
            Mcts::new(cfg).search_sequential(&problem).best_reward
        }
        Some(_) => {
            let problem = BenchMappingProblem {
                workload: w,
                oracle: &s.fast_oracle,
                spec: &s.spec,
                components: s.platform.component_count(),
                total_units: w.total_units(),
            };
            Mcts::new(cfg).search(&problem).best_reward
        }
    }
}

fn bench_oracle_hotpath(c: &mut Criterion) {
    let s = setup();
    let w = mix();

    let mut group = c.benchmark_group("plan_1500");
    group.sample_size(10);
    group.bench_function("sequential_baseline", |b| b.iter(|| plan(&s, &w, None, 1)));
    for k in [1usize, 8, 32] {
        group.bench_function(&format!("batched_k{k}"), |b| {
            b.iter(|| plan(&s, &w, Some(k), 1))
        });
    }
    // The public entry point, end to end (measured ideal rates are cached
    // in the manager after the first call).
    let mgr = RankMapManager::new(
        &s.platform,
        &s.fast_oracle,
        ManagerConfig { mcts_iterations: BUDGET, ..Default::default() },
    );
    let _ = mgr.map(&w, &PriorityMode::Dynamic);
    group.bench_function("manager_plan_default", |b| {
        b.iter(|| mgr.map(&w, &PriorityMode::Dynamic))
    });
    group.finish();

    // Reward parity across seeds: the batched search must stay within
    // noise of the sequential trajectory.
    let mut seq = Vec::new();
    let mut bat = Vec::new();
    for seed in 0..5u64 {
        seq.push(plan(&s, &w, None, seed));
        bat.push(plan(&s, &w, Some(8), seed));
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "reward parity over 5 seeds: sequential mean {:.4} {:?}, batched(K=8) mean {:.4} {:?}",
        mean(&seq),
        seq,
        mean(&bat),
        bat
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(8))
        .warm_up_time(std::time::Duration::from_millis(500))
        .json_output(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_oracle.json"));
    targets = bench_oracle_hotpath
}
criterion_main!(benches);
