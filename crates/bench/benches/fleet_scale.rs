//! Fleet scaling benchmark: aggregate serving capacity vs shard count at
//! a fixed offered load, written to `BENCH_fleet.json` at the workspace
//! root.
//!
//! One Poisson load (seeded, deterministic) is offered to fleets of 1, 2,
//! 4, and 8 emulated boards. The steady-state live set (~17 concurrent
//! DNNs at full settings) over-commits a single 5-slot board roughly 3×,
//! so the 1-shard fleet rejects most arrivals while 8 shards absorb the
//! same stream at high per-DNN potential — the scaling figure is
//! **aggregate potential-seconds** (Σ potential·span over every shard's
//! timeline). The acceptance bar: the 8-shard aggregate ≥ 4× the 1-shard
//! aggregate.
//!
//! The run also:
//! * A/Bs the remap-gain objective (priority-weighted potential vs the
//!   legacy raw-average, `GainObjective`) on the 4-shard fleet;
//! * records the 2-shard run to a JSONL trace, replays it, and reports
//!   whether metrics came back bit-identical;
//! * reports wall-clock placement-decision latency (p50/p99) per fleet
//!   size.
//!
//! `RANKMAP_BENCH_SMOKE=1` shrinks the horizon and search budgets so CI
//! can keep this bench compiling *and running*.

use rankmap_core::json::{obj, Json};
use rankmap_core::manager::ManagerConfig;
use rankmap_core::oracle::AnalyticalOracle;
use rankmap_core::runtime::GainObjective;
use rankmap_fleet::{
    generate, ArrivalProcess, FleetConfig, FleetOutcome, FleetRuntime, LoadSpec, Trace,
    TraceMeta,
};
use rankmap_platform::Platform;

fn smoke() -> bool {
    std::env::var_os("RANKMAP_BENCH_SMOKE").is_some()
}

fn load_spec() -> LoadSpec {
    LoadSpec {
        horizon: if smoke() { 300.0 } else { 900.0 },
        process: ArrivalProcess::Poisson { rate: 1.0 / 12.0 },
        mean_lifetime: 200.0,
        seed: 7,
        ..Default::default()
    }
}

fn fleet_config(objective: GainObjective) -> FleetConfig {
    let budget = if smoke() { 60 } else { 150 };
    FleetConfig {
        manager: ManagerConfig {
            mcts_iterations: budget,
            warm_iterations: budget / 2,
            plan_cache_capacity: 512,
            ..Default::default()
        },
        objective,
        ..Default::default()
    }
}

fn run(platform: &Platform, shards: usize, objective: GainObjective) -> FleetOutcome {
    let oracle = AnalyticalOracle::new(platform);
    let spec = load_spec();
    let events = generate(&spec);
    FleetRuntime::homogeneous(platform, &oracle, shards, fleet_config(objective))
        .execute(&events, spec.horizon)
}

fn main() {
    let platform = Platform::orange_pi_5();
    let spec = load_spec();
    println!(
        "fleet_scale: Poisson {:.3}/s, lifetime {:.0}s, horizon {:.0}s ({} mode)",
        spec.process.mean_rate(),
        spec.mean_lifetime,
        spec.horizon,
        if smoke() { "smoke" } else { "full" }
    );

    // Scaling sweep: the same offered load against growing fleets. The
    // 4-shard outcome doubles as the "aware" arm of the objective A/B
    // below (everything is deterministic, a re-run would be identical).
    let mut rows = Vec::new();
    let mut aggregates = std::collections::BTreeMap::new();
    let mut aware_4shard = None;
    let mut recorded_2shard = None;
    for shards in [1usize, 2, 4, 8] {
        let outcome = run(&platform, shards, GainObjective::PriorityPotential);
        let m = &outcome.metrics;
        let mean_potential =
            m.per_shard_potential.iter().sum::<f64>() / m.per_shard_potential.len() as f64;
        println!(
            "  {shards} shard(s): {}/{} admitted, {} migrations, aggregate {:.1} pot·s, \
             mean shard potential {:.3}, placement p50 {:?} p99 {:?}",
            m.admitted,
            m.offered,
            m.migrations,
            m.aggregate_potential_seconds,
            mean_potential,
            outcome.placement_latency.p50,
            outcome.placement_latency.p99,
        );
        aggregates.insert(shards, m.aggregate_potential_seconds);
        rows.push(obj([
            ("shards", Json::Num(shards as f64)),
            ("offered", Json::Num(m.offered as f64)),
            ("admitted", Json::Num(m.admitted as f64)),
            ("rejected", Json::Num(m.rejected as f64)),
            ("migrations", Json::Num(m.migrations as f64)),
            ("aggregate_potential_seconds", Json::Num(m.aggregate_potential_seconds)),
            ("mean_shard_potential", Json::Num(mean_potential)),
            (
                "placement_p50_us",
                Json::Num(outcome.placement_latency.p50.as_secs_f64() * 1e6),
            ),
            (
                "placement_p99_us",
                Json::Num(outcome.placement_latency.p99.as_secs_f64() * 1e6),
            ),
        ]));
        match shards {
            2 => recorded_2shard = Some(outcome),
            4 => aware_4shard = Some(outcome),
            _ => {}
        }
    }
    // Guard the ratio: a config that admits nothing at 1 shard would
    // otherwise put a non-finite number in the report (serialized null).
    let scaling =
        if aggregates[&1] > 0.0 { aggregates[&8] / aggregates[&1] } else { 0.0 };
    println!(
        "  8-shard aggregate = {scaling:.2}x the 1-shard aggregate ({})",
        if scaling >= 4.0 { "meets the >=4x bar" } else { "BELOW the 4x bar" }
    );

    // Objective A/B on the 4-shard fleet: the priority-weighted potential
    // gain (default, reused from the sweep) vs the legacy raw-average
    // objective.
    let aware = aware_4shard.expect("the sweep covers 4 shards");
    let legacy = run(&platform, 4, GainObjective::AverageThroughput);
    println!(
        "  gain-objective A/B (4 shards): priority-potential {:.1} pot·s vs raw-average {:.1} pot·s",
        aware.metrics.aggregate_potential_seconds,
        legacy.metrics.aggregate_potential_seconds,
    );

    // Trace record/replay determinism on the 2-shard fleet (the recorded
    // side is the sweep's 2-shard outcome — same deterministic run).
    let oracle = AnalyticalOracle::new(&platform);
    let events = generate(&spec);
    let recorded = recorded_2shard.expect("the sweep covers 2 shards");
    let trace = Trace::new(TraceMeta::new(2, spec.horizon, spec.seed, "bench"), events);
    let replayed =
        FleetRuntime::homogeneous(&platform, &oracle, 2, fleet_config(GainObjective::default()))
            .execute_trace(&Trace::from_jsonl(&trace.to_jsonl()).expect("trace parses"));
    let replay_identical = replayed.metrics == recorded.metrics
        && replayed.placements == recorded.placements
        && replayed.timelines == recorded.timelines;
    println!(
        "  trace replay: {}",
        if replay_identical { "bit-identical" } else { "DIVERGED" }
    );

    let report = obj([
        ("smoke", Json::Bool(smoke())),
        (
            "host_threads",
            Json::Num(std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) as f64),
        ),
        (
            "offered_load",
            obj([
                ("process", Json::Str("poisson".into())),
                ("rate_per_s", Json::Num(spec.process.mean_rate())),
                ("mean_lifetime_s", Json::Num(spec.mean_lifetime)),
                ("horizon_s", Json::Num(spec.horizon)),
                ("seed", Json::Num(spec.seed as f64)),
            ]),
        ),
        ("scaling", Json::Arr(rows)),
        ("aggregate_8_shards_over_1_shard", Json::Num(scaling)),
        (
            "objective_ab_4_shards",
            obj([
                (
                    "priority_potential_aggregate",
                    Json::Num(aware.metrics.aggregate_potential_seconds),
                ),
                (
                    "average_throughput_aggregate",
                    Json::Num(legacy.metrics.aggregate_potential_seconds),
                ),
            ]),
        ),
        ("trace_replay_bit_identical", Json::Bool(replay_identical)),
    ]);
    // BENCH_fleet.json is shared with the fleet_hetero bench: each bench
    // owns one top-level section and preserves the other's on re-runs.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fleet.json");
    rankmap_bench::merge_bench_report(path, "fleet_scale", report);
    println!("wrote the fleet_scale section of {path}");
}
