//! Criterion micro-benchmarks for the pieces every figure is built from:
//! the board simulators, the estimator, the VQ-VAE, MCTS, and one
//! end-to-end manager decision per comparison manager (§V-D's run-time
//! trade-off in benchmark form).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rankmap_baselines::{BaselineGpu, Ga, GaConfig, Mosaic, Odmdef, OmniBoost};
use rankmap_core::manager::{ManagerConfig, RankMapManager};
use rankmap_core::oracle::AnalyticalOracle;
use rankmap_core::priority::PriorityMode;
use rankmap_core::runtime::WorkloadMapper;
use rankmap_estimator::{EmbeddingTable, Estimator, EstimatorConfig, QTensorSpec, VqVae, VqVaeConfig};
use rankmap_models::ModelId;
use rankmap_platform::{ComponentId, Platform};
use rankmap_sim::{AnalyticalEngine, EventEngine, Mapping, Workload};

fn mix() -> Workload {
    Workload::from_ids([
        ModelId::AlexNet,
        ModelId::MobileNetV2,
        ModelId::ResNet50,
        ModelId::SqueezeNetV2,
    ])
}

fn bench_simulators(c: &mut Criterion) {
    let platform = Platform::orange_pi_5();
    let w = mix();
    let m = Mapping::uniform(&w, ComponentId::new(0));
    let analytical = AnalyticalEngine::new(&platform);
    c.bench_function("sim/analytical_eval_4dnn", |b| {
        b.iter(|| analytical.evaluate(&w, &m))
    });
    let event = EventEngine::quick(&platform);
    c.bench_function("sim/event_eval_4dnn_quick", |b| b.iter(|| event.evaluate(&w, &m)));
}

fn bench_estimator(c: &mut Criterion) {
    let mut vqvae = VqVae::new(VqVaeConfig::default(), 0);
    let w = mix();
    let table = EmbeddingTable::build(&mut vqvae, w.models());
    let spec = QTensorSpec::default();
    let m = Mapping::uniform(&w, ComponentId::new(0));
    let q = table.q_tensor(&spec, &w, &m);
    let mut est = Estimator::new(EstimatorConfig::quick(), 0);
    c.bench_function("estimator/predict", |b| b.iter(|| est.predict(&q)));
    let alexnet = ModelId::AlexNet.build();
    c.bench_function("estimator/vqvae_encode_alexnet", |b| {
        b.iter(|| vqvae.encode(&alexnet))
    });
    c.bench_function("estimator/q_tensor_assembly", |b| {
        b.iter(|| table.q_tensor(&spec, &w, &m))
    });
}

fn bench_managers(c: &mut Criterion) {
    let platform = Platform::orange_pi_5();
    let pool = vec![
        ModelId::AlexNet,
        ModelId::MobileNetV2,
        ModelId::ResNet50,
        ModelId::SqueezeNetV2,
    ];
    let w = mix();
    let oracle = AnalyticalOracle::new(&platform);
    let mut group = c.benchmark_group("manager_decision");
    group.sample_size(10);
    group.bench_function("baseline", |b| {
        b.iter_batched(
            || BaselineGpu::new(&platform),
            |mut m| m.remap(&w),
            BatchSize::SmallInput,
        )
    });
    let mut mosaic = Mosaic::new(&platform, &pool);
    group.bench_function("mosaic", |b| b.iter(|| mosaic.remap(&w)));
    let mut odmdef = Odmdef::new(&platform, &pool, 60, 0);
    group.bench_function("odmdef", |b| b.iter(|| odmdef.remap(&w)));
    group.bench_function("ga_small", |b| {
        b.iter_batched(
            || Ga::new(&platform, GaConfig { population: 8, generations: 2, ..Default::default() }),
            |mut ga| ga.remap(&w),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("omniboost_300", |b| {
        b.iter_batched(
            || OmniBoost::new(&platform, &oracle, 300, 0),
            |mut ob| ob.remap(&w),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("rankmap_d_300", |b| {
        b.iter_batched(
            || {
                RankMapManager::new(
                    &platform,
                    &oracle,
                    ManagerConfig { mcts_iterations: 300, ..Default::default() },
                )
            },
            |mgr| mgr.map(&w, &PriorityMode::Dynamic),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_models(c: &mut Criterion) {
    c.bench_function("models/build_resnet50", |b| b.iter(|| ModelId::ResNet50.build()));
    c.bench_function("models/build_inception_v4", |b| {
        b.iter(|| ModelId::InceptionV4.build())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_simulators, bench_estimator, bench_managers, bench_models
}
criterion_main!(benches);
