//! Heterogeneous-fleet benchmark: a mixed Orange-Pi/Jetson fleet under
//! one load, reported into the `fleet_hetero` section of
//! `BENCH_fleet.json` at the workspace root.
//!
//! One Poisson load (seeded, deterministic) is offered to an 8-shard
//! fleet of 4 Orange Pi 5 boards and 4 Jetson-class boards. The run
//! answers three questions:
//!
//! * **Does normalization share the load?** Per-platform admissions and
//!   timeline potentials are recorded; under normalized (fraction of each
//!   board's own ideal) routing the slower boards keep winning arrivals
//!   instead of being starved by the Jetsons' raw throughput.
//! * **Is fused placement scoring faster?** The identical run is executed
//!   with [`FleetConfig::fused_scoring`] on (one deduplicated
//!   `predict_grouped` call per platform group) and off (one
//!   `predict_batch` call per shard); decisions are asserted identical
//!   and the total wall-clock placement time of both is recorded.
//! * **Does a mixed-fleet trace replay bit-for-bit?** The run is recorded
//!   to a version-2 JSONL trace (platform mix in the header), parsed
//!   back, and replayed on a freshly built mixed fleet.
//!
//! `RANKMAP_BENCH_SMOKE=1` shrinks the horizon and search budgets so CI
//! can keep this bench compiling *and running*.

use rankmap_core::json::{obj, Json};
use rankmap_core::manager::ManagerConfig;
use rankmap_core::oracle::AnalyticalOracle;
use rankmap_fleet::{
    generate, FleetConfig, FleetOutcome, FleetRuntime, FleetSpec, LoadSpec, ShardSpec, Trace,
    TraceMeta,
};
use rankmap_platform::Platform;

fn smoke() -> bool {
    std::env::var_os("RANKMAP_BENCH_SMOKE").is_some()
}

fn load_spec() -> LoadSpec {
    LoadSpec {
        horizon: if smoke() { 300.0 } else { 900.0 },
        process: rankmap_fleet::ArrivalProcess::Poisson { rate: 1.0 / 10.0 },
        mean_lifetime: 200.0,
        seed: 11,
        ..Default::default()
    }
}

fn fleet_config(fused: bool) -> FleetConfig {
    let budget = if smoke() { 60 } else { 150 };
    FleetConfig {
        manager: ManagerConfig {
            mcts_iterations: budget,
            warm_iterations: budget / 2,
            plan_cache_capacity: 512,
            ..Default::default()
        },
        fused_scoring: fused,
        ..Default::default()
    }
}

fn mixed_spec<'p>(
    orange: &'p Platform,
    jetson: &'p Platform,
    orange_oracle: &'p AnalyticalOracle<'p>,
    jetson_oracle: &'p AnalyticalOracle<'p>,
) -> FleetSpec<'p, AnalyticalOracle<'p>> {
    FleetSpec::new(vec![
        ShardSpec::new(orange, orange_oracle, 4),
        ShardSpec::new(jetson, jetson_oracle, 4),
    ])
}

/// Sums a per-shard metric over the shards of one platform.
fn by_platform<T: Copy, R: std::iter::Sum<T>>(
    platforms: &[String],
    values: &[T],
    name: &str,
) -> R {
    platforms
        .iter()
        .zip(values)
        .filter(|(p, _)| p.as_str() == name)
        .map(|(_, &v)| v)
        .sum()
}

fn main() {
    let orange = Platform::orange_pi_5();
    let jetson = Platform::jetson_orin_nx();
    let orange_oracle = AnalyticalOracle::new(&orange);
    let jetson_oracle = AnalyticalOracle::new(&jetson);
    let spec = load_spec();
    let events = generate(&spec);
    println!(
        "fleet_hetero: 4x orange-pi-5 + 4x jetson-orin-nx, Poisson {:.3}/s, horizon {:.0}s ({} mode)",
        spec.process.mean_rate(),
        spec.horizon,
        if smoke() { "smoke" } else { "full" }
    );

    // Fused vs serial placement scoring: identical decisions, different
    // wall-clock. Each run gets its *own* oracle instances so neither
    // inherits the other's warm workload-pricing caches — the comparison
    // is cold-for-cold. The fused run is the canonical outcome everything
    // else reports on.
    let run = |fused: bool| -> FleetOutcome {
        let orange_oracle = AnalyticalOracle::new(&orange);
        let jetson_oracle = AnalyticalOracle::new(&jetson);
        FleetRuntime::new(
            &mixed_spec(&orange, &jetson, &orange_oracle, &jetson_oracle),
            fleet_config(fused),
        )
        .execute(&events, spec.horizon)
    };
    // One discarded warm-up heats process-wide state (model graphs,
    // allocator arenas, ...) so neither measured arm benefits from going
    // second; each arm then reports its best-of-N placement time (the
    // runs are deterministic, so every reptition's decisions are
    // identical and only the clock varies).
    let _ = run(true);
    let reps = if smoke() { 1 } else { 3 };
    let measure = |fused: bool| -> FleetOutcome {
        (0..reps)
            .map(|_| run(fused))
            .min_by_key(|o| o.placement_latency.total)
            .expect("at least one rep")
    };
    let serial = measure(false);
    let fused = measure(true);
    assert_eq!(
        fused.placements, serial.placements,
        "fused scoring must not change a single placement decision"
    );
    assert_eq!(fused.metrics, serial.metrics);
    let fused_us = fused.placement_latency.total.as_secs_f64() * 1e6;
    let serial_us = serial.placement_latency.total.as_secs_f64() * 1e6;
    let fused_faster = fused_us < serial_us;
    println!(
        "  placement scoring over {} decisions: fused {:.0}us vs serial {:.0}us ({})",
        fused.placement_latency.samples,
        fused_us,
        serial_us,
        if fused_faster {
            format!("fused {:.2}x faster", serial_us / fused_us)
        } else {
            "serial faster — fusion NOT paying off".into()
        },
    );

    let m = &fused.metrics;
    let orange_admitted: u64 =
        by_platform(&m.per_shard_platform, &m.per_shard_admitted, orange.name());
    let jetson_admitted: u64 =
        by_platform(&m.per_shard_platform, &m.per_shard_admitted, jetson.name());
    let orange_potential: f64 =
        by_platform(&m.per_shard_platform, &m.per_shard_potential, orange.name());
    let jetson_potential: f64 =
        by_platform(&m.per_shard_platform, &m.per_shard_potential, jetson.name());
    println!(
        "  admitted {}/{} ({} rejected, {} migrations): orange {} / jetson {}",
        m.admitted, m.offered, m.rejected, m.migrations, orange_admitted, jetson_admitted
    );
    println!(
        "  aggregate {:.1} pot·s; mean shard potential orange {:.3} / jetson {:.3}",
        m.aggregate_potential_seconds,
        orange_potential / 4.0,
        jetson_potential / 4.0,
    );

    // Trace record/replay determinism on the mixed fleet: the version-2
    // trace pins the platform mix and the replay must agree bit-for-bit.
    let recorder = FleetRuntime::new(
        &mixed_spec(&orange, &jetson, &orange_oracle, &jetson_oracle),
        fleet_config(true),
    );
    let trace = Trace::new(
        TraceMeta::new(recorder.shard_count(), spec.horizon, spec.seed, "hetero-bench")
            .with_platforms(recorder.platform_names().to_vec()),
        events.clone(),
    );
    let replayed = recorder
        .execute_trace(&Trace::from_jsonl(&trace.to_jsonl()).expect("trace parses"));
    let replay_identical = replayed.metrics == fused.metrics
        && replayed.placements == fused.placements
        && replayed.timelines == fused.timelines;
    println!(
        "  mixed-fleet trace replay: {}",
        if replay_identical { "bit-identical" } else { "DIVERGED" }
    );

    let report = obj([
        ("smoke", Json::Bool(smoke())),
        (
            "host_threads",
            Json::Num(std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) as f64),
        ),
        (
            "fleet",
            obj([
                ("orange_pi_5_shards", Json::Num(4.0)),
                ("jetson_orin_nx_shards", Json::Num(4.0)),
            ]),
        ),
        (
            "offered_load",
            obj([
                ("process", Json::Str("poisson".into())),
                ("rate_per_s", Json::Num(spec.process.mean_rate())),
                ("mean_lifetime_s", Json::Num(spec.mean_lifetime)),
                ("horizon_s", Json::Num(spec.horizon)),
                ("seed", Json::Num(spec.seed as f64)),
            ]),
        ),
        (
            "mixed_fleet",
            obj([
                ("offered", Json::Num(m.offered as f64)),
                ("admitted", Json::Num(m.admitted as f64)),
                ("rejected", Json::Num(m.rejected as f64)),
                ("migrations", Json::Num(m.migrations as f64)),
                ("aggregate_potential_seconds", Json::Num(m.aggregate_potential_seconds)),
                ("orange_admitted", Json::Num(orange_admitted as f64)),
                ("jetson_admitted", Json::Num(jetson_admitted as f64)),
                ("orange_mean_shard_potential", Json::Num(orange_potential / 4.0)),
                ("jetson_mean_shard_potential", Json::Num(jetson_potential / 4.0)),
            ]),
        ),
        (
            "fused_vs_serial_scoring_8_shards",
            obj([
                ("decisions", Json::Num(fused.placement_latency.samples as f64)),
                ("fused_total_us", Json::Num(fused_us)),
                ("serial_total_us", Json::Num(serial_us)),
                ("speedup", Json::Num(serial_us / fused_us)),
                ("fused_faster", Json::Bool(fused_faster)),
                ("decisions_identical", Json::Bool(true)),
            ]),
        ),
        ("trace_replay_bit_identical", Json::Bool(replay_identical)),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fleet.json");
    rankmap_bench::merge_bench_report(path, "fleet_hetero", report);
    println!("wrote the fleet_hetero section of {path}");
}
