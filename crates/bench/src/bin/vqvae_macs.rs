//! §IV-C: the VQ-VAE compression claim — encoding layers into
//! 16-dimensional embeddings reduces the estimator's MAC count (paper:
//! ~58%).

use rankmap_bench::print_table;
use rankmap_estimator::macs::{compression_saving, estimator_macs};
use rankmap_estimator::EstimatorConfig;

fn main() {
    let mut rows = Vec::new();
    for (name, cfg) in [("quick", EstimatorConfig::quick()), ("paper", EstimatorConfig::paper())]
    {
        let (raw, compressed, saving) = compression_saving(&cfg);
        rows.push(vec![
            name.to_string(),
            format!("{:.2}", raw / 1e6),
            format!("{:.2}", compressed / 1e6),
            format!("{:.1}%", saving * 100.0),
        ]);
    }
    let header = vec![
        "config".to_string(),
        "MACs raw 22-dim (M)".into(),
        "MACs VQ-VAE 16-dim (M)".into(),
        "reduction".into(),
    ];
    print_table("§IV-C — estimator MACs with and without VQ-VAE compression", &header, &rows);
    println!("\npaper claim: ~58% MAC reduction from the 16-dim distributed embedding.");
    let m = estimator_macs(&EstimatorConfig::paper(), 16);
    println!("paper-config estimator forward pass: {:.2} MMACs", m / 1e6);
}
