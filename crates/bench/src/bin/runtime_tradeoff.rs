//! §V-D: run-time trade-off — wall-clock decision latency of every
//! manager on one 4-DNN mix.

use rankmap_baselines::{BaselineGpu, Ga, GaConfig, Mosaic, Odmdef, OmniBoost};
use rankmap_bench::{print_table, EXPERIMENT_SEED};
use rankmap_core::manager::{ManagerConfig, RankMapManager};
use rankmap_core::oracle::AnalyticalOracle;
use rankmap_core::priority::PriorityMode;
use rankmap_core::runtime::WorkloadMapper;
use rankmap_models::ModelId;
use rankmap_platform::Platform;
use rankmap_sim::Workload;
use std::time::Instant;

fn main() {
    let platform = Platform::orange_pi_5();
    let pool = ModelId::paper_pool();
    let ids = [ModelId::AlexNet, ModelId::MobileNetV2, ModelId::ResNet50, ModelId::SqueezeNetV2];
    let workload = Workload::from_ids(ids);
    let oracle = AnalyticalOracle::new(&platform);

    let mut results: Vec<(String, f64, String)> = Vec::new();
    let mut time_it = |name: &str, mapper: &mut dyn WorkloadMapper, note: &str| {
        let t0 = Instant::now();
        let _ = mapper.remap(&workload);
        results.push((name.to_string(), t0.elapsed().as_secs_f64() * 1e3, note.to_string()));
    };

    time_it("Baseline", &mut BaselineGpu::new(&platform), "direct GPU placement");
    let t0 = Instant::now();
    let mut mosaic = Mosaic::new(&platform, &pool);
    let mosaic_train = t0.elapsed().as_secs_f64() * 1e3;
    time_it("MOSAIC", &mut mosaic, &format!("+{mosaic_train:.0} ms offline linreg fit"));
    let t0 = Instant::now();
    let mut odmdef = Odmdef::new(&platform, &pool, 300, EXPERIMENT_SEED);
    let odmdef_train = t0.elapsed().as_secs_f64() * 1e3;
    time_it("ODMDEF", &mut odmdef, &format!("+{odmdef_train:.0} ms offline corpus profiling"));
    let mut ga = Ga::new(&platform, GaConfig::default());
    time_it("GA", &mut ga, "on-board fitness evals every generation");
    let mut omni = OmniBoost::new(&platform, &oracle, 1_200, EXPERIMENT_SEED);
    time_it("OmniBoost", &mut omni, "MCTS + estimator, mean-T reward");
    let mgr = RankMapManager::new(
        &platform,
        &oracle,
        ManagerConfig { mcts_iterations: 1_200, ..Default::default() },
    );
    let t0 = Instant::now();
    let _ = mgr.map(&workload, &PriorityMode::Dynamic);
    results.push((
        "RankMapD".into(),
        t0.elapsed().as_secs_f64() * 1e3,
        "MCTS + estimator, priority reward + threshold".into(),
    ));

    let header = vec!["Manager".to_string(), "decision (ms)".into(), "notes".into()];
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(n, ms, note)| vec![n.clone(), format!("{ms:.1}"), note.clone()])
        .collect();
    print_table("§V-D — manager decision latency (one 4-DNN mix)", &header, &rows);
    println!(
        "\npaper shape: Baseline ≈ instant, MOSAIC/ODMDEF ≈ 1 s, GA slowest (board in the \
         loop), OmniBoost ≈ RankMap ≈ 30 s. Absolute numbers differ (laptop vs Orange Pi 5, \
         simulated board) — the *ordering* is the claim under test."
    );
    let ga_ms = results.iter().find(|r| r.0 == "GA").map(|r| r.1).unwrap_or(0.0);
    let rk_ms = results.iter().find(|r| r.0 == "RankMapD").map(|r| r.1).unwrap_or(0.0);
    let base_ms = results.iter().find(|r| r.0 == "Baseline").map(|r| r.1).unwrap_or(0.0);
    println!(
        "ordering check: Baseline ({base_ms:.1} ms) < RankMapD ({rk_ms:.1} ms) < GA ({ga_ms:.1} ms): {}",
        base_ms < rk_ms && rk_ms < ga_ms
    );
}
