//! Fig. 7: distribution of potential throughput `P` over all 72
//! (DNN, mix) samples per manager, and the starvation counts.

use rankmap_bench::{load_or_compute_matrix, print_table, results_dir, MANAGERS};
use rankmap_core::metrics;
use rankmap_platform::Platform;

fn main() {
    let platform = Platform::orange_pi_5();
    let rows = load_or_compute_matrix(&platform, &results_dir());
    let bins = [0.0, 0.25, 0.5, 0.75, 1.01];
    let header: Vec<String> = std::iter::once("Manager".to_string())
        .chain(vec![
            "P=0 (starved)".to_string(),
            "0-0.25".into(),
            "0.25-0.5".into(),
            "0.5-0.75".into(),
            ">=0.75".into(),
            "total".into(),
        ])
        .collect();
    let mut table = Vec::new();
    for mgr in MANAGERS {
        let ps: Vec<f64> = rows
            .iter()
            .filter(|r| r.manager == mgr)
            .map(|r| r.potential)
            .collect();
        let starved = metrics::starved_count(&ps);
        let mut counts = [0usize; 4];
        for &p in &ps {
            if metrics::is_starved(p) {
                continue;
            }
            for b in 0..4 {
                if p >= bins[b] && p < bins[b + 1] {
                    counts[b] += 1;
                    break;
                }
                if b == 3 && p >= bins[4] {
                    counts[3] += 1;
                }
            }
        }
        table.push(vec![
            mgr.to_string(),
            starved.to_string(),
            counts[0].to_string(),
            counts[1].to_string(),
            counts[2].to_string(),
            counts[3].to_string(),
            ps.len().to_string(),
        ]);
    }
    print_table("Fig. 7 — P histogram across all experiment samples", &header, &table);
    println!(
        "\npaper starvation counts out of 72: Baseline 19, MOSAIC 9, ODMDEF 13, GA 11, \
         OmniBoost 5, RankMapS 0, RankMapD 0"
    );
    let rk_starved: usize = rows
        .iter()
        .filter(|r| r.manager.starts_with("RankMap"))
        .filter(|r| metrics::is_starved(r.potential))
        .count();
    println!("RankMap starved DNNs in this run: {rk_starved} (must be 0)");
}
