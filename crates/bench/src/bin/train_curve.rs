//! §V setup: estimator training — dataset generation on the board,
//! VQ-VAE pre-training, estimator L2 curves with and without the
//! channel-shuffling augmentation (paper: 0.14 → 0.08).

use rankmap_core::dataset::{self, DatasetConfig};
use rankmap_core::train::Fidelity;
use rankmap_estimator::{
    EmbeddingTable, Estimator, QTensorSpec, Trainer, TrainerConfig, VqVae, VqVaeConfig,
};
use rankmap_models::ModelId;
use rankmap_platform::Platform;

fn main() {
    let fidelity = if std::env::args().any(|a| a == "--paper") {
        Fidelity::Paper
    } else {
        Fidelity::Quick
    };
    let platform = Platform::orange_pi_5();
    eprintln!("[train] generating {} labelled samples on the board simulator...", fidelity.dataset_samples());
    let cfg = DatasetConfig {
        samples: fidelity.dataset_samples(),
        ..Default::default()
    };
    let labelled = dataset::generate(&platform, &cfg);

    eprintln!("[train] training VQ-VAE on the 23-model pool...");
    let mut vqvae = VqVae::new(VqVaeConfig::default(), 11);
    let pool: Vec<_> = ModelId::paper_pool().iter().map(|id| id.build()).collect();
    let recon =
        rankmap_estimator::vqvae::train_on_pool(&mut vqvae, &pool, fidelity.vqvae_epochs());
    println!("VQ-VAE final reconstruction MSE: {recon:.4}");

    let spec = QTensorSpec::default();
    let mut table = EmbeddingTable::build(&mut vqvae, &pool);
    let samples = dataset::to_samples(&labelled, &mut vqvae, &mut table, &spec);
    let split = samples.len() * 9 / 10;
    let (train, val) = samples.split_at(split);

    for shuffle in [false, true] {
        let mut estimator = Estimator::new(fidelity.estimator_config(), 21);
        let tc = TrainerConfig {
            channel_shuffle: shuffle,
            ..fidelity.trainer_config()
        };
        let report = Trainer::new(tc).train(&mut estimator, train, val);
        println!(
            "\nchannel_shuffle={shuffle}: per-epoch validation L2 = {:?}",
            report
                .val_loss
                .iter()
                .map(|v| (v * 1000.0).round() / 1000.0)
                .collect::<Vec<_>>()
        );
        println!("final L2 = {:.4}", report.final_loss());
    }
    println!(
        "\npaper: L2 ≈ 0.14 after 50 epochs, ≈ 0.08 with random channel shuffling \
         (10 K samples, 90/10 split). Run with --paper for the full protocol."
    );
}
