//! Figs. 1 & 2 (motivation): 300 random mappings of the 4-DNN mix
//! {SqueezeNet-V2, Inception-V4, ResNet-50, VGG-16} vs the all-GPU
//! baseline on the simulated Orange Pi 5.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rankmap_bench::{print_table, results_dir};
use rankmap_core::metrics;
use rankmap_models::ModelId;
use rankmap_platform::{ComponentId, Platform};
use rankmap_sim::{EventEngine, Mapping, Workload, STARVATION_POTENTIAL};

fn main() {
    let platform = Platform::orange_pi_5();
    let engine = EventEngine::new(&platform);
    let ids = [ModelId::SqueezeNetV2, ModelId::InceptionV4, ModelId::ResNet50, ModelId::Vgg16];
    let workload = Workload::from_ids(ids);
    let ideals: Vec<f64> =
        ids.iter().map(|&id| engine.ideal_rate(id, ComponentId::new(0))).collect();

    let baseline = engine.evaluate(&workload, &Mapping::uniform(&workload, ComponentId::new(0)));
    let base_t = baseline.average().max(1e-6);
    println!("baseline (all-GPU) average throughput: {:.3} inf/s", baseline.average());

    let mut rng = StdRng::seed_from_u64(rankmap_bench::EXPERIMENT_SEED);
    let mut norm_t = Vec::new();
    let mut starved_flags = Vec::new();
    let mut per_dnn_p: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for _ in 0..300 {
        let m = Mapping::random(&workload, 3, &mut rng);
        let r = engine.evaluate(&workload, &m);
        let pots = r.potentials(&ideals);
        norm_t.push(r.average() / base_t);
        starved_flags.push(pots.iter().any(|&p| p < STARVATION_POTENTIAL));
        for (d, &p) in pots.iter().enumerate() {
            per_dnn_p[d].push(p);
        }
    }

    // Fig. 1: histogram of normalized T split by starvation.
    let hi = norm_t.iter().copied().fold(1.0f64, f64::max).max(4.0);
    let bins = 16;
    let mut hist_ok = vec![0usize; bins];
    let mut hist_starved = vec![0usize; bins];
    for (&t, &s) in norm_t.iter().zip(&starved_flags) {
        let idx = (((t / hi) * bins as f64).floor() as usize).min(bins - 1);
        if s {
            hist_starved[idx] += 1;
        } else {
            hist_ok[idx] += 1;
        }
    }
    let header = vec!["T bin".to_string(), "no starvation".into(), ">=1 starved".into()];
    let rows: Vec<Vec<String>> = (0..bins)
        .map(|i| {
            vec![
                format!("{:.2}-{:.2}", hi * i as f64 / bins as f64, hi * (i + 1) as f64 / bins as f64),
                hist_ok[i].to_string(),
                hist_starved[i].to_string(),
            ]
        })
        .collect();
    print_table("Fig. 1 — normalized average throughput T of 300 random mappings", &header, &rows);

    let better = norm_t.iter().filter(|&&t| t > 1.0).count();
    let starved_frac =
        starved_flags.iter().filter(|&&s| s).count() as f64 / starved_flags.len() as f64;
    println!(
        "\nKey observations: {}% of random mappings beat the baseline (paper: 91%),",
        better * 100 / norm_t.len()
    );
    println!(
        "{:.1}% of mappings starve at least one DNN (paper: 30.2%).",
        100.0 * starved_frac
    );

    // Fig. 2: quartiles of potential throughput P per DNN.
    let header = vec![
        "DNN".to_string(),
        "min".into(),
        "q1".into(),
        "median".into(),
        "q3".into(),
        "max".into(),
        "mean".into(),
    ];
    let rows: Vec<Vec<String>> = ids
        .iter()
        .enumerate()
        .map(|(d, id)| {
            let (min, q1, med, q3, max) = metrics::quartiles(&per_dnn_p[d]);
            vec![
                id.name().to_string(),
                format!("{min:.3}"),
                format!("{q1:.3}"),
                format!("{med:.3}"),
                format!("{q3:.3}"),
                format!("{max:.3}"),
                format!("{:.3}", metrics::mean(&per_dnn_p[d])),
            ]
        })
        .collect();
    print_table("Fig. 2 — potential throughput P distribution per DNN", &header, &rows);

    let low_p = per_dnn_p
        .iter()
        .flatten()
        .filter(|&&p| p <= 0.2)
        .count() as f64
        / (4.0 * 300.0);
    println!("\n{:.0}% of per-DNN samples at P <= 0.2 (paper: >60%).", low_p * 100.0);

    // CSV dump.
    let dir = results_dir();
    let _ = std::fs::create_dir_all(&dir);
    let mut csv = String::from("norm_t,starved\n");
    for (t, s) in norm_t.iter().zip(&starved_flags) {
        csv.push_str(&format!("{t:.4},{}\n", *s as u8));
    }
    let _ = std::fs::write(dir.join("fig01_motivation.csv"), csv);
    println!("\nwrote {}", dir.join("fig01_motivation.csv").display());
}
