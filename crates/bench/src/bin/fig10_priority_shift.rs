//! Fig. 10: RankMap-S adapting to user priority changes. Four DNNs run
//! concurrently while the 0.7 rank rotates between them every 150 s.

use rankmap_bench::print_table;
use rankmap_core::manager::{ManagerConfig, RankMapManager};
use rankmap_core::oracle::AnalyticalOracle;
use rankmap_core::priority::PriorityMode;
use rankmap_models::ModelId;
use rankmap_platform::Platform;
use rankmap_sim::{EventEngine, Workload, STARVATION_POTENTIAL};

fn main() {
    let platform = Platform::orange_pi_5();
    let oracle = AnalyticalOracle::new(&platform);
    let manager = RankMapManager::new(
        &platform,
        &oracle,
        ManagerConfig { mcts_iterations: 1_200, ..Default::default() },
    );
    let ids = [ModelId::MobileNetV2, ModelId::ShuffleNet, ModelId::AlexNet, ModelId::SqueezeNet];
    let names = ["MobileNet-V2", "ShuffleNet", "AlexNet", "SqueezeNet"];
    let workload = Workload::from_ids(ids);
    let engine = EventEngine::new(&platform);
    let ideals: Vec<f64> = ids
        .iter()
        .map(|&id| engine.ideal_rate(id, rankmap_platform::ComponentId::new(0)))
        .collect();

    let header: Vec<String> = std::iter::once("stage (critical DNN)".to_string())
        .chain(names.iter().map(|n| format!("P {n}")))
        .chain(std::iter::once("r(P, p)".to_string()))
        .collect();
    let mut rows = Vec::new();
    for critical in 0..4 {
        let mode = PriorityMode::critical(4, critical);
        let p = mode.vector(&workload);
        let plan = manager.map(&workload, &mode);
        let report = engine.evaluate(&workload, &plan.mapping);
        let pots = report.potentials(&ideals);
        let r = rankmap_core::metrics::pearson(&pots, &p);
        let mut cells =
            vec![format!("t={}s: {} @0.7", critical * 150, names[critical])];
        for (i, &pot) in pots.iter().enumerate() {
            let marker = if i == critical { "*" } else { "" };
            let starved = if pot < STARVATION_POTENTIAL { " STARVED" } else { "" };
            cells.push(format!("{pot:.3}{marker}{starved}"));
        }
        cells.push(format!("{r:.2}"));
        rows.push(cells);

        // The critical DNN should never be starved and should rank high.
        assert!(
            pots[critical] >= STARVATION_POTENTIAL,
            "critical DNN starved in stage {critical}"
        );
    }
    print_table(
        "Fig. 10 — RankMapS under rotating user priorities (* = critical)",
        &header,
        &rows,
    );
    println!(
        "\npaper: the prioritized DNN's P rises in each stage while no DNN starves; \
         re-mapping takes ~30 s of search on the board (see runtime_tradeoff)."
    );
}
