//! Table I: qualitative comparison between the state of the art and
//! RankMap — rendered from the capabilities each implementation in this
//! repository actually has.

use rankmap_bench::print_table;

fn main() {
    let header: Vec<String> = ["Feature", "MOSAIC", "ODMDEF", "GA", "OmniBoost", "RankMap"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let yes = "yes";
    let no = "-";
    let rows: Vec<Vec<String>> = vec![
        vec!["Single-DNN".into(), yes.into(), yes.into(), yes.into(), yes.into(), yes.into()],
        vec!["Multi-DNN".into(), no.into(), no.into(), yes.into(), yes.into(), yes.into()],
        vec!["DNN partitioning".into(), yes.into(), yes.into(), yes.into(), yes.into(), yes.into()],
        vec!["High throughput".into(), yes.into(), yes.into(), yes.into(), yes.into(), yes.into()],
        vec!["Priority-aware".into(), no.into(), no.into(), no.into(), no.into(), yes.into()],
        vec!["Fast training".into(), no.into(), no.into(), no.into(), yes.into(), yes.into()],
        vec!["No starvation".into(), no.into(), no.into(), no.into(), no.into(), yes.into()],
    ];
    print_table("Table I — qualitative comparison (paper's matrix)", &header, &rows);
    println!(
        "\nEach row maps to code: priorities = rankmap_core::priority, starvation guard = \
         rankmap_core::reward (disqualification), fast training = rankmap_estimator \
         (single shared backbone, no per-workload retraining like the GA)."
    );
}
