//! Fig. 5: normalized average throughput `T` for 6 random mixes of 3, 4,
//! and 5 concurrent DNNs across all seven managers.

use rankmap_bench::{load_or_compute_matrix, normalized_t, print_table, results_dir, MANAGERS};
use rankmap_platform::Platform;

fn main() {
    let platform = Platform::orange_pi_5();
    let rows = load_or_compute_matrix(&platform, &results_dir());
    for size in [3usize, 4, 5] {
        let header: Vec<String> = std::iter::once("Manager".to_string())
            .chain((0..6).map(|m| format!("Mix-{}", m + 1)))
            .chain(std::iter::once("Average".to_string()))
            .collect();
        let table: Vec<Vec<String>> = MANAGERS
            .iter()
            .map(|mgr| {
                let ts: Vec<f64> =
                    (0..6).map(|mix| normalized_t(&rows, size, mix, mgr)).collect();
                let avg = ts.iter().sum::<f64>() / ts.len() as f64;
                std::iter::once(mgr.to_string())
                    .chain(ts.iter().map(|t| format!("{t:.2}")))
                    .chain(std::iter::once(format!("{avg:.2}")))
                    .collect()
            })
            .collect();
        print_table(
            &format!("Fig. 5 — normalized throughput T, {size} concurrent DNNs"),
            &header,
            &table,
        );
    }
    // Headline ratio at 4 DNNs: RankMapD vs Baseline (paper: x3.6).
    let avg = |mgr: &str, size: usize| -> f64 {
        (0..6).map(|m| normalized_t(&rows, size, m, mgr)).sum::<f64>() / 6.0
    };
    println!(
        "\nheadline: RankMapD vs Baseline at 4 DNNs = x{:.2} (paper: x3.6); \
         RankMapS trails RankMapD by {:.0}% (paper: ~14%)",
        avg("RankMapD", 4),
        100.0 * (1.0 - avg("RankMapS", 4) / avg("RankMapD", 4).max(1e-9)),
    );
}
