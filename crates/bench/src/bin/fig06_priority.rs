//! Fig. 6: potential throughput `P` of the high-priority (critical) DNN
//! across mixes of 3, 4, and 5 concurrent DNNs, per manager.

use rankmap_bench::{load_or_compute_matrix, print_table, results_dir, MANAGERS};
use rankmap_core::metrics;
use rankmap_platform::Platform;

fn main() {
    let platform = Platform::orange_pi_5();
    let rows = load_or_compute_matrix(&platform, &results_dir());
    let header: Vec<String> = std::iter::once("Manager".to_string())
        .chain([3usize, 4, 5].iter().map(|s| format!("{s} DNNs (avg P)")))
        .chain(std::iter::once("floor".to_string()))
        .chain(std::iter::once("peak".to_string()))
        .collect();
    let mut table = Vec::new();
    for mgr in MANAGERS {
        let mut cells = vec![mgr.to_string()];
        let mut all: Vec<f64> = Vec::new();
        for size in [3usize, 4, 5] {
            let ps: Vec<f64> = rows
                .iter()
                .filter(|r| r.size == size && r.manager == mgr && r.critical)
                .map(|r| r.potential)
                .collect();
            all.extend(&ps);
            cells.push(format!("{:.3}", metrics::mean(&ps)));
        }
        let floor = all.iter().copied().fold(f64::INFINITY, f64::min);
        let peak = all.iter().copied().fold(0.0f64, f64::max);
        cells.push(format!("{floor:.3}"));
        cells.push(format!("{peak:.3}"));
        table.push(cells);
    }
    print_table("Fig. 6 — potential P of the high-priority DNN", &header, &table);

    // Headline: RankMapS vs Baseline at 4 DNNs (paper: x57.5).
    let mean_p = |mgr: &str, size: usize| -> f64 {
        metrics::mean(
            &rows
                .iter()
                .filter(|r| r.size == size && r.manager == mgr && r.critical)
                .map(|r| r.potential)
                .collect::<Vec<_>>(),
        )
    };
    let base = mean_p("Baseline", 4).max(1e-4);
    println!(
        "\nheadline: RankMapS lifts the critical DNN's P by x{:.1} over Baseline at 4 DNNs \
         (paper: x57.5) and x{:.1} over OmniBoost (paper: x2.2)",
        mean_p("RankMapS", 4) / base,
        mean_p("RankMapS", 4) / mean_p("OmniBoost", 4).max(1e-4),
    );
}
