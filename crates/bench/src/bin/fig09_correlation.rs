//! Fig. 9: Pearson correlation between potential throughput `P` and the
//! dynamic priority vector `p` for every mix, under RankMap-D.

use rankmap_bench::{load_or_compute_matrix, print_table, results_dir};
use rankmap_core::metrics;
use rankmap_platform::Platform;

fn main() {
    let platform = Platform::orange_pi_5();
    let rows = load_or_compute_matrix(&platform, &results_dir());
    let header: Vec<String> = std::iter::once("#DNNs".to_string())
        .chain((0..6).map(|m| format!("Mix-{}", m + 1)))
        .chain(std::iter::once("Avg".to_string()))
        .collect();
    let mut table = Vec::new();
    for size in [3usize, 4, 5] {
        let mut cells = vec![size.to_string()];
        let mut rs = Vec::new();
        for mix in 0..6 {
            let sel: Vec<(f64, f64)> = rows
                .iter()
                .filter(|r| r.size == size && r.mix == mix && r.manager == "RankMapD")
                .map(|r| (r.potential, r.priority))
                .collect();
            let p: Vec<f64> = sel.iter().map(|x| x.0).collect();
            let pr: Vec<f64> = sel.iter().map(|x| x.1).collect();
            let r = metrics::pearson(&p, &pr);
            rs.push(r);
            cells.push(format!("{r:.2}"));
        }
        cells.push(format!("{:.2}", metrics::mean(&rs)));
        table.push(cells);
    }
    print_table(
        "Fig. 9 — Pearson r between P and priorities p (RankMapD)",
        &header,
        &table,
    );
    println!(
        "\npaper averages: 0.85 (3 DNNs), 0.72 (4 DNNs), 0.44 (5 DNNs) — correlation \
         decays as the platform saturates but stays positive."
    );
}
