//! Fig. 8: the 4-DNN dynamic workload — Inception-ResNet-V1, then AlexNet
//! (t=150), SqueezeNet (t=300), ResNet-50 (t=450) — comparing RankMap-D
//! against OmniBoost on starvation behaviour.

use rankmap_baselines::OmniBoost;
use rankmap_bench::{print_table, results_dir};
use rankmap_core::manager::{ManagerConfig, RankMapManager};
use rankmap_core::oracle::AnalyticalOracle;
use rankmap_core::priority::PriorityMode;
use rankmap_core::runtime::{DynamicEvent, DynamicRuntime, RankMapMapper, WorkloadMapper};
use rankmap_models::ModelId;
use rankmap_platform::Platform;
use rankmap_sim::STARVATION_POTENTIAL;

fn events() -> Vec<DynamicEvent> {
    vec![
        DynamicEvent::Arrive { at: 0.0, model: ModelId::InceptionResnetV1 },
        DynamicEvent::Arrive { at: 150.0, model: ModelId::AlexNet },
        DynamicEvent::Arrive { at: 300.0, model: ModelId::SqueezeNet },
        DynamicEvent::Arrive { at: 450.0, model: ModelId::ResNet50 },
    ]
}

fn run(mapper: &mut dyn WorkloadMapper, platform: &Platform) -> Vec<(f64, Vec<f64>, f64)> {
    let rt = DynamicRuntime::new(platform, 75.0);
    rt.run(&events(), mapper, 600.0)
        .into_iter()
        .map(|p| {
            let avg_t =
                p.throughputs.iter().sum::<f64>() / p.throughputs.len().max(1) as f64;
            (p.time, p.potentials, avg_t)
        })
        .collect()
}

fn main() {
    let platform = Platform::orange_pi_5();
    let oracle = AnalyticalOracle::new(&platform);
    let mgr = RankMapManager::new(
        &platform,
        &oracle,
        ManagerConfig { mcts_iterations: 1_000, ..Default::default() },
    );
    let mut rankmap = RankMapMapper::new(mgr, PriorityMode::Dynamic, "RankMapD");
    let mut omni = OmniBoost::new(&platform, &oracle, 1_000, 7);

    let names = ["Inception-RN-V1", "AlexNet", "SqueezeNet", "ResNet-50"];
    for (label, timeline) in [
        ("RankMapD", run(&mut rankmap, &platform)),
        ("OmniBoost", run(&mut omni, &platform)),
    ] {
        let header: Vec<String> = std::iter::once("time (s)".to_string())
            .chain(names.iter().map(|n| format!("P {n}")))
            .chain(std::iter::once("avg T (inf/s)".to_string()))
            .collect();
        let rows: Vec<Vec<String>> = timeline
            .iter()
            .map(|(t, pots, avg)| {
                let mut cells = vec![format!("{t:.0}")];
                for i in 0..4 {
                    cells.push(match pots.get(i) {
                        Some(&p) if p < STARVATION_POTENTIAL => format!("{p:.3} (STARVED)"),
                        Some(&p) => format!("{p:.3}"),
                        None => "-".to_string(),
                    });
                }
                cells.push(format!("{avg:.2}"));
                cells
            })
            .collect();
        print_table(&format!("Fig. 8 — dynamic workload under {label}"), &header, &rows);
        let starved_points: usize = timeline
            .iter()
            .flat_map(|(_, pots, _)| pots.iter())
            .filter(|&&p| p < STARVATION_POTENTIAL)
            .count();
        println!("{label}: {starved_points} starved samples across the timeline");
    }
    println!(
        "\npaper: OmniBoost ends with Inception and ResNet-50 starved (higher average T), \
         RankMapD starves nobody (T = 14 vs 18 on the board)."
    );
    let _ = std::fs::create_dir_all(results_dir());
}
