//! Shared harness for the experiment binaries: mix generation, the
//! manager roster, the evaluation matrix behind Figs. 5/6/7/9, and small
//! CSV/table helpers.
//!
//! Every figure and table of the paper's evaluation section has a binary
//! in `src/bin/` (see DESIGN.md's experiment index). The expensive
//! manager-comparison matrix is computed once and cached under
//! `results/matrix_cache.csv` so the per-figure binaries stay fast.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rankmap_baselines::{BaselineGpu, Ga, GaConfig, Mosaic, Odmdef, OmniBoost};
use rankmap_core::manager::{ManagerConfig, RankMapManager};
use rankmap_core::oracle::AnalyticalOracle;
use rankmap_core::priority::PriorityMode;
use rankmap_core::runtime::WorkloadMapper;
use rankmap_models::ModelId;
use rankmap_platform::{ComponentId, ComponentKind, Platform};
use rankmap_sim::{EventEngine, Mapping, Workload};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::Path;

/// Seed shared by all experiment binaries (reproducible figures).
pub const EXPERIMENT_SEED: u64 = 2025;

/// Manager names in the paper's column order.
pub const MANAGERS: [&str; 7] =
    ["Baseline", "MOSAIC", "ODMDEF", "GA", "OmniBoost", "RankMapS", "RankMapD"];

/// The 6 random mixes of a given size used across Figs. 5–9.
pub fn mixes(size: usize, seed: u64) -> Vec<Vec<ModelId>> {
    let mut rng = StdRng::seed_from_u64(seed ^ (size as u64) << 8);
    let pool = ModelId::paper_pool();
    (0..6)
        .map(|_| {
            let mut p = pool.clone();
            p.shuffle(&mut rng);
            p.truncate(size);
            p
        })
        .collect()
}

/// Index of the designated high-priority (critical) DNN in a mix: the most
/// computationally demanding one, matching the paper's focus on supporting
/// the critical DNN.
pub fn critical_index(ids: &[ModelId]) -> usize {
    ids.iter()
        .enumerate()
        .max_by(|a, b| {
            a.1.build()
                .total_flops()
                .total_cmp(&b.1.build().total_flops())
        })
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// One row of the evaluation matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixRow {
    /// Mix size (3, 4, or 5 concurrent DNNs).
    pub size: usize,
    /// Mix index (0..6).
    pub mix: usize,
    /// Manager name.
    pub manager: String,
    /// DNN index within the mix.
    pub dnn: usize,
    /// Model name.
    pub model: String,
    /// Whether this DNN is the designated critical one.
    pub critical: bool,
    /// Priority assigned to this DNN (RankMapD's dynamic vector; for
    /// ranking-insensitive managers this is informational).
    pub priority: f64,
    /// Isolated-on-GPU ideal rate.
    pub ideal: f64,
    /// Measured throughput under the manager's mapping (inf/s).
    pub throughput: f64,
    /// Potential throughput `P`.
    pub potential: f64,
}

/// Measures isolated-on-GPU ideal rates with the full-window engine.
pub fn ideal_rates(platform: &Platform, ids: &[ModelId]) -> HashMap<ModelId, f64> {
    let engine = EventEngine::new(platform);
    let gpu = platform.id_of_kind(ComponentKind::Gpu).unwrap_or(ComponentId::new(0));
    let mut out = HashMap::new();
    for &id in ids {
        out.entry(id).or_insert_with(|| engine.ideal_rate(id, gpu));
    }
    out
}

/// Evaluates one manager on one mix, returning its rows.
#[allow(clippy::too_many_arguments)]
fn evaluate_mapper(
    platform: &Platform,
    engine: &EventEngine<'_>,
    ideals: &HashMap<ModelId, f64>,
    ids: &[ModelId],
    size: usize,
    mix: usize,
    mapper: &mut dyn WorkloadMapper,
    priorities: &[f64],
) -> Vec<MatrixRow> {
    let workload = Workload::from_ids(ids.iter().copied());
    let mapping = mapper.remap(&workload);
    rows_for_mapping(platform, engine, ideals, ids, size, mix, &mapper.name(), &mapping, priorities)
}

/// Builds matrix rows for an explicit mapping.
#[allow(clippy::too_many_arguments)]
pub fn rows_for_mapping(
    _platform: &Platform,
    engine: &EventEngine<'_>,
    ideals: &HashMap<ModelId, f64>,
    ids: &[ModelId],
    size: usize,
    mix: usize,
    manager: &str,
    mapping: &Mapping,
    priorities: &[f64],
) -> Vec<MatrixRow> {
    let workload = Workload::from_ids(ids.iter().copied());
    let report = engine.evaluate(&workload, mapping);
    let crit = critical_index(ids);
    ids.iter()
        .enumerate()
        .map(|(d, id)| {
            let ideal = ideals[id];
            let t = report.per_dnn[d];
            MatrixRow {
                size,
                mix,
                manager: manager.to_string(),
                dnn: d,
                model: id.name().to_string(),
                critical: d == crit,
                priority: priorities[d],
                ideal,
                throughput: t,
                potential: if ideal > 0.0 { t / ideal } else { 0.0 },
            }
        })
        .collect()
}

/// Computes the full Figs. 5–9 evaluation matrix: 3 sizes × 6 mixes × 7
/// managers, measured on the event-driven board simulator.
pub fn compute_matrix(platform: &Platform) -> Vec<MatrixRow> {
    let pool = ModelId::paper_pool();
    let ideals = ideal_rates(platform, &pool);
    let engine = EventEngine::new(platform);
    let oracle = AnalyticalOracle::new(platform);
    let mut mosaic = Mosaic::new(platform, &pool);
    let mut odmdef = Odmdef::new(platform, &pool, 300, EXPERIMENT_SEED);
    let mut rows = Vec::new();
    for size in [3usize, 4, 5] {
        for (mix_idx, ids) in mixes(size, EXPERIMENT_SEED).into_iter().enumerate() {
            let workload = Workload::from_ids(ids.iter().copied());
            let crit = critical_index(&ids);
            let dyn_p = PriorityMode::Dynamic.vector(&workload);
            let static_p = PriorityMode::critical(ids.len(), crit).vector(&workload);
            let mut run = |mapper: &mut dyn WorkloadMapper, p: &[f64]| {
                rows.extend(evaluate_mapper(
                    platform, &engine, &ideals, &ids, size, mix_idx, mapper, p,
                ));
            };
            run(&mut BaselineGpu::new(platform), &dyn_p);
            run(&mut mosaic, &dyn_p);
            run(&mut odmdef, &dyn_p);
            let mut ga = Ga::new(
                platform,
                GaConfig { seed: EXPERIMENT_SEED ^ mix_idx as u64, ..Default::default() },
            );
            run(&mut ga, &dyn_p);
            let mut omni = OmniBoost::new(platform, &oracle, 1_200, EXPERIMENT_SEED);
            run(&mut omni, &dyn_p);
            // RankMap-S: static priorities with the critical DNN at 0.7.
            let mgr_s = RankMapManager::new(
                platform,
                &oracle,
                ManagerConfig { mcts_iterations: 1_200, seed: EXPERIMENT_SEED, ..Default::default() },
            );
            let plan_s = mgr_s.map(&workload, &PriorityMode::critical(ids.len(), crit));
            rows.extend(rows_for_mapping(
                platform, &engine, &ideals, &ids, size, mix_idx, "RankMapS", &plan_s.mapping,
                &static_p,
            ));
            // RankMap-D: dynamic (demand-derived) priorities.
            let mgr_d = RankMapManager::new(
                platform,
                &oracle,
                ManagerConfig { mcts_iterations: 1_200, seed: EXPERIMENT_SEED ^ 1, ..Default::default() },
            );
            let plan_d = mgr_d.map(&workload, &PriorityMode::Dynamic);
            rows.extend(rows_for_mapping(
                platform, &engine, &ideals, &ids, size, mix_idx, "RankMapD", &plan_d.mapping,
                &dyn_p,
            ));
        }
    }
    rows
}

/// CSV header of the matrix cache.
const MATRIX_HEADER: &str =
    "size,mix,manager,dnn,model,critical,priority,ideal,throughput,potential";

/// Serializes matrix rows to CSV.
pub fn matrix_to_csv(rows: &[MatrixRow]) -> String {
    let mut s = String::from(MATRIX_HEADER);
    s.push('\n');
    for r in rows {
        let _ = writeln!(
            s,
            "{},{},{},{},{},{},{:.6},{:.4},{:.4},{:.6}",
            r.size,
            r.mix,
            r.manager,
            r.dnn,
            r.model,
            r.critical as u8,
            r.priority,
            r.ideal,
            r.throughput,
            r.potential
        );
    }
    s
}

/// Parses the matrix cache CSV.
pub fn matrix_from_csv(text: &str) -> Option<Vec<MatrixRow>> {
    let mut lines = text.lines();
    if lines.next()? != MATRIX_HEADER {
        return None;
    }
    let mut rows = Vec::new();
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        let f: Vec<&str> = line.split(',').collect();
        if f.len() != 10 {
            return None;
        }
        rows.push(MatrixRow {
            size: f[0].parse().ok()?,
            mix: f[1].parse().ok()?,
            manager: f[2].to_string(),
            dnn: f[3].parse().ok()?,
            model: f[4].to_string(),
            critical: f[5] == "1",
            priority: f[6].parse().ok()?,
            ideal: f[7].parse().ok()?,
            throughput: f[8].parse().ok()?,
            potential: f[9].parse().ok()?,
        });
    }
    Some(rows)
}

/// Loads the cached matrix or computes and caches it.
pub fn load_or_compute_matrix(platform: &Platform, results_dir: &Path) -> Vec<MatrixRow> {
    let cache = results_dir.join("matrix_cache.csv");
    if let Ok(text) = std::fs::read_to_string(&cache) {
        if let Some(rows) = matrix_from_csv(&text) {
            eprintln!("[matrix] loaded {} rows from {}", rows.len(), cache.display());
            return rows;
        }
    }
    eprintln!("[matrix] computing evaluation matrix (3 sizes x 6 mixes x 7 managers)...");
    let rows = compute_matrix(platform);
    let _ = std::fs::create_dir_all(results_dir);
    let _ = std::fs::write(&cache, matrix_to_csv(&rows));
    rows
}

/// Normalized average throughput `T` of a manager on one mix (baseline-
/// relative, the paper's Fig. 5 metric).
pub fn normalized_t(rows: &[MatrixRow], size: usize, mix: usize, manager: &str) -> f64 {
    let avg = |m: &str| -> f64 {
        let v: Vec<f64> = rows
            .iter()
            .filter(|r| r.size == size && r.mix == mix && r.manager == m)
            .map(|r| r.throughput)
            .collect();
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    let base = avg("Baseline");
    if base <= 0.0 {
        // The baseline can measure 0 completions on a saturated window;
        // fall back to a tiny epsilon so ratios stay meaningful.
        return avg(manager) / 0.02;
    }
    avg(manager) / base
}

/// The default results directory (`results/` at the workspace root).
pub fn results_dir() -> std::path::PathBuf {
    let here = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    here.parent()
        .and_then(Path::parent)
        .map(|p| p.join("results"))
        .unwrap_or_else(|| std::path::PathBuf::from("results"))
}

/// Prints an ASCII table: header row + rows of cells.
pub fn print_table(title: &str, header: &[String], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, c) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(c.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            let _ = write!(line, "{:>width$}  ", c, width = widths[i]);
        }
        line
    };
    println!("{}", fmt_row(header));
    println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Merges one bench's report into a multi-section JSON file.
///
/// The `BENCH_*.json` files at the workspace root are shared by several
/// benches (e.g. `fleet_scale` and `fleet_hetero` both report into
/// `BENCH_fleet.json`): each bench owns one top-level key and must not
/// clobber its siblings on a re-run. This helper reads the existing file
/// (ignoring it when absent or unparsable), replaces `key` with
/// `section`, writes the result back, and returns the serialized text.
///
/// # Panics
///
/// Panics if the file cannot be written.
pub fn merge_bench_report(
    path: impl AsRef<Path>,
    key: &str,
    section: rankmap_core::json::Json,
) -> String {
    use rankmap_core::json::Json;
    let path = path.as_ref();
    let mut sections = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| rankmap_core::json::parse(&text).ok())
        .and_then(|root| root.as_obj().cloned())
        // Pre-sectioned files carried the single bench's fields at top
        // level (marked by a "bench" name key); keeping them would leave
        // stale data next to the new sections, so the legacy shape is
        // dropped wholesale and the file starts over sectioned.
        .filter(|root| !root.contains_key("bench"))
        .unwrap_or_default();
    sections.insert(key.to_string(), section);
    let text = format!("{}\n", Json::Obj(sections));
    std::fs::write(path, &text).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixes_are_reproducible_and_distinct_models() {
        let a = mixes(4, 1);
        let b = mixes(4, 1);
        assert_eq!(a, b);
        for mix in &a {
            assert_eq!(mix.len(), 4);
            let mut sorted = mix.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), 4, "mix models must be distinct");
        }
    }

    #[test]
    fn critical_is_heaviest() {
        let ids = vec![ModelId::SqueezeNetV2, ModelId::Vgg16, ModelId::MobileNet];
        assert_eq!(critical_index(&ids), 1);
    }

    #[test]
    fn matrix_csv_roundtrip() {
        let rows = vec![MatrixRow {
            size: 3,
            mix: 1,
            manager: "GA".into(),
            dnn: 0,
            model: "AlexNet".into(),
            critical: true,
            priority: 0.5,
            ideal: 40.0,
            throughput: 12.5,
            potential: 0.3125,
        }];
        let csv = matrix_to_csv(&rows);
        let parsed = matrix_from_csv(&csv).expect("roundtrip");
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].manager, "GA");
        assert!(parsed[0].critical);
        assert!((parsed[0].potential - 0.3125).abs() < 1e-9);
    }

    #[test]
    fn bad_csv_rejected() {
        assert!(matrix_from_csv("nonsense").is_none());
    }
}
