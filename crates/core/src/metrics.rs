//! Evaluation metrics: normalized throughput `T`, potential `P`, Pearson
//! correlation, histograms, starvation counting.

use rankmap_sim::STARVATION_POTENTIAL;

/// Pearson correlation coefficient `r ∈ [−1, 1]` between two series
/// (Fig. 9 correlates potential throughput with priorities).
///
/// Returns 0 when either series is constant (undefined correlation).
///
/// # Panics
///
/// Panics if lengths differ or are zero.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "pearson length mismatch");
    assert!(!a.is_empty(), "pearson of empty series");
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va <= 1e-15 || vb <= 1e-15 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

/// Fixed-width histogram over `[lo, hi)` with `bins` buckets; values
/// outside the range clamp to the edge buckets (Figs. 1 and 7).
pub fn histogram(values: &[f64], lo: f64, hi: f64, bins: usize) -> Vec<usize> {
    assert!(bins > 0 && hi > lo, "invalid histogram spec");
    let mut out = vec![0usize; bins];
    let width = (hi - lo) / bins as f64;
    for &v in values {
        let idx = (((v - lo) / width).floor() as isize).clamp(0, bins as isize - 1) as usize;
        out[idx] += 1;
    }
    out
}

/// Whether a potential-throughput value counts as starved (the paper's
/// `P = 0` histogram bin).
pub fn is_starved(potential: f64) -> bool {
    potential < STARVATION_POTENTIAL
}

/// Number of starved DNNs in a potential vector.
pub fn starved_count(potentials: &[f64]) -> usize {
    potentials.iter().filter(|&&p| is_starved(p)).count()
}

/// Mean of a series (0 for empty input).
pub fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Population standard deviation.
pub fn std_dev(v: &[f64]) -> f64 {
    if v.len() < 2 {
        return 0.0;
    }
    let m = mean(v);
    (v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64).sqrt()
}

/// Quartiles `(min, q1, median, q3, max)` of a series (Fig. 2's box plot).
///
/// # Panics
///
/// Panics on empty input.
pub fn quartiles(v: &[f64]) -> (f64, f64, f64, f64, f64) {
    assert!(!v.is_empty(), "quartiles of empty series");
    let mut s = v.to_vec();
    s.sort_by(f64::total_cmp);
    let q = |f: f64| -> f64 {
        let pos = f * (s.len() - 1) as f64;
        let i = pos.floor() as usize;
        let frac = pos - i as f64;
        if i + 1 < s.len() {
            s[i] * (1.0 - frac) + s[i + 1] * frac
        } else {
            s[i]
        }
    };
    (s[0], q(0.25), q(0.5), q(0.75), s[s.len() - 1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_positive() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_perfect_negative() {
        let a = [1.0, 2.0, 3.0];
        let b = [3.0, 2.0, 1.0];
        assert!((pearson(&a, &b) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_series_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn pearson_uncorrelated_small() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [1.0, -1.0, 1.0, -1.0];
        assert!(pearson(&a, &b).abs() < 0.5);
    }

    #[test]
    fn histogram_counts_all_values() {
        let h = histogram(&[0.1, 0.5, 0.9, 1.5, -0.2], 0.0, 1.0, 4);
        assert_eq!(h.iter().sum::<usize>(), 5);
        assert_eq!(h[0], 2); // 0.1 and clamped -0.2
        assert_eq!(h[3], 2); // 0.9 and clamped 1.5
    }

    #[test]
    fn starvation_threshold_matches_sim() {
        assert!(is_starved(0.0));
        assert!(is_starved(0.019));
        assert!(!is_starved(0.05));
        assert_eq!(starved_count(&[0.0, 0.5, 0.01, 0.3]), 2);
    }

    #[test]
    fn quartiles_of_uniform_grid() {
        let v: Vec<f64> = (0..=100).map(|i| i as f64 / 100.0).collect();
        let (min, q1, med, q3, max) = quartiles(&v);
        assert_eq!(min, 0.0);
        assert!((q1 - 0.25).abs() < 1e-9);
        assert!((med - 0.5).abs() < 1e-9);
        assert!((q3 - 0.75).abs() < 1e-9);
        assert_eq!(max, 1.0);
    }

    #[test]
    fn stats_basics() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert!((std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) - 2.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
    }
}
