//! Dynamic-workload runtime: arrivals, departures, and priority changes
//! over time, with re-mapping at every event (Figs. 8 and 10).

use crate::dataset::ideal_rates;
use crate::manager::RankMapManager;
use crate::oracle::ThroughputOracle;
use crate::priority::PriorityMode;
use rankmap_models::ModelId;
use rankmap_platform::Platform;
use rankmap_sim::{EventEngine, Mapping, Workload};

/// A scheduled change to the running workload.
#[derive(Debug, Clone, PartialEq)]
pub enum DynamicEvent {
    /// A new DNN is submitted at `at` seconds.
    Arrive {
        /// Arrival time (seconds).
        at: f64,
        /// The arriving model.
        model: ModelId,
    },
    /// The `index`-th currently running DNN leaves.
    Depart {
        /// Departure time (seconds).
        at: f64,
        /// Index into the current model list.
        index: usize,
    },
    /// The user changes priorities (Fig. 10's rank rotation).
    SetPriorities {
        /// Time of the change (seconds).
        at: f64,
        /// The new priority mode.
        mode: PriorityMode,
    },
}

impl DynamicEvent {
    /// The event's timestamp.
    pub fn at(&self) -> f64 {
        match self {
            DynamicEvent::Arrive { at, .. }
            | DynamicEvent::Depart { at, .. }
            | DynamicEvent::SetPriorities { at, .. } => *at,
        }
    }
}

/// Anything that can produce a mapping for a workload — RankMap variants
/// and every baseline implement this so the dynamic runtime and the figure
/// harness can treat them uniformly.
pub trait WorkloadMapper {
    /// Display name (column label in the figures).
    fn name(&self) -> String;

    /// Produces a mapping for the workload.
    fn remap(&mut self, workload: &Workload) -> Mapping;
}

/// RankMap as a [`WorkloadMapper`] with a fixed priority mode.
pub struct RankMapMapper<'p, O: ThroughputOracle> {
    manager: RankMapManager<'p, O>,
    mode: PriorityMode,
    label: String,
}

impl<'p, O: ThroughputOracle> RankMapMapper<'p, O> {
    /// Wraps a manager with a priority mode.
    pub fn new(manager: RankMapManager<'p, O>, mode: PriorityMode, label: impl Into<String>) -> Self {
        Self { manager, mode, label: label.into() }
    }

    /// Replaces the priority mode (Fig. 10's user rank changes).
    pub fn set_mode(&mut self, mode: PriorityMode) {
        self.mode = mode;
    }
}

impl<O: ThroughputOracle> WorkloadMapper for RankMapMapper<'_, O> {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn remap(&mut self, workload: &Workload) -> Mapping {
        // Static priority vectors are pinned to a specific workload size;
        // fall back to dynamic ranks while the size disagrees (e.g. during
        // a Fig. 8 arrival ramp).
        let mode = match &self.mode {
            PriorityMode::Static(p) if p.len() != workload.len() => PriorityMode::Dynamic,
            m => m.clone(),
        };
        self.manager.map(workload, &mode).mapping
    }
}

/// One timeline sample: the state of every running DNN at `time`.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelinePoint {
    /// Sample time in seconds.
    pub time: f64,
    /// Models running at this time (arrival order).
    pub models: Vec<ModelId>,
    /// Potential throughput of each running DNN.
    pub potentials: Vec<f64>,
    /// Raw throughput (inf/s) of each running DNN.
    pub throughputs: Vec<f64>,
}

/// Executes a dynamic scenario against a mapper, measuring steady-state
/// behaviour between events on the board simulator.
pub struct DynamicRuntime<'p> {
    platform: &'p Platform,
    sample_dt: f64,
}

impl<'p> DynamicRuntime<'p> {
    /// Creates a runtime sampling the timeline every `sample_dt` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `sample_dt <= 0`.
    pub fn new(platform: &'p Platform, sample_dt: f64) -> Self {
        assert!(sample_dt > 0.0, "sample_dt must be positive");
        Self { platform, sample_dt }
    }

    /// Runs `events` (sorted by time) until `horizon` seconds, re-mapping
    /// at every event and recording the per-DNN potential throughput.
    pub fn run(
        &self,
        events: &[DynamicEvent],
        mapper: &mut dyn WorkloadMapper,
        horizon: f64,
    ) -> Vec<TimelinePoint> {
        let engine = EventEngine::quick(self.platform);
        let all_ids: Vec<ModelId> = ModelId::all();
        let ideals = ideal_rates(self.platform, &all_ids);
        let mut timeline = Vec::new();
        let mut current: Vec<ModelId> = Vec::new();
        let mut boundaries: Vec<f64> = events.iter().map(DynamicEvent::at).collect();
        boundaries.push(horizon);
        let mut idx = 0usize;
        let mut t = 0.0;
        while t < horizon {
            // Apply all events at or before t.
            while idx < events.len() && events[idx].at() <= t + 1e-9 {
                match &events[idx] {
                    DynamicEvent::Arrive { model, .. } => current.push(*model),
                    DynamicEvent::Depart { index, .. } => {
                        if *index < current.len() {
                            current.remove(*index);
                        }
                    }
                    DynamicEvent::SetPriorities { .. } => {}
                }
                idx += 1;
            }
            let next_boundary = boundaries
                .iter()
                .copied()
                .filter(|&b| b > t + 1e-9)
                .fold(horizon, f64::min);
            if current.is_empty() {
                t = next_boundary;
                continue;
            }
            let workload = Workload::from_ids(current.iter().copied());
            let mapping = mapper.remap(&workload);
            let report = engine.evaluate(&workload, &mapping);
            let potentials: Vec<f64> = report
                .per_dnn
                .iter()
                .zip(&current)
                .map(|(&thr, id)| thr / ideals[id].max(1e-9))
                .collect();
            // Steady state holds until the next event: emit sampled points.
            let mut s = t;
            while s < next_boundary - 1e-9 {
                timeline.push(TimelinePoint {
                    time: s,
                    models: current.clone(),
                    potentials: potentials.clone(),
                    throughputs: report.per_dnn.clone(),
                });
                s += self.sample_dt;
            }
            t = next_boundary;
        }
        timeline
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::ManagerConfig;
    use crate::oracle::AnalyticalOracle;

    struct GpuOnly;

    impl WorkloadMapper for GpuOnly {
        fn name(&self) -> String {
            "all-gpu".into()
        }
        fn remap(&mut self, workload: &Workload) -> Mapping {
            Mapping::uniform(workload, rankmap_platform::ComponentId::new(0))
        }
    }

    fn arrivals() -> Vec<DynamicEvent> {
        vec![
            DynamicEvent::Arrive { at: 0.0, model: ModelId::AlexNet },
            DynamicEvent::Arrive { at: 100.0, model: ModelId::SqueezeNetV2 },
            DynamicEvent::Arrive { at: 200.0, model: ModelId::ResNet50 },
        ]
    }

    #[test]
    fn timeline_grows_with_arrivals() {
        let p = Platform::orange_pi_5();
        let rt = DynamicRuntime::new(&p, 50.0);
        let mut mapper = GpuOnly;
        let tl = rt.run(&arrivals(), &mut mapper, 300.0);
        assert!(!tl.is_empty());
        assert_eq!(tl.first().unwrap().models.len(), 1);
        assert_eq!(tl.last().unwrap().models.len(), 3);
        // Times strictly increase.
        for w in tl.windows(2) {
            assert!(w[1].time > w[0].time);
        }
    }

    #[test]
    fn first_dnn_alone_runs_near_ideal() {
        let p = Platform::orange_pi_5();
        let rt = DynamicRuntime::new(&p, 100.0);
        let mut mapper = GpuOnly;
        let tl = rt.run(&arrivals(), &mut mapper, 100.0);
        let first = &tl[0];
        assert!(
            first.potentials[0] > 0.9,
            "a lone DNN on the GPU should run near ideal: {}",
            first.potentials[0]
        );
    }

    #[test]
    fn departures_shrink_workload() {
        let p = Platform::orange_pi_5();
        let rt = DynamicRuntime::new(&p, 50.0);
        let mut events = arrivals();
        events.push(DynamicEvent::Depart { at: 250.0, index: 0 });
        let mut mapper = GpuOnly;
        let tl = rt.run(&events, &mut mapper, 300.0);
        assert_eq!(tl.last().unwrap().models.len(), 2);
        assert_eq!(tl.last().unwrap().models[0], ModelId::SqueezeNetV2);
    }

    #[test]
    fn rankmap_mapper_integrates() {
        let p = Platform::orange_pi_5();
        let oracle = AnalyticalOracle::new(&p);
        let mgr = RankMapManager::new(
            &p,
            &oracle,
            ManagerConfig { mcts_iterations: 150, ..Default::default() },
        );
        let mut mapper = RankMapMapper::new(mgr, PriorityMode::Dynamic, "RankMapD");
        let rt = DynamicRuntime::new(&p, 100.0);
        let tl = rt.run(&arrivals(), &mut mapper, 300.0);
        assert_eq!(mapper.name(), "RankMapD");
        assert!(!tl.is_empty());
        // No DNN should be starved by RankMap in this light scenario.
        for point in &tl {
            for &pot in &point.potentials {
                assert!(pot > rankmap_sim::STARVATION_POTENTIAL, "starved at {pot}");
            }
        }
    }
}
