//! Dynamic-workload runtime: arrivals, departures, and priority changes
//! over time (Figs. 8 and 10), re-mapped *incrementally* at every event.
//!
//! This is the serving loop described in `docs/runtime.md`:
//!
//! * Running DNNs are tracked by stable [`InstanceId`]s assigned in
//!   arrival order, so departures name an instance instead of a fragile
//!   list index.
//! * At every event the mapper produces a candidate mapping through
//!   [`WorkloadMapper::remap_incremental`], which hands it the incumbent
//!   per-instance placements — RankMap warm-starts its search from them
//!   and answers recurring workload sets from the plan cache.
//! * The runtime then makes a migration-aware **remap decision**: adopting
//!   the candidate stalls every moved unit for its weight-transfer time
//!   (see [`rankmap_sim::MigrationModel`]), so the incumbent mapping is
//!   kept whenever the candidate's predicted gain does not pay for the
//!   move within the time left until the next event.
//! * [`SetPriorities`](DynamicEvent::SetPriorities) events are routed into
//!   the mapper via [`WorkloadMapper::set_priorities`], so Fig. 10 rank
//!   rotations take effect.
//!
//! Migration stalls are surfaced on the timeline: a remap that moves
//! weights emits a [`TimelinePoint`] at the event time with zero
//! throughput and `migration_stall > 0`, and steady-state samples resume
//! after the stall window.

use crate::dataset::ideal_rates;
use crate::manager::RankMapManager;
use crate::oracle::ThroughputOracle;
use crate::priority::PriorityMode;
use rankmap_models::ModelId;
use rankmap_platform::{ComponentId, Platform};
use rankmap_sim::{EventEngine, Mapping, MigrationModel, Workload};
use std::collections::HashMap;
use std::fmt;

/// Stable identity of one running DNN instance, assigned at arrival.
///
/// The `k`-th [`DynamicEvent::Arrive`] of a scenario (in event order)
/// creates instance `InstanceId::new(k)`, `k` starting at 0. Scenario
/// generators rely on this contract to emit valid departures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstanceId(u64);

impl InstanceId {
    /// Creates an instance id (the `k`-th arrival of a scenario).
    pub fn new(ordinal: u64) -> Self {
        Self(ordinal)
    }

    /// The arrival ordinal.
    pub fn ordinal(self) -> u64 {
        self.0
    }
}

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A scheduled change to the running workload.
#[derive(Debug, Clone, PartialEq)]
pub enum DynamicEvent {
    /// A new DNN is submitted at `at` seconds. The runtime assigns it the
    /// next [`InstanceId`] in arrival order.
    Arrive {
        /// Arrival time (seconds).
        at: f64,
        /// The arriving model.
        model: ModelId,
    },
    /// The running DNN with the given stable id leaves. Unknown or
    /// already-departed ids are ignored.
    Depart {
        /// Departure time (seconds).
        at: f64,
        /// Stable id assigned at arrival.
        instance: InstanceId,
    },
    /// Legacy index-based departure (the `index`-th currently running DNN
    /// leaves). Indices shift as earlier events apply — prefer
    /// [`DynamicEvent::Depart`]. Constructed via the deprecated
    /// [`DynamicEvent::depart_index`].
    #[doc(hidden)]
    DepartIndex {
        /// Departure time (seconds).
        at: f64,
        /// Index into the current model list at apply time.
        index: usize,
    },
    /// The user changes priorities (Fig. 10's rank rotation). Routed into
    /// the mapper via [`WorkloadMapper::set_priorities`].
    SetPriorities {
        /// Time of the change (seconds).
        at: f64,
        /// The new priority mode.
        mode: PriorityMode,
    },
}

impl DynamicEvent {
    /// The event's timestamp.
    pub fn at(&self) -> f64 {
        match self {
            DynamicEvent::Arrive { at, .. }
            | DynamicEvent::Depart { at, .. }
            | DynamicEvent::DepartIndex { at, .. }
            | DynamicEvent::SetPriorities { at, .. } => *at,
        }
    }

    /// An arrival at `at` seconds.
    pub fn arrive(at: f64, model: ModelId) -> Self {
        DynamicEvent::Arrive { at, model }
    }

    /// A departure of a stable instance at `at` seconds.
    pub fn depart(at: f64, instance: InstanceId) -> Self {
        DynamicEvent::Depart { at, instance }
    }

    /// Legacy index-based departure, kept for the original examples.
    #[deprecated(
        since = "0.1.0",
        note = "indices shift as earlier events apply; use DynamicEvent::depart with the \
                stable InstanceId assigned at arrival"
    )]
    pub fn depart_index(at: f64, index: usize) -> Self {
        DynamicEvent::DepartIndex { at, index }
    }
}

/// Anything that can produce a mapping for a workload — RankMap variants
/// and every baseline implement this so the dynamic runtime and the figure
/// harness can treat them uniformly.
pub trait WorkloadMapper {
    /// Display name (column label in the figures).
    fn name(&self) -> String;

    /// Produces a mapping for the workload from scratch.
    fn remap(&mut self, workload: &Workload) -> Mapping;

    /// Produces a mapping given the incumbent placements: `incumbent[d]`
    /// is DNN `d`'s current unit assignment, or `None` for a fresh
    /// arrival. Incremental managers warm-start from it; the default
    /// ignores it and maps cold.
    fn remap_incremental(
        &mut self,
        workload: &Workload,
        _incumbent: &[Option<Vec<ComponentId>>],
    ) -> Mapping {
        self.remap(workload)
    }

    /// Applies a user priority change. Priority-insensitive managers (the
    /// baselines) ignore it.
    fn set_priorities(&mut self, _mode: &PriorityMode) {}
}

/// RankMap as a [`WorkloadMapper`] with a mutable priority mode.
pub struct RankMapMapper<'p, O: ThroughputOracle> {
    manager: RankMapManager<'p, O>,
    mode: PriorityMode,
    label: String,
}

impl<'p, O: ThroughputOracle> RankMapMapper<'p, O> {
    /// Wraps a manager with a priority mode.
    pub fn new(manager: RankMapManager<'p, O>, mode: PriorityMode, label: impl Into<String>) -> Self {
        Self { manager, mode, label: label.into() }
    }

    /// Replaces the priority mode (Fig. 10's user rank changes).
    pub fn set_mode(&mut self, mode: PriorityMode) {
        self.mode = mode;
    }

    /// The current priority mode.
    pub fn mode(&self) -> &PriorityMode {
        &self.mode
    }

    /// The wrapped manager (e.g. for plan-cache observability).
    pub fn manager(&self) -> &RankMapManager<'p, O> {
        &self.manager
    }

    /// Static priority vectors are pinned to a specific workload size;
    /// fall back to dynamic ranks while the size disagrees (e.g. during a
    /// Fig. 8 arrival ramp).
    fn effective_mode(&self, workload: &Workload) -> PriorityMode {
        match &self.mode {
            PriorityMode::Static(p) if p.len() != workload.len() => PriorityMode::Dynamic,
            m => m.clone(),
        }
    }
}

impl<O: ThroughputOracle> WorkloadMapper for RankMapMapper<'_, O> {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn remap(&mut self, workload: &Workload) -> Mapping {
        let mode = self.effective_mode(workload);
        self.manager.map_cached(workload, &mode).mapping
    }

    fn remap_incremental(
        &mut self,
        workload: &Workload,
        incumbent: &[Option<Vec<ComponentId>>],
    ) -> Mapping {
        let mode = self.effective_mode(workload);
        if incumbent.iter().all(Option::is_none) {
            // Nothing to warm-start from — cold map, served by the plan
            // cache when this workload set has been seen before.
            self.manager.map_cached(workload, &mode).mapping
        } else if let Some(plan) = self.manager.cached_plan(workload, &mode) {
            // A recurring workload set (e.g. a transient DNN departed and
            // re-arrived): skip even the warm search. Whether adopting the
            // cached plan pays for its migrations is the runtime's call.
            plan.mapping
        } else {
            self.manager.remap_with_hints(workload, &mode, incumbent).mapping
        }
    }

    fn set_priorities(&mut self, mode: &PriorityMode) {
        self.mode = mode.clone();
    }
}

/// One timeline sample: the state of every running DNN at `time`.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelinePoint {
    /// Sample time in seconds.
    pub time: f64,
    /// Models running at this time (arrival order).
    pub models: Vec<ModelId>,
    /// Stable ids of the running instances (parallel to `models`).
    pub instances: Vec<InstanceId>,
    /// Potential throughput of each running DNN.
    pub potentials: Vec<f64>,
    /// Raw throughput (inf/s) of each running DNN.
    pub throughputs: Vec<f64>,
    /// Seconds of migration stall charged at this point. Non-zero only on
    /// the dedicated stall point a remap emits at its event time (where
    /// `potentials`/`throughputs` are zero: the board is moving weights).
    pub migration_stall: f64,
    /// Seconds of timeline this point represents: the stall duration for
    /// stall points, up to one sample interval (clipped at the next event)
    /// for steady-state points. Time-weighted aggregates use this so a
    /// millisecond stall is not counted like a full sample window.
    pub span: f64,
    /// Whether this point begins a newly adopted mapping.
    pub remapped: bool,
}

/// Time-weighted average per-DNN potential over a timeline: each point's
/// mean potential contributes proportionally to the seconds it represents
/// ([`TimelinePoint::span`]), so a migration stall (zero potential) costs
/// exactly the time the weight transfer takes — no more, no less.
pub fn timeline_average_potential(timeline: &[TimelinePoint]) -> f64 {
    let mut weighted = 0.0;
    let mut total_span = 0.0;
    for p in timeline {
        if p.potentials.is_empty() {
            continue;
        }
        let mean = p.potentials.iter().sum::<f64>() / p.potentials.len() as f64;
        weighted += mean * p.span;
        total_span += p.span;
    }
    if total_span <= 0.0 {
        0.0
    } else {
        weighted / total_span
    }
}

/// Executes a dynamic scenario against a mapper, measuring steady-state
/// behaviour between events on the board simulator.
pub struct DynamicRuntime<'p> {
    platform: &'p Platform,
    sample_dt: f64,
    migration_aware: bool,
}

impl<'p> DynamicRuntime<'p> {
    /// Creates a migration-aware runtime sampling the timeline every
    /// `sample_dt` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `sample_dt <= 0`.
    pub fn new(platform: &'p Platform, sample_dt: f64) -> Self {
        assert!(sample_dt > 0.0, "sample_dt must be positive");
        Self { platform, sample_dt, migration_aware: true }
    }

    /// Toggles the migration-aware remap decision. When off, every
    /// candidate mapping is adopted unconditionally (the pre-refactor
    /// behaviour) — but migration stalls are still *charged* on the
    /// timeline, because the board pays them either way.
    pub fn with_migration_awareness(mut self, on: bool) -> Self {
        self.migration_aware = on;
        self
    }

    /// Runs `events` (sorted by time) until `horizon` seconds, re-mapping
    /// at every event and recording the per-DNN potential throughput.
    pub fn run(
        &self,
        events: &[DynamicEvent],
        mapper: &mut dyn WorkloadMapper,
        horizon: f64,
    ) -> Vec<TimelinePoint> {
        let engine = EventEngine::quick(self.platform);
        let migration = MigrationModel::new(self.platform);
        let all_ids: Vec<ModelId> = ModelId::all();
        let ideals = ideal_rates(self.platform, &all_ids);
        let mut timeline = Vec::new();
        let mut instances: Vec<(InstanceId, ModelId)> = Vec::new();
        let mut placements: HashMap<InstanceId, Vec<ComponentId>> = HashMap::new();
        let mut next_ordinal = 0u64;
        let mut boundaries: Vec<f64> = events.iter().map(DynamicEvent::at).collect();
        boundaries.push(horizon);
        let mut idx = 0usize;
        let mut t = 0.0;
        while t < horizon {
            // Apply all events at or before t.
            while idx < events.len() && events[idx].at() <= t + 1e-9 {
                match &events[idx] {
                    DynamicEvent::Arrive { model, .. } => {
                        instances.push((InstanceId::new(next_ordinal), *model));
                        next_ordinal += 1;
                    }
                    DynamicEvent::Depart { instance, .. } => {
                        if let Some(pos) = instances.iter().position(|(id, _)| id == instance) {
                            instances.remove(pos);
                            placements.remove(instance);
                        }
                    }
                    DynamicEvent::DepartIndex { index, .. } => {
                        if *index < instances.len() {
                            let (id, _) = instances.remove(*index);
                            placements.remove(&id);
                        }
                    }
                    DynamicEvent::SetPriorities { mode, .. } => mapper.set_priorities(mode),
                }
                idx += 1;
            }
            let next_boundary = boundaries
                .iter()
                .copied()
                .filter(|&b| b > t + 1e-9)
                .fold(horizon, f64::min);
            if instances.is_empty() {
                t = next_boundary;
                continue;
            }
            let workload = Workload::from_ids(instances.iter().map(|(_, m)| *m));
            let incumbent: Vec<Option<Vec<ComponentId>>> = instances
                .iter()
                .map(|(id, _)| placements.get(id).cloned())
                .collect();
            let candidate = mapper.remap_incremental(&workload, &incumbent);
            let window = next_boundary - t;
            let (mapping, stall, decided_report) = self.decide(
                &engine,
                &migration,
                &workload,
                &incumbent,
                candidate,
                window,
            );
            let remapped = incumbent
                .iter()
                .enumerate()
                .any(|(d, inc)| inc.as_deref() != Some(mapping.assignment(d)));
            for (d, (id, _)) in instances.iter().enumerate() {
                placements.insert(*id, mapping.assignment(d).to_vec());
            }
            // Reuse the decision's simulation of the adopted mapping when
            // it ran one — the event engine is the expensive part of the
            // event path.
            let report =
                decided_report.unwrap_or_else(|| engine.evaluate(&workload, &mapping));
            let potentials: Vec<f64> = report
                .per_dnn
                .iter()
                .zip(&instances)
                .map(|(&thr, (_, m))| thr / ideals[m].max(1e-9))
                .collect();
            let models: Vec<ModelId> = instances.iter().map(|(_, m)| *m).collect();
            let ids: Vec<InstanceId> = instances.iter().map(|(id, _)| *id).collect();
            // A remap that moves weights stalls the pipelines: emit the
            // stall point, then resume steady-state samples after it.
            let mut first = true;
            if stall > 0.0 {
                timeline.push(TimelinePoint {
                    time: t,
                    models: models.clone(),
                    instances: ids.clone(),
                    potentials: vec![0.0; instances.len()],
                    throughputs: vec![0.0; instances.len()],
                    migration_stall: stall,
                    span: stall,
                    remapped,
                });
                first = false;
            }
            // Steady state holds until the next event: emit sampled points.
            let mut s = t + stall;
            while s < next_boundary - 1e-9 {
                timeline.push(TimelinePoint {
                    time: s,
                    models: models.clone(),
                    instances: ids.clone(),
                    potentials: potentials.clone(),
                    throughputs: report.per_dnn.clone(),
                    migration_stall: 0.0,
                    span: (next_boundary - s).min(self.sample_dt),
                    remapped: remapped && first,
                });
                first = false;
                s += self.sample_dt;
            }
            t = next_boundary;
        }
        timeline
    }

    /// The migration-aware remap decision: keep the incumbent mapping when
    /// the candidate's predicted gain does not pay for the stall its
    /// weight moves cost within the window until the next event. Returns
    /// the adopted mapping, the stall (seconds) it charges, and — when the
    /// decision had to simulate — the adopted mapping's board report, so
    /// the caller does not re-run the event engine.
    fn decide(
        &self,
        engine: &EventEngine<'_>,
        migration: &MigrationModel<'_>,
        workload: &Workload,
        incumbent: &[Option<Vec<ComponentId>>],
        candidate: Mapping,
        window: f64,
    ) -> (Mapping, f64, Option<rankmap_sim::ThroughputReport>) {
        let cost = migration.cost(workload, incumbent, &candidate);
        if cost.is_free() {
            return (candidate, 0.0, None);
        }
        if !self.migration_aware {
            // Oblivious mode: adopt unconditionally, still pay the stall.
            return (candidate, cost.stall_seconds.min(window), None);
        }
        let full_incumbent: Option<Vec<Vec<ComponentId>>> =
            incumbent.iter().cloned().collect::<Option<Vec<_>>>();
        let Some(per_dnn) = full_incumbent else {
            // A fresh arrival forces a remap; survivors' moves still stall.
            return (candidate, cost.stall_seconds.min(window), None);
        };
        let incumbent_mapping = Mapping::new(per_dnn);
        let stall = cost.stall_seconds.min(window);
        // Integrated throughput over the window: switching trades `stall`
        // seconds of silence for the candidate's (hopefully higher) rate.
        let inc_report = engine.evaluate(workload, &incumbent_mapping);
        let cand_report = engine.evaluate(workload, &candidate);
        if cand_report.average() * (window - stall) > inc_report.average() * window {
            (candidate, stall, Some(cand_report))
        } else {
            (incumbent_mapping, 0.0, Some(inc_report))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::ManagerConfig;
    use crate::oracle::AnalyticalOracle;

    struct GpuOnly;

    impl WorkloadMapper for GpuOnly {
        fn name(&self) -> String {
            "all-gpu".into()
        }
        fn remap(&mut self, workload: &Workload) -> Mapping {
            Mapping::uniform(workload, rankmap_platform::ComponentId::new(0))
        }
    }

    fn arrivals() -> Vec<DynamicEvent> {
        vec![
            DynamicEvent::arrive(0.0, ModelId::AlexNet),
            DynamicEvent::arrive(100.0, ModelId::SqueezeNetV2),
            DynamicEvent::arrive(200.0, ModelId::ResNet50),
        ]
    }

    #[test]
    fn timeline_grows_with_arrivals() {
        let p = Platform::orange_pi_5();
        let rt = DynamicRuntime::new(&p, 50.0);
        let mut mapper = GpuOnly;
        let tl = rt.run(&arrivals(), &mut mapper, 300.0);
        assert!(!tl.is_empty());
        assert_eq!(tl.first().unwrap().models.len(), 1);
        assert_eq!(tl.last().unwrap().models.len(), 3);
        // Times strictly increase.
        for w in tl.windows(2) {
            assert!(w[1].time > w[0].time);
        }
    }

    #[test]
    fn first_dnn_alone_runs_near_ideal() {
        let p = Platform::orange_pi_5();
        let rt = DynamicRuntime::new(&p, 100.0);
        let mut mapper = GpuOnly;
        let tl = rt.run(&arrivals(), &mut mapper, 100.0);
        let first = &tl[0];
        assert!(
            first.potentials[0] > 0.9,
            "a lone DNN on the GPU should run near ideal: {}",
            first.potentials[0]
        );
    }

    #[test]
    fn departures_by_stable_id_shrink_workload() {
        let p = Platform::orange_pi_5();
        let rt = DynamicRuntime::new(&p, 50.0);
        let mut events = arrivals();
        // AlexNet was the first arrival: instance #0, wherever it sits.
        events.push(DynamicEvent::depart(250.0, InstanceId::new(0)));
        let mut mapper = GpuOnly;
        let tl = rt.run(&events, &mut mapper, 300.0);
        let last = tl.last().unwrap();
        assert_eq!(last.models.len(), 2);
        assert_eq!(last.models[0], ModelId::SqueezeNetV2);
        assert_eq!(last.instances, vec![InstanceId::new(1), InstanceId::new(2)]);
    }

    #[test]
    fn legacy_index_departure_still_works() {
        let p = Platform::orange_pi_5();
        let rt = DynamicRuntime::new(&p, 50.0);
        let mut events = arrivals();
        #[allow(deprecated)]
        events.push(DynamicEvent::depart_index(250.0, 0));
        let mut mapper = GpuOnly;
        let tl = rt.run(&events, &mut mapper, 300.0);
        assert_eq!(tl.last().unwrap().models.len(), 2);
        assert_eq!(tl.last().unwrap().models[0], ModelId::SqueezeNetV2);
    }

    #[test]
    fn unknown_instance_departure_is_ignored() {
        let p = Platform::orange_pi_5();
        let rt = DynamicRuntime::new(&p, 50.0);
        let mut events = arrivals();
        events.push(DynamicEvent::depart(250.0, InstanceId::new(99)));
        let mut mapper = GpuOnly;
        let tl = rt.run(&events, &mut mapper, 300.0);
        assert_eq!(tl.last().unwrap().models.len(), 3);
    }

    #[test]
    fn set_priorities_reaches_the_mapper() {
        // The Fig.-10 regression: SetPriorities events must update the
        // mapper's mode, not vanish into a no-op match arm.
        struct Probe {
            modes: Vec<PriorityMode>,
        }
        impl WorkloadMapper for Probe {
            fn name(&self) -> String {
                "probe".into()
            }
            fn remap(&mut self, workload: &Workload) -> Mapping {
                Mapping::uniform(workload, rankmap_platform::ComponentId::new(0))
            }
            fn set_priorities(&mut self, mode: &PriorityMode) {
                self.modes.push(mode.clone());
            }
        }
        let p = Platform::orange_pi_5();
        let rt = DynamicRuntime::new(&p, 50.0);
        let events = vec![
            DynamicEvent::arrive(0.0, ModelId::AlexNet),
            DynamicEvent::arrive(0.0, ModelId::SqueezeNetV2),
            DynamicEvent::SetPriorities { at: 100.0, mode: PriorityMode::critical(2, 1) },
            DynamicEvent::SetPriorities { at: 200.0, mode: PriorityMode::Dynamic },
        ];
        let mut probe = Probe { modes: Vec::new() };
        let _ = rt.run(&events, &mut probe, 300.0);
        assert_eq!(
            probe.modes,
            vec![PriorityMode::critical(2, 1), PriorityMode::Dynamic],
            "every SetPriorities event must reach the mapper, in order"
        );
    }

    #[test]
    fn rankmap_mapper_applies_priority_changes() {
        let p = Platform::orange_pi_5();
        let oracle = AnalyticalOracle::new(&p);
        let mgr = RankMapManager::new(
            &p,
            &oracle,
            ManagerConfig { mcts_iterations: 100, warm_iterations: 40, ..Default::default() },
        );
        let mut mapper = RankMapMapper::new(mgr, PriorityMode::Dynamic, "RankMapS");
        let rt = DynamicRuntime::new(&p, 100.0);
        let events = vec![
            DynamicEvent::arrive(0.0, ModelId::AlexNet),
            DynamicEvent::arrive(0.0, ModelId::SqueezeNetV2),
            DynamicEvent::SetPriorities { at: 150.0, mode: PriorityMode::critical(2, 0) },
        ];
        let _ = rt.run(&events, &mut mapper, 300.0);
        assert_eq!(
            mapper.mode(),
            &PriorityMode::critical(2, 0),
            "the rank rotation must land in the RankMap mapper"
        );
    }

    #[test]
    fn stall_points_mark_migrations() {
        // A mapper that moves everything between two components at every
        // call forces migrations; the oblivious runtime must charge them.
        struct Flipper(usize);
        impl WorkloadMapper for Flipper {
            fn name(&self) -> String {
                "flipper".into()
            }
            fn remap(&mut self, workload: &Workload) -> Mapping {
                self.0 += 1;
                Mapping::uniform(workload, rankmap_platform::ComponentId::new(self.0 % 2))
            }
        }
        let p = Platform::orange_pi_5();
        let rt = DynamicRuntime::new(&p, 50.0).with_migration_awareness(false);
        let mut mapper = Flipper(0);
        let tl = rt.run(&arrivals(), &mut mapper, 300.0);
        let stalls: Vec<&TimelinePoint> =
            tl.iter().filter(|pt| pt.migration_stall > 0.0).collect();
        assert!(!stalls.is_empty(), "forced moves must surface as stall points");
        for s in &stalls {
            assert!(s.potentials.iter().all(|&x| x == 0.0), "stall points are silent");
            assert!(s.remapped);
        }
    }

    #[test]
    fn migration_awareness_rejects_unpaying_flips() {
        // The same flipper under the aware runtime: after the first
        // placement, flipping every component is all cost and no gain, so
        // the incumbent must be kept (no stall points after warm-up).
        struct Flipper(usize);
        impl WorkloadMapper for Flipper {
            fn name(&self) -> String {
                "flipper".into()
            }
            fn remap(&mut self, workload: &Workload) -> Mapping {
                self.0 += 1;
                Mapping::uniform(workload, rankmap_platform::ComponentId::new(self.0 % 2))
            }
        }
        let p = Platform::dual_cpu();
        let events = vec![
            DynamicEvent::arrive(0.0, ModelId::AlexNet),
            DynamicEvent::SetPriorities { at: 100.0, mode: PriorityMode::Dynamic },
            DynamicEvent::SetPriorities { at: 200.0, mode: PriorityMode::Dynamic },
        ];
        let aware = DynamicRuntime::new(&p, 50.0);
        let mut mapper = Flipper(0);
        let tl = aware.run(&events, &mut mapper, 300.0);
        // dual_cpu is symmetric: the flip can never pay for itself.
        assert!(
            tl.iter().skip(1).all(|pt| pt.migration_stall == 0.0),
            "aware runtime must keep the incumbent on symmetric components"
        );
    }

    #[test]
    fn recurring_workload_set_hits_the_plan_cache_in_the_serving_path() {
        // {AlexNet, SqueezeNet} runs, SqueezeNet departs, then re-arrives:
        // the second {AlexNet, SqueezeNet} segment must be answered from
        // the plan cache (the warm remap of the first segment fed it).
        let p = Platform::orange_pi_5();
        let oracle = AnalyticalOracle::new(&p);
        let mgr = RankMapManager::new(
            &p,
            &oracle,
            ManagerConfig { mcts_iterations: 100, warm_iterations: 40, ..Default::default() },
        );
        let mut mapper = RankMapMapper::new(mgr, PriorityMode::Dynamic, "RankMapD");
        let rt = DynamicRuntime::new(&p, 50.0);
        let events = vec![
            DynamicEvent::arrive(0.0, ModelId::AlexNet),
            DynamicEvent::arrive(100.0, ModelId::SqueezeNetV2),
            DynamicEvent::depart(200.0, InstanceId::new(1)),
            DynamicEvent::arrive(300.0, ModelId::SqueezeNetV2),
        ];
        let _ = rt.run(&events, &mut mapper, 400.0);
        let (hits, _) = mapper.manager().plan_cache_stats();
        assert!(
            hits >= 1,
            "the re-arrived workload set must be served from the plan cache"
        );
    }

    #[test]
    fn rankmap_mapper_integrates() {
        let p = Platform::orange_pi_5();
        let oracle = AnalyticalOracle::new(&p);
        let mgr = RankMapManager::new(
            &p,
            &oracle,
            ManagerConfig { mcts_iterations: 150, ..Default::default() },
        );
        let mut mapper = RankMapMapper::new(mgr, PriorityMode::Dynamic, "RankMapD");
        let rt = DynamicRuntime::new(&p, 100.0);
        let tl = rt.run(&arrivals(), &mut mapper, 300.0);
        assert_eq!(mapper.name(), "RankMapD");
        assert!(!tl.is_empty());
        // No DNN should be starved by RankMap in this light scenario
        // (stall points are the board moving weights, not starvation).
        for point in tl.iter().filter(|pt| pt.migration_stall == 0.0) {
            for &pot in &point.potentials {
                assert!(pot > rankmap_sim::STARVATION_POTENTIAL, "starved at {pot}");
            }
        }
    }
}
