//! Dynamic-workload runtime: arrivals, departures, and priority changes
//! over time (Figs. 8 and 10), re-mapped *incrementally* at every event.
//!
//! This is the serving loop described in `docs/runtime.md`:
//!
//! * Running DNNs are tracked by stable [`InstanceId`]s assigned in
//!   arrival order, so departures name an instance instead of a fragile
//!   list index.
//! * At every event the mapper produces a candidate mapping through
//!   [`WorkloadMapper::remap_incremental`], which hands it the incumbent
//!   per-instance placements — RankMap warm-starts its search from them
//!   and answers recurring workload sets from the plan cache.
//! * The runtime then makes a migration-aware **remap decision**: adopting
//!   the candidate stalls every moved unit for its weight-transfer time
//!   plus the estimator's compiled-stem rebuild (see
//!   [`rankmap_sim::MigrationModel`]), so the incumbent mapping is kept
//!   whenever the candidate's predicted gain does not pay for the move
//!   within the time left until the next event. The gain is integrated
//!   under a [`GainObjective`]: the default weighs each DNN's *potential*
//!   by its priority (the paper's reward), the legacy raw-average
//!   objective stays available for A/B comparison.
//! * [`SetPriorities`](DynamicEvent::SetPriorities) events are routed into
//!   the mapper via [`WorkloadMapper::set_priorities`], so Fig. 10 rank
//!   rotations take effect.
//!
//! Migration stalls are surfaced on the timeline: a remap that moves
//! weights emits a [`TimelinePoint`] at the event time with zero
//! throughput and `migration_stall > 0`, and steady-state samples resume
//! after the stall window.
//!
//! Everything above is also available **step-wise** through
//! [`RuntimeSession`]: a fleet manager that interleaves many device
//! shards on one global clock drives each shard's session with
//! [`RuntimeSession::advance_to`] / [`RuntimeSession::apply`] /
//! [`RuntimeSession::finish`] instead of handing the whole event stream
//! to [`DynamicRuntime::run`] (which is now a thin wrapper over a
//! session).

use crate::dataset::ideal_rates;
use crate::manager::RankMapManager;
use crate::oracle::ThroughputOracle;
use crate::priority::PriorityMode;
use rankmap_models::ModelId;
use rankmap_platform::{ComponentId, Platform};
use rankmap_sim::{EventEngine, Mapping, MigrationModel, Workload};
use std::collections::HashMap;
use std::fmt;

/// Stable identity of one running DNN instance, assigned at arrival.
///
/// The `k`-th [`DynamicEvent::Arrive`] of a scenario (in event order)
/// creates instance `InstanceId::new(k)`, `k` starting at 0. Scenario
/// generators rely on this contract to emit valid departures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstanceId(u64);

impl InstanceId {
    /// Creates an instance id (the `k`-th arrival of a scenario).
    pub fn new(ordinal: u64) -> Self {
        Self(ordinal)
    }

    /// The arrival ordinal.
    pub fn ordinal(self) -> u64 {
        self.0
    }
}

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A scheduled change to the running workload.
#[derive(Debug, Clone, PartialEq)]
pub enum DynamicEvent {
    /// A new DNN is submitted at `at` seconds. The runtime assigns it the
    /// next [`InstanceId`] in arrival order.
    Arrive {
        /// Arrival time (seconds).
        at: f64,
        /// The arriving model.
        model: ModelId,
    },
    /// The running DNN with the given stable id leaves. Unknown or
    /// already-departed ids are ignored.
    Depart {
        /// Departure time (seconds).
        at: f64,
        /// Stable id assigned at arrival.
        instance: InstanceId,
    },
    /// The user changes priorities (Fig. 10's rank rotation). Routed into
    /// the mapper via [`WorkloadMapper::set_priorities`].
    SetPriorities {
        /// Time of the change (seconds).
        at: f64,
        /// The new priority mode.
        mode: PriorityMode,
    },
}

impl DynamicEvent {
    /// The event's timestamp.
    pub fn at(&self) -> f64 {
        match self {
            DynamicEvent::Arrive { at, .. }
            | DynamicEvent::Depart { at, .. }
            | DynamicEvent::SetPriorities { at, .. } => *at,
        }
    }

    /// An arrival at `at` seconds.
    pub fn arrive(at: f64, model: ModelId) -> Self {
        DynamicEvent::Arrive { at, model }
    }

    /// A departure of a stable instance at `at` seconds.
    pub fn depart(at: f64, instance: InstanceId) -> Self {
        DynamicEvent::Depart { at, instance }
    }
}

/// Anything that can produce a mapping for a workload — RankMap variants
/// and every baseline implement this so the dynamic runtime and the figure
/// harness can treat them uniformly.
pub trait WorkloadMapper {
    /// Display name (column label in the figures).
    fn name(&self) -> String;

    /// Produces a mapping for the workload from scratch.
    fn remap(&mut self, workload: &Workload) -> Mapping;

    /// Produces a mapping given the incumbent placements: `incumbent[d]`
    /// is DNN `d`'s current unit assignment, or `None` for a fresh
    /// arrival. Incremental managers warm-start from it; the default
    /// ignores it and maps cold.
    fn remap_incremental(
        &mut self,
        workload: &Workload,
        _incumbent: &[Option<Vec<ComponentId>>],
    ) -> Mapping {
        self.remap(workload)
    }

    /// Applies a user priority change. Priority-insensitive managers (the
    /// baselines) ignore it.
    fn set_priorities(&mut self, _mode: &PriorityMode) {}

    /// The resolved priority vector this mapper currently optimizes for,
    /// or `None` for rank-insensitive mappers (the runtime falls back to
    /// uniform weights). The migration-aware remap decision uses it under
    /// [`GainObjective::PriorityPotential`].
    fn priorities(&self, _workload: &Workload) -> Option<Vec<f64>> {
        None
    }
}

/// RankMap as a [`WorkloadMapper`] with a mutable priority mode.
pub struct RankMapMapper<'p, O: ThroughputOracle> {
    manager: RankMapManager<'p, O>,
    mode: PriorityMode,
    label: String,
}

impl<'p, O: ThroughputOracle> RankMapMapper<'p, O> {
    /// Wraps a manager with a priority mode.
    pub fn new(manager: RankMapManager<'p, O>, mode: PriorityMode, label: impl Into<String>) -> Self {
        Self { manager, mode, label: label.into() }
    }

    /// Replaces the priority mode (Fig. 10's user rank changes).
    pub fn set_mode(&mut self, mode: PriorityMode) {
        self.mode = mode;
    }

    /// The current priority mode.
    pub fn mode(&self) -> &PriorityMode {
        &self.mode
    }

    /// The wrapped manager (e.g. for plan-cache observability).
    pub fn manager(&self) -> &RankMapManager<'p, O> {
        &self.manager
    }

    /// Static priority vectors are pinned to a specific workload size;
    /// fall back to dynamic ranks while the size disagrees (e.g. during a
    /// Fig. 8 arrival ramp).
    fn effective_mode(&self, workload: &Workload) -> PriorityMode {
        match &self.mode {
            PriorityMode::Static(p) if p.len() != workload.len() => PriorityMode::Dynamic,
            m => m.clone(),
        }
    }
}

impl<O: ThroughputOracle> WorkloadMapper for RankMapMapper<'_, O> {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn remap(&mut self, workload: &Workload) -> Mapping {
        let mode = self.effective_mode(workload);
        self.manager.map_cached(workload, &mode).mapping
    }

    fn remap_incremental(
        &mut self,
        workload: &Workload,
        incumbent: &[Option<Vec<ComponentId>>],
    ) -> Mapping {
        let mode = self.effective_mode(workload);
        if incumbent.iter().all(Option::is_none) {
            // Nothing to warm-start from — cold map, served by the plan
            // cache when this workload set has been seen before.
            self.manager.map_cached(workload, &mode).mapping
        } else if let Some(plan) = self.manager.cached_plan(workload, &mode) {
            // A recurring workload set (e.g. a transient DNN departed and
            // re-arrived): skip even the warm search. Whether adopting the
            // cached plan pays for its migrations is the runtime's call.
            plan.mapping
        } else {
            self.manager.remap_with_hints(workload, &mode, incumbent).mapping
        }
    }

    fn set_priorities(&mut self, mode: &PriorityMode) {
        self.mode = mode.clone();
    }

    fn priorities(&self, workload: &Workload) -> Option<Vec<f64>> {
        Some(self.effective_mode(workload).vector(workload))
    }
}

/// One timeline sample: the state of every running DNN at `time`.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelinePoint {
    /// Sample time in seconds.
    pub time: f64,
    /// Models running at this time (arrival order).
    pub models: Vec<ModelId>,
    /// Stable ids of the running instances (parallel to `models`).
    pub instances: Vec<InstanceId>,
    /// Potential throughput of each running DNN.
    pub potentials: Vec<f64>,
    /// Raw throughput (inf/s) of each running DNN.
    pub throughputs: Vec<f64>,
    /// Seconds of migration stall charged at this point. Non-zero only on
    /// the dedicated stall point a remap emits at its event time (where
    /// `potentials`/`throughputs` are zero: the board is moving weights).
    pub migration_stall: f64,
    /// Seconds of timeline this point represents: the stall duration for
    /// stall points, up to one sample interval (clipped at the next event)
    /// for steady-state points. Time-weighted aggregates use this so a
    /// millisecond stall is not counted like a full sample window.
    pub span: f64,
    /// Whether this point begins a newly adopted mapping.
    pub remapped: bool,
}

/// Time-weighted average per-DNN potential over a timeline: each point's
/// mean potential contributes proportionally to the seconds it represents
/// ([`TimelinePoint::span`]), so a migration stall (zero potential) costs
/// exactly the time the weight transfer takes — no more, no less.
pub fn timeline_average_potential(timeline: &[TimelinePoint]) -> f64 {
    let mut weighted = 0.0;
    let mut total_span = 0.0;
    for p in timeline {
        if p.potentials.is_empty() {
            continue;
        }
        let mean = p.potentials.iter().sum::<f64>() / p.potentials.len() as f64;
        weighted += mean * p.span;
        total_span += p.span;
    }
    if total_span <= 0.0 {
        0.0
    } else {
        weighted / total_span
    }
}

/// The measured ideal rate of `model` from an ideals map, floored at
/// 1e-9 so potential divisions stay finite.
///
/// # Panics
///
/// Panics if the map has no entry for `model`: a partial ideals map
/// would otherwise silently inflate potentials by ~10⁹×. Callers of
/// [`DynamicRuntime::session_with_ideals`] must cover every model that
/// may arrive.
pub fn ideal_rate_of(ideals: &HashMap<ModelId, f64>, model: ModelId) -> f64 {
    ideals
        .get(&model)
        .copied()
        .unwrap_or_else(|| {
            panic!(
                "no ideal rate for {}; the ideals map must cover every model that may arrive",
                model.name()
            )
        })
        .max(1e-9)
}

/// Priority-weighted potential of a throughput report:
/// `Σ wᵢ · thrᵢ / idealᵢ` over the workload's DNNs (ideals looked up per
/// model via [`ideal_rate_of`]). One formula shared by the session's
/// remap-gain objective and the fleet placement scorer, so routing and
/// adoption can never drift apart.
pub fn weighted_potential(
    ideals: &HashMap<ModelId, f64>,
    workload: &Workload,
    per_dnn: &[f64],
    weights: &[f64],
) -> f64 {
    per_dnn
        .iter()
        .zip(workload.models())
        .zip(weights)
        .map(|((&thr, m), &w)| w * thr / ideal_rate_of(ideals, m.id()))
        .sum()
}

/// The mapper's resolved priority vector, or uniform weights for
/// rank-insensitive mappers (the baselines).
pub fn priorities_or_uniform(mapper: &dyn WorkloadMapper, workload: &Workload) -> Vec<f64> {
    mapper
        .priorities(workload)
        .unwrap_or_else(|| vec![1.0 / workload.len().max(1) as f64; workload.len()])
}

/// What the migration-aware remap decision integrates over the window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GainObjective {
    /// Priority-weighted potential (the paper's reward shape): each DNN's
    /// `throughput / ideal` weighted by the mapper's resolved priority
    /// vector (uniform for rank-insensitive mappers). The default.
    #[default]
    PriorityPotential,
    /// Raw average throughput across DNNs — the pre-fleet objective, kept
    /// for A/B comparison in the `fleet_scale` bench.
    AverageThroughput,
}

/// Executes a dynamic scenario against a mapper, measuring steady-state
/// behaviour between events on the board simulator.
pub struct DynamicRuntime<'p> {
    platform: &'p Platform,
    sample_dt: f64,
    migration_aware: bool,
    objective: GainObjective,
    stem_rebuild: Option<f64>,
}

impl<'p> DynamicRuntime<'p> {
    /// Creates a migration-aware runtime sampling the timeline every
    /// `sample_dt` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `sample_dt <= 0`.
    pub fn new(platform: &'p Platform, sample_dt: f64) -> Self {
        assert!(sample_dt > 0.0, "sample_dt must be positive");
        Self {
            platform,
            sample_dt,
            migration_aware: true,
            objective: GainObjective::default(),
            stem_rebuild: None,
        }
    }

    /// Toggles the migration-aware remap decision. When off, every
    /// candidate mapping is adopted unconditionally (the pre-refactor
    /// behaviour) — but migration stalls are still *charged* on the
    /// timeline, because the board pays them either way.
    pub fn with_migration_awareness(mut self, on: bool) -> Self {
        self.migration_aware = on;
        self
    }

    /// Selects the remap-gain objective (default
    /// [`GainObjective::PriorityPotential`]).
    pub fn with_gain_objective(mut self, objective: GainObjective) -> Self {
        self.objective = objective;
        self
    }

    /// Overrides the estimator warm-up charge of the migration model
    /// (seconds per schedulable unit of a re-placed DNN; `0.0` restores
    /// the weight-only stall — see [`MigrationModel::with_stem_rebuild`]).
    pub fn with_stem_rebuild(mut self, seconds_per_unit: f64) -> Self {
        self.stem_rebuild = Some(seconds_per_unit);
        self
    }

    /// Opens a step-wise session, measuring per-model ideal rates for the
    /// whole registry (memoize with
    /// [`DynamicRuntime::session_with_ideals`] when driving many sessions
    /// over the same platform).
    pub fn session(&self) -> RuntimeSession<'p> {
        let all_ids: Vec<ModelId> = ModelId::all();
        self.session_with_ideals(ideal_rates(self.platform, &all_ids))
    }

    /// Opens a step-wise session with precomputed ideal rates (one entry
    /// per model that may arrive). A fleet of shards on identical boards
    /// measures the rates once and clones the map per shard.
    pub fn session_with_ideals(&self, ideals: HashMap<ModelId, f64>) -> RuntimeSession<'p> {
        let mut migration = MigrationModel::new(self.platform);
        if let Some(per_unit) = self.stem_rebuild {
            migration = migration.with_stem_rebuild(per_unit);
        }
        RuntimeSession {
            engine: EventEngine::quick(self.platform),
            migration,
            ideals,
            sample_dt: self.sample_dt,
            migration_aware: self.migration_aware,
            objective: self.objective,
            derate: 1.0,
            clock: 0.0,
            instances: Vec::new(),
            placements: HashMap::new(),
            next_ordinal: 0,
            segment: None,
            pending_stall: 0.0,
            timeline: Vec::new(),
        }
    }

    /// Runs `events` (sorted by time) until `horizon` seconds, re-mapping
    /// at every event and recording the per-DNN potential throughput.
    pub fn run(
        &self,
        events: &[DynamicEvent],
        mapper: &mut dyn WorkloadMapper,
        horizon: f64,
    ) -> Vec<TimelinePoint> {
        let mut session = self.session();
        let mut boundaries: Vec<f64> = events.iter().map(DynamicEvent::at).collect();
        boundaries.push(horizon);
        let mut idx = 0usize;
        let mut t = 0.0;
        while t < horizon {
            let start = idx;
            while idx < events.len() && events[idx].at() <= t + 1e-9 {
                idx += 1;
            }
            let next_boundary = boundaries
                .iter()
                .copied()
                .filter(|&b| b > t + 1e-9)
                .fold(horizon, f64::min);
            session.advance_to(t);
            session.apply(&events[start..idx], next_boundary - t, mapper);
            t = next_boundary;
        }
        session.finish(horizon);
        session.into_timeline()
    }
}

/// The running segment between two remap points: adopted mapping state
/// whose timeline samples are emitted once the segment's end is known.
#[derive(Debug, Clone)]
struct Segment {
    start: f64,
    stall: f64,
    remapped: bool,
    models: Vec<ModelId>,
    instances: Vec<InstanceId>,
    potentials: Vec<f64>,
    throughputs: Vec<f64>,
}

/// Step-wise serving state over one device (shard): the mutable half of
/// [`DynamicRuntime::run`], factored out so a fleet can interleave many
/// shards on one global clock.
///
/// A session is plain owned state and therefore `Send` (asserted in
/// tests): the shard-parallel fleet executor moves `&mut` sessions onto
/// worker threads between event barriers.
///
/// Protocol: [`RuntimeSession::advance_to`] moves the clock forward,
/// [`RuntimeSession::apply`] applies a batch of same-time events at the
/// current clock and re-maps, [`RuntimeSession::finish`] closes the last
/// segment at the horizon. Timeline samples for a segment are emitted
/// when the segment *ends* (the next `apply`/`finish` names its end
/// time), so the output of `run` is reproduced exactly.
pub struct RuntimeSession<'p> {
    engine: EventEngine<'p>,
    migration: MigrationModel<'p>,
    ideals: HashMap<ModelId, f64>,
    sample_dt: f64,
    migration_aware: bool,
    objective: GainObjective,
    /// Thermal-derate factor in `(0, 1]`: the fraction of the board's
    /// nominal speed currently served. `Platform::scaled` keeps potential
    /// (throughput / ideal) invariant, so a uniformly throttled board's
    /// mapping decisions are bit-identical to the nominal board's — the
    /// throttle surfaces purely as this factor on served throughput and
    /// recorded potential (see [`RuntimeSession::set_derate`]).
    derate: f64,
    clock: f64,
    instances: Vec<(InstanceId, ModelId)>,
    placements: HashMap<InstanceId, Vec<ComponentId>>,
    next_ordinal: u64,
    segment: Option<Segment>,
    /// Stall seconds charged but not yet served because the charging
    /// segment ended first (e.g. two events at the same timestamp);
    /// carried into the next segment so stalls are conserved.
    pending_stall: f64,
    timeline: Vec<TimelinePoint>,
}

impl RuntimeSession<'_> {
    /// The session clock (seconds; last `advance_to`/`finish` target).
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Currently running instances, in arrival order.
    pub fn live(&self) -> &[(InstanceId, ModelId)] {
        &self.instances
    }

    /// The adopted placement of a running instance, if any.
    pub fn placement(&self, id: InstanceId) -> Option<&[ComponentId]> {
        self.placements.get(&id).map(Vec::as_slice)
    }

    /// The measured ideal rate of a model (isolated on the fastest
    /// component), as used for potential normalization.
    ///
    /// # Panics
    ///
    /// Panics if the session's ideals map does not cover `model` (see
    /// [`ideal_rate_of`]) — a 0.0 fallback would silently turn the next
    /// potential division into infinity.
    pub fn ideal_rate(&self, model: ModelId) -> f64 {
        ideal_rate_of(&self.ideals, model)
    }

    /// Timeline points emitted so far (closed segments only).
    pub fn timeline(&self) -> &[TimelinePoint] {
        &self.timeline
    }

    /// The current thermal-derate factor (`1.0` = nominal speed).
    pub fn derate(&self) -> f64 {
        self.derate
    }

    /// Sets the thermal-derate factor: the fraction of nominal board
    /// speed served from here on (`1.0` restores full speed). Under
    /// `Platform::scaled`'s invariance — a uniformly scaled board's
    /// throughputs and ideal rates scale together, so potential and every
    /// mapping decision are unchanged — a throttle is exactly a factor on
    /// *served* throughput, which is how the next segment records it. The
    /// caller re-applies (an empty event batch) at the throttle time so a
    /// new segment opens under the new factor; the open segment is not
    /// rewritten.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not in `(0, 1]`.
    pub fn set_derate(&mut self, factor: f64) {
        assert!(
            factor.is_finite() && factor > 0.0 && factor <= 1.0,
            "derate factor must be in (0, 1]"
        );
        self.derate = factor;
    }

    /// Consumes the session, returning the timeline. Call
    /// [`RuntimeSession::finish`] first — an open segment's samples are
    /// only emitted once its end is known.
    pub fn into_timeline(self) -> Vec<TimelinePoint> {
        self.timeline
    }

    /// Moves the clock to `t` without applying events. The open segment
    /// keeps running; its samples are emitted when it closes.
    ///
    /// # Panics
    ///
    /// Panics if `t` is behind the clock.
    pub fn advance_to(&mut self, t: f64) {
        assert!(t >= self.clock - 1e-9, "session clock cannot move backwards");
        self.clock = self.clock.max(t);
    }

    /// Applies a batch of events at the current clock, asks the mapper for
    /// a candidate mapping, makes the migration-aware remap decision with
    /// `window_hint` seconds of expected residency (callers that know the
    /// exact time to the next event — like [`DynamicRuntime::run`] — pass
    /// it; a fleet passes its expected inter-event gap), and opens a new
    /// segment. Returns the [`InstanceId`]s assigned to the batch's
    /// arrivals, in order.
    pub fn apply(
        &mut self,
        events: &[DynamicEvent],
        window_hint: f64,
        mapper: &mut dyn WorkloadMapper,
    ) -> Vec<InstanceId> {
        self.close_segment();
        let mut assigned = Vec::new();
        for event in events {
            match event {
                DynamicEvent::Arrive { model, .. } => {
                    let id = InstanceId::new(self.next_ordinal);
                    self.next_ordinal += 1;
                    self.instances.push((id, *model));
                    assigned.push(id);
                }
                DynamicEvent::Depart { instance, .. } => {
                    if let Some(pos) =
                        self.instances.iter().position(|(id, _)| id == instance)
                    {
                        self.instances.remove(pos);
                        self.placements.remove(instance);
                    }
                }
                DynamicEvent::SetPriorities { mode, .. } => mapper.set_priorities(mode),
            }
        }
        if self.instances.is_empty() {
            // An idle board has nothing to stall.
            self.pending_stall = 0.0;
            return assigned;
        }
        let workload = Workload::from_ids(self.instances.iter().map(|(_, m)| *m));
        let incumbent: Vec<Option<Vec<ComponentId>>> = self
            .instances
            .iter()
            .map(|(id, _)| self.placements.get(id).cloned())
            .collect();
        let candidate = mapper.remap_incremental(&workload, &incumbent);
        let (mapping, mut stall, decided_report) =
            self.decide(&workload, &incumbent, candidate, window_hint, mapper);
        // A carried stall originates from a remap/migration in the
        // previous (too-short) segment — its stall point must still be
        // marked as one.
        let carried = std::mem::take(&mut self.pending_stall);
        stall += carried;
        let remapped = carried > 0.0
            || incumbent
                .iter()
                .enumerate()
                .any(|(d, inc)| inc.as_deref() != Some(mapping.assignment(d)));
        for (d, (id, _)) in self.instances.iter().enumerate() {
            self.placements.insert(*id, mapping.assignment(d).to_vec());
        }
        // Reuse the decision's simulation of the adopted mapping when it
        // ran one — the event engine is the expensive part of the event
        // path.
        let report =
            decided_report.unwrap_or_else(|| self.engine.evaluate(&workload, &mapping));
        // A throttled board serves `derate ×` the nominal rates; at 1.0
        // the multiplication is exact and the timeline is bit-identical
        // to the pre-derate code path.
        let potentials: Vec<f64> = report
            .per_dnn
            .iter()
            .zip(&self.instances)
            .map(|(&thr, (_, m))| self.derate * thr / ideal_rate_of(&self.ideals, *m))
            .collect();
        let throughputs: Vec<f64> =
            report.per_dnn.iter().map(|&thr| self.derate * thr).collect();
        self.segment = Some(Segment {
            start: self.clock,
            stall,
            remapped,
            models: self.instances.iter().map(|(_, m)| *m).collect(),
            instances: self.instances.iter().map(|(id, _)| *id).collect(),
            potentials,
            throughputs,
        });
        assigned
    }

    /// Adds an externally-incurred stall (seconds) to the segment opened
    /// by the last [`RuntimeSession::apply`] — e.g. a fleet charging the
    /// weight transfer of a cross-shard migration onto the receiving
    /// board. No-op while no workload is running. Stall the segment
    /// cannot serve before it ends (e.g. another event lands at the same
    /// timestamp) carries into the next segment — charged stalls are
    /// conserved while the board stays busy.
    pub fn charge_stall(&mut self, seconds: f64) {
        assert!(seconds >= 0.0, "a stall cannot be negative");
        if let Some(seg) = &mut self.segment {
            seg.stall += seconds;
            seg.remapped = true;
        }
    }

    /// Closes the session at `horizon`: emits the open segment's samples
    /// up to it.
    pub fn finish(&mut self, horizon: f64) {
        self.advance_to(horizon);
        self.close_segment();
    }

    /// Emits the open segment's timeline points, now that the clock marks
    /// its end.
    fn close_segment(&mut self) {
        let Some(seg) = self.segment.take() else { return };
        let end = self.clock;
        // The stall this segment actually served; the remainder carries
        // into the next segment so a charge is never silently dropped
        // (and the emitted `migration_stall` is time that truly elapsed).
        let served = seg.stall.min((end - seg.start).max(0.0));
        self.pending_stall += seg.stall - served;
        let mut first = true;
        // A remap that moves weights stalls the pipelines: emit the stall
        // point, then resume steady-state samples after it.
        if served > 0.0 {
            self.timeline.push(TimelinePoint {
                time: seg.start,
                models: seg.models.clone(),
                instances: seg.instances.clone(),
                potentials: vec![0.0; seg.models.len()],
                throughputs: vec![0.0; seg.models.len()],
                migration_stall: served,
                span: served,
                remapped: seg.remapped,
            });
            first = false;
        }
        // Steady state held until the segment's end: emit sampled points.
        let mut s = seg.start + served;
        while s < end - 1e-9 {
            self.timeline.push(TimelinePoint {
                time: s,
                models: seg.models.clone(),
                instances: seg.instances.clone(),
                potentials: seg.potentials.clone(),
                throughputs: seg.throughputs.clone(),
                migration_stall: 0.0,
                span: (end - s).min(self.sample_dt),
                remapped: seg.remapped && first,
            });
            first = false;
            s += self.sample_dt;
        }
    }

    /// Scores a throughput report under the session's gain objective.
    fn gain_score(&self, workload: &Workload, per_dnn: &[f64], weights: &[f64]) -> f64 {
        match self.objective {
            GainObjective::AverageThroughput => {
                if per_dnn.is_empty() {
                    0.0
                } else {
                    per_dnn.iter().sum::<f64>() / per_dnn.len() as f64
                }
            }
            GainObjective::PriorityPotential => {
                weighted_potential(&self.ideals, workload, per_dnn, weights)
            }
        }
    }

    /// The migration-aware remap decision: keep the incumbent mapping when
    /// the candidate's predicted gain does not pay for the stall its
    /// weight moves and stem rebuilds cost within the expected residency
    /// window. Returns the adopted mapping, the stall (seconds) it
    /// charges, and — when the decision had to simulate — the adopted
    /// mapping's board report, so the caller does not re-run the event
    /// engine.
    fn decide(
        &self,
        workload: &Workload,
        incumbent: &[Option<Vec<ComponentId>>],
        candidate: Mapping,
        window: f64,
        mapper: &dyn WorkloadMapper,
    ) -> (Mapping, f64, Option<rankmap_sim::ThroughputReport>) {
        let cost = self.migration.cost(workload, incumbent, &candidate);
        if cost.is_free() {
            return (candidate, 0.0, None);
        }
        if !self.migration_aware {
            // Oblivious mode: adopt unconditionally, still pay the stall.
            return (candidate, cost.stall_seconds, None);
        }
        let full_incumbent: Option<Vec<Vec<ComponentId>>> =
            incumbent.iter().cloned().collect::<Option<Vec<_>>>();
        let Some(per_dnn) = full_incumbent else {
            // A fresh arrival forces a remap; survivors' moves still stall.
            return (candidate, cost.stall_seconds, None);
        };
        let incumbent_mapping = Mapping::new(per_dnn);
        // The integration clips the stall to the window (a longer stall
        // cannot silence more than the window); the *charge* returned is
        // the full cost — the session carries any remainder forward.
        let blocked = cost.stall_seconds.min(window);
        let weights = priorities_or_uniform(mapper, workload);
        // Integrated gain over the window: switching trades `blocked`
        // seconds of silence for the candidate's (hopefully higher) score.
        let inc_report = self.engine.evaluate(workload, &incumbent_mapping);
        let cand_report = self.engine.evaluate(workload, &candidate);
        let inc_score = self.gain_score(workload, &inc_report.per_dnn, &weights);
        let cand_score = self.gain_score(workload, &cand_report.per_dnn, &weights);
        if cand_score * (window - blocked) > inc_score * window {
            (candidate, cost.stall_seconds, Some(cand_report))
        } else {
            (incumbent_mapping, 0.0, Some(inc_report))
        }
    }

    /// The [`InstanceId`] the next arrival applied to this session will
    /// receive. Lets a log-ordered scheduler pin an admission's identity
    /// *before* the apply itself retires on a concurrent lane (see
    /// [`RuntimeSession::prepare_apply`]): ordinals are assigned strictly
    /// in apply order, so as long as no other apply lands on this session
    /// first, the pinned id is exact.
    pub fn peek_next_instance_id(&self) -> InstanceId {
        InstanceId::new(self.next_ordinal)
    }

    /// Runs [`RuntimeSession::advance_to`]`(at)` + [`RuntimeSession::apply`]
    /// as a **pure computation**: the expensive work (mapper remap, the
    /// migration-aware decision, event-engine evaluation) happens now, but
    /// the session is left exactly as it was — every mutation is captured
    /// into the returned [`PreparedApply`] instead. A later
    /// [`RuntimeSession::commit_apply`] installs the captured state in
    /// O(fields), with no recomputation; until then the session still
    /// answers queries for its *pre*-apply state.
    ///
    /// This is the mechanism behind the fleet's out-of-order apply lanes:
    /// prepares fan across shards in parallel (each lane owns its shard's
    /// session), while commits retire serially in log order — and a
    /// prepare invalidated by an intervening cross-shard decision is
    /// simply dropped, since nothing was mutated.
    ///
    /// The mapper *is* mutated (plan-cache insertions) — by design: the
    /// cache is content-keyed and decision-neutral, so warming it from a
    /// discarded prepare is harmless.
    pub fn prepare_apply(
        &mut self,
        at: f64,
        events: &[DynamicEvent],
        window_hint: f64,
        mapper: &mut dyn WorkloadMapper,
    ) -> PreparedApply {
        // Snapshot the small mutable core. `timeline` can be large, so it
        // is split at its current length instead of cloned.
        let pre_clock = self.clock;
        let pre_instances = self.instances.clone();
        let pre_placements = self.placements.clone();
        let pre_next_ordinal = self.next_ordinal;
        let pre_segment = self.segment.clone();
        let pre_pending_stall = self.pending_stall;
        let timeline_len = self.timeline.len();

        self.advance_to(at);
        let assigned = self.apply(events, window_hint, mapper);

        let new_points = self.timeline.split_off(timeline_len);
        let prepared = PreparedApply {
            assigned,
            clock: self.clock,
            derate: self.derate,
            instances: std::mem::replace(&mut self.instances, pre_instances),
            placements: std::mem::replace(&mut self.placements, pre_placements),
            next_ordinal: self.next_ordinal,
            segment: self.segment.take(),
            pending_stall: self.pending_stall,
            new_points,
        };
        self.clock = pre_clock;
        self.next_ordinal = pre_next_ordinal;
        self.segment = pre_segment;
        self.pending_stall = pre_pending_stall;
        prepared
    }

    /// Installs a [`PreparedApply`] captured by
    /// [`RuntimeSession::prepare_apply`] **on this same session, with no
    /// intervening applies** — the caller proves that (the fleet layer
    /// stamps prepares with the owning shard's epoch and discards on
    /// mismatch). Bit-identical to having run the apply eagerly: every
    /// captured field, including the derate in force at prepare time and
    /// the timeline points the apply's `close_segment` emitted, is
    /// installed verbatim. Returns the arrivals' assigned
    /// [`InstanceId`]s.
    pub fn commit_apply(&mut self, prepared: PreparedApply) -> Vec<InstanceId> {
        debug_assert!(
            prepared.clock >= self.clock - 1e-9,
            "a prepared apply cannot move the session clock backwards"
        );
        self.clock = prepared.clock;
        self.derate = prepared.derate;
        self.instances = prepared.instances;
        self.placements = prepared.placements;
        self.next_ordinal = prepared.next_ordinal;
        self.segment = prepared.segment;
        self.pending_stall = prepared.pending_stall;
        self.timeline.extend(prepared.new_points);
        prepared.assigned
    }
}

/// The captured effect of one [`RuntimeSession::apply`], produced by
/// [`RuntimeSession::prepare_apply`] without mutating the session and
/// installed later by [`RuntimeSession::commit_apply`]. Between the two
/// calls it is inert data (`Send`), so prepares can be computed on worker
/// threads and retired wherever log order demands.
pub struct PreparedApply {
    assigned: Vec<InstanceId>,
    clock: f64,
    derate: f64,
    instances: Vec<(InstanceId, ModelId)>,
    placements: HashMap<InstanceId, Vec<ComponentId>>,
    next_ordinal: u64,
    segment: Option<Segment>,
    pending_stall: f64,
    new_points: Vec<TimelinePoint>,
}

impl PreparedApply {
    /// The [`InstanceId`]s the apply's arrivals will receive on commit.
    pub fn assigned(&self) -> &[InstanceId] {
        &self.assigned
    }

    /// The post-apply live instances, in arrival order — what
    /// [`RuntimeSession::live`] will answer after commit.
    pub fn live(&self) -> &[(InstanceId, ModelId)] {
        &self.instances
    }

    /// The post-apply placement of an instance — what
    /// [`RuntimeSession::placement`] will answer after commit.
    pub fn placement(&self, id: InstanceId) -> Option<&[ComponentId]> {
        self.placements.get(&id).map(Vec::as_slice)
    }

    /// The derate factor in force when the apply was prepared (installed
    /// on commit, so a caller-side override survives the round trip).
    pub fn derate(&self) -> f64 {
        self.derate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::ManagerConfig;
    use crate::oracle::AnalyticalOracle;

    struct GpuOnly;

    impl WorkloadMapper for GpuOnly {
        fn name(&self) -> String {
            "all-gpu".into()
        }
        fn remap(&mut self, workload: &Workload) -> Mapping {
            Mapping::uniform(workload, rankmap_platform::ComponentId::new(0))
        }
    }

    fn arrivals() -> Vec<DynamicEvent> {
        vec![
            DynamicEvent::arrive(0.0, ModelId::AlexNet),
            DynamicEvent::arrive(100.0, ModelId::SqueezeNetV2),
            DynamicEvent::arrive(200.0, ModelId::ResNet50),
        ]
    }

    #[test]
    fn serving_state_is_send() {
        // The fleet executor's contract: sessions, mappers, and events can
        // move to worker threads. This fails to compile if interior
        // non-Send state (Rc, RefCell over !Send contents, raw pointers)
        // creeps into the serving path.
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<RuntimeSession<'static>>();
        assert_send::<RankMapMapper<'static, AnalyticalOracle<'static>>>();
        assert_send::<DynamicEvent>();
        assert_sync::<DynamicEvent>();
    }

    #[test]
    fn timeline_grows_with_arrivals() {
        let p = Platform::orange_pi_5();
        let rt = DynamicRuntime::new(&p, 50.0);
        let mut mapper = GpuOnly;
        let tl = rt.run(&arrivals(), &mut mapper, 300.0);
        assert!(!tl.is_empty());
        assert_eq!(tl.first().unwrap().models.len(), 1);
        assert_eq!(tl.last().unwrap().models.len(), 3);
        // Times strictly increase.
        for w in tl.windows(2) {
            assert!(w[1].time > w[0].time);
        }
    }

    #[test]
    fn first_dnn_alone_runs_near_ideal() {
        let p = Platform::orange_pi_5();
        let rt = DynamicRuntime::new(&p, 100.0);
        let mut mapper = GpuOnly;
        let tl = rt.run(&arrivals(), &mut mapper, 100.0);
        let first = &tl[0];
        assert!(
            first.potentials[0] > 0.9,
            "a lone DNN on the GPU should run near ideal: {}",
            first.potentials[0]
        );
    }

    #[test]
    fn departures_by_stable_id_shrink_workload() {
        let p = Platform::orange_pi_5();
        let rt = DynamicRuntime::new(&p, 50.0);
        let mut events = arrivals();
        // AlexNet was the first arrival: instance #0, wherever it sits.
        events.push(DynamicEvent::depart(250.0, InstanceId::new(0)));
        let mut mapper = GpuOnly;
        let tl = rt.run(&events, &mut mapper, 300.0);
        let last = tl.last().unwrap();
        assert_eq!(last.models.len(), 2);
        assert_eq!(last.models[0], ModelId::SqueezeNetV2);
        assert_eq!(last.instances, vec![InstanceId::new(1), InstanceId::new(2)]);
    }

    #[test]
    fn unknown_instance_departure_is_ignored() {
        let p = Platform::orange_pi_5();
        let rt = DynamicRuntime::new(&p, 50.0);
        let mut events = arrivals();
        events.push(DynamicEvent::depart(250.0, InstanceId::new(99)));
        let mut mapper = GpuOnly;
        let tl = rt.run(&events, &mut mapper, 300.0);
        assert_eq!(tl.last().unwrap().models.len(), 3);
    }

    #[test]
    fn prepared_apply_commits_bit_identically_and_discards_cleanly() {
        let p = Platform::orange_pi_5();
        let rt = DynamicRuntime::new(&p, 50.0);
        let steps: Vec<(f64, Vec<DynamicEvent>)> = vec![
            (0.0, vec![DynamicEvent::arrive(0.0, ModelId::AlexNet)]),
            (80.0, vec![DynamicEvent::arrive(80.0, ModelId::SqueezeNetV2)]),
            (160.0, vec![DynamicEvent::depart(160.0, InstanceId::new(0))]),
            (210.0, vec![DynamicEvent::arrive(210.0, ModelId::ResNet50)]),
        ];
        // The eager reference.
        let mut eager = rt.session();
        let mut mapper = GpuOnly;
        let mut eager_assigned = Vec::new();
        for (at, events) in &steps {
            eager.advance_to(*at);
            eager_assigned.extend(eager.apply(events, 50.0, &mut mapper));
        }
        eager.finish(300.0);
        // The same walk through prepare → commit, with a discarded decoy
        // prepare thrown in before each commit to prove prepares are pure.
        let mut lane = rt.session();
        let mut lane_assigned = Vec::new();
        for (at, events) in &steps {
            let decoy =
                lane.prepare_apply(*at, &[DynamicEvent::arrive(*at, ModelId::Vgg16)], 50.0, &mut mapper);
            drop(decoy);
            let pinned = lane.peek_next_instance_id();
            let prepared = lane.prepare_apply(*at, events, 50.0, &mut mapper);
            if matches!(events[0], DynamicEvent::Arrive { .. }) {
                // The pin taken before the prepare names the arrival's id.
                assert_eq!(prepared.assigned(), &[pinned]);
            } else {
                assert!(prepared.assigned().is_empty());
            }
            lane_assigned.extend(lane.commit_apply(prepared));
        }
        lane.finish(300.0);
        assert_eq!(eager_assigned, lane_assigned);
        assert_eq!(eager.live(), lane.live());
        for (id, _) in eager.live() {
            assert_eq!(eager.placement(*id), lane.placement(*id));
        }
        assert_eq!(eager.into_timeline(), lane.into_timeline());
    }

    #[test]
    fn set_priorities_reaches_the_mapper() {
        // The Fig.-10 regression: SetPriorities events must update the
        // mapper's mode, not vanish into a no-op match arm.
        struct Probe {
            modes: Vec<PriorityMode>,
        }
        impl WorkloadMapper for Probe {
            fn name(&self) -> String {
                "probe".into()
            }
            fn remap(&mut self, workload: &Workload) -> Mapping {
                Mapping::uniform(workload, rankmap_platform::ComponentId::new(0))
            }
            fn set_priorities(&mut self, mode: &PriorityMode) {
                self.modes.push(mode.clone());
            }
        }
        let p = Platform::orange_pi_5();
        let rt = DynamicRuntime::new(&p, 50.0);
        let events = vec![
            DynamicEvent::arrive(0.0, ModelId::AlexNet),
            DynamicEvent::arrive(0.0, ModelId::SqueezeNetV2),
            DynamicEvent::SetPriorities { at: 100.0, mode: PriorityMode::critical(2, 1) },
            DynamicEvent::SetPriorities { at: 200.0, mode: PriorityMode::Dynamic },
        ];
        let mut probe = Probe { modes: Vec::new() };
        let _ = rt.run(&events, &mut probe, 300.0);
        assert_eq!(
            probe.modes,
            vec![PriorityMode::critical(2, 1), PriorityMode::Dynamic],
            "every SetPriorities event must reach the mapper, in order"
        );
    }

    #[test]
    fn rankmap_mapper_applies_priority_changes() {
        let p = Platform::orange_pi_5();
        let oracle = AnalyticalOracle::new(&p);
        let mgr = RankMapManager::new(
            &p,
            &oracle,
            ManagerConfig { mcts_iterations: 100, warm_iterations: 40, ..Default::default() },
        );
        let mut mapper = RankMapMapper::new(mgr, PriorityMode::Dynamic, "RankMapS");
        let rt = DynamicRuntime::new(&p, 100.0);
        let events = vec![
            DynamicEvent::arrive(0.0, ModelId::AlexNet),
            DynamicEvent::arrive(0.0, ModelId::SqueezeNetV2),
            DynamicEvent::SetPriorities { at: 150.0, mode: PriorityMode::critical(2, 0) },
        ];
        let _ = rt.run(&events, &mut mapper, 300.0);
        assert_eq!(
            mapper.mode(),
            &PriorityMode::critical(2, 0),
            "the rank rotation must land in the RankMap mapper"
        );
    }

    #[test]
    fn stall_points_mark_migrations() {
        // A mapper that moves everything between two components at every
        // call forces migrations; the oblivious runtime must charge them.
        struct Flipper(usize);
        impl WorkloadMapper for Flipper {
            fn name(&self) -> String {
                "flipper".into()
            }
            fn remap(&mut self, workload: &Workload) -> Mapping {
                self.0 += 1;
                Mapping::uniform(workload, rankmap_platform::ComponentId::new(self.0 % 2))
            }
        }
        let p = Platform::orange_pi_5();
        let rt = DynamicRuntime::new(&p, 50.0).with_migration_awareness(false);
        let mut mapper = Flipper(0);
        let tl = rt.run(&arrivals(), &mut mapper, 300.0);
        let stalls: Vec<&TimelinePoint> =
            tl.iter().filter(|pt| pt.migration_stall > 0.0).collect();
        assert!(!stalls.is_empty(), "forced moves must surface as stall points");
        for s in &stalls {
            assert!(s.potentials.iter().all(|&x| x == 0.0), "stall points are silent");
            assert!(s.remapped);
        }
    }

    #[test]
    fn migration_awareness_rejects_unpaying_flips() {
        // The same flipper under the aware runtime: after the first
        // placement, flipping every component is all cost and no gain, so
        // the incumbent must be kept (no stall points after warm-up).
        struct Flipper(usize);
        impl WorkloadMapper for Flipper {
            fn name(&self) -> String {
                "flipper".into()
            }
            fn remap(&mut self, workload: &Workload) -> Mapping {
                self.0 += 1;
                Mapping::uniform(workload, rankmap_platform::ComponentId::new(self.0 % 2))
            }
        }
        let p = Platform::dual_cpu();
        let events = vec![
            DynamicEvent::arrive(0.0, ModelId::AlexNet),
            DynamicEvent::SetPriorities { at: 100.0, mode: PriorityMode::Dynamic },
            DynamicEvent::SetPriorities { at: 200.0, mode: PriorityMode::Dynamic },
        ];
        let aware = DynamicRuntime::new(&p, 50.0);
        let mut mapper = Flipper(0);
        let tl = aware.run(&events, &mut mapper, 300.0);
        // dual_cpu is symmetric: the flip can never pay for itself.
        assert!(
            tl.iter().skip(1).all(|pt| pt.migration_stall == 0.0),
            "aware runtime must keep the incumbent on symmetric components"
        );
    }

    #[test]
    fn stepwise_session_reproduces_run_exactly() {
        // The fleet contract: driving a session boundary-by-boundary must
        // produce the identical timeline `run` produces.
        let p = Platform::orange_pi_5();
        let rt = DynamicRuntime::new(&p, 50.0);
        let mut events = arrivals();
        events.push(DynamicEvent::depart(250.0, InstanceId::new(0)));
        let horizon = 300.0;
        let mut mapper_a = GpuOnly;
        let reference = rt.run(&events, &mut mapper_a, horizon);

        let mut mapper_b = GpuOnly;
        let mut session = rt.session();
        let mut idx = 0;
        let times: Vec<f64> = events.iter().map(DynamicEvent::at).collect();
        while idx < events.len() {
            let t = times[idx];
            let end = idx + events[idx..].iter().take_while(|e| e.at() <= t + 1e-9).count();
            let next = times.get(end).copied().unwrap_or(horizon);
            session.advance_to(t);
            session.apply(&events[idx..end], next - t, &mut mapper_b);
            idx = end;
        }
        session.finish(horizon);
        assert_eq!(session.into_timeline(), reference);
    }

    #[test]
    fn session_reports_assigned_instance_ids_and_live_set() {
        let p = Platform::orange_pi_5();
        let rt = DynamicRuntime::new(&p, 50.0);
        let mut session = rt.session();
        let mut mapper = GpuOnly;
        let a = session.apply(
            &[
                DynamicEvent::arrive(0.0, ModelId::AlexNet),
                DynamicEvent::arrive(0.0, ModelId::SqueezeNetV2),
            ],
            100.0,
            &mut mapper,
        );
        assert_eq!(a, vec![InstanceId::new(0), InstanceId::new(1)]);
        assert_eq!(session.live().len(), 2);
        assert!(session.placement(InstanceId::new(0)).is_some());
        session.advance_to(100.0);
        let b = session.apply(
            &[DynamicEvent::depart(100.0, InstanceId::new(0))],
            100.0,
            &mut mapper,
        );
        assert!(b.is_empty());
        assert_eq!(session.live(), &[(InstanceId::new(1), ModelId::SqueezeNetV2)]);
        assert!(session.placement(InstanceId::new(0)).is_none());
        session.finish(200.0);
        assert!(!session.timeline().is_empty());
    }

    #[test]
    fn charged_stall_survives_a_same_time_event() {
        // charge_stall on a segment that another event closes at the
        // identical timestamp must carry into the next segment — a
        // cross-shard transfer cannot vanish from the timeline.
        let p = Platform::orange_pi_5();
        let rt = DynamicRuntime::new(&p, 50.0);
        let mut session = rt.session();
        let mut mapper = GpuOnly;
        session.apply(&[DynamicEvent::arrive(0.0, ModelId::AlexNet)], 100.0, &mut mapper);
        session.charge_stall(0.25);
        session.apply(&[DynamicEvent::arrive(0.0, ModelId::SqueezeNetV2)], 100.0, &mut mapper);
        session.finish(100.0);
        let total: f64 = session.timeline().iter().map(|pt| pt.migration_stall).sum();
        assert!(
            (total - 0.25).abs() < 1e-9,
            "charged stall must be conserved across segments: {total}"
        );
        assert!(
            session
                .timeline()
                .iter()
                .filter(|pt| pt.migration_stall > 0.0)
                .all(|pt| pt.remapped),
            "a carried stall point still marks the migration that caused it"
        );
    }

    #[test]
    fn stem_rebuild_charge_flips_a_borderline_remap_decision() {
        // The ROADMAP item: charging the estimator's compiled-stem rebuild
        // (not just weight re-staging) must tighten the remap decision.
        // Construct the borderline window analytically: a move that pays
        // for its weight transfer but not for weights + stem rebuild.
        struct Script(usize);
        impl WorkloadMapper for Script {
            fn name(&self) -> String {
                "script".into()
            }
            fn remap(&mut self, workload: &Workload) -> Mapping {
                self.0 += 1;
                if self.0 == 1 {
                    // Start on the little cluster...
                    Mapping::uniform(workload, ComponentId::new(2))
                } else {
                    // ...then insist on moving to the GPU.
                    Mapping::uniform(workload, ComponentId::new(0))
                }
            }
        }
        let p = Platform::orange_pi_5();
        let w = Workload::from_ids([ModelId::AlexNet]);
        let engine = EventEngine::quick(&p);
        let little = Mapping::uniform(&w, ComponentId::new(2));
        let gpu = Mapping::uniform(&w, ComponentId::new(0));
        let inc = engine.evaluate(&w, &little).average();
        let cand = engine.evaluate(&w, &gpu).average();
        assert!(cand > inc, "the GPU must beat the little cluster for AlexNet");
        let weight_only = MigrationModel::new(&p)
            .with_stem_rebuild(0.0)
            .cost_between(&w, &little, &gpu)
            .stall_seconds;
        let full = MigrationModel::new(&p).cost_between(&w, &little, &gpu).stall_seconds;
        assert!(full > weight_only);
        // Adopt iff cand·(W − stall) > inc·W  ⟺  W > stall·cand/(cand−inc):
        // pick W between the two break-even points so only the stem charge
        // flips the decision.
        let w_lo = weight_only * cand / (cand - inc);
        let w_hi = full * cand / (cand - inc);
        let window = 0.5 * (w_lo + w_hi);
        let t1 = 1.0;
        let events = vec![
            DynamicEvent::arrive(0.0, ModelId::AlexNet),
            DynamicEvent::SetPriorities { at: t1, mode: PriorityMode::Dynamic },
            DynamicEvent::SetPriorities { at: t1 + window, mode: PriorityMode::Dynamic },
        ];
        let horizon = t1 + 2.0 * window;
        let stalled_at_t1 = |rt: DynamicRuntime<'_>| {
            let tl = rt.run(&events, &mut Script(0), horizon);
            tl.iter().any(|pt| pt.migration_stall > 0.0 && (pt.time - t1).abs() < 1e-9)
        };
        assert!(
            stalled_at_t1(DynamicRuntime::new(&p, 1_000.0).with_stem_rebuild(0.0)),
            "under the weight-only model the move pays for itself and is adopted"
        );
        assert!(
            !stalled_at_t1(DynamicRuntime::new(&p, 1_000.0)),
            "charging the stem rebuild must flip the borderline decision to keep"
        );
    }

    #[test]
    fn priority_weighted_gain_objective_follows_the_critical_dnn() {
        // Two DNNs; a candidate that helps the critical DNN at the expense
        // of raw average throughput. The PriorityPotential objective must
        // adopt it while AverageThroughput keeps the incumbent.
        struct Script {
            calls: usize,
            first: Mapping,
            second: Mapping,
            mode: PriorityMode,
        }
        impl WorkloadMapper for Script {
            fn name(&self) -> String {
                "script".into()
            }
            fn remap(&mut self, _workload: &Workload) -> Mapping {
                self.calls += 1;
                if self.calls == 1 { self.first.clone() } else { self.second.clone() }
            }
            fn set_priorities(&mut self, mode: &PriorityMode) {
                self.mode = mode.clone();
            }
            fn priorities(&self, workload: &Workload) -> Option<Vec<f64>> {
                Some(self.mode.vector(workload))
            }
        }
        let p = Platform::orange_pi_5();
        let w = Workload::from_ids([ModelId::InceptionV4, ModelId::SqueezeNetV2]);
        let engine = EventEngine::quick(&p);
        // Incumbent: SqueezeNet owns the GPU, heavy Inception sits on the
        // big cluster — a raw-average throughput monster. Candidate: swap
        // them (Inception to the GPU, SqueezeNet to the little cluster) —
        // the critical Inception reaches full potential, the system's raw
        // average drops.
        let incumbent = Mapping::new(vec![
            vec![ComponentId::new(1); w.models()[0].unit_count()],
            vec![ComponentId::new(0); w.models()[1].unit_count()],
        ]);
        let candidate = Mapping::new(vec![
            vec![ComponentId::new(0); w.models()[0].unit_count()],
            vec![ComponentId::new(2); w.models()[1].unit_count()],
        ]);
        let inc_r = engine.evaluate(&w, &incumbent);
        let cand_r = engine.evaluate(&w, &candidate);
        assert!(
            cand_r.average() < inc_r.average(),
            "the candidate must lose on raw average for this A/B to bite: {} vs {}",
            cand_r.average(),
            inc_r.average()
        );
        let events = vec![
            DynamicEvent::arrive(0.0, ModelId::InceptionV4),
            DynamicEvent::arrive(0.0, ModelId::SqueezeNetV2),
            // A long window so any stall is irrelevant to the comparison.
            DynamicEvent::SetPriorities { at: 100.0, mode: PriorityMode::critical(2, 0) },
        ];
        let script = || Script {
            calls: 0,
            first: incumbent.clone(),
            second: candidate.clone(),
            mode: PriorityMode::critical(2, 0),
        };
        let adopted = |rt: DynamicRuntime<'_>| {
            let tl = rt.run(&events, &mut script(), 10_000.0);
            tl.iter().any(|pt| pt.time >= 100.0 && pt.migration_stall > 0.0)
        };
        assert!(
            adopted(DynamicRuntime::new(&p, 5_000.0)),
            "the potential objective must pay the stall to lift the critical DNN"
        );
        assert!(
            !adopted(
                DynamicRuntime::new(&p, 5_000.0)
                    .with_gain_objective(GainObjective::AverageThroughput)
            ),
            "the legacy raw-average objective must keep the GPU pileup"
        );
    }

    #[test]
    fn recurring_workload_set_hits_the_plan_cache_in_the_serving_path() {
        // {AlexNet, SqueezeNet} runs, SqueezeNet departs, then re-arrives:
        // the second {AlexNet, SqueezeNet} segment must be answered from
        // the plan cache (the warm remap of the first segment fed it).
        let p = Platform::orange_pi_5();
        let oracle = AnalyticalOracle::new(&p);
        let mgr = RankMapManager::new(
            &p,
            &oracle,
            ManagerConfig { mcts_iterations: 100, warm_iterations: 40, ..Default::default() },
        );
        let mut mapper = RankMapMapper::new(mgr, PriorityMode::Dynamic, "RankMapD");
        let rt = DynamicRuntime::new(&p, 50.0);
        let events = vec![
            DynamicEvent::arrive(0.0, ModelId::AlexNet),
            DynamicEvent::arrive(100.0, ModelId::SqueezeNetV2),
            DynamicEvent::depart(200.0, InstanceId::new(1)),
            DynamicEvent::arrive(300.0, ModelId::SqueezeNetV2),
        ];
        let _ = rt.run(&events, &mut mapper, 400.0);
        let stats = mapper.manager().plan_cache_stats();
        assert!(
            stats.hits >= 1,
            "the re-arrived workload set must be served from the plan cache"
        );
    }

    #[test]
    fn rankmap_mapper_integrates() {
        let p = Platform::orange_pi_5();
        let oracle = AnalyticalOracle::new(&p);
        let mgr = RankMapManager::new(
            &p,
            &oracle,
            ManagerConfig { mcts_iterations: 150, ..Default::default() },
        );
        let mut mapper = RankMapMapper::new(mgr, PriorityMode::Dynamic, "RankMapD");
        let rt = DynamicRuntime::new(&p, 100.0);
        let tl = rt.run(&arrivals(), &mut mapper, 300.0);
        assert_eq!(mapper.name(), "RankMapD");
        assert!(!tl.is_empty());
        // No DNN should be starved by RankMap in this light scenario
        // (stall points are the board moving weights, not starvation).
        for point in tl.iter().filter(|pt| pt.migration_stall == 0.0) {
            for &pot in &point.potentials {
                assert!(pot > rankmap_sim::STARVATION_POTENTIAL, "starved at {pot}");
            }
        }
    }
}
