//! Scenario generator: seeded stochastic event streams for the dynamic
//! runtime — Poisson arrivals, exponential lifetimes, heavy/light model
//! mixes, and priority churn.
//!
//! The generator and the runtime share one contract: the `k`-th
//! [`DynamicEvent::Arrive`] of the stream owns [`InstanceId::new`]`(k)`, so
//! the generated departures always name live instances. Generated streams
//! are sorted by time and deterministic given the seed — the stress tests
//! and the `runtime_remap` bench replay identical scenarios.

use crate::priority::PriorityMode;
use crate::runtime::{DynamicEvent, InstanceId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rankmap_models::ModelId;

/// Which part of the model pool arrivals draw from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MixProfile {
    /// The lighter half of the pool by FLOPs (SqueezeNet-class).
    Light,
    /// The heavier half of the pool by FLOPs (VGG/Inception-class).
    Heavy,
    /// The whole pool, uniformly.
    Mixed,
}

/// Scenario-generation configuration.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Scenario length in seconds.
    pub horizon: f64,
    /// Poisson arrival rate (expected arrivals per second).
    pub arrival_rate: f64,
    /// Mean DNN lifetime in seconds (exponential); departures past the
    /// horizon are dropped (the instance runs out the scenario).
    pub mean_lifetime: f64,
    /// Arrivals are rejected (no event emitted) while this many instances
    /// are already live — the admission-control backstop.
    pub max_concurrent: usize,
    /// Model pool to draw from (filtered by `mix`).
    pub pool: Vec<ModelId>,
    /// Heavy/light filter over the pool.
    pub mix: MixProfile,
    /// Poisson rate of user priority changes (events per second); each
    /// rotates the critical DNN or reverts to dynamic ranks.
    pub priority_churn_rate: f64,
    /// RNG seed (generation is deterministic given the seed).
    pub seed: u64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        Self {
            horizon: 600.0,
            arrival_rate: 1.0 / 60.0,
            mean_lifetime: 240.0,
            max_concurrent: 5,
            pool: ModelId::paper_pool(),
            mix: MixProfile::Mixed,
            priority_churn_rate: 0.0,
            seed: 0,
        }
    }
}

/// Draws an exponential inter-event time with the given rate. Shared with
/// the fleet load generator (`rankmap-fleet`), which layers bursty and
/// diurnal arrival processes on the same primitives.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    let u: f64 = rng.gen_range(1.0e-12..1.0);
    -u.ln() / rate
}

/// Splits the pool by total FLOPs and returns the slice the mix allows.
/// Shared with the fleet load generator.
pub fn mix_pool(pool: &[ModelId], mix: MixProfile) -> Vec<ModelId> {
    if pool.len() <= 1 || mix == MixProfile::Mixed {
        return pool.to_vec();
    }
    let mut by_flops: Vec<(f64, ModelId)> =
        pool.iter().map(|&id| (id.build().total_flops(), id)).collect();
    by_flops.sort_by(|a, b| a.0.total_cmp(&b.0));
    let half = by_flops.len() / 2;
    match mix {
        MixProfile::Light => by_flops[..half.max(1)].iter().map(|&(_, id)| id).collect(),
        MixProfile::Heavy => by_flops[half..].iter().map(|&(_, id)| id).collect(),
        MixProfile::Mixed => unreachable!(),
    }
}

/// Generates a sorted, valid event stream for [`ScenarioConfig`].
///
/// Guarantees (property-tested in `crates/core/tests/runtime_stress.rs`):
/// event times are non-decreasing and within `[0, horizon]`; every
/// departure names an instance that arrived strictly earlier and departs
/// exactly once; instance ids are dense in arrival order.
///
/// # Panics
///
/// Panics if the (mix-filtered) pool is empty, `horizon <= 0`, or
/// `arrival_rate <= 0`.
pub fn generate(config: &ScenarioConfig) -> Vec<DynamicEvent> {
    assert!(config.horizon > 0.0, "horizon must be positive");
    assert!(config.arrival_rate > 0.0, "arrival rate must be positive");
    let pool = mix_pool(&config.pool, config.mix);
    assert!(!pool.is_empty(), "scenario pool must not be empty");
    let mut rng = StdRng::seed_from_u64(config.seed);

    // (time, live-delta, event): generate arrivals + matching departures,
    // tracking the live set so admission control and churn sizes are
    // consistent with what the runtime will replay.
    let mut events: Vec<DynamicEvent> = Vec::new();
    let mut departures: Vec<(f64, InstanceId)> = Vec::new();
    let mut t = 0.0;
    let mut ordinal = 0u64;
    loop {
        t += exponential(&mut rng, config.arrival_rate);
        if t >= config.horizon {
            break;
        }
        // Instances whose departure falls before this arrival are no
        // longer live for admission control.
        let live = departures.iter().filter(|&&(dt, _)| dt > t).count()
            + (ordinal as usize - departures.len());
        if live >= config.max_concurrent {
            continue;
        }
        let model = pool[rng.gen_range(0..pool.len())];
        events.push(DynamicEvent::arrive(t, model));
        let id = InstanceId::new(ordinal);
        ordinal += 1;
        if config.mean_lifetime > 0.0 {
            let leave = t + exponential(&mut rng, 1.0 / config.mean_lifetime);
            if leave < config.horizon {
                departures.push((leave, id));
            }
        }
    }
    for &(at, id) in &departures {
        events.push(DynamicEvent::depart(at, id));
    }

    // Priority churn: rotate the critical rank among however many DNNs
    // are live at the churn instant, or fall back to dynamic ranks.
    if config.priority_churn_rate > 0.0 {
        let mut ct = 0.0;
        let mut rotation = 0usize;
        loop {
            ct += exponential(&mut rng, config.priority_churn_rate);
            if ct >= config.horizon {
                break;
            }
            let live = events
                .iter()
                .filter(|e| {
                    matches!(e, DynamicEvent::Arrive { at, .. } if *at <= ct)
                })
                .count()
                - departures.iter().filter(|&&(dt, _)| dt <= ct).count();
            let mode = if live == 0 || rotation % (live + 1) == live {
                PriorityMode::Dynamic
            } else {
                PriorityMode::critical(live, rotation % live)
            };
            rotation += 1;
            events.push(DynamicEvent::SetPriorities { at: ct, mode });
        }
    }

    events.sort_by(|a, b| a.at().total_cmp(&b.at()));
    events
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let cfg = ScenarioConfig { priority_churn_rate: 1.0 / 120.0, ..Default::default() };
        assert_eq!(generate(&cfg), generate(&cfg));
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&ScenarioConfig::default());
        let b = generate(&ScenarioConfig { seed: 1, ..Default::default() });
        assert_ne!(a, b);
    }

    #[test]
    fn heavy_mix_draws_heavier_models_than_light() {
        let flops_of = |events: &[DynamicEvent]| -> f64 {
            let arrivals: Vec<f64> = events
                .iter()
                .filter_map(|e| match e {
                    DynamicEvent::Arrive { model, .. } => Some(model.build().total_flops()),
                    _ => None,
                })
                .collect();
            arrivals.iter().sum::<f64>() / arrivals.len().max(1) as f64
        };
        let mk = |mix| {
            generate(&ScenarioConfig {
                horizon: 3_000.0,
                arrival_rate: 1.0 / 30.0,
                mix,
                ..Default::default()
            })
        };
        assert!(flops_of(&mk(MixProfile::Heavy)) > 2.0 * flops_of(&mk(MixProfile::Light)));
    }

    #[test]
    fn respects_admission_limit() {
        let cfg = ScenarioConfig {
            horizon: 2_000.0,
            arrival_rate: 1.0 / 10.0,
            mean_lifetime: 1.0e9, // nobody leaves
            max_concurrent: 3,
            ..Default::default()
        };
        let events = generate(&cfg);
        let arrivals = events
            .iter()
            .filter(|e| matches!(e, DynamicEvent::Arrive { .. }))
            .count();
        assert_eq!(arrivals, 3, "admission control must cap the live set");
    }
}
