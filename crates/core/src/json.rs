//! Minimal JSON reader/writer for the workspace's persistence formats.
//!
//! The build environment is offline (no `serde`), so the plan-cache
//! snapshot ([`crate::plan_cache::PlanCache::to_json`]) and the fleet
//! trace format (`rankmap-fleet`) serialize through this hand-rolled
//! module instead. It supports exactly the JSON the workspace emits:
//! objects, arrays, strings (with `\uXXXX` escapes), `f64`/`u64` numbers,
//! booleans, and `null`.
//!
//! Numbers round-trip losslessly: Rust's `f64` `Display` is
//! shortest-roundtrip, so `parse(format!("{v}"))` recovers the exact
//! bits for every finite value. Non-finite floats have no JSON
//! representation and serialize as `null` (typed readers then fail
//! loudly instead of producing an unparseable file) — encode them as
//! bit patterns where exactness matters (see the plan cache).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`; integers up to 2^53 are exact —
    /// use [`Json::as_u64`] for values written from integers).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are sorted (BTreeMap) so serialization is
    /// deterministic.
    Obj(BTreeMap<String, Json>),
}

/// A parse or validation failure: what went wrong and where.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input, or [`JsonError::SEMANTIC`] for errors
    /// about valid JSON whose *content* is wrong (a platform mismatch,
    /// say) — those print without a misleading byte position.
    pub offset: usize,
}

impl JsonError {
    /// Offset sentinel for semantic (non-positional) errors.
    pub const SEMANTIC: usize = usize::MAX;

    /// A semantic error: the JSON parsed fine, its content is invalid.
    pub fn semantic(message: impl Into<String>) -> Self {
        Self { message: message.into(), offset: Self::SEMANTIC }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.offset == Self::SEMANTIC {
            write!(f, "{}", self.message)
        } else {
            write!(f, "JSON error at byte {}: {}", self.offset, self.message)
        }
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// The value as an object, if it is one.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer number that
    /// fits `f64` exactly (≤ 2^53).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9.007199254740992e15 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Convenience: member `key` of an object value.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj().and_then(|m| m.get(key))
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                // JSON has no representation for non-finite values; emit
                // null rather than a token (`inf`/`NaN`) that no parser —
                // including this module's — accepts. Typed readers then
                // see a loud type mismatch instead of an unreadable file.
                if !n.is_finite() {
                    out.push_str("null");
                    return;
                }
                // Shortest-roundtrip formatting; integers print bare
                // (except -0.0, whose sign the integer path would drop).
                if n.fract() == 0.0 && n.abs() < 1.0e15 && !(*n == 0.0 && n.is_sign_negative())
                {
                    let _ = fmt::Write::write_fmt(out, format_args!("{}", *n as i64));
                } else {
                    let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Compact serialization (no whitespace, sorted object keys) —
/// `value.to_string()` is the snapshot format.
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

/// Builds an object from key/value pairs (insertion order is irrelevant —
/// objects serialize with sorted keys).
pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Nesting ceiling: the parser recurses per container level, so corrupt
/// input of repeated `[`/`{` must error before it can exhaust the stack.
/// The workspace's formats nest 3–4 levels deep.
const MAX_DEPTH: usize = 128;

/// Parses one JSON value from `input` (trailing whitespace allowed,
/// anything else is an error; nesting deeper than 128 levels is
/// rejected).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0, depth: 0 };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { message: message.to_string(), offset: self.pos }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn enter(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        Ok(())
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.enter()?;
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.enter()?;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    /// Reads 4 hex digits of a `\uXXXX` escape.
    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            let ch = match code {
                                // A high surrogate must pair with a low
                                // one: non-BMP characters (emoji in a
                                // trace label, say) can only be escaped
                                // this way by standard serializers.
                                0xD800..=0xDBFF => {
                                    if self.peek() != Some(b'\\')
                                        || self.bytes.get(self.pos + 1) != Some(&b'u')
                                    {
                                        return Err(self.err("unpaired high surrogate"));
                                    }
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    if !(0xDC00..=0xDFFF).contains(&low) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let scalar =
                                        0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(scalar)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                }
                                0xDC00..=0xDFFF => {
                                    return Err(self.err("unpaired low surrogate"))
                                }
                                _ => char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?,
                            };
                            out.push(ch);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting at c.
                    let start = self.pos - 1;
                    let len = utf8_len(c);
                    if start + len > self.bytes.len() {
                        return Err(self.err("invalid UTF-8 in string"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..start + len])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .ok()
            // An overflowing literal (1e999) parses to inf; accepting it
            // would break the finite-Num invariant and re-serialize to a
            // token this parser itself rejects.
            .filter(|n| n.is_finite())
            .map(Json::Num)
            .ok_or_else(|| JsonError {
                message: format!("invalid number '{text}'"),
                offset: start,
            })
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_values() {
        let v = obj([
            ("name", Json::Str("fleet".into())),
            ("count", Json::Num(3.0)),
            ("rates", Json::Arr(vec![Json::Num(0.5), Json::Num(1.25e-3)])),
            ("on", Json::Bool(true)),
            ("none", Json::Null),
        ]);
        let text = v.to_string();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn floats_roundtrip_bit_exactly() {
        for &x in &[0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 12345.6789e-200, -0.0] {
            let text = Json::Num(x).to_string();
            let back = parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} mangled through {text}");
        }
    }

    #[test]
    fn integers_print_bare() {
        assert_eq!(Json::Num(42.0).to_string(), "42");
        assert_eq!(Json::Num(-7.0).to_string(), "-7");
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "line\nbreak \"quoted\" back\\slash\ttab ünïcode";
        let text = Json::Str(s.into()).to_string();
        assert_eq!(parse(&text).unwrap().as_str().unwrap(), s);
    }

    #[test]
    fn surrogate_pairs_decode_to_non_bmp_characters() {
        // Standard serializers (Python json.dumps, serde default ASCII
        // mode) escape non-BMP characters as surrogate pairs.
        let v = parse("\"\\ud83d\\ude80-run\"").unwrap();
        assert_eq!(v.as_str().unwrap(), "🚀-run");
        assert!(parse("\"\\ud83d\"").is_err(), "lone high surrogate");
        assert!(parse("\"\\ude80\"").is_err(), "lone low surrogate");
        assert!(parse("\"\\ud83d\\u0041\"").is_err(), "bad low half");
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        // ...which parses back, just not as a number.
        assert_eq!(parse(&Json::Num(f64::NAN).to_string()).unwrap(), Json::Null);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        let bomb = "[".repeat(100_000);
        let err = parse(&bomb).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
        // Balanced-but-deep input is rejected the same way.
        let deep = format!("{}{}", "[".repeat(200), "]".repeat(200));
        assert!(parse(&deep).is_err());
        // Sane depths still parse.
        let ok = format!("{}1{}", "[".repeat(20), "]".repeat(20));
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn overflowing_number_literals_are_rejected() {
        assert!(parse("1e999").is_err());
        assert!(parse("-1e999").is_err());
        assert!(parse("1e308").is_ok(), "large finite values still parse");
    }

    #[test]
    fn u64_accessor_guards_range_and_fraction() {
        assert_eq!(parse("9007199254740992").unwrap().as_u64(), Some(1u64 << 53));
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
    }

    #[test]
    fn object_keys_sorted_deterministically() {
        let a = parse(r#"{"b":1,"a":2}"#).unwrap();
        let b = parse(r#"{"a":2,"b":1}"#).unwrap();
        assert_eq!(a.to_string(), b.to_string());
    }
}
