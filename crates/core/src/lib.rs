//! RankMap: a priority-aware multi-DNN manager for heterogeneous embedded
//! devices (DATE 2025 reproduction).
//!
//! This crate glues the substrates together into the system the paper
//! describes:
//!
//! * **Priorities** (§IV-B): static ranks supplied by the user
//!   (RankMap-S) or dynamic ranks derived from each DNN's computational
//!   profile (RankMap-D) — [`priority`].
//! * **Reward** (§IV-E, Fig. 4): priority-weighted throughput with a
//!   starvation threshold that disqualifies any mapping predicted to
//!   throttle a DNN — [`reward`].
//! * **Throughput oracles**: the trained multi-task estimator
//!   ([`oracle::LearnedOracle`]) or the analytical contention model
//!   ([`oracle::AnalyticalOracle`], an ablation the paper's framework
//!   would call a "profiling-free" variant).
//! * **The manager** ([`manager::RankMapManager`]): Monte-Carlo Tree
//!   Search over the unit-to-component assignment space with the oracle as
//!   simulation feedback.
//! * **Dataset & training** ([`dataset`], [`train`]): the §V protocol —
//!   random workloads labelled on the (simulated) board, 90/10 split,
//!   VQ-VAE + estimator training with channel-shuffle augmentation.
//! * **Dynamic runtime** ([`runtime`]): DNN arrivals/departures and
//!   priority changes over time, re-mapping at every event (Fig. 8/10).
//! * **Metrics** ([`metrics`]): normalized throughput `T`, potential `P`,
//!   Pearson correlation, starvation counts.
//!
//! # Quickstart
//!
//! ```no_run
//! use rankmap_core::prelude::*;
//!
//! let platform = Platform::orange_pi_5();
//! let workload = Workload::from_ids([ModelId::AlexNet, ModelId::ResNet50]);
//! let oracle = AnalyticalOracle::new(&platform);
//! let manager = RankMapManager::new(&platform, &oracle, ManagerConfig::default());
//! let plan = manager.map(&workload, &PriorityMode::Dynamic);
//! println!("{}", plan.mapping);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod json;
pub mod manager;
pub mod metrics;
pub mod oracle;
pub mod plan_cache;
pub mod priority;
pub mod reward;
pub mod runtime;
pub mod scenario;
pub mod train;

/// One-stop imports for examples and downstream binaries.
pub mod prelude {
    pub use crate::manager::{ManagerConfig, MappingPlan, RankMapManager};
    pub use crate::metrics;
    pub use crate::oracle::{AnalyticalOracle, LearnedOracle, ThroughputOracle};
    pub use crate::plan_cache::PlanCache;
    pub use crate::priority::PriorityMode;
    pub use crate::reward::{RewardSpec, StarvationThreshold};
    pub use crate::runtime::{
        timeline_average_potential, DynamicEvent, DynamicRuntime, GainObjective, InstanceId,
        RankMapMapper, RuntimeSession, TimelinePoint, WorkloadMapper,
    };
    pub use crate::scenario::{MixProfile, ScenarioConfig};
    pub use crate::train::{Fidelity, TrainedArtifacts};
    pub use rankmap_models::ModelId;
    pub use rankmap_platform::{ComponentId, ComponentKind, Platform};
    pub use rankmap_sim::{
        AnalyticalEngine, EventEngine, Mapping, MigrationCost, MigrationModel,
        ThroughputReport, Workload, STARVATION_POTENTIAL,
    };
}
