//! The priority-weighted reward with starvation disqualification (Fig. 4).

/// The starvation threshold `th`: any mapping whose predicted throughput
/// for some DNN falls below it is disqualified from the solution space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StarvationThreshold {
    /// Absolute floor in inferences/second (the paper's Fig. 4 example
    /// uses `th = 3 inf/s`).
    Absolute(f64),
    /// Per-DNN floor as a fraction of its isolated-on-GPU ideal rate —
    /// scales sanely across models whose ideals span 4–70 inf/s.
    FractionOfIdeal(f64),
}

impl Default for StarvationThreshold {
    fn default() -> Self {
        StarvationThreshold::FractionOfIdeal(0.05)
    }
}

impl StarvationThreshold {
    /// The floor for DNN `i`, given its ideal rate.
    pub fn floor(&self, ideal: f64) -> f64 {
        match self {
            StarvationThreshold::Absolute(v) => *v,
            StarvationThreshold::FractionOfIdeal(f) => f * ideal,
        }
    }
}

/// Reward specification: priority vector + threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct RewardSpec {
    /// Normalized priority vector `p`.
    pub priorities: Vec<f64>,
    /// Starvation threshold `th`.
    pub threshold: StarvationThreshold,
    /// Per-DNN ideal rates (needed by fractional thresholds and to weight
    /// throughputs comparably).
    pub ideals: Vec<f64>,
}

/// The value used for disqualified mappings (a "large negative reward").
pub const DISQUALIFIED: f64 = f64::NEG_INFINITY;

impl RewardSpec {
    /// Creates a reward spec.
    ///
    /// # Panics
    ///
    /// Panics if lengths mismatch.
    pub fn new(priorities: Vec<f64>, threshold: StarvationThreshold, ideals: Vec<f64>) -> Self {
        assert_eq!(priorities.len(), ideals.len(), "priority/ideal length mismatch");
        Self { priorities, threshold, ideals }
    }

    /// Whether a throughput vector passes the starvation check
    /// (`O(M)ᵢ > th ∀ i`).
    pub fn qualifies(&self, throughputs: &[f64]) -> bool {
        throughputs
            .iter()
            .zip(&self.ideals)
            .all(|(&t, &ideal)| t > self.threshold.floor(ideal))
    }

    /// The paper's reward: `O(M)ᵀ · p` if all DNNs clear the threshold,
    /// else [`DISQUALIFIED`]. Throughputs are first normalized by the
    /// ideal rates (potential throughput), so one 60-inf/s SqueezeNet
    /// cannot drown out four starved heavyweights.
    ///
    /// # Panics
    ///
    /// Panics if `throughputs` length mismatches the spec.
    pub fn reward(&self, throughputs: &[f64]) -> f64 {
        assert_eq!(throughputs.len(), self.priorities.len(), "throughput length mismatch");
        if !self.qualifies(throughputs) {
            return DISQUALIFIED;
        }
        throughputs
            .iter()
            .zip(&self.ideals)
            .zip(&self.priorities)
            .map(|((&t, &ideal), &p)| {
                let potential = if ideal > 0.0 { t / ideal } else { 0.0 };
                potential * p
            })
            .sum()
    }

    /// Fallback score when *no* qualifying mapping exists: the minimum
    /// potential across DNNs (maximizing it fights starvation first), with
    /// the weighted sum as a tie-breaker.
    pub fn fallback_score(&self, throughputs: &[f64]) -> f64 {
        let min_pot = throughputs
            .iter()
            .zip(&self.ideals)
            .map(|(&t, &i)| if i > 0.0 { t / i } else { 0.0 })
            .fold(f64::INFINITY, f64::min);
        let weighted: f64 = throughputs
            .iter()
            .zip(&self.ideals)
            .zip(&self.priorities)
            .map(|((&t, &i), &p)| if i > 0.0 { t / i * p } else { 0.0 })
            .sum();
        min_pot * 1e3 + weighted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> RewardSpec {
        RewardSpec::new(
            vec![0.6, 0.1, 0.2, 0.1],
            StarvationThreshold::Absolute(3.0),
            vec![10.0, 10.0, 10.0, 10.0],
        )
    }

    #[test]
    fn figure4_disqualification() {
        // Mapping 1 from Fig. 4: one DNN below th=3 → -∞.
        let s = spec();
        let r = s.reward(&[6.0, 9.0, 2.0, 8.0]);
        assert_eq!(r, DISQUALIFIED);
    }

    #[test]
    fn figure4_qualified_weighted_sum() {
        // Mapping 2 from Fig. 4: all above th → weighted sum.
        let s = spec();
        let r = s.reward(&[5.0, 7.0, 4.0, 7.0]);
        // Potentials: .5,.7,.4,.7 weighted by p: .3+.07+.08+.07 = .52
        assert!((r - 0.52).abs() < 1e-9);
    }

    #[test]
    fn boundary_is_exclusive() {
        let s = spec();
        assert_eq!(s.reward(&[3.0, 7.0, 4.0, 7.0]), DISQUALIFIED, "th is strict");
        assert!(s.reward(&[3.01, 7.0, 4.0, 7.0]).is_finite());
    }

    #[test]
    fn higher_priority_dnn_dominates_reward() {
        let s = spec();
        let a = s.reward(&[9.0, 4.0, 4.0, 4.0]); // fast critical DNN
        let b = s.reward(&[4.0, 9.0, 4.0, 4.0]); // fast low-priority DNN
        assert!(a > b, "boosting the critical DNN must score higher");
    }

    #[test]
    fn fractional_threshold_scales_with_ideal() {
        let s = RewardSpec::new(
            vec![0.5, 0.5],
            StarvationThreshold::FractionOfIdeal(0.1),
            vec![100.0, 4.0],
        );
        // 8 inf/s is fine for the 4-ideal model, 8 is starvation for the
        // 100-ideal model.
        assert!(s.qualifies(&[11.0, 0.5]));
        assert!(!s.qualifies(&[8.0, 0.5]));
    }

    #[test]
    fn fallback_prefers_less_starved() {
        let s = spec();
        let bad = s.fallback_score(&[0.1, 9.0, 9.0, 9.0]);
        let better = s.fallback_score(&[2.0, 5.0, 5.0, 5.0]);
        assert!(better > bad);
    }
}
