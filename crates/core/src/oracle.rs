//! Throughput oracles: what the search consults to score a mapping.

use rankmap_estimator::{EmbeddingTable, Estimator, QTensorSpec, VqVae};
use rankmap_platform::Platform;
use rankmap_sim::{AnalyticalEngine, EventEngine, Mapping, Workload};
use std::cell::RefCell;

/// Predicts per-DNN throughput (inferences/second) for a candidate mapping.
///
/// The paper's RankMap uses the trained multi-task CNN
/// ([`LearnedOracle`]); [`AnalyticalOracle`] swaps in the closed-form
/// contention model (an ablation), and [`BoardOracle`] queries the
/// discrete-event simulator directly (ground truth — what the paper's GA
/// baseline does on the real board, slowly).
pub trait ThroughputOracle {
    /// Predicted throughput of every DNN in `workload` under `mapping`.
    fn predict(&self, workload: &Workload, mapping: &Mapping) -> Vec<f64>;

    /// Human-readable oracle name (for run-time reports).
    fn name(&self) -> &'static str;
}

/// Oracle backed by the analytical contention solver.
#[derive(Debug, Clone)]
pub struct AnalyticalOracle<'p> {
    engine: AnalyticalEngine<'p>,
}

impl<'p> AnalyticalOracle<'p> {
    /// Creates the oracle over a platform.
    pub fn new(platform: &'p Platform) -> Self {
        Self { engine: AnalyticalEngine::new(platform) }
    }
}

impl ThroughputOracle for AnalyticalOracle<'_> {
    fn predict(&self, workload: &Workload, mapping: &Mapping) -> Vec<f64> {
        self.engine.evaluate(workload, mapping).per_dnn
    }

    fn name(&self) -> &'static str {
        "analytical"
    }
}

/// Oracle that runs the discrete-event simulator for every query — exact
/// but orders of magnitude slower; this is what "evaluating on the board"
/// costs the GA baseline.
#[derive(Debug, Clone)]
pub struct BoardOracle<'p> {
    engine: EventEngine<'p>,
}

impl<'p> BoardOracle<'p> {
    /// Creates the oracle over a platform (quick simulation window).
    pub fn new(platform: &'p Platform) -> Self {
        Self { engine: EventEngine::quick(platform) }
    }

    /// Uses a custom engine (e.g. longer windows).
    pub fn with_engine(engine: EventEngine<'p>) -> Self {
        Self { engine }
    }
}

impl ThroughputOracle for BoardOracle<'_> {
    fn predict(&self, workload: &Workload, mapping: &Mapping) -> Vec<f64> {
        self.engine.evaluate(workload, mapping).per_dnn
    }

    fn name(&self) -> &'static str {
        "board"
    }
}

/// Oracle backed by the trained VQ-VAE + multi-task estimator: the paper's
/// configuration. Predicts potential throughput per slot and scales by the
/// per-model ideal rates.
pub struct LearnedOracle {
    vqvae: RefCell<VqVae>,
    embeddings: RefCell<EmbeddingTable>,
    estimator: RefCell<Estimator>,
    spec: QTensorSpec,
    /// Ideal (isolated-on-GPU) rates per model id, resolved lazily.
    ideal_fn: Box<dyn Fn(rankmap_models::ModelId) -> f64>,
}

impl LearnedOracle {
    /// Assembles the oracle from trained parts and an ideal-rate lookup.
    pub fn new(
        vqvae: VqVae,
        embeddings: EmbeddingTable,
        estimator: Estimator,
        ideal_fn: Box<dyn Fn(rankmap_models::ModelId) -> f64>,
    ) -> Self {
        let spec = estimator.config().spec;
        Self {
            vqvae: RefCell::new(vqvae),
            embeddings: RefCell::new(embeddings),
            estimator: RefCell::new(estimator),
            spec,
            ideal_fn,
        }
    }

    /// The estimator's input geometry.
    pub fn spec(&self) -> QTensorSpec {
        self.spec
    }
}

impl ThroughputOracle for LearnedOracle {
    fn predict(&self, workload: &Workload, mapping: &Mapping) -> Vec<f64> {
        let mut emb = self.embeddings.borrow_mut();
        let mut vq = self.vqvae.borrow_mut();
        for m in workload.models() {
            emb.ensure(&mut vq, m);
        }
        let q = emb.q_tensor(&self.spec, workload, mapping);
        let preds = self.estimator.borrow_mut().predict(&q);
        workload
            .models()
            .iter()
            .enumerate()
            .map(|(i, m)| {
                let ideal = (self.ideal_fn)(m.id());
                (preds[i].max(0.0) as f64) * ideal
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "learned"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rankmap_estimator::{EstimatorConfig, VqVaeConfig};
    use rankmap_models::ModelId;
    use rankmap_platform::ComponentId;

    #[test]
    fn analytical_oracle_positive() {
        let p = Platform::orange_pi_5();
        let o = AnalyticalOracle::new(&p);
        let w = Workload::from_ids([ModelId::AlexNet]);
        let m = Mapping::uniform(&w, ComponentId::new(0));
        let t = o.predict(&w, &m);
        assert_eq!(t.len(), 1);
        assert!(t[0] > 0.0);
        assert_eq!(o.name(), "analytical");
    }

    #[test]
    fn board_oracle_matches_event_engine() {
        let p = Platform::orange_pi_5();
        let o = BoardOracle::new(&p);
        let w = Workload::from_ids([ModelId::SqueezeNetV2]);
        let m = Mapping::uniform(&w, ComponentId::new(0));
        let direct = EventEngine::quick(&p).evaluate(&w, &m).per_dnn;
        assert_eq!(o.predict(&w, &m), direct);
    }

    #[test]
    fn learned_oracle_scales_by_ideal() {
        let mut vq = VqVae::new(VqVaeConfig::default(), 0);
        let w = Workload::from_ids([ModelId::AlexNet]);
        let emb = EmbeddingTable::build(&mut vq, w.models());
        let est = Estimator::new(EstimatorConfig::quick(), 0);
        let oracle = LearnedOracle::new(vq, emb, est, Box::new(|_| 40.0));
        let m = Mapping::uniform(&w, ComponentId::new(0));
        let t = oracle.predict(&w, &m);
        assert_eq!(t.len(), 1);
        assert!(t[0] >= 0.0, "negative predictions must be clamped");
    }
}
