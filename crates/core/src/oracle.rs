//! Throughput oracles: what the search consults to score a mapping.

use rankmap_estimator::{CompiledStem, EmbeddingTable, Estimator, QTensorSpec, VqVae};
use rankmap_models::ModelId;
use rankmap_platform::Platform;
use rankmap_sim::{
    AnalyticalEngine, CompileCache, EventEngine, Mapping, Workload,
};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, RwLock};

/// Ideal-rate lookup used to convert potential throughput back to inf/s.
pub type IdealFn = Box<dyn Fn(rankmap_models::ModelId) -> f64 + Send + Sync>;

/// Predicts per-DNN throughput (inferences/second) for a candidate mapping.
///
/// The paper's RankMap uses the trained multi-task CNN
/// ([`LearnedOracle`]); [`AnalyticalOracle`] swaps in the closed-form
/// contention model (an ablation), and [`BoardOracle`] queries the
/// discrete-event simulator directly (ground truth — what the paper's GA
/// baseline does on the real board, slowly).
///
/// All oracles are `Send + Sync`: one instance serves any number of
/// search threads concurrently (the batched MCTS fans a round of rollouts
/// across the thread pool), and a `&Oracle` can ride inside per-shard
/// state that the fleet executor hands to worker threads between event
/// barriers.
pub trait ThroughputOracle: Send + Sync {
    /// Predicted throughput of every DNN in `workload` under `mapping`.
    fn predict(&self, workload: &Workload, mapping: &Mapping) -> Vec<f64>;

    /// Predicted throughputs for a whole batch of mappings — the search
    /// hot path. The default maps [`ThroughputOracle::predict`];
    /// implementations override it to amortize per-query work (stacked
    /// estimator matmuls, cached workload compilation, thread-pool
    /// fan-out).
    fn predict_batch(&self, workload: &Workload, mappings: &[Mapping]) -> Vec<Vec<f64>> {
        mappings.iter().map(|m| self.predict(workload, m)).collect()
    }

    /// Predicted throughputs for a whole *group* of `(workload, candidate
    /// mappings)` queries — the fleet placement hot path, where one
    /// arrival is scored against every shard of a platform at once.
    /// `out[q][m][d]` is DNN `d`'s predicted throughput under mapping `m`
    /// of query `q`. The default answers each query through
    /// [`ThroughputOracle::predict_batch`]; implementations override it
    /// to fuse the whole group into one evaluation pass (shared workload
    /// pricing, one thread-pool fan-out instead of one per query).
    fn predict_grouped(&self, queries: &[(&Workload, &[Mapping])]) -> Vec<Vec<Vec<f64>>> {
        queries.iter().map(|(w, ms)| self.predict_batch(w, ms)).collect()
    }

    /// Human-readable oracle name (for run-time reports).
    fn name(&self) -> &'static str;
}

/// Shared fused-group implementation for the simulator-backed oracles:
/// price every query's workload once (memoized), then fan the flattened
/// `(query, mapping)` pairs across one parallel pass instead of one
/// dispatch per query.
fn grouped_via_flat_pairs<E>(
    platform: &Platform,
    cache: &CompileCache,
    queries: &[(&Workload, &[Mapping])],
    evaluate: E,
) -> Vec<Vec<Vec<f64>>>
where
    E: Fn(&rankmap_sim::WorkloadCosts, &Workload, &Mapping) -> Vec<f64> + Sync,
{
    let costs: Vec<_> = queries.iter().map(|(w, _)| cache.costs(platform, w)).collect();
    let flat: Vec<(usize, &Mapping)> = queries
        .iter()
        .enumerate()
        .flat_map(|(q, (_, ms))| ms.iter().map(move |m| (q, m)))
        .collect();
    let mut per_pair = rayon::iter::par_map_slice(&flat, &|&(q, m)| {
        evaluate(&costs[q], queries[q].0, m)
    })
    .into_iter();
    queries
        .iter()
        .map(|(_, ms)| (0..ms.len()).map(|_| per_pair.next().expect("one result per pair")).collect())
        .collect()
}

/// Oracle backed by the analytical contention solver.
///
/// Holds a [`CompileCache`] so repeated queries against the same workload
/// skip the per-query roofline pricing pass.
#[derive(Debug)]
pub struct AnalyticalOracle<'p> {
    platform: &'p Platform,
    engine: AnalyticalEngine<'p>,
    cache: CompileCache,
}

impl<'p> AnalyticalOracle<'p> {
    /// Creates the oracle over a platform.
    pub fn new(platform: &'p Platform) -> Self {
        Self { platform, engine: AnalyticalEngine::new(platform), cache: CompileCache::new() }
    }
}

impl ThroughputOracle for AnalyticalOracle<'_> {
    fn predict(&self, workload: &Workload, mapping: &Mapping) -> Vec<f64> {
        let costs = self.cache.costs(self.platform, workload);
        self.engine.evaluate_with(&costs, workload, mapping).per_dnn
    }

    fn predict_batch(&self, workload: &Workload, mappings: &[Mapping]) -> Vec<Vec<f64>> {
        let costs = self.cache.costs(self.platform, workload);
        rayon::iter::par_map_slice(mappings, &|m| {
            self.engine.evaluate_with(&costs, workload, m).per_dnn
        })
    }

    fn predict_grouped(&self, queries: &[(&Workload, &[Mapping])]) -> Vec<Vec<Vec<f64>>> {
        grouped_via_flat_pairs(self.platform, &self.cache, queries, |costs, w, m| {
            self.engine.evaluate_with(costs, w, m).per_dnn
        })
    }

    fn name(&self) -> &'static str {
        "analytical"
    }
}

/// Oracle that runs the discrete-event simulator for every query — exact
/// but orders of magnitude slower; this is what "evaluating on the board"
/// costs the GA baseline. Workload pricing is still cached so only the
/// event loop itself is paid per query.
#[derive(Debug)]
pub struct BoardOracle<'p> {
    platform: &'p Platform,
    engine: EventEngine<'p>,
    cache: CompileCache,
}

impl<'p> BoardOracle<'p> {
    /// Creates the oracle over a platform (quick simulation window).
    pub fn new(platform: &'p Platform) -> Self {
        Self { platform, engine: EventEngine::quick(platform), cache: CompileCache::new() }
    }

    /// Uses a custom engine (e.g. longer windows).
    pub fn with_engine(platform: &'p Platform, engine: EventEngine<'p>) -> Self {
        Self { platform, engine, cache: CompileCache::new() }
    }
}

impl ThroughputOracle for BoardOracle<'_> {
    fn predict(&self, workload: &Workload, mapping: &Mapping) -> Vec<f64> {
        let costs = self.cache.costs(self.platform, workload);
        self.engine.evaluate_with(&costs, workload, mapping).per_dnn
    }

    fn predict_batch(&self, workload: &Workload, mappings: &[Mapping]) -> Vec<Vec<f64>> {
        let costs = self.cache.costs(self.platform, workload);
        rayon::iter::par_map_slice(mappings, &|m| {
            self.engine.evaluate_with(&costs, workload, m).per_dnn
        })
    }

    fn predict_grouped(&self, queries: &[(&Workload, &[Mapping])]) -> Vec<Vec<Vec<f64>>> {
        grouped_via_flat_pairs(self.platform, &self.cache, queries, |costs, w, m| {
            self.engine.evaluate_with(costs, w, m).per_dnn
        })
    }

    fn name(&self) -> &'static str {
        "board"
    }
}

/// Oracle backed by the trained VQ-VAE + multi-task estimator: the paper's
/// configuration. Predicts potential throughput per slot and scales by the
/// per-model ideal rates.
///
/// Thread-safe by construction: the VQ-VAE and estimator are frozen and
/// queried through `&self` (no `RefCell`, no locks on the hot path); only
/// the lazily grown embedding table sits behind a `RwLock`, and steady
/// state takes the read side exclusively. Batched queries run the
/// estimator's decoder heads as one stacked matmul per stream and fan the
/// shared backbone across the thread pool.
pub struct LearnedOracle {
    vqvae: VqVae,
    embeddings: RwLock<EmbeddingTable>,
    estimator: Estimator,
    spec: QTensorSpec,
    /// Per-workload compiled stems (see [`Estimator::compile_stem`]):
    /// queries skip both `Q` assembly and the stem convolution.
    stems: Mutex<HashMap<Vec<ModelId>, Arc<CompiledStem>>>,
    /// Ideal (isolated-on-GPU) rates per model id, resolved lazily.
    ideal_fn: IdealFn,
}

impl LearnedOracle {
    /// Assembles the oracle from trained parts and an ideal-rate lookup.
    pub fn new(
        vqvae: VqVae,
        embeddings: EmbeddingTable,
        estimator: Estimator,
        ideal_fn: IdealFn,
    ) -> Self {
        let spec = estimator.config().spec;
        Self {
            vqvae,
            embeddings: RwLock::new(embeddings),
            estimator,
            spec,
            stems: Mutex::new(HashMap::new()),
            ideal_fn,
        }
    }

    /// The estimator's input geometry.
    pub fn spec(&self) -> QTensorSpec {
        self.spec
    }

    /// Makes sure every model of `workload` has frozen unit embeddings,
    /// taking the write lock only when something is actually missing.
    fn ensure_embeddings(&self, workload: &Workload) {
        let complete = self
            .embeddings
            .read()
            .expect("embedding table poisoned")
            .contains_all(workload.models());
        if !complete {
            let mut table = self.embeddings.write().expect("embedding table poisoned");
            for m in workload.models() {
                table.ensure_frozen(&self.vqvae, m);
            }
        }
    }

    /// The compiled stem for `workload`, built on first sight of the mix.
    fn compiled_stem(&self, workload: &Workload) -> Arc<CompiledStem> {
        let key: Vec<ModelId> = workload.models().iter().map(|m| m.id()).collect();
        let mut stems = self.stems.lock().expect("stem cache poisoned");
        stems
            .entry(key)
            .or_insert_with(|| {
                let table = self.embeddings.read().expect("embedding table poisoned");
                Arc::new(self.estimator.compile_stem(&table, workload))
            })
            .clone()
    }

    /// Converts per-slot potentials to per-DNN inf/s.
    fn scale_by_ideals(&self, workload: &Workload, preds: &[f32]) -> Vec<f64> {
        workload
            .models()
            .iter()
            .enumerate()
            .map(|(i, m)| {
                let ideal = (self.ideal_fn)(m.id());
                (preds[i].max(0.0) as f64) * ideal
            })
            .collect()
    }
}

impl ThroughputOracle for LearnedOracle {
    fn predict(&self, workload: &Workload, mapping: &Mapping) -> Vec<f64> {
        self.ensure_embeddings(workload);
        let stem = self.compiled_stem(workload);
        let preds = self
            .estimator
            .infer_slots_from_stem(stem.stem_output(mapping), workload.len());
        self.scale_by_ideals(workload, &preds)
    }

    fn predict_batch(&self, workload: &Workload, mappings: &[Mapping]) -> Vec<Vec<f64>> {
        self.ensure_embeddings(workload);
        let stem = self.compiled_stem(workload);
        let stem_outs: Vec<_> = mappings.iter().map(|m| stem.stem_output(m)).collect();
        let preds = self.estimator.infer_batch_slots_from_stem(stem_outs, workload.len());
        preds.iter().map(|p| self.scale_by_ideals(workload, p)).collect()
    }

    fn name(&self) -> &'static str {
        "learned"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rankmap_estimator::{EstimatorConfig, VqVaeConfig};
    use rankmap_models::ModelId;
    use rankmap_platform::ComponentId;
    use rankmap_sim::EventEngine;

    #[test]
    fn analytical_oracle_positive() {
        let p = Platform::orange_pi_5();
        let o = AnalyticalOracle::new(&p);
        let w = Workload::from_ids([ModelId::AlexNet]);
        let m = Mapping::uniform(&w, ComponentId::new(0));
        let t = o.predict(&w, &m);
        assert_eq!(t.len(), 1);
        assert!(t[0] > 0.0);
        assert_eq!(o.name(), "analytical");
    }

    #[test]
    fn board_oracle_matches_event_engine() {
        let p = Platform::orange_pi_5();
        let o = BoardOracle::new(&p);
        let w = Workload::from_ids([ModelId::SqueezeNetV2]);
        let m = Mapping::uniform(&w, ComponentId::new(0));
        let direct = EventEngine::quick(&p).evaluate(&w, &m).per_dnn;
        assert_eq!(o.predict(&w, &m), direct);
    }

    #[test]
    fn learned_oracle_scales_by_ideal() {
        let mut vq = VqVae::new(VqVaeConfig::default(), 0);
        let w = Workload::from_ids([ModelId::AlexNet]);
        let emb = EmbeddingTable::build(&mut vq, w.models());
        let est = Estimator::new(EstimatorConfig::quick(), 0);
        let oracle = LearnedOracle::new(vq, emb, est, Box::new(|_| 40.0));
        let m = Mapping::uniform(&w, ComponentId::new(0));
        let t = oracle.predict(&w, &m);
        assert_eq!(t.len(), 1);
        assert!(t[0] >= 0.0, "negative predictions must be clamped");
    }

    #[test]
    fn learned_oracle_builds_missing_embeddings_lazily() {
        let vq = VqVae::new(VqVaeConfig::default(), 1);
        let est = Estimator::new(EstimatorConfig::quick(), 1);
        // Empty table: every model is missing at first query.
        let oracle =
            LearnedOracle::new(vq, EmbeddingTable::default(), est, Box::new(|_| 10.0));
        let w = Workload::from_ids([ModelId::AlexNet, ModelId::MobileNet]);
        let m = Mapping::uniform(&w, ComponentId::new(1));
        let t = oracle.predict(&w, &m);
        assert_eq!(t.len(), 2);
        assert!(t.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn grouped_prediction_matches_per_query_batches() {
        // The fused fleet-scoring path must be bit-identical to the serial
        // per-shard path: grouping is an execution strategy, not a model.
        let p = Platform::orange_pi_5();
        let o = AnalyticalOracle::new(&p);
        let w1 = Workload::from_ids([ModelId::AlexNet, ModelId::ResNet50]);
        let w2 = Workload::from_ids([ModelId::MobileNet]);
        let ms1: Vec<Mapping> =
            (0..3).map(|c| Mapping::uniform(&w1, ComponentId::new(c))).collect();
        let ms2: Vec<Mapping> =
            (0..3).map(|c| Mapping::uniform(&w2, ComponentId::new(c))).collect();
        let queries: Vec<(&Workload, &[Mapping])> = vec![(&w1, &ms1), (&w2, &ms2), (&w1, &ms1)];
        let grouped = o.predict_grouped(&queries);
        assert_eq!(grouped.len(), 3);
        assert_eq!(grouped[0], o.predict_batch(&w1, &ms1));
        assert_eq!(grouped[1], o.predict_batch(&w2, &ms2));
        assert_eq!(grouped[0], grouped[2], "identical queries answer identically");
    }

    #[test]
    fn oracles_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AnalyticalOracle<'static>>();
        assert_send_sync::<BoardOracle<'static>>();
        assert_send_sync::<LearnedOracle>();
    }
}
