//! The RankMap manager: MCTS over the mapping space with an oracle in the
//! loop (§IV-E).

use crate::oracle::ThroughputOracle;
use crate::priority::PriorityMode;
use crate::reward::{RewardSpec, StarvationThreshold, DISQUALIFIED};
use rankmap_platform::{ComponentId, Platform};
use rankmap_search::{DecisionProblem, Mcts, MctsConfig};
use rankmap_sim::{EventEngine, Mapping, Workload};

/// Manager configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ManagerConfig {
    /// MCTS iteration budget.
    pub mcts_iterations: usize,
    /// UCT exploration constant.
    pub exploration: f64,
    /// Starvation threshold.
    pub threshold: StarvationThreshold,
    /// Search seed.
    pub seed: u64,
    /// Rollouts per batched oracle round (`K`). `1` reproduces the
    /// sequential search exactly; the default keeps the oracle fed with
    /// stacked batches (see `docs/performance.md`).
    pub batch: usize,
}

impl Default for ManagerConfig {
    fn default() -> Self {
        Self {
            mcts_iterations: 1_500,
            exploration: 1.3,
            threshold: StarvationThreshold::default(),
            seed: 0,
            batch: 8,
        }
    }
}

/// Outcome of a mapping search.
#[derive(Debug, Clone)]
pub struct MappingPlan {
    /// The chosen mapping `M*`.
    pub mapping: Mapping,
    /// The oracle's per-DNN throughput prediction for it.
    pub predicted: Vec<f64>,
    /// Its reward (finite ⇔ it clears the starvation threshold).
    pub reward: f64,
    /// Number of oracle evaluations spent.
    pub evaluations: usize,
}

impl MappingPlan {
    /// Whether the plan satisfies the starvation threshold.
    pub fn qualified(&self) -> bool {
        self.reward.is_finite()
    }
}

/// The priority-aware multi-DNN manager.
pub struct RankMapManager<'p, O: ThroughputOracle> {
    platform: &'p Platform,
    oracle: &'p O,
    config: ManagerConfig,
    /// Measured isolated ideal rates, memoized per model: a full
    /// event-simulator run per model otherwise recurs on every `map` call.
    ideal_cache: std::sync::Mutex<std::collections::HashMap<rankmap_models::ModelId, f64>>,
}

/// The mapping decision problem: one component choice per schedulable unit
/// (DNN-major order), rewarded through the oracle + reward spec.
struct MappingProblem<'a, O: ThroughputOracle> {
    workload: &'a Workload,
    oracle: &'a O,
    spec: &'a RewardSpec,
    components: usize,
    total_units: usize,
}

impl<O: ThroughputOracle> MappingProblem<'_, O> {
    /// Folds oracle throughputs into the search reward.
    fn reward_of(&self, throughputs: &[f64]) -> f64 {
        let r = self.spec.reward(throughputs);
        if r == DISQUALIFIED {
            // Shift fallback scores far below any qualified reward so the
            // search keeps a best-effort answer when nothing qualifies,
            // while the tree still prefers qualified regions.
            -1.0e6 + self.spec.fallback_score(throughputs)
        } else {
            r
        }
    }
}

impl<O: ThroughputOracle> DecisionProblem for MappingProblem<'_, O> {
    type State = Vec<ComponentId>;

    fn root(&self) -> Self::State {
        Vec::new()
    }

    fn action_count(&self, state: &Self::State) -> usize {
        if state.len() >= self.total_units {
            0
        } else {
            self.components
        }
    }

    fn apply(&self, state: &Self::State, a: usize) -> Self::State {
        let mut s = state.clone();
        s.push(ComponentId::new(a));
        s
    }

    fn apply_in_place(&self, state: &mut Self::State, a: usize) {
        state.push(ComponentId::new(a));
    }

    fn evaluate(&self, state: &Self::State) -> f64 {
        let mapping = Mapping::from_flat(self.workload, state);
        let throughputs = self.oracle.predict(self.workload, &mapping);
        self.reward_of(&throughputs)
    }

    fn evaluate_batch(&self, states: &[Self::State]) -> Vec<f64> {
        let mappings: Vec<Mapping> =
            states.iter().map(|s| Mapping::from_flat(self.workload, s)).collect();
        self.oracle
            .predict_batch(self.workload, &mappings)
            .iter()
            .map(|t| self.reward_of(t))
            .collect()
    }

    fn transposition_key(&self, state: &Self::State) -> Option<u64> {
        // FNV-1a over the flat component vector: terminal mappings that
        // random rollouts revisit are answered from the cache for free.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for c in state {
            h ^= c.index() as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Some(h)
    }
}

impl<'p, O: ThroughputOracle> RankMapManager<'p, O> {
    /// Creates a manager over a platform and oracle.
    pub fn new(platform: &'p Platform, oracle: &'p O, config: ManagerConfig) -> Self {
        Self {
            platform,
            oracle,
            config,
            ideal_cache: std::sync::Mutex::new(std::collections::HashMap::new()),
        }
    }

    /// The manager's configuration.
    pub fn config(&self) -> ManagerConfig {
        self.config
    }

    /// Measures per-DNN ideal rates (isolated on the GPU, or the fastest
    /// component when no GPU exists), memoized across `map` calls.
    pub fn ideal_rates(&self, workload: &Workload) -> Vec<f64> {
        let gpu = self
            .platform
            .id_of_kind(rankmap_platform::ComponentKind::Gpu)
            .unwrap_or(ComponentId::new(0));
        let mut cache = self.ideal_cache.lock().expect("ideal-rate cache poisoned");
        workload
            .models()
            .iter()
            .map(|m| {
                *cache.entry(m.id()).or_insert_with(|| {
                    EventEngine::quick(self.platform).ideal_rate(m.id(), gpu)
                })
            })
            .collect()
    }

    /// Searches for the best mapping of `workload` under `priorities`
    /// (`M* = argmax O(M)ᵀ·p subject to O(M)ᵢ > th`).
    pub fn map(&self, workload: &Workload, priorities: &PriorityMode) -> MappingPlan {
        let p = priorities.vector(workload);
        let ideals = self.ideal_rates(workload);
        let spec = RewardSpec::new(p, self.config.threshold, ideals);
        let problem = MappingProblem {
            workload,
            oracle: self.oracle,
            spec: &spec,
            components: self.platform.component_count(),
            total_units: workload.total_units(),
        };
        let result = Mcts::new(MctsConfig {
            iterations: self.config.mcts_iterations,
            exploration: self.config.exploration,
            seed: self.config.seed,
            batch: self.config.batch,
            ..Default::default()
        })
        .search(&problem);
        let mapping = Mapping::from_flat(workload, &result.best_state);
        let predicted = self.oracle.predict(workload, &mapping);
        let reward = spec.reward(&predicted);
        MappingPlan { mapping, predicted, reward, evaluations: result.evaluations }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::AnalyticalOracle;
    use rankmap_models::ModelId;
    use rankmap_sim::AnalyticalEngine;

    fn quick_config() -> ManagerConfig {
        ManagerConfig { mcts_iterations: 300, ..Default::default() }
    }

    #[test]
    fn produces_valid_mapping() {
        let platform = Platform::orange_pi_5();
        let oracle = AnalyticalOracle::new(&platform);
        let mgr = RankMapManager::new(&platform, &oracle, quick_config());
        let w = Workload::from_ids([ModelId::AlexNet, ModelId::SqueezeNetV2]);
        let plan = mgr.map(&w, &PriorityMode::Dynamic);
        assert!(plan.mapping.validate(&w, 3).is_ok());
        assert_eq!(plan.predicted.len(), 2);
        assert!(plan.evaluations > 0);
    }

    #[test]
    fn beats_all_gpu_baseline() {
        let platform = Platform::orange_pi_5();
        let oracle = AnalyticalOracle::new(&platform);
        let mgr = RankMapManager::new(&platform, &oracle, quick_config());
        let w = Workload::from_ids([
            ModelId::SqueezeNetV2,
            ModelId::ResNet50,
            ModelId::MobileNet,
        ]);
        let plan = mgr.map(&w, &PriorityMode::Dynamic);
        let engine = AnalyticalEngine::new(&platform);
        let baseline = engine
            .evaluate(&w, &Mapping::uniform(&w, ComponentId::new(0)))
            .average();
        let found = engine.evaluate(&w, &plan.mapping).average();
        assert!(
            found > baseline,
            "search should beat the GPU pileup: {found} vs {baseline}"
        );
    }

    #[test]
    fn static_priority_lifts_critical_dnn() {
        let platform = Platform::orange_pi_5();
        let oracle = AnalyticalOracle::new(&platform);
        let mgr = RankMapManager::new(
            &platform,
            &oracle,
            ManagerConfig { mcts_iterations: 600, seed: 5, ..Default::default() },
        );
        let w = Workload::from_ids([
            ModelId::InceptionV4,
            ModelId::SqueezeNetV2,
            ModelId::MobileNet,
            ModelId::ResNet50,
        ]);
        let ideals = mgr.ideal_rates(&w);
        // Prioritize the demanding Inception-V4.
        let plan_hi = mgr.map(&w, &PriorityMode::critical(4, 0));
        // Prioritize SqueezeNet instead.
        let plan_lo = mgr.map(&w, &PriorityMode::critical(4, 1));
        let engine = AnalyticalEngine::new(&platform);
        let p_hi = engine.evaluate(&w, &plan_hi.mapping).potentials(&ideals)[0];
        let p_lo = engine.evaluate(&w, &plan_lo.mapping).potentials(&ideals)[0];
        assert!(
            p_hi >= p_lo,
            "raising Inception's rank should not lower its potential: {p_hi} vs {p_lo}"
        );
    }

    #[test]
    fn qualified_plans_have_no_starvation() {
        let platform = Platform::orange_pi_5();
        let oracle = AnalyticalOracle::new(&platform);
        let mgr = RankMapManager::new(&platform, &oracle, quick_config());
        let w = Workload::from_ids([ModelId::AlexNet, ModelId::MobileNetV2, ModelId::GoogleNet]);
        let plan = mgr.map(&w, &PriorityMode::Dynamic);
        if plan.qualified() {
            let ideals = mgr.ideal_rates(&w);
            for (t, i) in plan.predicted.iter().zip(&ideals) {
                assert!(t / i > 0.04, "qualified plan must clear the floor: {t}/{i}");
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let platform = Platform::orange_pi_5();
        let oracle = AnalyticalOracle::new(&platform);
        let mgr = RankMapManager::new(&platform, &oracle, quick_config());
        let w = Workload::from_ids([ModelId::AlexNet, ModelId::ShuffleNet]);
        let a = mgr.map(&w, &PriorityMode::Dynamic);
        let b = mgr.map(&w, &PriorityMode::Dynamic);
        assert_eq!(a.mapping, b.mapping);
    }
}
