//! The RankMap manager: MCTS over the mapping space with an oracle in the
//! loop (§IV-E), plus the incremental entry points the dynamic runtime
//! uses — warm-started remaps ([`RankMapManager::remap_with_hints`]) and a
//! plan cache ([`RankMapManager::map_cached`], see `docs/runtime.md`).

use crate::oracle::ThroughputOracle;
use crate::plan_cache::PlanCache;
use crate::priority::PriorityMode;
use crate::reward::{RewardSpec, StarvationThreshold, DISQUALIFIED};
use rankmap_platform::{ComponentId, Platform};
use rankmap_search::{DecisionProblem, Mcts, MctsConfig, WarmStart};
use rankmap_sim::{EventEngine, Mapping, Workload};

/// Manager configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ManagerConfig {
    /// MCTS iteration budget.
    pub mcts_iterations: usize,
    /// UCT exploration constant.
    pub exploration: f64,
    /// Starvation threshold.
    pub threshold: StarvationThreshold,
    /// Search seed.
    pub seed: u64,
    /// Rollouts per batched oracle round (`K`). `1` reproduces the
    /// sequential search exactly; the default keeps the oracle fed with
    /// stacked batches (see `docs/performance.md`).
    pub batch: usize,
    /// Iteration budget for warm-started remaps
    /// ([`RankMapManager::remap_with_hints`]): the search only has to
    /// re-decide the event's delta, so it runs on a fraction of the cold
    /// budget.
    pub warm_iterations: usize,
    /// Probability that a warm rollout keeps a hinted unit on its
    /// incumbent component (the [`WarmStart::bias`]).
    pub warm_bias: f64,
    /// LRU bound of the plan cache (`usize::MAX` = unbounded; must be
    /// positive — [`RankMapManager::new`] panics on 0, matching
    /// [`PlanCache::with_capacity`]). A serving box sees a bounded
    /// universe of recurring workload sets; a fleet shard gets a budget
    /// so a hostile arrival mix cannot grow the cache without limit.
    pub plan_cache_capacity: usize,
}

impl Default for ManagerConfig {
    fn default() -> Self {
        Self {
            mcts_iterations: 1_500,
            exploration: 1.3,
            threshold: StarvationThreshold::default(),
            seed: 0,
            batch: 8,
            warm_iterations: 300,
            warm_bias: 0.9,
            plan_cache_capacity: usize::MAX,
        }
    }
}

/// Outcome of a mapping search.
#[derive(Debug, Clone)]
pub struct MappingPlan {
    /// The chosen mapping `M*`.
    pub mapping: Mapping,
    /// The oracle's per-DNN throughput prediction for it.
    pub predicted: Vec<f64>,
    /// Its reward (finite ⇔ it clears the starvation threshold).
    pub reward: f64,
    /// Number of oracle evaluations spent.
    pub evaluations: usize,
}

impl MappingPlan {
    /// Whether the plan satisfies the starvation threshold.
    pub fn qualified(&self) -> bool {
        self.reward.is_finite()
    }
}

/// The priority-aware multi-DNN manager.
///
/// `Send` by construction (asserted in tests): the interior caches sit
/// behind `Mutex`es and the oracle reference is `Send + Sync` by the
/// trait's contract, so a fleet shard owning a manager can move to a
/// worker thread between event barriers.
pub struct RankMapManager<'p, O: ThroughputOracle> {
    platform: &'p Platform,
    oracle: &'p O,
    config: ManagerConfig,
    /// Measured isolated ideal rates, memoized per model: a full
    /// event-simulator run per model otherwise recurs on every `map` call.
    ideal_cache: std::sync::Mutex<std::collections::HashMap<rankmap_models::ModelId, f64>>,
    /// Finished plans keyed by canonical workload signature — recurring
    /// workload sets skip the search entirely via [`RankMapManager::map_cached`].
    plan_cache: std::sync::Mutex<PlanCache>,
}

/// The mapping decision problem: one component choice per schedulable unit
/// (DNN-major order), rewarded through the oracle + reward spec.
struct MappingProblem<'a, O: ThroughputOracle> {
    workload: &'a Workload,
    oracle: &'a O,
    spec: &'a RewardSpec,
    components: usize,
    total_units: usize,
}

impl<O: ThroughputOracle> MappingProblem<'_, O> {
    /// Folds oracle throughputs into the search reward.
    fn reward_of(&self, throughputs: &[f64]) -> f64 {
        let r = self.spec.reward(throughputs);
        if r == DISQUALIFIED {
            // Shift fallback scores far below any qualified reward so the
            // search keeps a best-effort answer when nothing qualifies,
            // while the tree still prefers qualified regions.
            -1.0e6 + self.spec.fallback_score(throughputs)
        } else {
            r
        }
    }
}

impl<O: ThroughputOracle> DecisionProblem for MappingProblem<'_, O> {
    type State = Vec<ComponentId>;

    fn root(&self) -> Self::State {
        Vec::new()
    }

    fn action_count(&self, state: &Self::State) -> usize {
        if state.len() >= self.total_units {
            0
        } else {
            self.components
        }
    }

    fn apply(&self, state: &Self::State, a: usize) -> Self::State {
        let mut s = state.clone();
        s.push(ComponentId::new(a));
        s
    }

    fn apply_in_place(&self, state: &mut Self::State, a: usize) {
        state.push(ComponentId::new(a));
    }

    fn evaluate(&self, state: &Self::State) -> f64 {
        let mapping = Mapping::from_flat(self.workload, state);
        let throughputs = self.oracle.predict(self.workload, &mapping);
        self.reward_of(&throughputs)
    }

    fn evaluate_batch(&self, states: &[Self::State]) -> Vec<f64> {
        let mappings: Vec<Mapping> =
            states.iter().map(|s| Mapping::from_flat(self.workload, s)).collect();
        self.oracle
            .predict_batch(self.workload, &mappings)
            .iter()
            .map(|t| self.reward_of(t))
            .collect()
    }

    fn transposition_key(&self, state: &Self::State) -> Option<u64> {
        // FNV-1a over the flat component vector: terminal mappings that
        // random rollouts revisit are answered from the cache for free.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for c in state {
            h ^= c.index() as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Some(h)
    }
}

impl<'p, O: ThroughputOracle> RankMapManager<'p, O> {
    /// Creates a manager over a platform and oracle.
    ///
    /// # Panics
    ///
    /// Panics if `config.plan_cache_capacity == 0` — a typo'd zero would
    /// otherwise silently degrade every recurring workload set to a warm
    /// search (consistent with [`PlanCache::with_capacity`]).
    pub fn new(platform: &'p Platform, oracle: &'p O, config: ManagerConfig) -> Self {
        assert!(
            config.plan_cache_capacity > 0,
            "plan_cache_capacity must be positive (usize::MAX = unbounded)"
        );
        Self {
            platform,
            oracle,
            config,
            ideal_cache: std::sync::Mutex::new(std::collections::HashMap::new()),
            plan_cache: std::sync::Mutex::new(
                PlanCache::with_capacity(config.plan_cache_capacity)
                    .for_platform(platform.signature()),
            ),
        }
    }

    /// The manager's configuration.
    pub fn config(&self) -> ManagerConfig {
        self.config
    }

    /// The platform this manager maps onto.
    pub fn platform(&self) -> &'p Platform {
        self.platform
    }

    /// Measures per-DNN ideal rates (isolated on the GPU, or the fastest
    /// component when no GPU exists), memoized across `map` calls.
    pub fn ideal_rates(&self, workload: &Workload) -> Vec<f64> {
        let gpu = self
            .platform
            .id_of_kind(rankmap_platform::ComponentKind::Gpu)
            .unwrap_or(ComponentId::new(0));
        let mut cache = self.ideal_cache.lock().expect("ideal-rate cache poisoned");
        workload
            .models()
            .iter()
            .map(|m| {
                *cache.entry(m.id()).or_insert_with(|| {
                    EventEngine::quick(self.platform).ideal_rate(m.id(), gpu)
                })
            })
            .collect()
    }

    /// Searches for the best mapping of `workload` under `priorities`
    /// (`M* = argmax O(M)ᵀ·p subject to O(M)ᵢ > th`).
    pub fn map(&self, workload: &Workload, priorities: &PriorityMode) -> MappingPlan {
        self.search_plan(workload, priorities, self.config.mcts_iterations, None)
    }

    /// Like [`RankMapManager::map`], but answered from the plan cache when
    /// this workload set (canonicalized: sorted model IDs + priority
    /// vector + threshold) has been mapped before — in any submission
    /// order. Cache hits cost zero oracle evaluations and return the
    /// cached plan unchanged (`evaluations == 0` marks them).
    pub fn map_cached(&self, workload: &Workload, priorities: &PriorityMode) -> MappingPlan {
        let p = priorities.vector(workload);
        {
            let mut cache = self.plan_cache.lock().expect("plan cache poisoned");
            if let Some(plan) = cache.get(workload, &p, self.config.threshold) {
                return plan;
            }
        }
        let plan = self.map(workload, priorities);
        self.plan_cache
            .lock()
            .expect("plan cache poisoned")
            .insert(workload, &p, self.config.threshold, &plan);
        plan
    }

    /// Hit/miss counters of the plan cache — observability for the runtime.
    pub fn plan_cache_stats(&self) -> rankmap_telemetry::MemoStats {
        self.plan_cache.lock().expect("plan cache poisoned").stats()
    }

    /// Clones the plan cache — the opening bracket of a *speculative*
    /// remap whose result may be thrown away. Cache state (contents, LRU
    /// recency, the logical clock, the hit/miss counters) is an input of
    /// later remaps — a hit can return a plan a fresh search would not,
    /// and recency decides what the capacity bound evicts — so a loser's
    /// footprint must never reach the shared cache. The speculator takes
    /// this snapshot, lets the remap mutate the live cache, then swaps
    /// the pristine snapshot back in via
    /// [`RankMapManager::plan_cache_restore`], keeping the mutated state
    /// aside to install only if the speculation wins.
    pub fn plan_cache_snapshot(&self) -> crate::plan_cache::PlanCache {
        self.plan_cache.lock().expect("plan cache poisoned").clone()
    }

    /// Replaces the plan cache wholesale, returning the displaced state.
    /// Two uses close the speculation bracket: swapping the pristine
    /// pre-snapshot back in right after a speculative remap (the return
    /// value is then the speculation's post state, carried aside), and
    /// installing that post state when the speculation commits. The
    /// committer must prove nothing touched the cache in between — the
    /// fleet's apply-lane scheduler proves it by epoch stamp: every
    /// mid-walk decision that can remap a shard also bumps its epoch,
    /// which turns the pending commit into a discard (a plain drop, which
    /// is what makes this design order-independent where an undo log is
    /// not: late discards leave intervening mutations intact).
    pub fn plan_cache_restore(
        &self,
        cache: crate::plan_cache::PlanCache,
    ) -> crate::plan_cache::PlanCache {
        std::mem::replace(&mut self.plan_cache.lock().expect("plan cache poisoned"), cache)
    }

    /// Snapshots the plan cache to JSON (see [`PlanCache::to_json`]) so a
    /// restarted manager — or a whole fleet — boots serving yesterday's
    /// plans.
    pub fn export_plan_cache(&self) -> String {
        self.plan_cache.lock().expect("plan cache poisoned").to_json()
    }

    /// Replaces the plan cache with a [`RankMapManager::export_plan_cache`]
    /// snapshot, re-bounded to this manager's configured capacity. A
    /// snapshot recorded on a different board type
    /// ([`rankmap_platform::Platform::signature`] mismatch), or one
    /// referencing components this platform does not have (corrupted, or
    /// an untagged legacy snapshot from a bigger board), is rejected here
    /// with a clear error rather than panicking — or silently serving
    /// another board's plans — on its first cache hit mid-serving.
    /// Returns the number of plans serving after the load.
    pub fn import_plan_cache(&self, json: &str) -> Result<usize, crate::json::JsonError> {
        let loaded = PlanCache::from_json(json)?;
        loaded.validate_platform(&self.platform.signature())?;
        loaded.validate_components(self.platform.component_count())?;
        Ok(self.install_plan_cache(loaded))
    }

    /// Replaces the plan cache with an already-parsed (and, by the
    /// caller, validated) cache, re-bounded to this manager's configured
    /// capacity — the fan-out half of [`RankMapManager::import_plan_cache`]
    /// for callers installing one snapshot into many managers. Returns
    /// the number of plans serving after the bound.
    pub fn install_plan_cache(&self, loaded: PlanCache) -> usize {
        // config.plan_cache_capacity > 0 is guaranteed by the
        // constructor's assert. Plans served (and exported) from here on
        // belong to this manager's platform, so the installed cache is
        // re-tagged — an untagged legacy snapshot becomes tagged at its
        // first home.
        let mut loaded = loaded.for_platform(self.platform.signature());
        loaded.set_capacity(self.config.plan_cache_capacity);
        let mut cache = self.plan_cache.lock().expect("plan cache poisoned");
        *cache = loaded;
        cache.len()
    }

    /// Cache-only lookup: the cached plan for this workload set (in the
    /// caller's submission order), or `None` without searching. The
    /// serving runtime consults this before paying for a warm search.
    pub fn cached_plan(
        &self,
        workload: &Workload,
        priorities: &PriorityMode,
    ) -> Option<MappingPlan> {
        let p = priorities.vector(workload);
        self.plan_cache
            .lock()
            .expect("plan cache poisoned")
            .get(workload, &p, self.config.threshold)
    }

    /// Warm-started remap: searches for a mapping of `workload` seeded by
    /// per-DNN incumbent placements. `hints[d]` is DNN `d`'s placement in
    /// the incumbent mapping (`None` for a fresh arrival, which the search
    /// decides from scratch). Runs on [`ManagerConfig::warm_iterations`] —
    /// a fraction of the cold budget — because only the event's delta has
    /// to be re-decided; when every DNN is hinted, the returned reward is
    /// never below the incumbent plan's (the incumbent completion is the
    /// first state evaluated).
    ///
    /// # Panics
    ///
    /// Panics if `hints.len() != workload.len()`.
    pub fn remap_with_hints(
        &self,
        workload: &Workload,
        priorities: &PriorityMode,
        hints: &[Option<Vec<ComponentId>>],
    ) -> MappingPlan {
        assert_eq!(hints.len(), workload.len(), "one hint entry per DNN");
        let mut guide: Vec<Option<usize>> = Vec::with_capacity(workload.total_units());
        for (model, hint) in workload.models().iter().zip(hints) {
            match hint {
                Some(assign) if assign.len() == model.unit_count() => {
                    guide.extend(assign.iter().map(|c| Some(c.index())));
                }
                // Length-mismatched hints are stale — treat as fresh.
                _ => guide.extend(std::iter::repeat_n(None, model.unit_count())),
            }
        }
        let warm = WarmStart { guide, bias: self.config.warm_bias };
        let plan =
            self.search_plan(workload, priorities, self.config.warm_iterations, Some(&warm));
        // Feed the cache so a recurring workload set skips even the warm
        // search next time (first plan wins: a cold plan is never displaced).
        self.plan_cache.lock().expect("plan cache poisoned").insert_if_absent(
            workload,
            &priorities.vector(workload),
            self.config.threshold,
            &plan,
        );
        plan
    }

    /// Warm-started remap from a previous plan of a *different* workload:
    /// DNNs surviving from `prev_workload` (matched greedily by model ID,
    /// in submission order) inherit their incumbent placements as hints;
    /// arrivals are re-decided from scratch. This is the
    /// arrival/departure fast path of the dynamic runtime.
    pub fn remap_from(
        &self,
        previous: &MappingPlan,
        prev_workload: &Workload,
        workload: &Workload,
        priorities: &PriorityMode,
    ) -> MappingPlan {
        let mut used = vec![false; prev_workload.len()];
        let hints: Vec<Option<Vec<ComponentId>>> = workload
            .models()
            .iter()
            .map(|m| {
                let matched = (0..prev_workload.len())
                    .find(|&i| !used[i] && prev_workload.models()[i].id() == m.id())?;
                used[matched] = true;
                Some(previous.mapping.assignment(matched).to_vec())
            })
            .collect();
        self.remap_with_hints(workload, priorities, &hints)
    }

    /// The shared search core behind `map` and `remap_with_hints`.
    fn search_plan(
        &self,
        workload: &Workload,
        priorities: &PriorityMode,
        iterations: usize,
        warm: Option<&WarmStart>,
    ) -> MappingPlan {
        let p = priorities.vector(workload);
        let ideals = self.ideal_rates(workload);
        let spec = RewardSpec::new(p, self.config.threshold, ideals);
        let problem = MappingProblem {
            workload,
            oracle: self.oracle,
            spec: &spec,
            components: self.platform.component_count(),
            total_units: workload.total_units(),
        };
        let mcts = Mcts::new(MctsConfig {
            iterations,
            exploration: self.config.exploration,
            seed: self.config.seed,
            batch: self.config.batch,
            ..Default::default()
        });
        let result = match warm {
            Some(w) => mcts.search_warm(&problem, w),
            None => mcts.search(&problem),
        };
        let mapping = Mapping::from_flat(workload, &result.best_state);
        let predicted = self.oracle.predict(workload, &mapping);
        let reward = spec.reward(&predicted);
        MappingPlan { mapping, predicted, reward, evaluations: result.evaluations }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::AnalyticalOracle;
    use rankmap_models::ModelId;
    use rankmap_sim::AnalyticalEngine;

    fn quick_config() -> ManagerConfig {
        ManagerConfig { mcts_iterations: 300, ..Default::default() }
    }

    #[test]
    fn manager_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RankMapManager<'static, AnalyticalOracle<'static>>>();
    }

    #[test]
    fn produces_valid_mapping() {
        let platform = Platform::orange_pi_5();
        let oracle = AnalyticalOracle::new(&platform);
        let mgr = RankMapManager::new(&platform, &oracle, quick_config());
        let w = Workload::from_ids([ModelId::AlexNet, ModelId::SqueezeNetV2]);
        let plan = mgr.map(&w, &PriorityMode::Dynamic);
        assert!(plan.mapping.validate(&w, 3).is_ok());
        assert_eq!(plan.predicted.len(), 2);
        assert!(plan.evaluations > 0);
    }

    #[test]
    fn beats_all_gpu_baseline() {
        let platform = Platform::orange_pi_5();
        let oracle = AnalyticalOracle::new(&platform);
        let mgr = RankMapManager::new(&platform, &oracle, quick_config());
        let w = Workload::from_ids([
            ModelId::SqueezeNetV2,
            ModelId::ResNet50,
            ModelId::MobileNet,
        ]);
        let plan = mgr.map(&w, &PriorityMode::Dynamic);
        let engine = AnalyticalEngine::new(&platform);
        let baseline = engine
            .evaluate(&w, &Mapping::uniform(&w, ComponentId::new(0)))
            .average();
        let found = engine.evaluate(&w, &plan.mapping).average();
        assert!(
            found > baseline,
            "search should beat the GPU pileup: {found} vs {baseline}"
        );
    }

    #[test]
    fn static_priority_lifts_critical_dnn() {
        let platform = Platform::orange_pi_5();
        let oracle = AnalyticalOracle::new(&platform);
        let mgr = RankMapManager::new(
            &platform,
            &oracle,
            ManagerConfig { mcts_iterations: 600, seed: 5, ..Default::default() },
        );
        let w = Workload::from_ids([
            ModelId::InceptionV4,
            ModelId::SqueezeNetV2,
            ModelId::MobileNet,
            ModelId::ResNet50,
        ]);
        let ideals = mgr.ideal_rates(&w);
        // Prioritize the demanding Inception-V4.
        let plan_hi = mgr.map(&w, &PriorityMode::critical(4, 0));
        // Prioritize SqueezeNet instead.
        let plan_lo = mgr.map(&w, &PriorityMode::critical(4, 1));
        let engine = AnalyticalEngine::new(&platform);
        let p_hi = engine.evaluate(&w, &plan_hi.mapping).potentials(&ideals)[0];
        let p_lo = engine.evaluate(&w, &plan_lo.mapping).potentials(&ideals)[0];
        assert!(
            p_hi >= p_lo,
            "raising Inception's rank should not lower its potential: {p_hi} vs {p_lo}"
        );
    }

    #[test]
    fn qualified_plans_have_no_starvation() {
        let platform = Platform::orange_pi_5();
        let oracle = AnalyticalOracle::new(&platform);
        let mgr = RankMapManager::new(&platform, &oracle, quick_config());
        let w = Workload::from_ids([ModelId::AlexNet, ModelId::MobileNetV2, ModelId::GoogleNet]);
        let plan = mgr.map(&w, &PriorityMode::Dynamic);
        if plan.qualified() {
            let ideals = mgr.ideal_rates(&w);
            for (t, i) in plan.predicted.iter().zip(&ideals) {
                assert!(t / i > 0.04, "qualified plan must clear the floor: {t}/{i}");
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let platform = Platform::orange_pi_5();
        let oracle = AnalyticalOracle::new(&platform);
        let mgr = RankMapManager::new(&platform, &oracle, quick_config());
        let w = Workload::from_ids([ModelId::AlexNet, ModelId::ShuffleNet]);
        let a = mgr.map(&w, &PriorityMode::Dynamic);
        let b = mgr.map(&w, &PriorityMode::Dynamic);
        assert_eq!(a.mapping, b.mapping);
    }

    #[test]
    fn warm_remap_unchanged_workload_never_regresses() {
        // The satellite guarantee: a warm-started search over an unchanged
        // workload must reproduce at least the incumbent plan's reward,
        // across seeds — even at a fraction of the cold budget.
        let platform = Platform::orange_pi_5();
        let oracle = AnalyticalOracle::new(&platform);
        let w = Workload::from_ids([ModelId::AlexNet, ModelId::SqueezeNetV2, ModelId::MobileNet]);
        for seed in 0..4u64 {
            let mgr = RankMapManager::new(
                &platform,
                &oracle,
                ManagerConfig { mcts_iterations: 400, warm_iterations: 80, seed, ..Default::default() },
            );
            let cold = mgr.map(&w, &PriorityMode::Dynamic);
            let hints: Vec<Option<Vec<ComponentId>>> =
                cold.mapping.per_dnn().iter().map(|v| Some(v.clone())).collect();
            let warm = mgr.remap_with_hints(&w, &PriorityMode::Dynamic, &hints);
            assert!(
                warm.reward >= cold.reward - 1e-9,
                "seed {seed}: warm remap regressed: {} < {}",
                warm.reward,
                cold.reward
            );
            assert!(warm.evaluations <= 80, "warm remap must respect the warm budget");
        }
    }

    #[test]
    fn warm_remap_handles_arrival_hints() {
        let platform = Platform::orange_pi_5();
        let oracle = AnalyticalOracle::new(&platform);
        let mgr = RankMapManager::new(
            &platform,
            &oracle,
            ManagerConfig { mcts_iterations: 300, warm_iterations: 120, ..Default::default() },
        );
        let w3 = Workload::from_ids([ModelId::AlexNet, ModelId::SqueezeNetV2, ModelId::MobileNet]);
        let plan3 = mgr.map(&w3, &PriorityMode::Dynamic);
        let w4 = Workload::from_ids([
            ModelId::AlexNet,
            ModelId::SqueezeNetV2,
            ModelId::MobileNet,
            ModelId::ResNet50,
        ]);
        let warm = mgr.remap_from(&plan3, &w3, &w4, &PriorityMode::Dynamic);
        assert!(warm.mapping.validate(&w4, 3).is_ok());
        assert_eq!(warm.predicted.len(), 4);
    }

    #[test]
    fn remap_from_matches_surviving_models_after_departure() {
        let platform = Platform::orange_pi_5();
        let oracle = AnalyticalOracle::new(&platform);
        let mgr = RankMapManager::new(
            &platform,
            &oracle,
            ManagerConfig { mcts_iterations: 200, warm_iterations: 60, ..Default::default() },
        );
        let w3 = Workload::from_ids([ModelId::AlexNet, ModelId::ResNet50, ModelId::MobileNet]);
        let plan3 = mgr.map(&w3, &PriorityMode::Dynamic);
        // ResNet departs; survivors keep their identity.
        let w2 = Workload::from_ids([ModelId::AlexNet, ModelId::MobileNet]);
        let warm = mgr.remap_from(&plan3, &w3, &w2, &PriorityMode::Dynamic);
        assert!(warm.mapping.validate(&w2, 3).is_ok());
    }

    #[test]
    fn plan_cache_hit_is_bit_identical_and_free() {
        let platform = Platform::orange_pi_5();
        let oracle = AnalyticalOracle::new(&platform);
        let mgr = RankMapManager::new(&platform, &oracle, quick_config());
        let w = Workload::from_ids([ModelId::AlexNet, ModelId::GoogleNet]);
        let first = mgr.map_cached(&w, &PriorityMode::Dynamic);
        assert!(first.evaluations > 0, "first call must search");
        let second = mgr.map_cached(&w, &PriorityMode::Dynamic);
        assert_eq!(second.mapping, first.mapping);
        assert_eq!(second.predicted, first.predicted);
        assert_eq!(second.reward.to_bits(), first.reward.to_bits());
        assert_eq!(second.evaluations, 0, "hits skip the search entirely");
        assert_eq!(
            mgr.plan_cache_stats(),
            rankmap_telemetry::MemoStats { hits: 1, misses: 1 }
        );
    }

    #[test]
    #[should_panic(expected = "plan_cache_capacity")]
    fn zero_plan_cache_capacity_is_rejected_loudly() {
        let platform = Platform::orange_pi_5();
        let oracle = AnalyticalOracle::new(&platform);
        let _ = RankMapManager::new(
            &platform,
            &oracle,
            ManagerConfig { plan_cache_capacity: 0, ..Default::default() },
        );
    }

    #[test]
    fn plan_cache_survives_a_restart_via_json() {
        // The fleet boot path: yesterday's exported plans serve today's
        // first requests without a single search.
        let platform = Platform::orange_pi_5();
        let oracle = AnalyticalOracle::new(&platform);
        let mgr = RankMapManager::new(&platform, &oracle, quick_config());
        let w = Workload::from_ids([ModelId::AlexNet, ModelId::MobileNet]);
        let plan = mgr.map_cached(&w, &PriorityMode::Dynamic);
        let snapshot = mgr.export_plan_cache();

        let rebooted = RankMapManager::new(
            &platform,
            &oracle,
            ManagerConfig { plan_cache_capacity: 64, ..quick_config() },
        );
        let served = rebooted.import_plan_cache(&snapshot).expect("snapshot loads");
        assert_eq!(served, 1);
        let hit = rebooted.map_cached(&w, &PriorityMode::Dynamic);
        assert_eq!(hit.evaluations, 0, "the booted cache must answer without searching");
        assert_eq!(hit.mapping, plan.mapping);
        assert_eq!(hit.reward.to_bits(), plan.reward.to_bits());
    }

    #[test]
    fn plan_cache_snapshots_refuse_to_cross_board_types() {
        // An Orange Pi snapshot must not boot a Jetson-class shard: the
        // numbers inside were priced on a different board, and shape
        // checks alone cannot catch a same-component-count mismatch.
        let orange = Platform::orange_pi_5();
        let jetson = Platform::jetson_orin_nx();
        let oracle = AnalyticalOracle::new(&orange);
        let mgr = RankMapManager::new(&orange, &oracle, quick_config());
        let w = Workload::from_ids([ModelId::AlexNet]);
        let _ = mgr.map_cached(&w, &PriorityMode::Dynamic);
        let snapshot = mgr.export_plan_cache();

        let jetson_oracle = AnalyticalOracle::new(&jetson);
        let other = RankMapManager::new(&jetson, &jetson_oracle, quick_config());
        let err = other.import_plan_cache(&snapshot).unwrap_err();
        assert!(
            err.to_string().contains("never cross board types"),
            "cross-platform import must fail loudly: {err}"
        );
        // Same board type still boots fine.
        let twin = RankMapManager::new(&orange, &oracle, quick_config());
        assert_eq!(twin.import_plan_cache(&snapshot).expect("same platform loads"), 1);
    }

    #[test]
    fn plan_cache_hits_across_submission_orders() {
        let platform = Platform::orange_pi_5();
        let oracle = AnalyticalOracle::new(&platform);
        let mgr = RankMapManager::new(&platform, &oracle, quick_config());
        let w = Workload::from_ids([ModelId::AlexNet, ModelId::GoogleNet, ModelId::MobileNet]);
        let plan = mgr.map_cached(&w, &PriorityMode::Dynamic);
        let w_perm = Workload::from_ids([ModelId::MobileNet, ModelId::AlexNet, ModelId::GoogleNet]);
        let hit = mgr.map_cached(&w_perm, &PriorityMode::Dynamic);
        assert_eq!(hit.evaluations, 0, "permuted set must hit the canonical key");
        // Each model keeps its cached placement.
        assert_eq!(hit.mapping.assignment(0), plan.mapping.assignment(2));
        assert_eq!(hit.mapping.assignment(1), plan.mapping.assignment(0));
        assert_eq!(hit.mapping.assignment(2), plan.mapping.assignment(1));
    }
}
