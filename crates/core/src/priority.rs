//! Static and dynamic DNN prioritization (§IV-B).

use rankmap_sim::Workload;

/// How the priority vector `p` is derived.
#[derive(Debug, Clone, PartialEq)]
pub enum PriorityMode {
    /// RankMap-S: user-supplied ranks (normalized to sum to 1). "Designed
    /// for scenarios where a specific, critical DNN is prioritized above
    /// others."
    Static(Vec<f64>),
    /// RankMap-D: ranks derived from each DNN's computational profile, so
    /// demanding networks get the resources they need. "Facilitates more
    /// balanced resource distribution across all DNNs."
    Dynamic,
}

impl PriorityMode {
    /// A static mode giving one DNN a dominant rank (the paper's usual
    /// setup: `0.7` for the critical DNN, the rest shared equally).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `critical >= n`.
    pub fn critical(n: usize, critical: usize) -> Self {
        assert!(n > 0 && critical < n, "invalid critical index");
        let mut p = vec![if n > 1 { 0.3 / (n - 1) as f64 } else { 1.0 }; n];
        p[critical] = if n > 1 { 0.7 } else { 1.0 };
        PriorityMode::Static(p)
    }

    /// Resolves the mode into a normalized priority vector for a workload.
    ///
    /// Dynamic priorities are proportional to each DNN's total FLOPs —
    /// its computational demand as characterized by the layer profile.
    ///
    /// # Panics
    ///
    /// Panics if a static vector's length does not match the workload, or
    /// contains negative/non-finite entries.
    pub fn vector(&self, workload: &Workload) -> Vec<f64> {
        match self {
            PriorityMode::Static(p) => {
                assert_eq!(p.len(), workload.len(), "priority vector length mismatch");
                assert!(
                    p.iter().all(|v| v.is_finite() && *v >= 0.0),
                    "priorities must be non-negative"
                );
                normalize(p.clone())
            }
            PriorityMode::Dynamic => {
                let flops: Vec<f64> =
                    workload.models().iter().map(|m| m.total_flops()).collect();
                normalize(flops)
            }
        }
    }
}

fn normalize(mut v: Vec<f64>) -> Vec<f64> {
    let sum: f64 = v.iter().sum();
    if sum <= 0.0 {
        let n = v.len().max(1);
        return vec![1.0 / n as f64; n];
    }
    for x in &mut v {
        *x /= sum;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use rankmap_models::ModelId;

    #[test]
    fn static_normalizes() {
        let w = Workload::from_ids([ModelId::AlexNet, ModelId::ResNet50]);
        let p = PriorityMode::Static(vec![6.0, 2.0]).vector(&w);
        assert!((p[0] - 0.75).abs() < 1e-12);
        assert!((p[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn dynamic_favors_demanding_models() {
        let w = Workload::from_ids([ModelId::SqueezeNetV2, ModelId::Vgg16]);
        let p = PriorityMode::Dynamic.vector(&w);
        assert!(p[1] > p[0] * 5.0, "VGG-16 should dominate SqueezeNet in demand");
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn critical_helper_shapes() {
        let p = match PriorityMode::critical(4, 1) {
            PriorityMode::Static(p) => p,
            _ => unreachable!(),
        };
        assert_eq!(p.len(), 4);
        assert!((p[1] - 0.7).abs() < 1e-12);
        assert!((p[0] - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_length_panics() {
        let w = Workload::from_ids([ModelId::AlexNet]);
        let _ = PriorityMode::Static(vec![0.5, 0.5]).vector(&w);
    }

    #[test]
    fn all_zero_static_degrades_to_uniform() {
        let w = Workload::from_ids([ModelId::AlexNet, ModelId::ResNet50]);
        let p = PriorityMode::Static(vec![0.0, 0.0]).vector(&w);
        assert_eq!(p, vec![0.5, 0.5]);
    }
}
