//! Training-set generation on the simulated board (§V).
//!
//! "We created a dataset of 10K workloads. Each workload consists of a mix
//! of up to 5 concurrent DNNs randomly selected from a pool of 23 DNNs. We
//! randomly partitioned each DNN and mapped the sub-DNNs across the
//! device's computing components. We executed each workload on the board,
//! recording the inferences per second for each DNN."

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rankmap_estimator::{EmbeddingTable, QTensorSpec, Sample, VqVae};
use rankmap_models::ModelId;
use rankmap_platform::{ComponentId, ComponentKind, Platform};
use rankmap_sim::{EventEngine, Mapping, Workload};
use std::collections::HashMap;

/// Dataset-generation configuration.
#[derive(Debug, Clone)]
pub struct DatasetConfig {
    /// Number of labelled workload/mapping samples.
    pub samples: usize,
    /// Maximum concurrent DNNs per workload (5 in the paper).
    pub max_dnns: usize,
    /// The model pool to draw from.
    pub pool: Vec<ModelId>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        Self { samples: 1_000, max_dnns: 5, pool: ModelId::paper_pool(), seed: 0 }
    }
}

/// One labelled example: a workload, a mapping, and board measurements.
#[derive(Debug, Clone)]
pub struct LabeledMapping {
    /// Models in the workload.
    pub ids: Vec<ModelId>,
    /// The random mapping that was executed.
    pub mapping: Mapping,
    /// Measured inferences/second per DNN.
    pub throughputs: Vec<f64>,
    /// Potential throughput per DNN (`t / t_ideal`).
    pub potentials: Vec<f64>,
}

/// Measures isolated-on-GPU ideal rates for a set of models, memoized.
pub fn ideal_rates(platform: &Platform, ids: &[ModelId]) -> HashMap<ModelId, f64> {
    let engine = EventEngine::quick(platform);
    let gpu = platform.id_of_kind(ComponentKind::Gpu).unwrap_or(ComponentId::new(0));
    let mut out = HashMap::new();
    for &id in ids {
        out.entry(id).or_insert_with(|| engine.ideal_rate(id, gpu));
    }
    out
}

/// Generates a labelled dataset by executing random mappings of random
/// workloads on the event-driven board simulator.
pub fn generate(platform: &Platform, cfg: &DatasetConfig) -> Vec<LabeledMapping> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let engine = EventEngine::quick(platform);
    let ideals = ideal_rates(platform, &cfg.pool);
    let mut out = Vec::with_capacity(cfg.samples);
    for _ in 0..cfg.samples {
        let n = rng.gen_range(1..=cfg.max_dnns);
        let ids: Vec<ModelId> =
            (0..n).map(|_| cfg.pool[rng.gen_range(0..cfg.pool.len())]).collect();
        let workload = Workload::from_ids(ids.iter().copied());
        let mapping = Mapping::random(&workload, platform.component_count(), &mut rng);
        let throughputs = engine.evaluate(&workload, &mapping).per_dnn;
        let potentials = throughputs
            .iter()
            .zip(&ids)
            .map(|(&t, id)| t / ideals[id].max(1e-9))
            .collect();
        out.push(LabeledMapping { ids, mapping, throughputs, potentials });
    }
    out
}

/// Converts labelled mappings into estimator training samples (targets are
/// potentials; inactive slots masked out).
pub fn to_samples(
    labelled: &[LabeledMapping],
    vqvae: &mut VqVae,
    table: &mut EmbeddingTable,
    spec: &QTensorSpec,
) -> Vec<Sample> {
    labelled
        .iter()
        .map(|l| {
            let workload = Workload::from_ids(l.ids.iter().copied());
            for m in workload.models() {
                table.ensure(vqvae, m);
            }
            let q = table.q_tensor(spec, &workload, &l.mapping);
            let mut target = vec![0.0f32; spec.max_dnns];
            let mut mask = vec![false; spec.max_dnns];
            for (i, &p) in l.potentials.iter().enumerate() {
                target[i] = p as f32;
                mask[i] = true;
            }
            Sample::new(q, target, mask)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rankmap_estimator::VqVaeConfig;

    fn tiny_cfg() -> DatasetConfig {
        DatasetConfig {
            samples: 12,
            max_dnns: 3,
            pool: vec![ModelId::AlexNet, ModelId::SqueezeNetV2, ModelId::MobileNet],
            seed: 7,
        }
    }

    #[test]
    fn generates_requested_count() {
        let p = Platform::orange_pi_5();
        let data = generate(&p, &tiny_cfg());
        assert_eq!(data.len(), 12);
        for l in &data {
            assert!(!l.ids.is_empty() && l.ids.len() <= 3);
            assert_eq!(l.ids.len(), l.throughputs.len());
        }
    }

    #[test]
    fn potentials_are_bounded_sane() {
        let p = Platform::orange_pi_5();
        let data = generate(&p, &tiny_cfg());
        for l in &data {
            for &pot in &l.potentials {
                // Pipelining across components can legitimately beat the
                // single-GPU ideal (P > 1), but not by an absurd factor.
                assert!((0.0..=5.0).contains(&pot), "potential out of range: {pot}");
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let p = Platform::orange_pi_5();
        let a = generate(&p, &tiny_cfg());
        let b = generate(&p, &tiny_cfg());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.ids, y.ids);
            assert_eq!(x.mapping, y.mapping);
            assert_eq!(x.throughputs, y.throughputs);
        }
    }

    #[test]
    fn samples_have_masked_padding() {
        let p = Platform::orange_pi_5();
        let data = generate(&p, &tiny_cfg());
        let mut vq = VqVae::new(VqVaeConfig::default(), 0);
        let mut table = EmbeddingTable::build(&mut vq, &[]);
        let spec = QTensorSpec::default();
        let samples = to_samples(&data, &mut vq, &mut table, &spec);
        assert_eq!(samples.len(), data.len());
        for (s, l) in samples.iter().zip(&data) {
            assert_eq!(s.active(), l.ids.len());
            for i in l.ids.len()..spec.max_dnns {
                assert!(!s.mask[i]);
                assert_eq!(s.target[i], 0.0);
            }
        }
    }
}
