//! Plan cache: recurring workload sets skip the mapping search entirely.
//!
//! Serving runtimes see the same workload sets over and over — the same
//! app constellation after a restart, the same mix after a transient DNN
//! departs and re-arrives. The cache keys finished [`MappingPlan`]s by a
//! **canonical workload signature**: the multiset of model IDs (sorted),
//! the resolved priority vector in that canonical order, and the
//! starvation threshold. Because the key is canonical, a hit works for
//! *any submission order* of the same workload set: the cached plan is
//! stored in canonical order and permuted back to the caller's order on
//! the way out.
//!
//! Same-order hits are bit-identical to the plan that was inserted
//! (checked in tests): the canonical permutation round-trips exactly and
//! the payload is cloned, never recomputed.

use crate::manager::MappingPlan;
use crate::reward::StarvationThreshold;
use rankmap_platform::ComponentId;
use rankmap_sim::{Mapping, Workload};
use std::collections::HashMap;

/// Canonical identity of a (workload set, priorities, threshold) request.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct WorkloadSignature(Vec<u8>);

impl WorkloadSignature {
    /// Builds the signature for a workload under a resolved priority
    /// vector and threshold. `perm` must be the canonical permutation from
    /// [`canonical_order`].
    fn new(
        workload: &Workload,
        priorities: &[f64],
        threshold: StarvationThreshold,
        perm: &[usize],
    ) -> Self {
        let mut bytes = Vec::with_capacity(perm.len() * 9 + 9);
        for &i in perm {
            bytes.push(workload.models()[i].id() as u8);
            bytes.extend_from_slice(&priorities[i].to_bits().to_le_bytes());
        }
        match threshold {
            StarvationThreshold::Absolute(v) => {
                bytes.push(0);
                bytes.extend_from_slice(&v.to_bits().to_le_bytes());
            }
            StarvationThreshold::FractionOfIdeal(v) => {
                bytes.push(1);
                bytes.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
        WorkloadSignature(bytes)
    }
}

/// Canonical DNN order for a workload: indices sorted by (model ID,
/// priority bits), stably. Duplicated models with distinct priorities sort
/// deterministically, so permuting a workload never changes its signature.
pub fn canonical_order(workload: &Workload, priorities: &[f64]) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..workload.len()).collect();
    perm.sort_by_key(|&i| (workload.models()[i].id(), priorities[i].to_bits()));
    perm
}

/// A cached plan, stored in canonical DNN order.
#[derive(Debug, Clone)]
struct CachedPlan {
    per_dnn_canonical: Vec<Vec<ComponentId>>,
    predicted_canonical: Vec<f64>,
    reward: f64,
}

/// Maps canonical workload signatures to finished plans.
///
/// The cache is unbounded by design at this scale (a serving box sees at
/// most a few hundred distinct workload sets); eviction can ride on top of
/// `len` when that stops being true.
#[derive(Debug, Default)]
pub struct PlanCache {
    plans: HashMap<WorkloadSignature, CachedPlan>,
    hits: u64,
    misses: u64,
}

impl PlanCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// `(hits, misses)` counters since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Looks up a plan for `workload` under a resolved priority vector and
    /// threshold, permuting the cached canonical plan back to the
    /// request's submission order. Counts a hit or a miss.
    pub fn get(
        &mut self,
        workload: &Workload,
        priorities: &[f64],
        threshold: StarvationThreshold,
    ) -> Option<MappingPlan> {
        let perm = canonical_order(workload, priorities);
        let sig = WorkloadSignature::new(workload, priorities, threshold, &perm);
        let Some(cached) = self.plans.get(&sig) else {
            self.misses += 1;
            return None;
        };
        self.hits += 1;
        let n = workload.len();
        let mut per_dnn = vec![Vec::new(); n];
        let mut predicted = vec![0.0; n];
        for (c, &orig) in perm.iter().enumerate() {
            per_dnn[orig] = cached.per_dnn_canonical[c].clone();
            predicted[orig] = cached.predicted_canonical[c];
        }
        Some(MappingPlan {
            mapping: Mapping::new(per_dnn),
            predicted,
            reward: cached.reward,
            evaluations: 0,
        })
    }

    /// Inserts a finished plan under the workload's canonical signature.
    pub fn insert(
        &mut self,
        workload: &Workload,
        priorities: &[f64],
        threshold: StarvationThreshold,
        plan: &MappingPlan,
    ) {
        let perm = canonical_order(workload, priorities);
        let sig = WorkloadSignature::new(workload, priorities, threshold, &perm);
        let cached = CachedPlan {
            per_dnn_canonical: perm
                .iter()
                .map(|&i| plan.mapping.assignment(i).to_vec())
                .collect(),
            predicted_canonical: perm.iter().map(|&i| plan.predicted[i]).collect(),
            reward: plan.reward,
        };
        self.plans.insert(sig, cached);
    }

    /// Inserts only when the signature is not yet cached — first plan
    /// wins, so a reduced-budget warm plan never displaces a cold one.
    pub fn insert_if_absent(
        &mut self,
        workload: &Workload,
        priorities: &[f64],
        threshold: StarvationThreshold,
        plan: &MappingPlan,
    ) {
        let perm = canonical_order(workload, priorities);
        let sig = WorkloadSignature::new(workload, priorities, threshold, &perm);
        if self.plans.contains_key(&sig) {
            return;
        }
        self.insert(workload, priorities, threshold, plan);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rankmap_models::ModelId;

    fn fake_plan(workload: &Workload, base: usize) -> MappingPlan {
        let per_dnn: Vec<Vec<ComponentId>> = workload
            .models()
            .iter()
            .enumerate()
            .map(|(d, m)| vec![ComponentId::new((base + d) % 3); m.unit_count()])
            .collect();
        MappingPlan {
            mapping: Mapping::new(per_dnn),
            predicted: (0..workload.len()).map(|d| 10.0 + d as f64).collect(),
            reward: 1.25,
            evaluations: 42,
        }
    }

    #[test]
    fn same_order_hit_is_bit_identical() {
        let w = Workload::from_ids([ModelId::ResNet50, ModelId::AlexNet, ModelId::MobileNet]);
        let p = vec![0.5, 0.3, 0.2];
        let th = StarvationThreshold::default();
        let mut cache = PlanCache::new();
        let plan = fake_plan(&w, 0);
        cache.insert(&w, &p, th, &plan);
        let hit = cache.get(&w, &p, th).expect("hit");
        assert_eq!(hit.mapping, plan.mapping);
        assert_eq!(hit.predicted, plan.predicted);
        assert_eq!(hit.reward.to_bits(), plan.reward.to_bits());
        assert_eq!(hit.evaluations, 0, "cache hits spend no oracle evaluations");
        assert_eq!(cache.stats(), (1, 0));
    }

    #[test]
    fn permuted_workload_hits_and_permutes_back() {
        let ids = [ModelId::ResNet50, ModelId::AlexNet, ModelId::MobileNet];
        let w = Workload::from_ids(ids);
        let p = vec![0.5, 0.3, 0.2];
        let th = StarvationThreshold::default();
        let mut cache = PlanCache::new();
        let plan = fake_plan(&w, 1);
        cache.insert(&w, &p, th, &plan);
        // Same set, submitted in a different order with matching priorities.
        let w2 = Workload::from_ids([ids[2], ids[0], ids[1]]);
        let p2 = vec![0.2, 0.5, 0.3];
        let hit = cache.get(&w2, &p2, th).expect("permuted hit");
        for d in 0..3 {
            // Each model keeps the assignment and prediction it was cached with.
            let orig = match d {
                0 => 2, // w2[0] = MobileNet = w[2]
                1 => 0,
                _ => 1,
            };
            assert_eq!(hit.mapping.assignment(d), plan.mapping.assignment(orig));
            assert_eq!(hit.predicted[d], plan.predicted[orig]);
        }
        assert_eq!(hit.reward, plan.reward);
    }

    #[test]
    fn different_priorities_or_threshold_miss() {
        let w = Workload::from_ids([ModelId::AlexNet, ModelId::ResNet50]);
        let th = StarvationThreshold::default();
        let mut cache = PlanCache::new();
        cache.insert(&w, &[0.5, 0.5], th, &fake_plan(&w, 0));
        assert!(cache.get(&w, &[0.7, 0.3], th).is_none());
        assert!(cache
            .get(&w, &[0.5, 0.5], StarvationThreshold::Absolute(3.0))
            .is_none());
        assert!(cache.get(&w, &[0.5, 0.5], th).is_some());
    }

    #[test]
    fn duplicate_models_with_distinct_priorities_stay_consistent() {
        let w = Workload::from_ids([ModelId::AlexNet, ModelId::AlexNet]);
        let th = StarvationThreshold::default();
        let mut cache = PlanCache::new();
        let plan = fake_plan(&w, 0);
        cache.insert(&w, &[0.8, 0.2], th, &plan);
        // Swapped submission order with swapped priorities: the canonical
        // order sorts by priority bits, so the hit must follow priorities.
        let hit = cache.get(&w, &[0.2, 0.8], th).expect("hit");
        assert_eq!(hit.mapping.assignment(0), plan.mapping.assignment(1));
        assert_eq!(hit.mapping.assignment(1), plan.mapping.assignment(0));
    }
}
