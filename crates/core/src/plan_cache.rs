//! Plan cache: recurring workload sets skip the mapping search entirely.
//!
//! Serving runtimes see the same workload sets over and over — the same
//! app constellation after a restart, the same mix after a transient DNN
//! departs and re-arrives. The cache keys finished [`MappingPlan`]s by a
//! **canonical workload signature**: the multiset of model IDs (sorted),
//! the resolved priority vector in that canonical order, and the
//! starvation threshold. Because the key is canonical, a hit works for
//! *any submission order* of the same workload set: the cached plan is
//! stored in canonical order and permuted back to the caller's order on
//! the way out.
//!
//! Same-order hits are bit-identical to the plan that was inserted
//! (checked in tests): the canonical permutation round-trips exactly and
//! the payload is cloned, never recomputed.
//!
//! The cache is bounded: [`PlanCache::with_capacity`] sets an LRU limit
//! (both hits and inserts refresh recency; the least-recently-used plan
//! is evicted first), and [`PlanCache::to_json`] /
//! [`PlanCache::from_json`] snapshot it so a fleet boots serving
//! yesterday's plans. Floating-point payloads are persisted as raw IEEE
//! bit patterns, so a loaded plan is bit-identical to the plan that was
//! saved — including `-inf` rewards of disqualified fallback plans.

use crate::json::{self, Json};
use crate::manager::MappingPlan;
use crate::reward::StarvationThreshold;
use rankmap_platform::ComponentId;
use rankmap_sim::{Mapping, Workload};
use rankmap_telemetry::MemoStats;
use std::collections::HashMap;

/// Canonical identity of a (workload set, priorities, threshold) request.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct WorkloadSignature(Vec<u8>);

impl WorkloadSignature {
    /// Builds the signature for a workload under a resolved priority
    /// vector and threshold. `perm` must be the canonical permutation from
    /// [`canonical_order`].
    fn new(
        workload: &Workload,
        priorities: &[f64],
        threshold: StarvationThreshold,
        perm: &[usize],
    ) -> Self {
        let mut bytes = Vec::with_capacity(perm.len() * 9 + 9);
        for &i in perm {
            bytes.push(workload.models()[i].id() as u8);
            bytes.extend_from_slice(&priorities[i].to_bits().to_le_bytes());
        }
        match threshold {
            StarvationThreshold::Absolute(v) => {
                bytes.push(0);
                bytes.extend_from_slice(&v.to_bits().to_le_bytes());
            }
            StarvationThreshold::FractionOfIdeal(v) => {
                bytes.push(1);
                bytes.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
        WorkloadSignature(bytes)
    }

    fn to_hex(&self) -> String {
        let mut s = String::with_capacity(self.0.len() * 2);
        for b in &self.0 {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }

    fn from_hex(hex: &str) -> Option<Self> {
        // Byte-offset slicing below requires ASCII (a multi-byte char
        // would split mid-character and panic, not error).
        if !hex.is_ascii() || !hex.len().is_multiple_of(2) {
            return None;
        }
        (0..hex.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&hex[i..i + 2], 16).ok())
            .collect::<Option<Vec<u8>>>()
            .map(WorkloadSignature)
    }
}

/// Canonical DNN order for a workload: indices sorted by (model ID,
/// priority bits), stably. Duplicated models with distinct priorities sort
/// deterministically, so permuting a workload never changes its signature.
pub fn canonical_order(workload: &Workload, priorities: &[f64]) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..workload.len()).collect();
    perm.sort_by_key(|&i| (workload.models()[i].id(), priorities[i].to_bits()));
    perm
}

/// A cached plan, stored in canonical DNN order.
#[derive(Debug, Clone)]
struct CachedPlan {
    per_dnn_canonical: Vec<Vec<ComponentId>>,
    predicted_canonical: Vec<f64>,
    reward: f64,
    /// Logical timestamp of the last hit or insert (LRU recency).
    last_used: u64,
}

/// Maps canonical workload signatures to finished plans, with an LRU
/// capacity bound and JSON persistence. `Clone` lets one validated
/// snapshot fan out to many managers (a fleet boot) without re-parsing.
#[derive(Debug, Clone)]
pub struct PlanCache {
    plans: HashMap<WorkloadSignature, CachedPlan>,
    /// LRU bound; `usize::MAX` means unbounded.
    capacity: usize,
    /// Logical clock driving `last_used`.
    tick: u64,
    hits: u64,
    misses: u64,
    /// The [`rankmap_platform::Platform::signature`] this cache's plans
    /// were produced on (`None` for an untagged, platform-agnostic cache,
    /// e.g. a legacy snapshot). Embedded in snapshots so a plan recorded
    /// on one board type can never be imported onto another.
    platform: Option<String>,
}

/// An empty, unbounded cache (same as [`PlanCache::new`] — a derived
/// default would start at capacity 0 and evict every insert).
impl Default for PlanCache {
    fn default() -> Self {
        Self::new()
    }
}

impl PlanCache {
    /// Creates an empty, unbounded cache.
    pub fn new() -> Self {
        Self {
            plans: HashMap::new(),
            capacity: usize::MAX,
            tick: 0,
            hits: 0,
            misses: 0,
            platform: None,
        }
    }

    /// Tags this cache with the platform signature its plans are produced
    /// on (see [`rankmap_platform::Platform::signature`]). The tag rides
    /// along in [`PlanCache::to_json`] snapshots, and
    /// [`PlanCache::validate_platform`] refuses to install a tagged
    /// snapshot onto a different board type.
    #[must_use]
    pub fn for_platform(mut self, signature: impl Into<String>) -> Self {
        self.platform = Some(signature.into());
        self
    }

    /// The platform signature this cache is tagged with, if any.
    pub fn platform(&self) -> Option<&str> {
        self.platform.as_deref()
    }

    /// Creates an empty cache that holds at most `capacity` plans,
    /// evicting the least-recently-used one past that.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "a zero-capacity cache cannot hold any plan");
        Self { capacity, ..Self::new() }
    }

    /// The LRU bound (`usize::MAX` = unbounded).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Changes the LRU bound, evicting least-recently-used plans if the
    /// cache currently exceeds it.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn set_capacity(&mut self, capacity: usize) {
        assert!(capacity > 0, "a zero-capacity cache cannot hold any plan");
        self.capacity = capacity;
        self.evict_to_capacity();
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// Hit/miss counters since construction (not persisted).
    pub fn stats(&self) -> MemoStats {
        MemoStats { hits: self.hits, misses: self.misses }
    }

    /// The highest component index referenced by any cached plan (`None`
    /// when empty) — lets a loader bounds-check a snapshot against its
    /// platform before a stale plan panics at serving time.
    pub fn max_component_index(&self) -> Option<usize> {
        self.plans
            .values()
            .flat_map(|plan| plan.per_dnn_canonical.iter().flatten())
            .map(|c| c.index())
            .max()
    }

    /// Rejects the cache if any plan references a component the target
    /// platform does not have (a snapshot recorded on a bigger board, or
    /// corrupted). Every snapshot loader shares this check so no boot
    /// path can drift into accepting what another rejects.
    pub fn validate_components(&self, component_count: usize) -> Result<(), json::JsonError> {
        match self.max_component_index() {
            Some(max) if max >= component_count => Err(json::JsonError::semantic(format!(
                "snapshot references component {max} but the platform has {component_count}"
            ))),
            _ => Ok(()),
        }
    }

    /// Rejects the cache if it is tagged with a different platform
    /// signature than `signature` — a plan priced on one board type must
    /// never serve another, even when the component counts happen to line
    /// up (shape validation alone cannot tell an Orange Pi from a
    /// speed-binned clone). Untagged caches (legacy snapshots) pass and
    /// fall back to shape-based validation only.
    pub fn validate_platform(&self, signature: &str) -> Result<(), json::JsonError> {
        match self.platform.as_deref() {
            Some(tagged) if tagged != signature => Err(json::JsonError::semantic(format!(
                "plan-cache snapshot was recorded on platform '{tagged}' and cannot be \
                 imported onto '{signature}': cached plans never cross board types"
            ))),
            _ => Ok(()),
        }
    }

    fn touch(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    fn evict_to_capacity(&mut self) {
        while self.plans.len() > self.capacity {
            let Some(oldest) = self
                .plans
                .iter()
                .min_by_key(|(_, plan)| plan.last_used)
                .map(|(sig, _)| sig.clone())
            else {
                return;
            };
            self.plans.remove(&oldest);
        }
    }

    /// Looks up a plan for `workload` under a resolved priority vector and
    /// threshold, permuting the cached canonical plan back to the
    /// request's submission order. Counts a hit or a miss; a hit refreshes
    /// the entry's LRU recency.
    pub fn get(
        &mut self,
        workload: &Workload,
        priorities: &[f64],
        threshold: StarvationThreshold,
    ) -> Option<MappingPlan> {
        let perm = canonical_order(workload, priorities);
        let sig = WorkloadSignature::new(workload, priorities, threshold, &perm);
        let now = self.touch();
        let Some(cached) = self.plans.get_mut(&sig) else {
            self.misses += 1;
            return None;
        };
        cached.last_used = now;
        self.hits += 1;
        let n = workload.len();
        let mut per_dnn = vec![Vec::new(); n];
        let mut predicted = vec![0.0; n];
        for (c, &orig) in perm.iter().enumerate() {
            per_dnn[orig] = cached.per_dnn_canonical[c].clone();
            predicted[orig] = cached.predicted_canonical[c];
        }
        Some(MappingPlan {
            mapping: Mapping::new(per_dnn),
            predicted,
            reward: cached.reward,
            evaluations: 0,
        })
    }

    /// Inserts a finished plan under the workload's canonical signature,
    /// evicting the least-recently-used plan if the cache is full.
    pub fn insert(
        &mut self,
        workload: &Workload,
        priorities: &[f64],
        threshold: StarvationThreshold,
        plan: &MappingPlan,
    ) {
        let perm = canonical_order(workload, priorities);
        let sig = WorkloadSignature::new(workload, priorities, threshold, &perm);
        let now = self.touch();
        let cached = CachedPlan {
            per_dnn_canonical: perm
                .iter()
                .map(|&i| plan.mapping.assignment(i).to_vec())
                .collect(),
            predicted_canonical: perm.iter().map(|&i| plan.predicted[i]).collect(),
            reward: plan.reward,
            last_used: now,
        };
        self.plans.insert(sig, cached);
        self.evict_to_capacity();
    }

    /// Inserts only when the signature is not yet cached — first plan
    /// wins, so a reduced-budget warm plan never displaces a cold one.
    pub fn insert_if_absent(
        &mut self,
        workload: &Workload,
        priorities: &[f64],
        threshold: StarvationThreshold,
        plan: &MappingPlan,
    ) {
        let perm = canonical_order(workload, priorities);
        let sig = WorkloadSignature::new(workload, priorities, threshold, &perm);
        if self.plans.contains_key(&sig) {
            return;
        }
        self.insert(workload, priorities, threshold, plan);
    }

    /// Serializes the cache to JSON. Entries are written least-recently
    /// used first, so loading replays them in recency order and a
    /// subsequently bounded cache evicts the same plans the original
    /// would have. Floats are stored as hex IEEE-754 bit patterns
    /// (bit-identical round trip, `-inf`-safe); hit/miss counters are not
    /// persisted.
    pub fn to_json(&self) -> String {
        let mut entries: Vec<(&WorkloadSignature, &CachedPlan)> = self.plans.iter().collect();
        entries.sort_by_key(|(_, plan)| plan.last_used);
        let entries: Vec<Json> = entries
            .into_iter()
            .map(|(sig, plan)| {
                json::obj([
                    ("sig", Json::Str(sig.to_hex())),
                    (
                        "per_dnn",
                        Json::Arr(
                            plan.per_dnn_canonical
                                .iter()
                                .map(|assign| {
                                    Json::Arr(
                                        assign
                                            .iter()
                                            .map(|c| Json::Num(c.index() as f64))
                                            .collect(),
                                    )
                                })
                                .collect(),
                        ),
                    ),
                    (
                        "predicted_bits",
                        Json::Arr(
                            plan.predicted_canonical
                                .iter()
                                .map(|v| Json::Str(format!("{:016x}", v.to_bits())))
                                .collect(),
                        ),
                    ),
                    ("reward_bits", Json::Str(format!("{:016x}", plan.reward.to_bits()))),
                ])
            })
            .collect();
        let capacity = if self.capacity == usize::MAX {
            Json::Null
        } else {
            Json::Num(self.capacity as f64)
        };
        let platform = match &self.platform {
            Some(sig) => Json::Str(sig.clone()),
            None => Json::Null,
        };
        json::obj([
            ("plan_cache_version", Json::Num(1.0)),
            ("platform", platform),
            ("capacity", capacity),
            ("entries", Json::Arr(entries)),
        ])
        .to_string()
    }

    /// Restores a cache from a [`PlanCache::to_json`] snapshot. The
    /// loaded cache starts with fresh hit/miss counters and the snapshot's
    /// capacity (unbounded if the snapshot was).
    pub fn from_json(text: &str) -> Result<Self, json::JsonError> {
        let bad = |message: &str| json::JsonError { message: message.to_string(), offset: 0 };
        let root = json::parse(text)?;
        match root.get("plan_cache_version").and_then(Json::as_u64) {
            Some(1) => {}
            _ => return Err(bad("missing or unsupported plan_cache_version")),
        }
        let mut cache = match root.get("capacity") {
            Some(Json::Null) | None => PlanCache::new(),
            Some(v) => {
                let capacity = v
                    .as_u64()
                    .filter(|&c| c > 0)
                    .ok_or_else(|| bad("capacity must be a positive integer"))?;
                PlanCache::with_capacity(capacity as usize)
            }
        };
        cache.platform = match root.get("platform") {
            Some(Json::Str(sig)) => Some(sig.clone()),
            Some(Json::Null) | None => None,
            Some(_) => return Err(bad("platform must be a signature string or null")),
        };
        let entries = root
            .get("entries")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("missing entries array"))?;
        // Unit counts per registry model, built lazily and shared across
        // entries — `build()` constructs the full layer graph and must
        // not run once per snapshot row.
        let registry = rankmap_models::ModelId::all();
        let mut unit_counts: Vec<Option<usize>> = vec![None; registry.len()];
        for entry in entries {
            let sig = entry
                .get("sig")
                .and_then(Json::as_str)
                .and_then(WorkloadSignature::from_hex)
                .ok_or_else(|| bad("entry missing valid sig"))?;
            let per_dnn: Vec<Vec<ComponentId>> = entry
                .get("per_dnn")
                .and_then(Json::as_arr)
                .ok_or_else(|| bad("entry missing per_dnn"))?
                .iter()
                .map(|assign| {
                    assign.as_arr().and_then(|units| {
                        units
                            .iter()
                            .map(|u| u.as_u64().map(|u| ComponentId::new(u as usize)))
                            .collect::<Option<Vec<ComponentId>>>()
                    })
                })
                .collect::<Option<_>>()
                .ok_or_else(|| bad("per_dnn must be an array of index arrays"))?;
            let predicted: Vec<f64> = entry
                .get("predicted_bits")
                .and_then(Json::as_arr)
                .ok_or_else(|| bad("entry missing predicted_bits"))?
                .iter()
                .map(|v| {
                    v.as_str()
                        .and_then(|hex| u64::from_str_radix(hex, 16).ok())
                        .map(f64::from_bits)
                })
                .collect::<Option<_>>()
                .ok_or_else(|| bad("predicted_bits must be hex f64 bit patterns"))?;
            if predicted.len() != per_dnn.len() {
                return Err(bad("predicted_bits/per_dnn length mismatch"));
            }
            // Validate the payload's shape against the signature it will
            // be served under: sig layout is n·(model byte + priority f64)
            // + threshold tag + f64, canonical order. A mismatched row
            // count or unit count would otherwise panic at the first
            // cache hit, mid-serving.
            let n = sig
                .0
                .len()
                .checked_sub(9)
                .filter(|rest| rest.is_multiple_of(9))
                .map(|rest| rest / 9)
                .ok_or_else(|| bad("sig length is not a valid workload signature"))?;
            if per_dnn.len() != n {
                return Err(bad("per_dnn row count does not match the sig's workload"));
            }
            for (group, assign) in per_dnn.iter().enumerate() {
                let idx = sig.0[group * 9] as usize;
                if idx >= registry.len() {
                    return Err(bad("sig names a model outside the registry"));
                }
                let units =
                    *unit_counts[idx].get_or_insert_with(|| registry[idx].build().unit_count());
                if assign.len() != units {
                    return Err(bad("assignment length does not match the model's unit count"));
                }
            }
            let reward = entry
                .get("reward_bits")
                .and_then(Json::as_str)
                .and_then(|hex| u64::from_str_radix(hex, 16).ok())
                .map(f64::from_bits)
                .ok_or_else(|| bad("entry missing valid reward_bits"))?;
            let now = cache.touch();
            cache.plans.insert(
                sig,
                CachedPlan {
                    per_dnn_canonical: per_dnn,
                    predicted_canonical: predicted,
                    reward,
                    last_used: now,
                },
            );
            cache.evict_to_capacity();
        }
        Ok(cache)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rankmap_models::ModelId;

    fn fake_plan(workload: &Workload, base: usize) -> MappingPlan {
        let per_dnn: Vec<Vec<ComponentId>> = workload
            .models()
            .iter()
            .enumerate()
            .map(|(d, m)| vec![ComponentId::new((base + d) % 3); m.unit_count()])
            .collect();
        MappingPlan {
            mapping: Mapping::new(per_dnn),
            predicted: (0..workload.len()).map(|d| 10.0 + d as f64).collect(),
            reward: 1.25,
            evaluations: 42,
        }
    }

    #[test]
    fn same_order_hit_is_bit_identical() {
        let w = Workload::from_ids([ModelId::ResNet50, ModelId::AlexNet, ModelId::MobileNet]);
        let p = vec![0.5, 0.3, 0.2];
        let th = StarvationThreshold::default();
        let mut cache = PlanCache::new();
        let plan = fake_plan(&w, 0);
        cache.insert(&w, &p, th, &plan);
        let hit = cache.get(&w, &p, th).expect("hit");
        assert_eq!(hit.mapping, plan.mapping);
        assert_eq!(hit.predicted, plan.predicted);
        assert_eq!(hit.reward.to_bits(), plan.reward.to_bits());
        assert_eq!(hit.evaluations, 0, "cache hits spend no oracle evaluations");
        assert_eq!(cache.stats(), MemoStats { hits: 1, misses: 0 });
    }

    #[test]
    fn permuted_workload_hits_and_permutes_back() {
        let ids = [ModelId::ResNet50, ModelId::AlexNet, ModelId::MobileNet];
        let w = Workload::from_ids(ids);
        let p = vec![0.5, 0.3, 0.2];
        let th = StarvationThreshold::default();
        let mut cache = PlanCache::new();
        let plan = fake_plan(&w, 1);
        cache.insert(&w, &p, th, &plan);
        // Same set, submitted in a different order with matching priorities.
        let w2 = Workload::from_ids([ids[2], ids[0], ids[1]]);
        let p2 = vec![0.2, 0.5, 0.3];
        let hit = cache.get(&w2, &p2, th).expect("permuted hit");
        for d in 0..3 {
            // Each model keeps the assignment and prediction it was cached with.
            let orig = match d {
                0 => 2, // w2[0] = MobileNet = w[2]
                1 => 0,
                _ => 1,
            };
            assert_eq!(hit.mapping.assignment(d), plan.mapping.assignment(orig));
            assert_eq!(hit.predicted[d], plan.predicted[orig]);
        }
        assert_eq!(hit.reward, plan.reward);
    }

    #[test]
    fn different_priorities_or_threshold_miss() {
        let w = Workload::from_ids([ModelId::AlexNet, ModelId::ResNet50]);
        let th = StarvationThreshold::default();
        let mut cache = PlanCache::new();
        cache.insert(&w, &[0.5, 0.5], th, &fake_plan(&w, 0));
        assert!(cache.get(&w, &[0.7, 0.3], th).is_none());
        assert!(cache
            .get(&w, &[0.5, 0.5], StarvationThreshold::Absolute(3.0))
            .is_none());
        assert!(cache.get(&w, &[0.5, 0.5], th).is_some());
    }

    #[test]
    fn duplicate_models_with_distinct_priorities_stay_consistent() {
        let w = Workload::from_ids([ModelId::AlexNet, ModelId::AlexNet]);
        let th = StarvationThreshold::default();
        let mut cache = PlanCache::new();
        let plan = fake_plan(&w, 0);
        cache.insert(&w, &[0.8, 0.2], th, &plan);
        // Swapped submission order with swapped priorities: the canonical
        // order sorts by priority bits, so the hit must follow priorities.
        let hit = cache.get(&w, &[0.2, 0.8], th).expect("hit");
        assert_eq!(hit.mapping.assignment(0), plan.mapping.assignment(1));
        assert_eq!(hit.mapping.assignment(1), plan.mapping.assignment(0));
    }

    /// Distinct single-model workloads for capacity tests.
    fn singles() -> Vec<Workload> {
        [ModelId::AlexNet, ModelId::ResNet50, ModelId::MobileNet, ModelId::GoogleNet]
            .into_iter()
            .map(|id| Workload::from_ids([id]))
            .collect()
    }

    #[test]
    fn lru_evicts_least_recently_used_first() {
        let th = StarvationThreshold::default();
        let ws = singles();
        let mut cache = PlanCache::with_capacity(2);
        cache.insert(&ws[0], &[1.0], th, &fake_plan(&ws[0], 0));
        cache.insert(&ws[1], &[1.0], th, &fake_plan(&ws[1], 0));
        // Touch workload 0 so workload 1 becomes the LRU entry...
        assert!(cache.get(&ws[0], &[1.0], th).is_some());
        // ...and inserting workload 2 must evict workload 1, not 0.
        cache.insert(&ws[2], &[1.0], th, &fake_plan(&ws[2], 0));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&ws[0], &[1.0], th).is_some(), "recently used survives");
        assert!(cache.get(&ws[2], &[1.0], th).is_some(), "new entry present");
        assert!(cache.get(&ws[1], &[1.0], th).is_none(), "LRU entry evicted");
    }

    #[test]
    fn shrinking_capacity_evicts_in_lru_order() {
        let th = StarvationThreshold::default();
        let ws = singles();
        let mut cache = PlanCache::new();
        for w in &ws {
            cache.insert(w, &[1.0], th, &fake_plan(w, 0));
        }
        // Refresh 0 and 1; 2 and 3 are now the oldest.
        assert!(cache.get(&ws[0], &[1.0], th).is_some());
        assert!(cache.get(&ws[1], &[1.0], th).is_some());
        cache.set_capacity(2);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&ws[2], &[1.0], th).is_none());
        assert!(cache.get(&ws[3], &[1.0], th).is_none());
        assert!(cache.get(&ws[0], &[1.0], th).is_some());
        assert!(cache.get(&ws[1], &[1.0], th).is_some());
    }

    #[test]
    fn json_roundtrip_is_bit_identical() {
        let th = StarvationThreshold::default();
        let w = Workload::from_ids([ModelId::ResNet50, ModelId::AlexNet]);
        let mut cache = PlanCache::with_capacity(8);
        let mut plan = fake_plan(&w, 1);
        plan.predicted = vec![0.1 + 0.2, 1.0 / 3.0]; // awkward floats
        plan.reward = f64::NEG_INFINITY; // a disqualified fallback plan
        cache.insert(&w, &[0.6, 0.4], th, &plan);
        let snapshot = cache.to_json();
        let mut restored = PlanCache::from_json(&snapshot).expect("load");
        assert_eq!(restored.capacity(), 8);
        assert_eq!(restored.len(), 1);
        let hit = restored.get(&w, &[0.6, 0.4], th).expect("hit after boot");
        assert_eq!(hit.mapping, plan.mapping);
        for (a, b) in hit.predicted.iter().zip(&plan.predicted) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(hit.reward.to_bits(), plan.reward.to_bits());
    }

    #[test]
    fn json_roundtrip_preserves_lru_recency_order() {
        let th = StarvationThreshold::default();
        let ws = singles();
        let mut cache = PlanCache::new();
        for w in &ws {
            cache.insert(w, &[1.0], th, &fake_plan(w, 0));
        }
        // Make workload 0 the most recent before snapshotting.
        assert!(cache.get(&ws[0], &[1.0], th).is_some());
        let mut restored = PlanCache::from_json(&cache.to_json()).expect("load");
        restored.set_capacity(2);
        assert!(restored.get(&ws[0], &[1.0], th).is_some(), "MRU survives the bound");
        assert!(restored.get(&ws[3], &[1.0], th).is_some(), "second-MRU survives");
        assert!(restored.get(&ws[1], &[1.0], th).is_none());
        assert!(restored.get(&ws[2], &[1.0], th).is_none());
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(PlanCache::from_json("not json").is_err());
        assert!(PlanCache::from_json("{}").is_err());
        assert!(
            PlanCache::from_json(r#"{"plan_cache_version":2,"entries":[]}"#).is_err(),
            "unknown versions must not load silently"
        );
        // Non-integer unit assignments must reject the snapshot, not be
        // silently dropped (which would shorten an assignment vector).
        let corrupt = r#"{"plan_cache_version":1,"capacity":null,"entries":[
            {"sig":"00","per_dnn":[[0,1.5,2]],
             "predicted_bits":["3ff0000000000000"],
             "reward_bits":"3ff0000000000000"}]}"#;
        assert!(PlanCache::from_json(corrupt).is_err());
        // A zero capacity must error, not trip with_capacity's assert.
        assert!(
            PlanCache::from_json(r#"{"plan_cache_version":1,"capacity":0,"entries":[]}"#)
                .is_err()
        );
        // Non-ASCII "hex" signatures must be rejected, not split
        // mid-character.
        let euro_sig = "{\"plan_cache_version\":1,\"capacity\":null,\"entries\":[\
            {\"sig\":\"€0\",\"per_dnn\":[[0]],\
             \"predicted_bits\":[\"3ff0000000000000\"],\
             \"reward_bits\":\"3ff0000000000000\"}]}";
        assert!(PlanCache::from_json(euro_sig).is_err());
    }

    #[test]
    fn snapshot_payload_must_match_its_signature_shape() {
        let th = StarvationThreshold::default();
        let w = Workload::from_ids([ModelId::AlexNet, ModelId::MobileNet]);
        let mut cache = PlanCache::new();
        cache.insert(&w, &[0.5, 0.5], th, &fake_plan(&w, 0));
        let snapshot = cache.to_json();
        // Drop one per_dnn row (and its prediction) but keep the 2-DNN
        // sig: the load must reject the entry instead of serving a plan
        // that panics on its first hit.
        let root = crate::json::parse(&snapshot).unwrap();
        let entry = &root.get("entries").unwrap().as_arr().unwrap()[0];
        let sig = entry.get("sig").unwrap().as_str().unwrap();
        let truncated = format!(
            r#"{{"plan_cache_version":1,"capacity":null,"entries":[
                {{"sig":"{sig}","per_dnn":[[0]],
                  "predicted_bits":["3ff0000000000000"],
                  "reward_bits":"3ff0000000000000"}}]}}"#
        );
        assert!(PlanCache::from_json(&truncated).is_err());
        // An assignment row of the wrong unit count is rejected too.
        let wrong_units = format!(
            r#"{{"plan_cache_version":1,"capacity":null,"entries":[
                {{"sig":"{sig}","per_dnn":[[0],[1]],
                  "predicted_bits":["3ff0000000000000","3ff0000000000000"],
                  "reward_bits":"3ff0000000000000"}}]}}"#
        );
        assert!(PlanCache::from_json(&wrong_units).is_err());
    }

    #[test]
    fn platform_tag_survives_snapshots_and_blocks_cross_board_imports() {
        use rankmap_platform::Platform;
        let orange = Platform::orange_pi_5().signature();
        let jetson = Platform::jetson_orin_nx().signature();
        let th = StarvationThreshold::default();
        let w = Workload::from_ids([ModelId::AlexNet]);
        let mut cache = PlanCache::new().for_platform(orange.clone());
        cache.insert(&w, &[1.0], th, &fake_plan(&w, 0));
        let snapshot = cache.to_json();
        let restored = PlanCache::from_json(&snapshot).expect("load");
        assert_eq!(restored.platform(), Some(orange.as_str()));
        assert!(restored.validate_platform(&orange).is_ok());
        let err = restored.validate_platform(&jetson).unwrap_err();
        assert!(
            err.to_string().contains("never cross board types"),
            "mismatch must be a clear error: {err}"
        );
        // Untagged legacy snapshots remain importable anywhere.
        let legacy = PlanCache::from_json(&PlanCache::new().to_json()).expect("load");
        assert_eq!(legacy.platform(), None);
        assert!(legacy.validate_platform(&jetson).is_ok());
    }

    #[test]
    fn default_is_the_unbounded_cache() {
        // A derived Default would start at capacity 0 and evict every
        // insert — Default must behave like new().
        let th = StarvationThreshold::default();
        let w = Workload::from_ids([ModelId::AlexNet]);
        let mut cache = PlanCache::default();
        cache.insert(&w, &[1.0], th, &fake_plan(&w, 0));
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&w, &[1.0], th).is_some());
    }
}
