//! End-to-end training pipeline: dataset → VQ-VAE → estimator → oracle.

use crate::dataset::{self, DatasetConfig};
use crate::oracle::LearnedOracle;
use rankmap_estimator::{
    EmbeddingTable, Estimator, EstimatorConfig, QTensorSpec, Trainer, TrainerConfig,
    TrainReport, VqVae, VqVaeConfig,
};
use rankmap_models::ModelId;
use rankmap_platform::Platform;

/// Scale of the training pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// Small dataset / few epochs: minutes on a laptop, used by tests,
    /// examples, and the default benchmark harness.
    Quick,
    /// Paper-scale protocol (large dataset, full epochs). Slow; behind a
    /// flag in the experiment binaries.
    Paper,
}

impl Fidelity {
    /// Dataset size (the paper uses 10 K).
    pub fn dataset_samples(self) -> usize {
        match self {
            Fidelity::Quick => 600,
            Fidelity::Paper => 10_000,
        }
    }

    /// VQ-VAE training epochs over the model pool.
    pub fn vqvae_epochs(self) -> usize {
        match self {
            Fidelity::Quick => 30,
            Fidelity::Paper => 120,
        }
    }

    /// Estimator configuration.
    pub fn estimator_config(self) -> EstimatorConfig {
        match self {
            Fidelity::Quick => EstimatorConfig::quick(),
            Fidelity::Paper => EstimatorConfig::paper(),
        }
    }

    /// Estimator trainer configuration (the paper trains 50 epochs).
    pub fn trainer_config(self) -> TrainerConfig {
        match self {
            Fidelity::Quick => TrainerConfig { epochs: 10, ..Default::default() },
            Fidelity::Paper => TrainerConfig { epochs: 50, ..Default::default() },
        }
    }

    /// MCTS budget for the manager at this fidelity.
    pub fn mcts_iterations(self) -> usize {
        match self {
            Fidelity::Quick => 1_200,
            Fidelity::Paper => 12_000,
        }
    }
}

/// Everything the training pipeline produces.
pub struct TrainedArtifacts {
    /// The ready-to-search oracle (VQ-VAE + embeddings + estimator +
    /// ideal-rate lookup).
    pub oracle: LearnedOracle,
    /// Estimator loss curves (train + 10% held-out validation).
    pub report: TrainReport,
    /// Final VQ-VAE reconstruction loss.
    pub vqvae_loss: f32,
    /// Number of labelled samples used.
    pub dataset_size: usize,
}

/// Runs the full §V protocol: generate a labelled dataset on the board
/// simulator, train the VQ-VAE on the model pool, embed units, train the
/// multi-task estimator (90/10 split, channel shuffling), and wrap it all
/// into a [`LearnedOracle`].
pub fn train_pipeline(platform: &Platform, fidelity: Fidelity, seed: u64) -> TrainedArtifacts {
    let pool = ModelId::paper_pool();
    let cfg = DatasetConfig {
        samples: fidelity.dataset_samples(),
        max_dnns: 5,
        pool: pool.clone(),
        seed,
    };
    let labelled = dataset::generate(platform, &cfg);

    // VQ-VAE over the pool's layer sequences.
    let mut vqvae = VqVae::new(VqVaeConfig::default(), seed ^ 0xAA);
    let built: Vec<_> = pool.iter().map(|id| id.build()).collect();
    let vqvae_loss =
        rankmap_estimator::vqvae::train_on_pool(&mut vqvae, &built, fidelity.vqvae_epochs());

    // Frozen unit embeddings + Q tensors.
    let spec = QTensorSpec::default();
    let mut table = EmbeddingTable::build(&mut vqvae, &built);
    let samples = dataset::to_samples(&labelled, &mut vqvae, &mut table, &spec);

    // 90/10 split, as in the paper.
    let split = samples.len() * 9 / 10;
    let (train_set, val_set) = samples.split_at(split);

    let mut estimator = Estimator::new(fidelity.estimator_config(), seed ^ 0xBB);
    let report =
        Trainer::new(fidelity.trainer_config()).train(&mut estimator, train_set, val_set);

    // Ideal-rate lookup for converting potentials back to inf/s.
    let ideals = dataset::ideal_rates(platform, &ModelId::all());
    let oracle = LearnedOracle::new(
        vqvae,
        table,
        estimator,
        Box::new(move |id| ideals.get(&id).copied().unwrap_or(1.0)),
    );
    TrainedArtifacts { oracle, report, vqvae_loss, dataset_size: labelled.len() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::ThroughputOracle;
    use rankmap_platform::ComponentId;
    use rankmap_sim::{Mapping, Workload};

    /// A miniature end-to-end run: tiny dataset, few epochs — checks the
    /// plumbing, not the accuracy.
    #[test]
    fn pipeline_produces_usable_oracle() {
        let platform = Platform::orange_pi_5();
        // Shrink everything below even Quick fidelity for test speed.
        let cfg = DatasetConfig {
            samples: 30,
            max_dnns: 3,
            pool: vec![ModelId::AlexNet, ModelId::SqueezeNetV2, ModelId::MobileNet],
            seed: 3,
        };
        let labelled = dataset::generate(&platform, &cfg);
        let mut vqvae = VqVae::new(VqVaeConfig::default(), 1);
        let built: Vec<_> = cfg.pool.iter().map(|id| id.build()).collect();
        let _ = rankmap_estimator::vqvae::train_on_pool(&mut vqvae, &built, 5);
        let spec = QTensorSpec::default();
        let mut table = EmbeddingTable::build(&mut vqvae, &built);
        let samples = dataset::to_samples(&labelled, &mut vqvae, &mut table, &spec);
        let mut estimator = Estimator::new(EstimatorConfig::quick(), 2);
        let report = Trainer::new(TrainerConfig { epochs: 2, ..Default::default() })
            .train(&mut estimator, &samples, &[]);
        assert_eq!(report.train_loss.len(), 2);
        let ideals = dataset::ideal_rates(&platform, &cfg.pool);
        let oracle = LearnedOracle::new(
            vqvae,
            table,
            estimator,
            Box::new(move |id| ideals.get(&id).copied().unwrap_or(1.0)),
        );
        let w = Workload::from_ids([ModelId::AlexNet, ModelId::MobileNet]);
        let t = oracle.predict(&w, &Mapping::uniform(&w, ComponentId::new(0)));
        assert_eq!(t.len(), 2);
        assert!(t.iter().all(|v| v.is_finite() && *v >= 0.0));
    }

    #[test]
    fn fidelity_scales_monotonically() {
        assert!(Fidelity::Paper.dataset_samples() > Fidelity::Quick.dataset_samples());
        assert!(Fidelity::Paper.mcts_iterations() > Fidelity::Quick.mcts_iterations());
        assert!(
            Fidelity::Paper.trainer_config().epochs > Fidelity::Quick.trainer_config().epochs
        );
    }
}
