//! Property-based tests for reward semantics and priorities.

use proptest::prelude::*;
use rankmap_core::metrics;
use rankmap_core::priority::PriorityMode;
use rankmap_core::reward::{RewardSpec, StarvationThreshold, DISQUALIFIED};
use rankmap_models::ModelId;
use rankmap_sim::Workload;

prop_compose! {
    fn spec_and_throughputs()(
        n in 2usize..=5,
        seed in any::<u64>(),
    ) -> (RewardSpec, Vec<f64>) {
        use rand::Rng;
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let mut p: Vec<f64> = (0..n).map(|_| rng.gen_range(0.01..1.0)).collect();
        let sum: f64 = p.iter().sum();
        for x in &mut p { *x /= sum; }
        let ideals: Vec<f64> = (0..n).map(|_| rng.gen_range(4.0..70.0)).collect();
        let t: Vec<f64> = ideals.iter().map(|&i| rng.gen_range(0.0..i)).collect();
        (RewardSpec::new(p, StarvationThreshold::FractionOfIdeal(0.05), ideals), t)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Reward is monotone: raising any DNN's throughput never lowers it.
    #[test]
    fn reward_monotone_in_throughput((spec, t) in spec_and_throughputs()) {
        let r0 = spec.reward(&t);
        for i in 0..t.len() {
            let mut t2 = t.clone();
            t2[i] *= 1.5;
            t2[i] += 1.0;
            let r1 = spec.reward(&t2);
            if r0 != DISQUALIFIED {
                prop_assert!(r1 >= r0, "raising t[{}] lowered reward", i);
            }
        }
    }

    /// Disqualification is exactly the threshold predicate.
    #[test]
    fn disqualified_iff_below_threshold((spec, t) in spec_and_throughputs()) {
        let r = spec.reward(&t);
        prop_assert_eq!(r == DISQUALIFIED, !spec.qualifies(&t));
    }

    /// Dropping a DNN below its floor always disqualifies.
    #[test]
    fn starving_one_disqualifies((spec, mut t) in spec_and_throughputs()) {
        t[0] = 0.0;
        prop_assert_eq!(spec.reward(&t), DISQUALIFIED);
    }

    /// Priority vectors are normalized distributions.
    #[test]
    fn priority_vectors_normalized(seed in any::<u64>(), n in 1usize..=4) {
        use rand::Rng;
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let pool = [
            ModelId::AlexNet,
            ModelId::SqueezeNetV2,
            ModelId::MobileNet,
            ModelId::ResNet12,
        ];
        let ids: Vec<ModelId> = (0..n).map(|_| pool[rng.gen_range(0..pool.len())]).collect();
        let w = Workload::from_ids(ids);
        let p = PriorityMode::Dynamic.vector(&w);
        prop_assert_eq!(p.len(), n);
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for &x in &p {
            prop_assert!(x > 0.0);
        }
    }

    /// Pearson is symmetric and bounded.
    #[test]
    fn pearson_properties(seed in any::<u64>(), n in 2usize..10) {
        use rand::Rng;
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let a: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let r1 = metrics::pearson(&a, &b);
        let r2 = metrics::pearson(&b, &a);
        prop_assert!((r1 - r2).abs() < 1e-12);
        prop_assert!((-1.0001..=1.0001).contains(&r1));
    }

    /// Histograms conserve the sample count.
    #[test]
    fn histogram_conserves(seed in any::<u64>(), n in 1usize..50) {
        use rand::Rng;
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let v: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..3.0)).collect();
        let h = metrics::histogram(&v, 0.0, 1.0, 7);
        prop_assert_eq!(h.iter().sum::<usize>(), n);
    }
}
