//! Property-based tests for reward semantics, priorities, and the batched
//! oracle hot path.

use proptest::prelude::*;
use rankmap_core::metrics;
use rankmap_core::oracle::{AnalyticalOracle, BoardOracle, LearnedOracle, ThroughputOracle};
use rankmap_core::priority::PriorityMode;
use rankmap_core::reward::{RewardSpec, StarvationThreshold, DISQUALIFIED};
use rankmap_estimator::{EmbeddingTable, Estimator, EstimatorConfig, VqVae, VqVaeConfig};
use rankmap_models::ModelId;
use rankmap_platform::Platform;
use rankmap_sim::{Mapping, Workload};

prop_compose! {
    fn spec_and_throughputs()(
        n in 2usize..=5,
        seed in any::<u64>(),
    ) -> (RewardSpec, Vec<f64>) {
        use rand::Rng;
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let mut p: Vec<f64> = (0..n).map(|_| rng.gen_range(0.01..1.0)).collect();
        let sum: f64 = p.iter().sum();
        for x in &mut p { *x /= sum; }
        let ideals: Vec<f64> = (0..n).map(|_| rng.gen_range(4.0..70.0)).collect();
        let t: Vec<f64> = ideals.iter().map(|&i| rng.gen_range(0.0..i)).collect();
        (RewardSpec::new(p, StarvationThreshold::FractionOfIdeal(0.05), ideals), t)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Reward is monotone: raising any DNN's throughput never lowers it.
    #[test]
    fn reward_monotone_in_throughput((spec, t) in spec_and_throughputs()) {
        let r0 = spec.reward(&t);
        for i in 0..t.len() {
            let mut t2 = t.clone();
            t2[i] *= 1.5;
            t2[i] += 1.0;
            let r1 = spec.reward(&t2);
            if r0 != DISQUALIFIED {
                prop_assert!(r1 >= r0, "raising t[{}] lowered reward", i);
            }
        }
    }

    /// Disqualification is exactly the threshold predicate.
    #[test]
    fn disqualified_iff_below_threshold((spec, t) in spec_and_throughputs()) {
        let r = spec.reward(&t);
        prop_assert_eq!(r == DISQUALIFIED, !spec.qualifies(&t));
    }

    /// Dropping a DNN below its floor always disqualifies.
    #[test]
    fn starving_one_disqualifies((spec, mut t) in spec_and_throughputs()) {
        t[0] = 0.0;
        prop_assert_eq!(spec.reward(&t), DISQUALIFIED);
    }

    /// Priority vectors are normalized distributions.
    #[test]
    fn priority_vectors_normalized(seed in any::<u64>(), n in 1usize..=4) {
        use rand::Rng;
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let pool = [
            ModelId::AlexNet,
            ModelId::SqueezeNetV2,
            ModelId::MobileNet,
            ModelId::ResNet12,
        ];
        let ids: Vec<ModelId> = (0..n).map(|_| pool[rng.gen_range(0..pool.len())]).collect();
        let w = Workload::from_ids(ids);
        let p = PriorityMode::Dynamic.vector(&w);
        prop_assert_eq!(p.len(), n);
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for &x in &p {
            prop_assert!(x > 0.0);
        }
    }

    /// Pearson is symmetric and bounded.
    #[test]
    fn pearson_properties(seed in any::<u64>(), n in 2usize..10) {
        use rand::Rng;
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let a: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let r1 = metrics::pearson(&a, &b);
        let r2 = metrics::pearson(&b, &a);
        prop_assert!((r1 - r2).abs() < 1e-12);
        prop_assert!((-1.0001..=1.0001).contains(&r1));
    }

    /// Histograms conserve the sample count.
    #[test]
    fn histogram_conserves(seed in any::<u64>(), n in 1usize..50) {
        use rand::Rng;
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let v: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..3.0)).collect();
        let h = metrics::histogram(&v, 0.0, 1.0, 7);
        prop_assert_eq!(h.iter().sum::<usize>(), n);
    }
}

prop_compose! {
    /// A small workload plus a batch of 1..=6 random mappings for it.
    fn workload_and_batch()(
        n in 1usize..=3,
        batch in 1usize..=6,
        seed in any::<u64>(),
    ) -> (Workload, Vec<Mapping>) {
        use rand::Rng;
        let pool = [ModelId::AlexNet, ModelId::SqueezeNetV2, ModelId::MobileNet];
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let ids: Vec<ModelId> = (0..n).map(|_| pool[rng.gen_range(0..pool.len())]).collect();
        let w = Workload::from_ids(ids);
        let ms: Vec<Mapping> = (0..batch).map(|_| Mapping::random(&w, 3, &mut rng)).collect();
        (w, ms)
    }
}

fn learned_oracle() -> LearnedOracle {
    let mut vq = VqVae::new(VqVaeConfig::default(), 5);
    let pool: Vec<_> = [ModelId::AlexNet, ModelId::SqueezeNetV2, ModelId::MobileNet]
        .iter()
        .map(|id| id.build())
        .collect();
    let table = EmbeddingTable::build(&mut vq, &pool);
    let est = Estimator::new(EstimatorConfig::quick(), 5);
    LearnedOracle::new(vq, table, est, Box::new(|_| 25.0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `predict_batch` must agree with per-item `predict` for the
    /// analytical oracle (bit for bit: same cost tables, same solver).
    #[test]
    fn analytical_batch_matches_predict((w, ms) in workload_and_batch()) {
        let platform = Platform::orange_pi_5();
        let oracle = AnalyticalOracle::new(&platform);
        let batched = oracle.predict_batch(&w, &ms);
        prop_assert_eq!(batched.len(), ms.len());
        for (m, row) in ms.iter().zip(&batched) {
            prop_assert_eq!(row, &oracle.predict(&w, m));
        }
    }

    /// Same for the board (event simulator) oracle.
    #[test]
    fn board_batch_matches_predict((w, ms) in workload_and_batch()) {
        let platform = Platform::orange_pi_5();
        let oracle = BoardOracle::new(&platform);
        let batched = oracle.predict_batch(&w, &ms);
        for (m, row) in ms.iter().zip(&batched) {
            prop_assert_eq!(row, &oracle.predict(&w, m));
        }
    }

    /// And for the learned oracle, whose batch path runs the decoder
    /// heads as stacked matmuls — results must still be bit-identical.
    #[test]
    fn learned_batch_matches_predict((w, ms) in workload_and_batch()) {
        let oracle = learned_oracle();
        let batched = oracle.predict_batch(&w, &ms);
        for (m, row) in ms.iter().zip(&batched) {
            prop_assert_eq!(row, &oracle.predict(&w, m));
        }
    }
}
