//! Stress and property tests for the incremental serving runtime:
//! generated scenarios stay well-formed, and the runtime digests them
//! without violating its invariants.

use proptest::prelude::*;
use rankmap_core::manager::{ManagerConfig, RankMapManager};
use rankmap_core::oracle::AnalyticalOracle;
use rankmap_core::priority::PriorityMode;
use rankmap_core::runtime::{
    timeline_average_potential, DynamicEvent, DynamicRuntime, InstanceId, RankMapMapper,
};
use rankmap_core::scenario::{generate, MixProfile, ScenarioConfig};
use rankmap_models::ModelId;
use rankmap_platform::Platform;
use std::collections::HashSet;

fn quick_pool() -> Vec<ModelId> {
    vec![
        ModelId::AlexNet,
        ModelId::SqueezeNetV2,
        ModelId::MobileNet,
        ModelId::ResNet12,
        ModelId::GoogleNet,
    ]
}

/// Checks the generator's contract on one event stream.
fn assert_well_formed(events: &[DynamicEvent], horizon: f64) {
    let mut last = 0.0f64;
    let mut arrived = 0u64;
    let mut departed: HashSet<InstanceId> = HashSet::new();
    for e in events {
        let at = e.at();
        assert!(at >= last - 1e-12, "event times must be sorted: {at} after {last}");
        assert!((0.0..horizon).contains(&at), "event at {at} outside [0, {horizon})");
        last = at;
        match e {
            DynamicEvent::Arrive { .. } => arrived += 1,
            DynamicEvent::Depart { instance, .. } => {
                assert!(
                    instance.ordinal() < arrived,
                    "departure of {instance} before its arrival"
                );
                assert!(departed.insert(*instance), "{instance} departed twice");
            }
            DynamicEvent::SetPriorities { .. } => {}
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Generated scenarios keep event times sorted, departures valid
    /// (arrived earlier, at most once), and ids dense in arrival order.
    #[test]
    fn generated_scenarios_are_well_formed(
        seed in any::<u64>(),
        rate_per_min in 1.0f64..10.0,
        lifetime in 30.0f64..600.0,
        churn_idx in 0usize..3,
        mix_idx in 0usize..3,
    ) {
        let churn = [0.0f64, 1.0 / 120.0, 1.0 / 45.0][churn_idx];
        let mix = [MixProfile::Light, MixProfile::Heavy, MixProfile::Mixed][mix_idx];
        let cfg = ScenarioConfig {
            horizon: 900.0,
            arrival_rate: rate_per_min / 60.0,
            mean_lifetime: lifetime,
            max_concurrent: 4,
            pool: quick_pool(),
            mix,
            priority_churn_rate: churn,
            seed,
        };
        let events = generate(&cfg);
        assert_well_formed(&events, cfg.horizon);
    }

    /// The runtime digests any generated scenario: times strictly
    /// increase, instances stay parallel to models, and stall points are
    /// exactly the silent ones.
    #[test]
    fn runtime_survives_generated_scenarios(seed in 0u64..16) {
        let cfg = ScenarioConfig {
            horizon: 600.0,
            arrival_rate: 1.0 / 40.0,
            mean_lifetime: 200.0,
            max_concurrent: 3,
            pool: quick_pool(),
            mix: MixProfile::Mixed,
            priority_churn_rate: 1.0 / 150.0,
            seed,
        };
        let events = generate(&cfg);
        let platform = Platform::orange_pi_5();
        let oracle = AnalyticalOracle::new(&platform);
        let mgr = RankMapManager::new(
            &platform,
            &oracle,
            ManagerConfig { mcts_iterations: 60, warm_iterations: 24, ..Default::default() },
        );
        let mut mapper = RankMapMapper::new(mgr, PriorityMode::Dynamic, "RankMapD");
        let rt = DynamicRuntime::new(&platform, 60.0);
        let tl = rt.run(&events, &mut mapper, cfg.horizon);
        for w in tl.windows(2) {
            assert!(w[1].time > w[0].time, "timeline must advance");
        }
        for pt in &tl {
            assert_eq!(pt.models.len(), pt.instances.len());
            assert_eq!(pt.models.len(), pt.potentials.len());
            assert_eq!(pt.models.len(), pt.throughputs.len());
            if pt.migration_stall > 0.0 {
                assert!(pt.potentials.iter().all(|&p| p == 0.0));
            }
        }
    }
}

/// Migration awareness must not lose timeline-average potential against
/// the oblivious runtime on a remap-heavy scenario — the whole point of
/// the decision is to refuse unpaying moves.
#[test]
fn migration_awareness_no_worse_on_churny_scenario() {
    let platform = Platform::orange_pi_5();
    let oracle = AnalyticalOracle::new(&platform);
    let cfg = ScenarioConfig {
        horizon: 600.0,
        arrival_rate: 1.0 / 60.0,
        mean_lifetime: 180.0,
        max_concurrent: 3,
        pool: quick_pool(),
        mix: MixProfile::Mixed,
        priority_churn_rate: 1.0 / 100.0,
        seed: 7,
    };
    let events = generate(&cfg);
    let run = |aware: bool| {
        let mgr = RankMapManager::new(
            &platform,
            &oracle,
            ManagerConfig { mcts_iterations: 120, warm_iterations: 48, ..Default::default() },
        );
        let mut mapper = RankMapMapper::new(mgr, PriorityMode::Dynamic, "RankMapD");
        let rt = DynamicRuntime::new(&platform, 30.0).with_migration_awareness(aware);
        timeline_average_potential(&rt.run(&events, &mut mapper, cfg.horizon))
    };
    let aware = run(true);
    let oblivious = run(false);
    assert!(
        aware >= oblivious - 1e-9,
        "migration awareness regressed the timeline: {aware} vs {oblivious}"
    );
}

/// End-to-end SetPriorities regression (the Fig. 10 path): a static rank
/// rotation mid-scenario must actually reach the manager — the mapper's
/// mode after the run reflects the last event, and the remap after the
/// rotation is produced under the rotated ranks.
#[test]
fn set_priorities_drives_the_fig10_rotation() {
    let platform = Platform::orange_pi_5();
    let oracle = AnalyticalOracle::new(&platform);
    let mgr = RankMapManager::new(
        &platform,
        &oracle,
        ManagerConfig { mcts_iterations: 200, warm_iterations: 80, ..Default::default() },
    );
    let mut mapper = RankMapMapper::new(mgr, PriorityMode::critical(2, 0), "RankMapS");
    let rt = DynamicRuntime::new(&platform, 50.0);
    let events = vec![
        DynamicEvent::arrive(0.0, ModelId::InceptionV4),
        DynamicEvent::arrive(0.0, ModelId::SqueezeNetV2),
        DynamicEvent::SetPriorities { at: 200.0, mode: PriorityMode::critical(2, 1) },
    ];
    let tl = rt.run(&events, &mut mapper, 400.0);
    assert_eq!(mapper.mode(), &PriorityMode::critical(2, 1));
    assert!(!tl.is_empty());
}
