//! Training samples and the channel-shuffling augmentation.

use rand::seq::SliceRandom;
use rand::Rng;
use rankmap_nn::tensor::Tensor;

/// One supervised example: a `Q` tensor, per-slot potential-throughput
/// targets, and an activity mask (workloads smaller than `max_dnns` leave
/// trailing slots inactive).
#[derive(Debug, Clone)]
pub struct Sample {
    /// Input mapping tensor `[max_dnns, max_units, width]`.
    pub q: Tensor,
    /// Target potential throughput per slot.
    pub target: Vec<f32>,
    /// Which slots hold real DNNs.
    pub mask: Vec<bool>,
}

impl Sample {
    /// Creates a sample; inactive slots must carry zero targets.
    pub fn new(q: Tensor, target: Vec<f32>, mask: Vec<bool>) -> Self {
        assert_eq!(target.len(), mask.len(), "target/mask length mismatch");
        Self { q, target, mask }
    }

    /// Channel-shuffling augmentation (§V): permutes the DNN slots of `Q`
    /// together with targets and masks. The channels of `Q` are
    /// statistically independent, so shuffling teaches the decoder streams
    /// slot symmetry and (per the paper) nearly halves the validation L2.
    pub fn shuffled<R: Rng + ?Sized>(&self, rng: &mut R) -> Sample {
        let n = self.target.len();
        let mut perm: Vec<usize> = (0..n).collect();
        perm.shuffle(rng);
        let chan = self.q.len() / n;
        let mut q = Tensor::zeros(self.q.shape().to_vec());
        let mut target = vec![0.0; n];
        let mut mask = vec![false; n];
        for (dst, &src) in perm.iter().enumerate() {
            q.data_mut()[dst * chan..(dst + 1) * chan]
                .copy_from_slice(&self.q.data()[src * chan..(src + 1) * chan]);
            target[dst] = self.target[src];
            mask[dst] = self.mask[src];
        }
        Sample { q, target, mask }
    }

    /// Number of active slots.
    pub fn active(&self) -> usize {
        self.mask.iter().filter(|&&m| m).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample() -> Sample {
        let mut q = Tensor::zeros(vec![3, 2, 4]);
        for (i, v) in q.data_mut().iter_mut().enumerate() {
            *v = i as f32;
        }
        Sample::new(q, vec![0.1, 0.2, 0.3], vec![true, true, false])
    }

    #[test]
    fn shuffle_preserves_multiset() {
        let s = sample();
        let mut rng = StdRng::seed_from_u64(5);
        let t = s.shuffled(&mut rng);
        let mut a = s.target.clone();
        let mut b = t.target.clone();
        a.sort_by(f32::total_cmp);
        b.sort_by(f32::total_cmp);
        assert_eq!(a, b);
        assert_eq!(s.active(), t.active());
        let mut qa = s.q.data().to_vec();
        let mut qb = t.q.data().to_vec();
        qa.sort_by(f32::total_cmp);
        qb.sort_by(f32::total_cmp);
        assert_eq!(qa, qb);
    }

    #[test]
    fn shuffle_moves_channels_together() {
        let s = sample();
        let mut rng = StdRng::seed_from_u64(1);
        let t = s.shuffled(&mut rng);
        // Find where slot 0 (values 0..8) went; its target must follow.
        let chan = 8;
        for dst in 0..3 {
            if t.q.data()[dst * chan] == 0.0 && t.q.data()[dst * chan + 7] == 7.0 {
                assert_eq!(t.target[dst], 0.1);
                assert!(t.mask[dst]);
                return;
            }
        }
        panic!("slot 0 channel not found after shuffle");
    }

    #[test]
    fn active_counts_mask() {
        assert_eq!(sample().active(), 2);
    }
}
