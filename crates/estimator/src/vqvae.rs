//! Vector Quantized-Variational AutoEncoder over layer descriptors.
//!
//! Encoder: 1-D convolutions over a model's layer-feature sequence
//! (`[22, L] → [E, L]`). The latent at each position is quantized with
//! **Grouped Residual Vector Quantization** (HiFi-Codec style): the
//! embedding is split into groups, each group quantized by a short
//! residual cascade of EMA-updated codebooks. The decoder mirrors the
//! encoder and reconstructs the raw features; training uses
//! reconstruction + commitment loss with straight-through gradients.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rankmap_models::{DnnModel, FEATURE_DIM};
use rankmap_nn::conv::Conv1d;
use rankmap_nn::layer::{Layer, Relu};
use rankmap_nn::tensor::Tensor;

/// VQ-VAE hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VqVaeConfig {
    /// Latent embedding dimension (16 in the paper).
    pub embed_dim: usize,
    /// Encoder hidden channels.
    pub hidden: usize,
    /// Number of quantizer groups (embedding split).
    pub groups: usize,
    /// Residual quantization depth per group.
    pub residual_depth: usize,
    /// Codebook entries per (group, depth).
    pub codebook_size: usize,
    /// EMA decay for codebook updates.
    pub ema_decay: f32,
    /// Commitment loss weight β.
    pub beta: f32,
}

impl Default for VqVaeConfig {
    fn default() -> Self {
        Self {
            embed_dim: 16,
            hidden: 32,
            groups: 2,
            residual_depth: 2,
            codebook_size: 32,
            ema_decay: 0.97,
            beta: 0.25,
        }
    }
}

/// One EMA-updated codebook for a (group, depth) slot.
#[derive(Debug, Clone)]
struct Codebook {
    /// `[size, dim]` code vectors.
    codes: Vec<Vec<f32>>,
    ema_count: Vec<f32>,
    ema_sum: Vec<Vec<f32>>,
}

impl Codebook {
    fn new(size: usize, dim: usize, rng: &mut StdRng) -> Self {
        let codes: Vec<Vec<f32>> = (0..size)
            .map(|_| (0..dim).map(|_| rng.gen_range(-0.5..0.5)).collect())
            .collect();
        Self {
            ema_count: vec![1.0; size],
            ema_sum: codes.to_vec(),
            codes,
        }
    }

    fn nearest(&self, v: &[f32]) -> usize {
        let mut best = 0;
        let mut best_d = f32::MAX;
        for (i, c) in self.codes.iter().enumerate() {
            let d: f32 = c.iter().zip(v).map(|(a, b)| (a - b) * (a - b)).sum();
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best
    }

    fn ema_update(&mut self, assignments: &[(usize, Vec<f32>)], decay: f32) {
        for (count, sum) in self.ema_count.iter_mut().zip(&mut self.ema_sum) {
            *count *= decay;
            for s in sum.iter_mut() {
                *s *= decay;
            }
        }
        for (idx, v) in assignments {
            self.ema_count[*idx] += 1.0 - decay;
            for (s, x) in self.ema_sum[*idx].iter_mut().zip(v) {
                *s += (1.0 - decay) * x;
            }
        }
        for ((code, count), sum) in
            self.codes.iter_mut().zip(&self.ema_count).zip(&self.ema_sum)
        {
            if *count > 1e-5 {
                for (c, s) in code.iter_mut().zip(sum) {
                    *c = s / count;
                }
            }
        }
    }
}

/// Per-position codebook assignments of one `(group, depth)` slot:
/// `(code index, residual vector)` pairs.
type CodeAssignments = Vec<(usize, Vec<f32>)>;

/// The VQ-VAE model: encoder, grouped residual quantizer, decoder.
pub struct VqVae {
    cfg: VqVaeConfig,
    enc1: Conv1d,
    enc_act: Relu,
    enc2: Conv1d,
    dec1: Conv1d,
    dec_act: Relu,
    dec2: Conv1d,
    /// `books[group][depth]`.
    books: Vec<Vec<Codebook>>,
}

impl VqVae {
    /// Creates a VQ-VAE with the given configuration and seed.
    pub fn new(cfg: VqVaeConfig, seed: u64) -> Self {
        assert_eq!(cfg.embed_dim % cfg.groups, 0, "groups must divide embed_dim");
        let mut rng = StdRng::seed_from_u64(seed);
        let gdim = cfg.embed_dim / cfg.groups;
        let books = (0..cfg.groups)
            .map(|_| {
                (0..cfg.residual_depth)
                    .map(|_| Codebook::new(cfg.codebook_size, gdim, &mut rng))
                    .collect()
            })
            .collect();
        Self {
            cfg,
            enc1: Conv1d::new(FEATURE_DIM, cfg.hidden, 3, 1, 1, seed ^ 1),
            enc_act: Relu::new(),
            enc2: Conv1d::new(cfg.hidden, cfg.embed_dim, 3, 1, 1, seed ^ 2),
            dec1: Conv1d::new(cfg.embed_dim, cfg.hidden, 3, 1, 1, seed ^ 3),
            dec_act: Relu::new(),
            dec2: Conv1d::new(cfg.hidden, FEATURE_DIM, 3, 1, 1, seed ^ 4),
            books,
        }
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> VqVaeConfig {
        self.cfg
    }

    /// Builds the `[22, L]` feature sequence of a model (normalized
    /// Equation-1 vectors, one column per layer).
    pub fn feature_sequence(model: &DnnModel) -> Tensor {
        let layers: Vec<&rankmap_models::LayerDesc> = model.layers().collect();
        let l = layers.len();
        let mut data = vec![0.0f32; FEATURE_DIM * l];
        for (j, layer) in layers.iter().enumerate() {
            for (f, v) in layer.normalized_features().iter().enumerate() {
                data[f * l + j] = *v;
            }
        }
        Tensor::from_vec(data, vec![FEATURE_DIM, l])
    }

    fn encode_raw(&mut self, seq: &Tensor, train: bool) -> Tensor {
        let h = self.enc1.forward(seq, train);
        let h = self.enc_act.forward(&h, train);
        self.enc2.forward(&h, train)
    }

    /// Quantizes a `[E, L]` latent with frozen codebooks, returning
    /// `(quantized, codes_used, per-(group, depth) assignments)`. The
    /// read-only core shared by the frozen inference path and training.
    fn quantize_frozen(&self, z: &Tensor) -> (Tensor, usize, Vec<Vec<CodeAssignments>>) {
        let e = z.shape()[0];
        let l = z.shape()[1];
        let gdim = e / self.cfg.groups;
        let mut q = Tensor::zeros(vec![e, l]);
        let mut used = std::collections::HashSet::new();
        let mut all_assignments = Vec::with_capacity(self.cfg.groups);
        for g in 0..self.cfg.groups {
            // Collect per-position group vectors.
            let mut residuals: Vec<Vec<f32>> = (0..l)
                .map(|p| (0..gdim).map(|d| z.data()[(g * gdim + d) * l + p]).collect())
                .collect();
            let mut per_depth = Vec::with_capacity(self.cfg.residual_depth);
            for depth in 0..self.cfg.residual_depth {
                let mut assignments = Vec::with_capacity(l);
                for r in residuals.iter() {
                    let idx = self.books[g][depth].nearest(r);
                    used.insert((g, depth, idx));
                    assignments.push((idx, r.clone()));
                }
                for (p, (idx, _)) in assignments.iter().enumerate() {
                    let code = &self.books[g][depth].codes[*idx];
                    for d in 0..gdim {
                        q.data_mut()[(g * gdim + d) * l + p] += code[d];
                        residuals[p][d] -= code[d];
                    }
                }
                per_depth.push(assignments);
            }
            all_assignments.push(per_depth);
        }
        (q, used.len(), all_assignments)
    }

    /// Quantizes a `[E, L]` latent. When `update`, EMA-updates the
    /// codebooks with the assignments (each depth's update happens after
    /// its assignments were taken, so results match the frozen path).
    fn quantize(&mut self, z: &Tensor, update: bool) -> (Tensor, usize) {
        let (q, used, assignments) = self.quantize_frozen(z);
        if update {
            for (g, per_depth) in assignments.iter().enumerate() {
                for (depth, assigns) in per_depth.iter().enumerate() {
                    self.books[g][depth].ema_update(assigns, self.cfg.ema_decay);
                }
            }
        }
        (q, used)
    }

    /// Encodes a model into per-layer quantized embeddings `[E, L]`
    /// through `&self` — codebooks frozen, no training caches touched, so
    /// concurrent callers can share the model.
    pub fn encode_frozen(&self, model: &DnnModel) -> Tensor {
        let seq = Self::feature_sequence(model);
        let h = self.enc1.infer(&seq);
        let mut h = h;
        h.relu_inplace();
        let z = self.enc2.infer(&h);
        self.quantize_frozen(&z).0
    }

    /// Encodes a model into per-layer quantized embeddings `[E, L]`
    /// (legacy `&mut` entry point; delegates to [`VqVae::encode_frozen`]).
    pub fn encode(&mut self, model: &DnnModel) -> Tensor {
        self.encode_frozen(model)
    }

    /// One training step on a model's layer sequence. Returns
    /// `(reconstruction_mse, commitment_loss)`.
    pub fn train_step(&mut self, model: &DnnModel, opt: &mut rankmap_nn::optim::Adam) -> (f32, f32) {
        let seq = Self::feature_sequence(model);
        let z = self.encode_raw(&seq, true);
        let (q, _) = self.quantize(&z, true);
        // Commitment: pull encoder output toward codes.
        let mut commit = 0.0f32;
        let n = z.len() as f32;
        let mut commit_grad = Tensor::zeros(z.shape().to_vec());
        for i in 0..z.len() {
            let d = z.data()[i] - q.data()[i];
            commit += d * d;
            commit_grad.data_mut()[i] = 2.0 * self.cfg.beta * d / n;
        }
        commit /= n;
        // Decode from quantized latent (straight-through: decoder grads
        // flow into the encoder as if q were z).
        let h = self.dec1.forward(&q, true);
        let h = self.dec_act.forward(&h, true);
        let recon = self.dec2.forward(&h, true);
        let (loss, dloss) = rankmap_nn::loss::mse(&recon, &seq);
        let g = self.dec2.backward(&dloss);
        let g = self.dec_act.backward(&g);
        let g_dec_in = self.dec1.backward(&g);
        // Straight-through + commitment into the encoder.
        let mut g_enc_out = g_dec_in;
        g_enc_out.add_assign(&commit_grad);
        let g = self.enc2.backward(&g_enc_out);
        let g = self.enc_act.backward(&g);
        let _ = self.enc1.backward(&g);
        opt.step(self);
        self.zero_grad();
        (loss, commit)
    }

    /// Number of distinct codes used when encoding `model` (codebook
    /// utilization diagnostic).
    pub fn codes_used(&mut self, model: &DnnModel) -> usize {
        let seq = Self::feature_sequence(model);
        let z = self.encode_raw(&seq, false);
        self.quantize(&z, false).1
    }
}

impl Layer for VqVae {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        // Encoder-only view (used by Layer-generic utilities).
        let h = self.enc1.forward(x, train);
        let h = self.enc_act.forward(&h, train);
        self.enc2.forward(&h, train)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let g = self.enc2.backward(grad_out);
        let g = self.enc_act.backward(&g);
        self.enc1.backward(&g)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut rankmap_nn::Param)) {
        self.enc1.visit_params(f);
        self.enc2.visit_params(f);
        self.dec1.visit_params(f);
        self.dec2.visit_params(f);
    }
}

/// Trains a VQ-VAE on the whole model pool for `epochs` passes, returning
/// the final mean reconstruction loss.
pub fn train_on_pool(vqvae: &mut VqVae, pool: &[DnnModel], epochs: usize) -> f32 {
    let mut opt = rankmap_nn::optim::Adam::new(2e-3);
    let mut last = f32::MAX;
    for _ in 0..epochs {
        let mut total = 0.0;
        for m in pool {
            let (recon, _) = vqvae.train_step(m, &mut opt);
            total += recon;
        }
        last = total / pool.len() as f32;
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;
    use rankmap_models::ModelId;

    fn small_pool() -> Vec<DnnModel> {
        vec![
            ModelId::AlexNet.build(),
            ModelId::SqueezeNetV2.build(),
            ModelId::MobileNet.build(),
        ]
    }

    #[test]
    fn feature_sequence_shape() {
        let m = ModelId::AlexNet.build();
        let s = VqVae::feature_sequence(&m);
        assert_eq!(s.shape(), &[FEATURE_DIM, m.layer_count()]);
    }

    #[test]
    fn encode_produces_embed_dim() {
        let mut v = VqVae::new(VqVaeConfig::default(), 7);
        let m = ModelId::AlexNet.build();
        let e = v.encode(&m);
        assert_eq!(e.shape(), &[16, m.layer_count()]);
    }

    #[test]
    fn training_reduces_reconstruction_loss() {
        let mut v = VqVae::new(VqVaeConfig::default(), 3);
        let pool = small_pool();
        let first = train_on_pool(&mut v, &pool, 1);
        let later = train_on_pool(&mut v, &pool, 25);
        assert!(
            later < first * 0.8,
            "VQ-VAE should learn to reconstruct: {first} -> {later}"
        );
    }

    #[test]
    fn quantization_is_deterministic_frozen() {
        let mut v = VqVae::new(VqVaeConfig::default(), 5);
        let m = ModelId::SqueezeNetV2.build();
        let a = v.encode(&m);
        let b = v.encode(&m);
        assert_eq!(a, b);
    }

    #[test]
    fn codebook_is_actually_used() {
        let mut v = VqVae::new(VqVaeConfig::default(), 9);
        let pool = small_pool();
        train_on_pool(&mut v, &pool, 5);
        let used = v.codes_used(&pool[0]);
        assert!(used >= 4, "expected several codes in use, got {used}");
    }

    #[test]
    fn groups_must_divide_embed_dim() {
        let cfg = VqVaeConfig { groups: 3, ..Default::default() };
        let r = std::panic::catch_unwind(|| VqVae::new(cfg, 0));
        assert!(r.is_err());
    }
}
