//! Mapping featurization: assembling the paper's input tensor `Q`.

use crate::vqvae::VqVae;
use rankmap_models::{DnnModel, ModelId};
use rankmap_nn::tensor::Tensor;
use rankmap_sim::{Mapping, Workload};
use std::collections::HashMap;

/// Geometry of the `Q` tensor: `[max_dnns, max_units, components × embed]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QTensorSpec {
    /// Maximum concurrent DNNs (channels of `Q`); 5 in the paper.
    pub max_dnns: usize,
    /// Maximum schedulable units per DNN (rows of `Q`).
    pub max_units: usize,
    /// Computing components (column blocks of `Q`).
    pub components: usize,
    /// Per-unit embedding width within a column block.
    pub embed_dim: usize,
}

impl Default for QTensorSpec {
    fn default() -> Self {
        Self { max_dnns: 5, max_units: 32, components: 3, embed_dim: 16 }
    }
}

impl QTensorSpec {
    /// Width of a `Q` row: `components × embed_dim`.
    pub fn width(&self) -> usize {
        self.components * self.embed_dim
    }

    /// Full tensor shape.
    pub fn shape(&self) -> Vec<usize> {
        vec![self.max_dnns, self.max_units, self.width()]
    }
}

/// Frozen per-unit embeddings computed once per model through the VQ-VAE
/// (mean of the quantized per-layer embeddings within each unit).
#[derive(Debug, Clone, Default)]
pub struct EmbeddingTable {
    per_model: HashMap<ModelId, Vec<Vec<f32>>>,
    embed_dim: usize,
}

impl EmbeddingTable {
    /// Builds the table for the given models through a trained VQ-VAE.
    pub fn build(vqvae: &mut VqVae, models: &[DnnModel]) -> Self {
        Self::build_frozen(vqvae, models)
    }

    /// Builds the table through `&VqVae` (frozen codebooks) — the
    /// thread-safe construction path.
    pub fn build_frozen(vqvae: &VqVae, models: &[DnnModel]) -> Self {
        let embed_dim = vqvae.config().embed_dim;
        let mut per_model = HashMap::new();
        for m in models {
            per_model.insert(m.id(), Self::embed_model(vqvae, m));
        }
        Self { per_model, embed_dim }
    }

    fn embed_model(vqvae: &VqVae, model: &DnnModel) -> Vec<Vec<f32>> {
        let embedded = vqvae.encode_frozen(model); // [E, L]
        let e = embedded.shape()[0];
        let l = embedded.shape()[1];
        let mut out = Vec::with_capacity(model.unit_count());
        let mut layer_off = 0usize;
        for unit in model.units() {
            let n = unit.layers.len();
            let mut mean = vec![0.0f32; e];
            for p in layer_off..layer_off + n {
                for (d, m) in mean.iter_mut().enumerate() {
                    *m += embedded.data()[d * l + p];
                }
            }
            for m in &mut mean {
                *m /= n as f32;
            }
            out.push(mean);
            layer_off += n;
        }
        out
    }

    /// Ensures a model's embeddings exist (builds them on demand).
    pub fn ensure(&mut self, vqvae: &mut VqVae, model: &DnnModel) {
        self.ensure_frozen(vqvae, model);
    }

    /// [`EmbeddingTable::ensure`] through `&VqVae` — used by the oracle's
    /// lazy path, which only write-locks the table, never the VQ-VAE.
    pub fn ensure_frozen(&mut self, vqvae: &VqVae, model: &DnnModel) {
        if self.embed_dim == 0 {
            // A `Default` table has no width yet; adopt the VQ-VAE's.
            self.embed_dim = vqvae.config().embed_dim;
        }
        self.per_model
            .entry(model.id())
            .or_insert_with(|| Self::embed_model(vqvae, model));
    }

    /// Whether every model of `ids` already has embeddings.
    pub fn contains_all<'a>(&self, models: impl IntoIterator<Item = &'a DnnModel>) -> bool {
        models.into_iter().all(|m| self.per_model.contains_key(&m.id()))
    }

    /// Unit embeddings of a model, if present.
    pub fn get(&self, id: ModelId) -> Option<&Vec<Vec<f32>>> {
        self.per_model.get(&id)
    }

    /// Embedding dimensionality.
    pub fn embed_dim(&self) -> usize {
        self.embed_dim
    }

    /// Number of models in the table.
    pub fn len(&self) -> usize {
        self.per_model.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.per_model.is_empty()
    }

    /// Assembles the `Q` tensor for a workload+mapping: channel `d` row `u`
    /// holds the unit's embedding in the column block of its assigned
    /// component, zeros elsewhere.
    ///
    /// # Panics
    ///
    /// Panics if the workload exceeds the spec bounds or a model is missing
    /// from the table.
    pub fn q_tensor(&self, spec: &QTensorSpec, workload: &Workload, mapping: &Mapping) -> Tensor {
        assert!(workload.len() <= spec.max_dnns, "workload exceeds Q channel count");
        assert_eq!(spec.embed_dim, self.embed_dim, "embedding width mismatch");
        let mut q = Tensor::zeros(spec.shape());
        let width = spec.width();
        for (d, model) in workload.models().iter().enumerate() {
            let embeds = self
                .per_model
                .get(&model.id())
                .unwrap_or_else(|| panic!("model {} missing from embedding table", model.id()));
            assert!(model.unit_count() <= spec.max_units, "model exceeds Q row count");
            let assign = mapping.assignment(d);
            for (u, emb) in embeds.iter().enumerate() {
                let comp = assign[u].index();
                assert!(comp < spec.components, "component exceeds Q column blocks");
                let base = (d * spec.max_units + u) * width + comp * spec.embed_dim;
                q.data_mut()[base..base + spec.embed_dim].copy_from_slice(emb);
            }
        }
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vqvae::VqVaeConfig;
    use rankmap_platform::ComponentId;

    fn table_for(ids: &[ModelId]) -> (EmbeddingTable, Workload) {
        let mut v = VqVae::new(VqVaeConfig::default(), 1);
        let w = Workload::from_ids(ids.iter().copied());
        let t = EmbeddingTable::build(&mut v, w.models());
        (t, w)
    }

    #[test]
    fn q_tensor_shape_matches_spec() {
        let (t, w) = table_for(&[ModelId::AlexNet, ModelId::SqueezeNetV2]);
        let spec = QTensorSpec::default();
        let m = Mapping::uniform(&w, ComponentId::new(0));
        let q = t.q_tensor(&spec, &w, &m);
        assert_eq!(q.shape(), &[5, 32, 48]);
    }

    #[test]
    fn q_blocks_follow_assignment() {
        let (t, w) = table_for(&[ModelId::AlexNet]);
        let spec = QTensorSpec::default();
        let gpu = Mapping::uniform(&w, ComponentId::new(0));
        let little = Mapping::uniform(&w, ComponentId::new(2));
        let qg = t.q_tensor(&spec, &w, &gpu);
        let ql = t.q_tensor(&spec, &w, &little);
        // Unit 0 row: GPU block non-zero for gpu mapping, zero for little.
        let row = &qg.data()[0..16];
        assert!(row.iter().any(|&v| v != 0.0), "GPU block should be populated");
        let row_l = &ql.data()[0..16];
        assert!(row_l.iter().all(|&v| v == 0.0), "GPU block should be empty");
        let block2 = &ql.data()[32..48];
        assert!(block2.iter().any(|&v| v != 0.0), "LITTLE block should be populated");
    }

    #[test]
    fn unused_channels_are_zero() {
        let (t, w) = table_for(&[ModelId::AlexNet]);
        let spec = QTensorSpec::default();
        let q = t.q_tensor(&spec, &w, &Mapping::uniform(&w, ComponentId::new(1)));
        let per_chan = 32 * 48;
        assert!(q.data()[per_chan..].iter().all(|&v| v == 0.0), "channels 1.. must be zero");
    }

    #[test]
    fn embeddings_differ_between_models() {
        let (t, _) = table_for(&[ModelId::AlexNet, ModelId::Vgg16]);
        let a = &t.get(ModelId::AlexNet).unwrap()[0];
        let v = &t.get(ModelId::Vgg16).unwrap()[0];
        assert_ne!(a, v, "different architectures should embed differently");
    }

    #[test]
    fn width_and_shape_helpers() {
        let spec = QTensorSpec::default();
        assert_eq!(spec.width(), 48);
        assert_eq!(spec.shape(), vec![5, 32, 48]);
    }
}
