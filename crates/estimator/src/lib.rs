//! Learned throughput estimation for multi-DNN mappings.
//!
//! Reproduces §IV-C and §IV-D of the paper:
//!
//! 1. A **VQ-VAE** ([`vqvae::VqVae`]) compresses each layer's raw
//!    22-dimensional descriptor (Equation 1) into a 16-dimensional
//!    embedding through 1-D convolutions over the layer sequence and
//!    Grouped Residual Vector Quantization, cutting the estimator's
//!    multiply-accumulate cost (see [`macs`]).
//! 2. A **multi-task attention CNN** ([`model::Estimator`]) consumes the
//!    mapping tensor `Q` — one channel per DNN, one row per schedulable
//!    unit, one column block per computing component — through a shared
//!    residual backbone (depthwise convolutions + self-attention) and
//!    per-DNN decoder streams (linear attention + two fully connected
//!    layers), predicting each DNN's throughput for any candidate mapping.
//!
//! Targets are *potential throughputs* `P = t/t_ideal ∈ [0, ~1]` rather
//! than raw inferences/second, which puts every DNN on a comparable scale;
//! the conversion back to inf/s multiplies by the per-model ideal rate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod features;
pub mod macs;
pub mod model;
pub mod trainer;
pub mod vqvae;

pub use dataset::Sample;
pub use features::{EmbeddingTable, QTensorSpec};
pub use model::{CompiledStem, Estimator, EstimatorConfig};
pub use trainer::{TrainReport, Trainer, TrainerConfig};
pub use vqvae::{VqVae, VqVaeConfig};
