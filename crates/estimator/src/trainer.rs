//! Minibatch training loop for the estimator.

use crate::dataset::Sample;
use crate::model::Estimator;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rankmap_nn::layer::Layer;
use rankmap_nn::optim::Adam;

/// Training-loop configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainerConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Samples per optimizer step.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Whether to apply channel-shuffling augmentation.
    pub channel_shuffle: bool,
    /// Global gradient-norm clip applied before each optimizer step.
    pub grad_clip: f32,
    /// RNG seed for shuffling.
    pub seed: u64,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        Self {
            epochs: 12,
            batch_size: 16,
            lr: 1e-3,
            channel_shuffle: true,
            grad_clip: 1.0,
            seed: 0,
        }
    }
}

/// Scales all gradients so their global L2 norm is at most `max_norm`.
fn clip_gradients(estimator: &mut Estimator, max_norm: f32) {
    let mut sq = 0.0f32;
    estimator.visit_params(&mut |p| {
        sq += p.grad.data().iter().map(|g| g * g).sum::<f32>();
    });
    let norm = sq.sqrt();
    if norm > max_norm && norm.is_finite() {
        let k = max_norm / norm;
        estimator.visit_params(&mut |p| {
            for g in p.grad.data_mut() {
                *g *= k;
            }
        });
    } else if !norm.is_finite() {
        // A diverged sample poisons the batch: drop it entirely.
        estimator.zero_grad();
    }
}

/// Per-epoch training record.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Mean training loss per epoch.
    pub train_loss: Vec<f32>,
    /// Mean validation loss per epoch (empty if no validation set given).
    pub val_loss: Vec<f32>,
}

impl TrainReport {
    /// Final validation loss (or final training loss if no validation).
    pub fn final_loss(&self) -> f32 {
        self.val_loss
            .last()
            .or(self.train_loss.last())
            .copied()
            .unwrap_or(f32::NAN)
    }
}

/// Minibatch trainer for [`Estimator`].
#[derive(Debug)]
pub struct Trainer {
    cfg: TrainerConfig,
}

impl Trainer {
    /// Creates a trainer.
    pub fn new(cfg: TrainerConfig) -> Self {
        Self { cfg }
    }

    /// Trains in place, returning the loss curves. The paper's protocol:
    /// 90/10 split, L2 loss per decoder stream, random channel shuffling
    /// as augmentation.
    pub fn train(
        &self,
        estimator: &mut Estimator,
        train_set: &[Sample],
        val_set: &[Sample],
    ) -> TrainReport {
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let mut opt = Adam::new(self.cfg.lr);
        let mut order: Vec<usize> = (0..train_set.len()).collect();
        let mut report = TrainReport { train_loss: Vec::new(), val_loss: Vec::new() };
        for _epoch in 0..self.cfg.epochs {
            order.shuffle(&mut rng);
            let mut total = 0.0;
            let mut in_batch = 0;
            for &i in &order {
                let s = if self.cfg.channel_shuffle {
                    train_set[i].shuffled(&mut rng)
                } else {
                    train_set[i].clone()
                };
                total += estimator.train_sample(&s.q, &s.target, &s.mask);
                in_batch += 1;
                if in_batch == self.cfg.batch_size {
                    clip_gradients(estimator, self.cfg.grad_clip);
                    opt.step(estimator);
                    estimator.zero_grad();
                    in_batch = 0;
                }
            }
            if in_batch > 0 {
                clip_gradients(estimator, self.cfg.grad_clip);
                opt.step(estimator);
                estimator.zero_grad();
            }
            report.train_loss.push(total / train_set.len().max(1) as f32);
            if !val_set.is_empty() {
                report.val_loss.push(Self::evaluate(estimator, val_set));
            }
        }
        report
    }

    /// Mean masked L2 loss over a set without training.
    pub fn evaluate(estimator: &mut Estimator, set: &[Sample]) -> f32 {
        let mut total = 0.0;
        for s in set {
            let preds = estimator.predict(&s.q);
            let active = s.active().max(1) as f32;
            let mut loss = 0.0;
            for (i, &p) in preds.iter().enumerate() {
                if s.mask[i] {
                    let d = p - s.target[i];
                    loss += d * d;
                }
            }
            total += loss / active;
        }
        total / set.len().max(1) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::EstimatorConfig;
    use rand::Rng;
    use rankmap_nn::tensor::Tensor;

    /// Synthetic task: target of each slot = mean of its channel block.
    fn synthetic_set(n: usize, seed: u64) -> Vec<Sample> {
        let spec = EstimatorConfig::quick().spec;
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let mut q = Tensor::zeros(spec.shape());
                let chan = q.len() / spec.max_dnns;
                let mut target = vec![0.0f32; spec.max_dnns];
                let mut mask = vec![false; spec.max_dnns];
                let active = rng.gen_range(2..=spec.max_dnns);
                for d in 0..active {
                    let level: f32 = rng.gen_range(0.0..1.0);
                    for v in q.data_mut()[d * chan..(d + 1) * chan].iter_mut() {
                        *v = level + rng.gen_range(-0.05f32..0.05);
                    }
                    target[d] = level;
                    mask[d] = true;
                }
                Sample::new(q, target, mask)
            })
            .collect()
    }

    #[test]
    fn training_reduces_loss_on_learnable_task() {
        let train = synthetic_set(60, 1);
        let val = synthetic_set(12, 2);
        let mut e = Estimator::new(EstimatorConfig::quick(), 5);
        let before = Trainer::evaluate(&mut e, &val);
        let cfg = TrainerConfig { epochs: 10, batch_size: 8, lr: 2e-3, channel_shuffle: false, grad_clip: 1.0, seed: 3 };
        let report = Trainer::new(cfg).train(&mut e, &train, &val);
        let after = report.final_loss();
        assert!(
            after < before * 0.5,
            "estimator should learn the synthetic task: {before} -> {after}"
        );
    }

    #[test]
    fn channel_shuffle_does_not_break_training() {
        let train = synthetic_set(40, 7);
        let val = synthetic_set(10, 8);
        let mut e = Estimator::new(EstimatorConfig::quick(), 6);
        let cfg = TrainerConfig { epochs: 8, batch_size: 8, lr: 2e-3, channel_shuffle: true, grad_clip: 1.0, seed: 4 };
        let report = Trainer::new(cfg).train(&mut e, &train, &val);
        assert!(report.final_loss() < 0.2, "shuffled training diverged");
    }

    #[test]
    fn report_tracks_epochs() {
        let train = synthetic_set(10, 9);
        let mut e = Estimator::new(EstimatorConfig::quick(), 1);
        let cfg = TrainerConfig { epochs: 3, batch_size: 4, lr: 1e-3, channel_shuffle: false, grad_clip: 1.0, seed: 0 };
        let report = Trainer::new(cfg).train(&mut e, &train, &[]);
        assert_eq!(report.train_loss.len(), 3);
        assert!(report.val_loss.is_empty());
    }
}
