//! Analytical multiply-accumulate accounting for the estimator — the
//! §IV-C claim that VQ-VAE compression reduces estimator MACs by ~58%.

use crate::model::EstimatorConfig;
use rankmap_models::FEATURE_DIM;

/// MACs of one estimator forward pass as a function of the per-unit
/// feature width inside each component block (16 with VQ-VAE embeddings,
/// 22 with raw Equation-1 vectors).
pub fn estimator_macs(cfg: &EstimatorConfig, per_unit_width: usize) -> f64 {
    let c = cfg.channels as f64;
    let n = cfg.spec.max_dnns as f64;
    let rows = cfg.spec.max_units as f64;
    let width = (cfg.spec.components * per_unit_width) as f64;
    // Stem conv k3 s3: output (rows/3)×(width/3), fan-in = N·9.
    let h1 = (rows / 3.0).ceil();
    let w1 = (width / 3.0).ceil();
    let stem = h1 * w1 * c * n * 9.0;
    // Down conv k3 s2.
    let h2 = (h1 / 2.0).ceil();
    let w2 = (w1 / 2.0).ceil();
    let down = h2 * w2 * c * c * 9.0;
    let t = h2 * w2; // tokens
    // Per block: 2 depthwise convs + self-attention (4 projections +
    // 2 T×T matmuls) + 1×1 mix conv.
    let dw = 2.0 * t * c * 9.0;
    let attn = 4.0 * t * c * c + 2.0 * t * t * c;
    let mix = t * c * c;
    let block = dw + attn + mix;
    // Decoders: linear attention (4 projections + 2 D×D contractions),
    // pooling, and the 2-layer MLP.
    let dec = n * (4.0 * t * c * c + 2.0 * c * c * t + t * c + c * cfg.decoder_hidden as f64
        + cfg.decoder_hidden as f64);
    stem + down + cfg.blocks as f64 * block + dec
}

/// MAC reduction from VQ-VAE compression: compares the estimator run on
/// 16-dimensional embeddings vs raw 22-dimensional layer vectors.
/// Returns `(macs_raw, macs_compressed, reduction_fraction)`.
pub fn compression_saving(cfg: &EstimatorConfig) -> (f64, f64, f64) {
    let raw = estimator_macs(cfg, FEATURE_DIM);
    let compressed = estimator_macs(cfg, cfg.spec.embed_dim);
    (raw, compressed, 1.0 - compressed / raw)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compression_saves_macs() {
        let (raw, compressed, saving) = compression_saving(&EstimatorConfig::paper());
        assert!(compressed < raw);
        assert!(
            (0.2..0.75).contains(&saving),
            "MAC saving should be substantial (paper ≈ 58%), got {saving:.2}"
        );
    }

    #[test]
    fn macs_scale_with_channels() {
        let quick = estimator_macs(&EstimatorConfig::quick(), 16);
        let paper = estimator_macs(&EstimatorConfig::paper(), 16);
        assert!(paper > quick * 2.0);
    }

    #[test]
    fn macs_positive_and_finite() {
        let m = estimator_macs(&EstimatorConfig::quick(), 22);
        assert!(m.is_finite() && m > 0.0);
    }
}
