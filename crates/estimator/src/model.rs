//! The multi-task, attention-based CNN throughput estimator (§IV-D).

use crate::features::{EmbeddingTable, QTensorSpec};
use rankmap_nn::attention::{AttnPool, LinearAttention, SelfAttention};
use rankmap_nn::conv::Conv2d;
use rankmap_nn::layer::{Layer, Linear, Param, Relu};
use rankmap_nn::norm::BatchNorm;
use rankmap_nn::tensor::Tensor;
use rankmap_sim::{Mapping, Workload};

/// Estimator hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EstimatorConfig {
    /// Backbone channel width.
    pub channels: usize,
    /// Number of residual backbone blocks (3 in the paper).
    pub blocks: usize,
    /// Hidden width of each decoder stream's MLP.
    pub decoder_hidden: usize,
    /// Geometry of the input `Q` tensor.
    pub spec: QTensorSpec,
}

impl EstimatorConfig {
    /// Small configuration for tests and quick experiments.
    pub fn quick() -> Self {
        Self {
            channels: 12,
            blocks: 2,
            decoder_hidden: 24,
            spec: QTensorSpec::default(),
        }
    }

    /// Paper-structured configuration (3 shared residual blocks, wider
    /// channels). The parameter count is far below the paper's 3.7 M —
    /// sized for CPU training on the simulated board — but the topology
    /// (depthwise conv + self-attention backbone, linear-attention + 2·FC
    /// decoder streams) matches §IV-D exactly.
    pub fn paper() -> Self {
        Self {
            channels: 32,
            blocks: 3,
            decoder_hidden: 48,
            spec: QTensorSpec::default(),
        }
    }
}

impl Default for EstimatorConfig {
    fn default() -> Self {
        Self::quick()
    }
}

/// Converts `[C, H, W]` feature maps to `[H·W, C]` token matrices.
fn to_tokens(x: &Tensor) -> Tensor {
    let (c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2]);
    x.clone().reshape(vec![c, h * w]).transpose()
}

/// Converts `[T, C]` tokens back to `[C, H, W]`.
fn from_tokens(x: &Tensor, h: usize, w: usize) -> Tensor {
    let c = x.shape()[1];
    x.transpose().reshape(vec![c, h, w])
}

/// One shared residual backbone block: two depthwise convolutions, spatial
/// self-attention, a 1×1 mixing convolution, and batch normalization —
/// "a stack of ×2 depth-wise 2D convolutional layers and self-attention
/// modules, and a 2D convolutional layer followed by batch normalization".
struct BackboneBlock {
    dw1: Conv2d,
    act1: Relu,
    dw2: Conv2d,
    attn: SelfAttention,
    mix: Conv2d,
    bn: BatchNorm,
    hw: Option<(usize, usize)>,
}

impl BackboneBlock {
    fn new(c: usize, seed: u64) -> Self {
        Self {
            dw1: Conv2d::new(c, c, 3, 1, 1, c, seed ^ 0x10),
            act1: Relu::new(),
            dw2: Conv2d::new(c, c, 3, 1, 1, c, seed ^ 0x20),
            attn: SelfAttention::new(c, seed ^ 0x30),
            mix: Conv2d::new(c, c, 1, 1, 0, 1, seed ^ 0x40),
            bn: BatchNorm::new(c),
            hw: None,
        }
    }
}

impl Layer for BackboneBlock {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let (h, w) = (x.shape()[1], x.shape()[2]);
        self.hw = Some((h, w));
        let y = self.dw1.forward(x, train);
        let y = self.act1.forward(&y, train);
        let y = self.dw2.forward(&y, train);
        let tokens = to_tokens(&y);
        let attended = self.attn.forward(&tokens, train);
        let y = from_tokens(&attended, h, w);
        let y = self.mix.forward(&y, train);
        let y = self.bn.forward(&y, train);
        y.add(x) // residual
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (h, w) = self.hw.expect("BackboneBlock::backward without forward");
        let g = self.bn.backward(grad_out);
        let g = self.mix.backward(&g);
        let g_tokens = to_tokens(&g);
        let g = self.attn.backward(&g_tokens);
        let g = from_tokens(&g, h, w);
        let g = self.dw2.backward(&g);
        let g = self.act1.backward(&g);
        let g = self.dw1.backward(&g);
        g.add(grad_out) // residual path
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.dw1.visit_params(f);
        self.dw2.visit_params(f);
        self.attn.visit_params(f);
        self.mix.visit_params(f);
        self.bn.visit_params(f);
    }
}

impl BackboneBlock {
    /// Lock-free inference through `&self` (no backward caches).
    fn infer(&self, x: &Tensor) -> Tensor {
        let (h, w) = (x.shape()[1], x.shape()[2]);
        let mut y = self.dw1.infer(x);
        y.relu_inplace();
        let y = self.dw2.infer(&y);
        let tokens = to_tokens(&y);
        let attended = self.attn.infer(&tokens);
        let y = from_tokens(&attended, h, w);
        let y = self.mix.infer(&y);
        let mut y = self.bn.infer(&y);
        y.add_assign(x); // residual
        y
    }
}

/// One per-DNN decoder stream: linear attention over the shared features,
/// attention pooling, and two fully connected layers producing the
/// throughput estimate for that DNN slot.
struct DecoderStream {
    attn: LinearAttention,
    pool: AttnPool,
    fc1: Linear,
    act: Relu,
    fc2: Linear,
}

impl DecoderStream {
    fn new(c: usize, hidden: usize, seed: u64) -> Self {
        Self {
            attn: LinearAttention::new(c, seed ^ 0x100),
            pool: AttnPool::new(c, seed ^ 0x200),
            fc1: Linear::new(c, hidden, seed ^ 0x300),
            act: Relu::new(),
            fc2: Linear::new(hidden, 1, seed ^ 0x400),
        }
    }

    fn forward(&mut self, tokens: &Tensor, train: bool) -> f32 {
        let a = self.attn.forward(tokens, train);
        let p = self.pool.forward(&a, train);
        let h = self.fc1.forward(&p, train);
        let h = self.act.forward(&h, train);
        self.fc2.forward(&h, train).data()[0]
    }

    fn backward(&mut self, dloss: f32) -> Tensor {
        let g = Tensor::from_vec(vec![dloss], vec![1]);
        let g = self.fc2.backward(&g);
        let g = self.act.backward(&g);
        let g = self.fc1.backward(&g);
        let g = self.pool.backward(&g);
        self.attn.backward(&g)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.attn.visit_params(f);
        self.pool.visit_params(f);
        self.fc1.visit_params(f);
        self.fc2.visit_params(f);
    }
}

/// Sparse additive stem response of one `(DNN, unit, component)`
/// placement: `(flat output index, value)` pairs.
type StemContribution = Vec<(u32, f32)>;

/// A workload's stem convolution, pre-applied per `(DNN, unit, component)`
/// placement (see [`Estimator::compile_stem`]). Evaluating a mapping's
/// stem output is a sparse gather-add — no `Q` tensor, no convolution.
pub struct CompiledStem {
    /// Stem response to an all-zero `Q` (the bias field).
    base: Tensor,
    /// `contrib[d][u][c]`: flat-index/value pairs the unit adds to `base`
    /// when DNN `d`'s unit `u` sits on component `c`.
    contrib: Vec<Vec<Vec<StemContribution>>>,
}

impl CompiledStem {
    /// Stem output for one mapping of the compiled workload.
    ///
    /// # Panics
    ///
    /// Panics if the mapping shape disagrees with the compiled workload.
    pub fn stem_output(&self, mapping: &Mapping) -> Tensor {
        let mut out = self.base.clone();
        let od = out.data_mut();
        for (d, per_unit) in self.contrib.iter().enumerate() {
            let assign = mapping.assignment(d);
            assert_eq!(assign.len(), per_unit.len(), "mapping/compiled unit count mismatch");
            for (u, per_comp) in per_unit.iter().enumerate() {
                for &(i, v) in &per_comp[assign[u].index()] {
                    od[i as usize] += v;
                }
            }
        }
        out
    }

    /// Number of DNNs this stem was compiled for.
    pub fn dnn_count(&self) -> usize {
        self.contrib.len()
    }
}

/// The multi-task throughput estimator: shared residual backbone + one
/// decoder stream per DNN slot. Predicts the *potential throughput* `P` of
/// every slot for a candidate mapping tensor `Q`.
pub struct Estimator {
    cfg: EstimatorConfig,
    stem: Conv2d,
    stem_act: Relu,
    down: Conv2d,
    blocks: Vec<BackboneBlock>,
    decoders: Vec<DecoderStream>,
    feat_hw: (usize, usize),
    cache_tokens: bool,
}

impl Estimator {
    /// Creates an estimator with the given configuration and seed.
    pub fn new(cfg: EstimatorConfig, seed: u64) -> Self {
        let c = cfg.channels;
        let stem = Conv2d::new(cfg.spec.max_dnns, c, 3, 3, 1, 1, seed ^ 1);
        let down = Conv2d::new(c, c, 3, 2, 1, 1, seed ^ 2);
        let h1 = (cfg.spec.max_units + 2 - 3) / 3 + 1;
        let w1 = (cfg.spec.width() + 2 - 3) / 3 + 1;
        let h2 = (h1 + 2 - 3) / 2 + 1;
        let w2 = (w1 + 2 - 3) / 2 + 1;
        let blocks = (0..cfg.blocks)
            .map(|i| BackboneBlock::new(c, seed ^ ((i as u64 + 3) << 8)))
            .collect();
        let decoders = (0..cfg.spec.max_dnns)
            .map(|i| DecoderStream::new(c, cfg.decoder_hidden, seed ^ ((i as u64 + 77) << 16)))
            .collect();
        Self {
            cfg,
            stem,
            stem_act: Relu::new(),
            down,
            blocks,
            decoders,
            feat_hw: (h2, w2),
            cache_tokens: false,
        }
    }

    /// The configuration this estimator was built with.
    pub fn config(&self) -> EstimatorConfig {
        self.cfg
    }

    /// Spatial size of the shared feature map after the stem.
    pub fn feature_hw(&self) -> (usize, usize) {
        self.feat_hw
    }

    /// Predicts per-slot potential throughput from a `Q` tensor.
    ///
    /// This is the *legacy* `&mut` entry point kept for the training loop
    /// and as the sequential-baseline reference in benchmarks; the search
    /// hot path uses [`Estimator::infer`] / [`Estimator::infer_batch`].
    pub fn predict(&mut self, q: &Tensor) -> Vec<f32> {
        self.forward_internal(q, false)
    }

    /// Shared backbone through `&self`: stem → downsample → residual
    /// blocks → token matrix. Safe to call concurrently.
    fn infer_tokens(&self, q: &Tensor) -> Tensor {
        assert_eq!(q.shape(), &self.cfg.spec.shape()[..], "Q tensor shape mismatch");
        self.tokens_from_stem(self.stem.infer(q))
    }

    /// Backbone continuation after the stem (shared by the direct and
    /// compiled-stem paths).
    fn tokens_from_stem(&self, stem_out: Tensor) -> Tensor {
        let mut y = stem_out;
        y.relu_inplace();
        let mut y = self.down.infer(&y);
        for b in &self.blocks {
            y = b.infer(&y);
        }
        to_tokens(&y)
    }

    /// Lock-free per-slot prediction through `&self`. Identical math to
    /// [`Estimator::predict`] without touching any training cache, so any
    /// number of threads can share one estimator.
    pub fn infer(&self, q: &Tensor) -> Vec<f32> {
        self.infer_slots(q, self.decoders.len())
    }

    /// [`Estimator::infer`] restricted to the first `slots` decoder
    /// streams. Oracles only consume one slot per DNN actually in the
    /// workload; the seed ran all `max_dnns` streams regardless, wasting
    /// up to 3/5 of the decoder work on empty slots.
    pub fn infer_slots(&self, q: &Tensor, slots: usize) -> Vec<f32> {
        let slots = slots.min(self.decoders.len());
        let tokens = self.infer_tokens(q);
        self.decode_one(&tokens, slots)
    }

    /// Decoder heads for one item, with the streams' attention
    /// projections fused into a single stacked matmul.
    fn decode_one(&self, tokens: &Tensor, slots: usize) -> Vec<f32> {
        let attns: Vec<&LinearAttention> =
            self.decoders[..slots].iter().map(|d| &d.attn).collect();
        let attended = LinearAttention::infer_multi(&attns, tokens);
        self.decoders[..slots]
            .iter()
            .zip(attended)
            .map(|(d, a)| {
                let mut h = d.fc1.infer(&d.pool.infer(&a));
                h.relu_inplace();
                d.fc2.infer(&h).data()[0]
            })
            .collect()
    }

    /// Batched lock-free prediction over all decoder slots.
    pub fn infer_batch(&self, qs: &[Tensor]) -> Vec<Vec<f32>> {
        self.infer_batch_slots(qs, self.decoders.len())
    }

    /// Pre-applies the stem convolution to a fixed workload: the `Q`
    /// tensor only enters the network through the (linear) stem, and each
    /// `(DNN, unit)` row contributes a fixed pattern per component
    /// placement. Compiling those patterns once per workload turns every
    /// subsequent stem evaluation — and the `Q` assembly itself — into a
    /// sparse gather-add over ~70 floats per unit.
    ///
    /// # Panics
    ///
    /// Panics if the workload exceeds the estimator's `Q` geometry or a
    /// model is missing from `table`.
    pub fn compile_stem(&self, table: &EmbeddingTable, workload: &Workload) -> CompiledStem {
        let spec = self.cfg.spec;
        assert!(workload.len() <= spec.max_dnns, "workload exceeds Q channel count");
        // Bias response: the stem output for an all-zero Q.
        let base = self.stem.infer(&Tensor::zeros(spec.shape()));
        let mut contrib = Vec::with_capacity(workload.len());
        let mut q = Tensor::zeros(spec.shape());
        for (d, model) in workload.models().iter().enumerate() {
            let embeds = table
                .get(model.id())
                .unwrap_or_else(|| panic!("model {} missing from embedding table", model.id()));
            assert!(model.unit_count() <= spec.max_units, "model exceeds Q row count");
            let mut per_unit = Vec::with_capacity(embeds.len());
            for (u, emb) in embeds.iter().enumerate() {
                let mut per_comp = Vec::with_capacity(spec.components);
                for c in 0..spec.components {
                    let width = spec.width();
                    let row = (d * spec.max_units + u) * width + c * spec.embed_dim;
                    q.data_mut()[row..row + spec.embed_dim].copy_from_slice(emb);
                    let response = self.stem.infer(&q);
                    q.data_mut()[row..row + spec.embed_dim].fill(0.0);
                    let entries: Vec<(u32, f32)> = response
                        .data()
                        .iter()
                        .zip(base.data())
                        .enumerate()
                        .filter_map(|(i, (r, b))| {
                            let v = r - b;
                            (v != 0.0).then_some((i as u32, v))
                        })
                        .collect();
                    per_comp.push(entries);
                }
                per_unit.push(per_comp);
            }
            contrib.push(per_unit);
        }
        CompiledStem { base, contrib }
    }

    /// [`Estimator::infer_slots`] continuing from a precomputed stem
    /// output (see [`Estimator::compile_stem`]).
    pub fn infer_slots_from_stem(&self, stem_out: Tensor, slots: usize) -> Vec<f32> {
        let slots = slots.min(self.decoders.len());
        let tokens = self.tokens_from_stem(stem_out);
        self.decode_one(&tokens, slots)
    }

    /// [`Estimator::infer_batch_slots`] continuing from precomputed stem
    /// outputs: per-item backbones fan out across the thread pool, decoder
    /// FC heads run as stacked matmuls.
    pub fn infer_batch_slots_from_stem(
        &self,
        stem_outs: Vec<Tensor>,
        slots: usize,
    ) -> Vec<Vec<f32>> {
        if stem_outs.is_empty() {
            return Vec::new();
        }
        let slots = slots.min(self.decoders.len());
        let tokens: Vec<Tensor> =
            rayon::iter::par_map_slice(&stem_outs, &|s| self.tokens_from_stem(s.clone()));
        self.decode_tokens(&tokens, slots)
    }

    /// Stacked decoder heads over per-item token matrices: fused attention
    /// projections per item, pooled vectors stacked per stream, FC heads
    /// as one matmul per stream over the whole batch.
    fn decode_tokens(&self, tokens: &[Tensor], slots: usize) -> Vec<Vec<f32>> {
        let c = self.cfg.channels;
        let attns: Vec<&LinearAttention> =
            self.decoders[..slots].iter().map(|d| &d.attn).collect();
        let mut out = vec![vec![0.0f32; slots]; tokens.len()];
        // pooled_per_stream[j] stacks item b's pooled vector in row b.
        let mut pooled_per_stream =
            vec![Tensor::zeros(vec![tokens.len(), c]); slots];
        for (b, t) in tokens.iter().enumerate() {
            let attended = LinearAttention::infer_multi(&attns, t);
            for (j, a) in attended.iter().enumerate() {
                let pooled = self.decoders[j].pool.infer(a);
                pooled_per_stream[j].data_mut()[b * c..(b + 1) * c]
                    .copy_from_slice(pooled.data());
            }
        }
        for (j, d) in self.decoders[..slots].iter().enumerate() {
            let mut h = d.fc1.infer(&pooled_per_stream[j]); // [B, hidden] in one matmul
            h.relu_inplace();
            let y = d.fc2.infer(&h); // [B, 1]
            for (b, row) in out.iter_mut().enumerate() {
                row[j] = y.data()[b];
            }
        }
        out
    }

    /// Batched lock-free prediction: the per-item backbones fan out across
    /// the thread pool, and each decoder stream's fully connected head runs
    /// once as a stacked matmul over the whole batch instead of N
    /// single-row forwards. Result `[b][slot]` is bit-identical to calling
    /// [`Estimator::infer_slots`] per item.
    pub fn infer_batch_slots(&self, qs: &[Tensor], slots: usize) -> Vec<Vec<f32>> {
        if qs.is_empty() {
            return Vec::new();
        }
        let slots = slots.min(self.decoders.len());
        let tokens: Vec<Tensor> = rayon::iter::par_map_slice(qs, &|q| self.infer_tokens(q));
        self.decode_tokens(&tokens, slots)
    }

    fn forward_internal(&mut self, q: &Tensor, train: bool) -> Vec<f32> {
        assert_eq!(q.shape(), &self.cfg.spec.shape()[..], "Q tensor shape mismatch");
        let y = self.stem.forward(q, train);
        let y = self.stem_act.forward(&y, train);
        let mut y = self.down.forward(&y, train);
        for b in &mut self.blocks {
            y = b.forward(&y, train);
        }
        let tokens = to_tokens(&y);
        self.cache_tokens = train;
        self.decoders
            .iter_mut()
            .map(|d| d.forward(&tokens, train))
            .collect()
    }

    /// One training sample: forward, masked MSE against `target`, backward.
    /// Returns the masked loss. Gradients accumulate until the caller steps
    /// an optimizer and zeroes them.
    pub fn train_sample(&mut self, q: &Tensor, target: &[f32], mask: &[bool]) -> f32 {
        assert_eq!(target.len(), self.decoders.len(), "target length mismatch");
        assert_eq!(mask.len(), self.decoders.len(), "mask length mismatch");
        let preds = self.forward_internal(q, true);
        let active = mask.iter().filter(|&&m| m).count().max(1) as f32;
        let mut loss = 0.0;
        let (h, w) = self.feat_hw;
        let mut g_tokens = Tensor::zeros(vec![h * w, self.cfg.channels]);
        for (i, d) in self.decoders.iter_mut().enumerate() {
            // Every decoder ran a training forward; every decoder must
            // backward to clear its caches. Masked slots get zero gradient.
            let dl = if mask[i] {
                let err = preds[i] - target[i];
                loss += err * err;
                2.0 * err / active
            } else {
                0.0
            };
            g_tokens.add_assign(&d.backward(dl));
        }
        let g = from_tokens(&g_tokens, h, w);
        let mut g = g;
        for b in self.blocks.iter_mut().rev() {
            g = b.backward(&g);
        }
        let g = self.down.backward(&g);
        let g = self.stem_act.backward(&g);
        let _ = self.stem.backward(&g);
        loss / active
    }
}

impl Layer for Estimator {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let preds = self.forward_internal(x, train);
        Tensor::from_vec(preds, vec![self.cfg.spec.max_dnns])
    }

    fn backward(&mut self, _grad_out: &Tensor) -> Tensor {
        unimplemented!("use Estimator::train_sample; the multi-head backward needs masks")
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.stem.visit_params(f);
        self.down.visit_params(f);
        for b in &mut self.blocks {
            b.visit_params(f);
        }
        for d in &mut self.decoders {
            d.visit_params(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rankmap_nn::optim::Adam;

    #[test]
    fn predict_shape() {
        let mut e = Estimator::new(EstimatorConfig::quick(), 0);
        let q = Tensor::zeros(e.config().spec.shape());
        let p = e.predict(&q);
        assert_eq!(p.len(), 5);
    }

    #[test]
    fn param_count_reasonable() {
        let mut e = Estimator::new(EstimatorConfig::quick(), 0);
        let n = e.param_count();
        assert!(n > 3_000, "quick estimator should have >3k params, got {n}");
        let mut p = Estimator::new(EstimatorConfig::paper(), 0);
        assert!(p.param_count() > n, "paper config must be larger");
    }

    #[test]
    fn overfits_single_sample() {
        // Sanity: the net + masked loss can drive one sample's loss down.
        let mut e = Estimator::new(EstimatorConfig::quick(), 42);
        let mut rng = StdRng::seed_from_u64(7);
        let q = Tensor::rand_uniform(e.config().spec.shape(), 0.5, &mut rng);
        let target = [0.3f32, 0.7, 0.1, 0.0, 0.0];
        let mask = [true, true, true, false, false];
        let mut opt = Adam::new(3e-3);
        let first = e.train_sample(&q, &target, &mask);
        opt.step(&mut e);
        e.zero_grad();
        let mut last = first;
        for _ in 0..60 {
            last = e.train_sample(&q, &target, &mask);
            opt.step(&mut e);
            e.zero_grad();
        }
        assert!(
            last < first * 0.25,
            "estimator failed to overfit one sample: {first} -> {last}"
        );
    }

    #[test]
    fn masked_slots_do_not_contribute() {
        let mut e = Estimator::new(EstimatorConfig::quick(), 3);
        let q = Tensor::zeros(e.config().spec.shape());
        let loss_all_masked =
            e.train_sample(&q, &[9.0; 5], &[false; 5]);
        e.zero_grad();
        assert_eq!(loss_all_masked, 0.0, "fully masked sample must be lossless");
    }

    #[test]
    fn infer_matches_predict() {
        let mut e = Estimator::new(EstimatorConfig::quick(), 17);
        let mut rng = StdRng::seed_from_u64(4);
        let q = Tensor::rand_uniform(e.config().spec.shape(), 0.5, &mut rng);
        let legacy = e.predict(&q);
        let lockfree = e.infer(&q);
        assert_eq!(legacy.len(), lockfree.len());
        for (a, b) in legacy.iter().zip(&lockfree) {
            assert!((a - b).abs() < 1e-5, "infer drifted from predict: {a} vs {b}");
        }
    }

    #[test]
    fn infer_batch_matches_per_item_infer_exactly() {
        let e = Estimator::new(EstimatorConfig::quick(), 23);
        let mut rng = StdRng::seed_from_u64(9);
        let qs: Vec<Tensor> = (0..7)
            .map(|_| Tensor::rand_uniform(e.config().spec.shape(), 0.5, &mut rng))
            .collect();
        let batched = e.infer_batch(&qs);
        for (q, row) in qs.iter().zip(&batched) {
            assert_eq!(row, &e.infer(q), "stacked head must be bit-identical");
        }
    }

    #[test]
    fn compiled_stem_matches_direct_inference() {
        use crate::vqvae::{VqVae, VqVaeConfig};
        use rankmap_models::ModelId;
        use rankmap_platform::ComponentId;
        let mut vq = VqVae::new(VqVaeConfig::default(), 3);
        let w = Workload::from_ids([ModelId::AlexNet, ModelId::SqueezeNetV2]);
        let table = EmbeddingTable::build(&mut vq, w.models());
        let e = Estimator::new(EstimatorConfig::quick(), 3);
        let compiled = e.compile_stem(&table, &w);
        assert_eq!(compiled.dnn_count(), 2);
        let mut rng = StdRng::seed_from_u64(14);
        for _ in 0..5 {
            let m = rankmap_sim::Mapping::random(&w, 3, &mut rng);
            let q = table.q_tensor(&e.config().spec, &w, &m);
            let direct = e.infer_slots(&q, 2);
            let fast = e.infer_slots_from_stem(compiled.stem_output(&m), 2);
            for (a, b) in direct.iter().zip(&fast) {
                assert!(
                    (a - b).abs() < 1e-4,
                    "compiled stem drifted from direct inference: {a} vs {b}"
                );
            }
        }
        let _ = Mapping::uniform(&w, ComponentId::new(0));
    }

    #[test]
    fn decoders_are_independent_heads() {
        let mut e = Estimator::new(EstimatorConfig::quick(), 11);
        let mut rng = StdRng::seed_from_u64(2);
        let q = Tensor::rand_uniform(e.config().spec.shape(), 0.5, &mut rng);
        let p = e.predict(&q);
        // Heads have different random init → different outputs.
        assert!(
            (p[0] - p[1]).abs() > 1e-6 || (p[1] - p[2]).abs() > 1e-6,
            "decoder streams should not be identical"
        );
    }
}
