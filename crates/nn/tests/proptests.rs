//! Property-based tests for the tensor/layer stack.

use proptest::prelude::*;
use rankmap_nn::layer::{Layer, Linear, Relu, Sequential};
use rankmap_nn::loss::mse;
use rankmap_nn::tensor::Tensor;

prop_compose! {
    fn small_matrix(max: usize)(
        m in 1..max, n in 1..max,
        seed in any::<u64>(),
    ) -> Tensor {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        Tensor::rand_uniform(vec![m, n], 1.0, &mut rng)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// (Aᵀ)ᵀ = A.
    #[test]
    fn transpose_involution(a in small_matrix(8)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    /// Softmax rows are probability distributions.
    #[test]
    fn softmax_rows_are_distributions(a in small_matrix(8)) {
        let s = a.softmax_rows();
        let n = s.shape()[1];
        for row in 0..s.shape()[0] {
            let sum: f32 = s.data()[row * n..(row + 1) * n].iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            for &v in &s.data()[row * n..(row + 1) * n] {
                prop_assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    /// Matmul distributes over addition: (A+B)C = AC + BC.
    #[test]
    fn matmul_distributive(seed in any::<u64>(), m in 1usize..5, k in 1usize..5, n in 1usize..5) {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let a = Tensor::rand_uniform(vec![m, k], 1.0, &mut rng);
        let b = Tensor::rand_uniform(vec![m, k], 1.0, &mut rng);
        let c = Tensor::rand_uniform(vec![k, n], 1.0, &mut rng);
        let lhs = a.add(&b).matmul(&c);
        let rhs = a.matmul(&c).add(&b.matmul(&c));
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    /// MSE is zero iff pred == target, positive otherwise.
    #[test]
    fn mse_positive_definite(seed in any::<u64>(), n in 1usize..16) {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let a = Tensor::rand_uniform(vec![n], 1.0, &mut rng);
        let b = Tensor::rand_uniform(vec![n], 1.0, &mut rng);
        let (self_loss, _) = mse(&a, &a);
        prop_assert_eq!(self_loss, 0.0);
        let (cross, _) = mse(&a, &b);
        prop_assert!(cross >= 0.0);
    }

    /// A forward pass through a small MLP is finite for any bounded input.
    #[test]
    fn mlp_forward_finite(seed in any::<u64>()) {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let x = Tensor::rand_uniform(vec![6], 2.0, &mut rng);
        let mut net = Sequential::new(vec![
            Box::new(Linear::new(6, 12, seed)),
            Box::new(Relu::new()),
            Box::new(Linear::new(12, 3, seed ^ 1)),
        ]);
        let y = net.forward(&x, false);
        prop_assert_eq!(y.shape(), &[3usize][..]);
        for &v in y.data() {
            prop_assert!(v.is_finite());
        }
    }

    /// Gradient accumulation is additive: two backward passes accumulate
    /// exactly twice the gradient of one.
    #[test]
    fn gradients_accumulate(seed in any::<u64>()) {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let x = Tensor::rand_uniform(vec![4], 1.0, &mut rng);
        let mut l = Linear::new(4, 2, seed);
        let g = Tensor::from_vec(vec![1.0, -1.0], vec![2]);
        let _ = l.forward(&x, true);
        let _ = l.backward(&g);
        let once = l.w.grad.clone();
        l.zero_grad();
        let _ = l.forward(&x, true);
        let _ = l.backward(&g);
        let _ = l.forward(&x, true);
        let _ = l.backward(&g);
        for (a, b) in l.w.grad.data().iter().zip(once.data()) {
            prop_assert!((a - 2.0 * b).abs() < 1e-4);
        }
    }
}
