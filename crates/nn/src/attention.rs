//! Attention layers: scaled dot-product self-attention, efficient
//! ("linear") attention, and attention pooling.

use crate::layer::{init_rng, Layer, Param};
use crate::tensor::{softmax_rows_backward, Tensor};

/// Single-head scaled dot-product self-attention over `[T, D]` token
/// sequences (Vaswani et al.), used inside the estimator's residual
/// backbone blocks.
pub struct SelfAttention {
    wq: Param,
    wk: Param,
    wv: Param,
    wo: Param,
    dim: usize,
    cache: Option<SelfAttnCache>,
}

struct SelfAttnCache {
    x: Tensor,
    q: Tensor,
    k: Tensor,
    v: Tensor,
    a: Tensor,
    y: Tensor,
}

impl SelfAttention {
    /// Creates a self-attention layer over `dim`-dimensional tokens.
    pub fn new(dim: usize, seed: u64) -> Self {
        let mut rng = init_rng(seed);
        let mk = |rng: &mut rand::rngs::StdRng| {
            Param::new(Tensor::kaiming(vec![dim, dim], dim, rng))
        };
        Self {
            wq: mk(&mut rng),
            wk: mk(&mut rng),
            wv: mk(&mut rng),
            wo: mk(&mut rng),
            dim,
            cache: None,
        }
    }
}

/// Fuses three `[D, D]` projection weights into one `[D, 3D]` matrix so
/// Q/K/V come out of a single matmul with a 3×-wider (better vectorized)
/// inner loop, then splits the result back into three `[T, D]` tensors.
fn project_qkv(x: &Tensor, wq: &Tensor, wk: &Tensor, wv: &Tensor) -> (Tensor, Tensor, Tensor) {
    let d = wq.shape()[0];
    let t = x.shape()[0];
    let mut fused = Tensor::zeros(vec![d, 3 * d]);
    {
        let f = fused.data_mut();
        for r in 0..d {
            f[r * 3 * d..r * 3 * d + d].copy_from_slice(&wq.data()[r * d..(r + 1) * d]);
            f[r * 3 * d + d..r * 3 * d + 2 * d]
                .copy_from_slice(&wk.data()[r * d..(r + 1) * d]);
            f[r * 3 * d + 2 * d..(r + 1) * 3 * d]
                .copy_from_slice(&wv.data()[r * d..(r + 1) * d]);
        }
    }
    let qkv = x.matmul(&fused); // [T, 3D]
    let mut q = Tensor::zeros(vec![t, d]);
    let mut k = Tensor::zeros(vec![t, d]);
    let mut v = Tensor::zeros(vec![t, d]);
    for r in 0..t {
        let row = &qkv.data()[r * 3 * d..(r + 1) * 3 * d];
        q.data_mut()[r * d..(r + 1) * d].copy_from_slice(&row[..d]);
        k.data_mut()[r * d..(r + 1) * d].copy_from_slice(&row[d..2 * d]);
        v.data_mut()[r * d..(r + 1) * d].copy_from_slice(&row[2 * d..]);
    }
    (q, k, v)
}

impl SelfAttention {
    /// Lock-free inference through `&self`: same math as
    /// [`Layer::forward`] with a fused Q/K/V projection, the scale and
    /// softmax applied in place, and no cache writes.
    pub fn infer(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.shape().len(), 2, "SelfAttention expects [T, D]");
        assert_eq!(x.shape()[1], self.dim, "SelfAttention dim mismatch");
        let (q, k, v) = project_qkv(x, &self.wq.value, &self.wk.value, &self.wv.value);
        let scale = 1.0 / (self.dim as f32).sqrt();
        let mut scores = q.matmul(&k.transpose());
        for s in scores.data_mut() {
            *s *= scale;
        }
        scores.softmax_rows_inplace();
        scores.matmul(&v).matmul(&self.wo.value)
    }
}

impl Layer for SelfAttention {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.shape().len(), 2, "SelfAttention expects [T, D]");
        assert_eq!(x.shape()[1], self.dim, "SelfAttention dim mismatch");
        let q = x.matmul(&self.wq.value);
        let k = x.matmul(&self.wk.value);
        let v = x.matmul(&self.wv.value);
        let scale = 1.0 / (self.dim as f32).sqrt();
        let scores = q.matmul(&k.transpose()).scale(scale);
        let a = scores.softmax_rows();
        let y = a.matmul(&v);
        let out = y.matmul(&self.wo.value);
        if train {
            self.cache = Some(SelfAttnCache { x: x.clone(), q, k, v, a, y });
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let c = self.cache.take().expect("SelfAttention::backward without forward");
        let scale = 1.0 / (self.dim as f32).sqrt();
        // out = Y Wo
        self.wo.grad.add_assign(&c.y.transpose().matmul(grad_out));
        let dy = grad_out.matmul(&self.wo.value.transpose());
        // Y = A V
        let da = dy.matmul(&c.v.transpose());
        let dv = c.a.transpose().matmul(&dy);
        // A = softmax(S), S = QK^T · scale
        let ds = softmax_rows_backward(&c.a, &da).scale(scale);
        let dq = ds.matmul(&c.k);
        let dk = ds.transpose().matmul(&c.q);
        // Q/K/V projections.
        self.wq.grad.add_assign(&c.x.transpose().matmul(&dq));
        self.wk.grad.add_assign(&c.x.transpose().matmul(&dk));
        self.wv.grad.add_assign(&c.x.transpose().matmul(&dv));
        let mut dx = dq.matmul(&self.wq.value.transpose());
        dx.add_assign(&dk.matmul(&self.wk.value.transpose()));
        dx.add_assign(&dv.matmul(&self.wv.value.transpose()));
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.wq);
        f(&mut self.wk);
        f(&mut self.wv);
        f(&mut self.wo);
    }
}

/// Efficient attention with linear complexity (Shen et al., WACV 2021):
/// `E = σ_T(K)ᵀ V` then `Y = σ_D(Q) E`, avoiding the `T×T` score matrix.
/// Used by the estimator's per-DNN decoder streams.
pub struct LinearAttention {
    wq: Param,
    wk: Param,
    wv: Param,
    wo: Param,
    dim: usize,
    cache: Option<LinAttnCache>,
}

struct LinAttnCache {
    x: Tensor,
    qs: Tensor,
    ks: Tensor,
    v: Tensor,
    e: Tensor,
    y: Tensor,
}

impl LinearAttention {
    /// Creates an efficient-attention layer over `dim`-dimensional tokens.
    pub fn new(dim: usize, seed: u64) -> Self {
        let mut rng = init_rng(seed);
        let mk = |rng: &mut rand::rngs::StdRng| {
            Param::new(Tensor::kaiming(vec![dim, dim], dim, rng))
        };
        Self {
            wq: mk(&mut rng),
            wk: mk(&mut rng),
            wv: mk(&mut rng),
            wo: mk(&mut rng),
            dim,
            cache: None,
        }
    }
}

impl LinearAttention {
    /// Lock-free inference through `&self` (no cache writes). The forward
    /// pass's `transpose → softmax → transpose → transpose` dance around
    /// `E = σ_T(K)ᵀ V` collapses to one transpose with the token softmax
    /// applied in place.
    pub fn infer(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.shape().len(), 2, "LinearAttention expects [T, D]");
        assert_eq!(x.shape()[1], self.dim, "LinearAttention dim mismatch");
        let (q, k, v) = project_qkv(x, &self.wq.value, &self.wk.value, &self.wv.value);
        self.finish(q, k, v)
    }

    /// Post-projection half of [`LinearAttention::infer`].
    fn finish(&self, q: Tensor, k: Tensor, v: Tensor) -> Tensor {
        let mut qs = q;
        qs.softmax_rows_inplace();
        let mut ks_t = k.transpose(); // [D, T]
        ks_t.softmax_rows_inplace(); // softmax over tokens per feature
        let e = ks_t.matmul(&v); // [D, D]
        qs.matmul(&e).matmul(&self.wo.value)
    }

    /// Runs several linear-attention streams over the *same* token matrix
    /// (the estimator's per-DNN decoder heads): all streams' Q/K/V
    /// projections fuse into one stacked matmul, then each stream finishes
    /// independently. Outputs are bit-identical to per-stream
    /// [`LinearAttention::infer`].
    ///
    /// # Panics
    ///
    /// Panics if streams disagree on dimension or the input is not
    /// `[T, D]`.
    pub fn infer_multi(streams: &[&LinearAttention], x: &Tensor) -> Vec<Tensor> {
        if streams.is_empty() {
            return Vec::new();
        }
        let d = streams[0].dim;
        assert_eq!(x.shape().len(), 2, "LinearAttention expects [T, D]");
        assert_eq!(x.shape()[1], d, "LinearAttention dim mismatch");
        let t = x.shape()[0];
        let l = streams.len();
        // Fused weights [D, L·3D]: per stream a [wq|wk|wv] block.
        let mut fused = Tensor::zeros(vec![d, 3 * d * l]);
        {
            let width = 3 * d * l;
            let f = fused.data_mut();
            for (s, layer) in streams.iter().enumerate() {
                assert_eq!(layer.dim, d, "streams must share a dimension");
                for r in 0..d {
                    let base = r * width + s * 3 * d;
                    f[base..base + d]
                        .copy_from_slice(&layer.wq.value.data()[r * d..(r + 1) * d]);
                    f[base + d..base + 2 * d]
                        .copy_from_slice(&layer.wk.value.data()[r * d..(r + 1) * d]);
                    f[base + 2 * d..base + 3 * d]
                        .copy_from_slice(&layer.wv.value.data()[r * d..(r + 1) * d]);
                }
            }
        }
        let qkv = x.matmul(&fused); // [T, L·3D]
        let width = 3 * d * l;
        streams
            .iter()
            .enumerate()
            .map(|(s, layer)| {
                let mut q = Tensor::zeros(vec![t, d]);
                let mut k = Tensor::zeros(vec![t, d]);
                let mut v = Tensor::zeros(vec![t, d]);
                for r in 0..t {
                    let row = &qkv.data()[r * width + s * 3 * d..r * width + (s + 1) * 3 * d];
                    q.data_mut()[r * d..(r + 1) * d].copy_from_slice(&row[..d]);
                    k.data_mut()[r * d..(r + 1) * d].copy_from_slice(&row[d..2 * d]);
                    v.data_mut()[r * d..(r + 1) * d].copy_from_slice(&row[2 * d..]);
                }
                layer.finish(q, k, v)
            })
            .collect()
    }
}

impl Layer for LinearAttention {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.shape().len(), 2, "LinearAttention expects [T, D]");
        assert_eq!(x.shape()[1], self.dim, "LinearAttention dim mismatch");
        let q = x.matmul(&self.wq.value);
        let k = x.matmul(&self.wk.value);
        let v = x.matmul(&self.wv.value);
        // σ over feature dim per token for Q; σ over tokens per feature for K.
        let qs = q.softmax_rows();
        let ks = k.transpose().softmax_rows().transpose();
        let e = ks.transpose().matmul(&v); // [D, D]
        let y = qs.matmul(&e); // [T, D]
        let out = y.matmul(&self.wo.value);
        if train {
            self.cache = Some(LinAttnCache { x: x.clone(), qs, ks, v, e, y });
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let c = self.cache.take().expect("LinearAttention::backward without forward");
        self.wo.grad.add_assign(&c.y.transpose().matmul(grad_out));
        let dy = grad_out.matmul(&self.wo.value.transpose());
        // Y = Qs E
        let dqs = dy.matmul(&c.e.transpose());
        let de = c.qs.transpose().matmul(&dy);
        // E = Ksᵀ V
        let dks = c.v.matmul(&de.transpose());
        let dv = c.ks.matmul(&de);
        // Undo the softmaxes.
        let dq = softmax_rows_backward(&c.qs, &dqs);
        let dk = softmax_rows_backward(&c.ks.transpose(), &dks.transpose()).transpose();
        // Projections.
        self.wq.grad.add_assign(&c.x.transpose().matmul(&dq));
        self.wk.grad.add_assign(&c.x.transpose().matmul(&dk));
        self.wv.grad.add_assign(&c.x.transpose().matmul(&dv));
        let mut dx = dq.matmul(&self.wq.value.transpose());
        dx.add_assign(&dk.matmul(&self.wk.value.transpose()));
        dx.add_assign(&dv.matmul(&self.wv.value.transpose()));
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.wq);
        f(&mut self.wk);
        f(&mut self.wv);
        f(&mut self.wo);
    }
}

/// Attention pooling: a learned scoring vector softmax-weights the tokens,
/// reducing `[T, D] → [D]`. The head of each estimator decoder stream.
pub struct AttnPool {
    /// Scoring vector `[D, 1]`.
    pub w: Param,
    dim: usize,
    cache: Option<(Tensor, Tensor)>,
}

impl AttnPool {
    /// Creates an attention-pooling layer for `dim`-dimensional tokens.
    pub fn new(dim: usize, seed: u64) -> Self {
        let mut rng = init_rng(seed);
        Self {
            w: Param::new(Tensor::kaiming(vec![dim, 1], dim, &mut rng)),
            dim,
            cache: None,
        }
    }
}

impl AttnPool {
    /// Lock-free inference through `&self` (no cache writes).
    pub fn infer(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.shape().len(), 2, "AttnPool expects [T, D]");
        assert_eq!(x.shape()[1], self.dim, "AttnPool dim mismatch");
        let t = x.shape()[0];
        let mut scores = x.matmul(&self.w.value).reshape(vec![1, t]);
        scores.softmax_rows_inplace();
        scores.matmul(x).reshape(vec![self.dim])
    }
}

impl Layer for AttnPool {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.shape().len(), 2, "AttnPool expects [T, D]");
        assert_eq!(x.shape()[1], self.dim, "AttnPool dim mismatch");
        let t = x.shape()[0];
        let scores = x.matmul(&self.w.value).reshape(vec![1, t]);
        let alpha = scores.softmax_rows(); // [1, T]
        let pooled = alpha.matmul(x); // [1, D]
        if train {
            self.cache = Some((x.clone(), alpha.clone()));
        }
        pooled.reshape(vec![self.dim])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (x, alpha) = self.cache.take().expect("AttnPool::backward without forward");
        let t = x.shape()[0];
        let dy = grad_out.clone().reshape(vec![1, self.dim]);
        // pooled = α X → dα = dy Xᵀ, dX += αᵀ dy
        let dalpha = dy.matmul(&x.transpose()); // [1, T]
        let mut dx = alpha.transpose().matmul(&dy); // [T, D]
        let dscores = softmax_rows_backward(&alpha, &dalpha).reshape(vec![t, 1]);
        // scores = X w → dw = Xᵀ dscores, dX += dscores wᵀ
        self.w.grad.add_assign(&x.transpose().matmul(&dscores));
        dx.add_assign(&dscores.matmul(&self.w.value.transpose()));
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.w);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_gradients;

    #[test]
    fn self_attention_shape_preserved() {
        let mut a = SelfAttention::new(8, 0);
        let y = a.forward(&Tensor::zeros(vec![5, 8]), false);
        assert_eq!(y.shape(), &[5, 8]);
    }

    #[test]
    fn self_attention_gradients() {
        let mut a = SelfAttention::new(6, 11);
        check_layer_gradients(&mut a, &[4, 6], 4e-2);
    }

    #[test]
    fn linear_attention_shape_preserved() {
        let mut a = LinearAttention::new(8, 0);
        let y = a.forward(&Tensor::zeros(vec![5, 8]), false);
        assert_eq!(y.shape(), &[5, 8]);
    }

    #[test]
    fn linear_attention_gradients() {
        let mut a = LinearAttention::new(5, 13);
        check_layer_gradients(&mut a, &[4, 5], 4e-2);
    }

    #[test]
    fn attn_pool_reduces_tokens() {
        let mut a = AttnPool::new(8, 0);
        let y = a.forward(&Tensor::zeros(vec![5, 8]), false);
        assert_eq!(y.shape(), &[8]);
    }

    #[test]
    fn attn_pool_gradients() {
        let mut a = AttnPool::new(6, 17);
        check_layer_gradients(&mut a, &[5, 6], 4e-2);
    }

    #[test]
    fn attn_pool_is_convex_combination() {
        // Pooling constant tokens returns that constant.
        let mut a = AttnPool::new(4, 3);
        let x = Tensor::from_vec(vec![2.0; 12], vec![3, 4]);
        let y = a.forward(&x, false);
        for &v in y.data() {
            assert!((v - 2.0).abs() < 1e-5);
        }
    }

    #[test]
    fn infer_matches_eval_forward() {
        use crate::tensor::Tensor;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(21);
        let x = Tensor::rand_uniform(vec![6, 8], 1.0, &mut rng);
        let mut sa = SelfAttention::new(8, 1);
        let (a, b) = (sa.forward(&x, false), sa.infer(&x));
        for (p, q) in a.data().iter().zip(b.data()) {
            assert!((p - q).abs() < 1e-5, "self-attention infer drifted: {p} vs {q}");
        }
        let mut la = LinearAttention::new(8, 2);
        let (a, b) = (la.forward(&x, false), la.infer(&x));
        for (p, q) in a.data().iter().zip(b.data()) {
            assert!((p - q).abs() < 1e-5, "linear-attention infer drifted: {p} vs {q}");
        }
        let mut ap = AttnPool::new(8, 3);
        let (a, b) = (ap.forward(&x, false), ap.infer(&x));
        for (p, q) in a.data().iter().zip(b.data()) {
            assert!((p - q).abs() < 1e-5, "attn-pool infer drifted: {p} vs {q}");
        }
    }

    #[test]
    fn attention_param_counts() {
        let mut a = SelfAttention::new(16, 0);
        assert_eq!(a.param_count(), 4 * 16 * 16);
        let mut p = AttnPool::new(16, 0);
        assert_eq!(p.param_count(), 16);
    }
}
