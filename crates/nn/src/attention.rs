//! Attention layers: scaled dot-product self-attention, efficient
//! ("linear") attention, and attention pooling.

use crate::layer::{init_rng, Layer, Param};
use crate::tensor::{softmax_rows_backward, Tensor};

/// Single-head scaled dot-product self-attention over `[T, D]` token
/// sequences (Vaswani et al.), used inside the estimator's residual
/// backbone blocks.
pub struct SelfAttention {
    wq: Param,
    wk: Param,
    wv: Param,
    wo: Param,
    dim: usize,
    cache: Option<SelfAttnCache>,
}

struct SelfAttnCache {
    x: Tensor,
    q: Tensor,
    k: Tensor,
    v: Tensor,
    a: Tensor,
    y: Tensor,
}

impl SelfAttention {
    /// Creates a self-attention layer over `dim`-dimensional tokens.
    pub fn new(dim: usize, seed: u64) -> Self {
        let mut rng = init_rng(seed);
        let mk = |rng: &mut rand::rngs::StdRng| {
            Param::new(Tensor::kaiming(vec![dim, dim], dim, rng))
        };
        Self {
            wq: mk(&mut rng),
            wk: mk(&mut rng),
            wv: mk(&mut rng),
            wo: mk(&mut rng),
            dim,
            cache: None,
        }
    }
}

impl Layer for SelfAttention {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.shape().len(), 2, "SelfAttention expects [T, D]");
        assert_eq!(x.shape()[1], self.dim, "SelfAttention dim mismatch");
        let q = x.matmul(&self.wq.value);
        let k = x.matmul(&self.wk.value);
        let v = x.matmul(&self.wv.value);
        let scale = 1.0 / (self.dim as f32).sqrt();
        let scores = q.matmul(&k.transpose()).scale(scale);
        let a = scores.softmax_rows();
        let y = a.matmul(&v);
        let out = y.matmul(&self.wo.value);
        if train {
            self.cache = Some(SelfAttnCache { x: x.clone(), q, k, v, a, y });
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let c = self.cache.take().expect("SelfAttention::backward without forward");
        let scale = 1.0 / (self.dim as f32).sqrt();
        // out = Y Wo
        self.wo.grad.add_assign(&c.y.transpose().matmul(grad_out));
        let dy = grad_out.matmul(&self.wo.value.transpose());
        // Y = A V
        let da = dy.matmul(&c.v.transpose());
        let dv = c.a.transpose().matmul(&dy);
        // A = softmax(S), S = QK^T · scale
        let ds = softmax_rows_backward(&c.a, &da).scale(scale);
        let dq = ds.matmul(&c.k);
        let dk = ds.transpose().matmul(&c.q);
        // Q/K/V projections.
        self.wq.grad.add_assign(&c.x.transpose().matmul(&dq));
        self.wk.grad.add_assign(&c.x.transpose().matmul(&dk));
        self.wv.grad.add_assign(&c.x.transpose().matmul(&dv));
        let mut dx = dq.matmul(&self.wq.value.transpose());
        dx.add_assign(&dk.matmul(&self.wk.value.transpose()));
        dx.add_assign(&dv.matmul(&self.wv.value.transpose()));
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.wq);
        f(&mut self.wk);
        f(&mut self.wv);
        f(&mut self.wo);
    }
}

/// Efficient attention with linear complexity (Shen et al., WACV 2021):
/// `E = σ_T(K)ᵀ V` then `Y = σ_D(Q) E`, avoiding the `T×T` score matrix.
/// Used by the estimator's per-DNN decoder streams.
pub struct LinearAttention {
    wq: Param,
    wk: Param,
    wv: Param,
    wo: Param,
    dim: usize,
    cache: Option<LinAttnCache>,
}

struct LinAttnCache {
    x: Tensor,
    qs: Tensor,
    ks: Tensor,
    v: Tensor,
    e: Tensor,
    y: Tensor,
}

impl LinearAttention {
    /// Creates an efficient-attention layer over `dim`-dimensional tokens.
    pub fn new(dim: usize, seed: u64) -> Self {
        let mut rng = init_rng(seed);
        let mk = |rng: &mut rand::rngs::StdRng| {
            Param::new(Tensor::kaiming(vec![dim, dim], dim, rng))
        };
        Self {
            wq: mk(&mut rng),
            wk: mk(&mut rng),
            wv: mk(&mut rng),
            wo: mk(&mut rng),
            dim,
            cache: None,
        }
    }
}

impl Layer for LinearAttention {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.shape().len(), 2, "LinearAttention expects [T, D]");
        assert_eq!(x.shape()[1], self.dim, "LinearAttention dim mismatch");
        let q = x.matmul(&self.wq.value);
        let k = x.matmul(&self.wk.value);
        let v = x.matmul(&self.wv.value);
        // σ over feature dim per token for Q; σ over tokens per feature for K.
        let qs = q.softmax_rows();
        let ks = k.transpose().softmax_rows().transpose();
        let e = ks.transpose().matmul(&v); // [D, D]
        let y = qs.matmul(&e); // [T, D]
        let out = y.matmul(&self.wo.value);
        if train {
            self.cache = Some(LinAttnCache { x: x.clone(), qs, ks, v, e, y });
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let c = self.cache.take().expect("LinearAttention::backward without forward");
        self.wo.grad.add_assign(&c.y.transpose().matmul(grad_out));
        let dy = grad_out.matmul(&self.wo.value.transpose());
        // Y = Qs E
        let dqs = dy.matmul(&c.e.transpose());
        let de = c.qs.transpose().matmul(&dy);
        // E = Ksᵀ V
        let dks = c.v.matmul(&de.transpose());
        let dv = c.ks.matmul(&de);
        // Undo the softmaxes.
        let dq = softmax_rows_backward(&c.qs, &dqs);
        let dk = softmax_rows_backward(&c.ks.transpose(), &dks.transpose()).transpose();
        // Projections.
        self.wq.grad.add_assign(&c.x.transpose().matmul(&dq));
        self.wk.grad.add_assign(&c.x.transpose().matmul(&dk));
        self.wv.grad.add_assign(&c.x.transpose().matmul(&dv));
        let mut dx = dq.matmul(&self.wq.value.transpose());
        dx.add_assign(&dk.matmul(&self.wk.value.transpose()));
        dx.add_assign(&dv.matmul(&self.wv.value.transpose()));
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.wq);
        f(&mut self.wk);
        f(&mut self.wv);
        f(&mut self.wo);
    }
}

/// Attention pooling: a learned scoring vector softmax-weights the tokens,
/// reducing `[T, D] → [D]`. The head of each estimator decoder stream.
pub struct AttnPool {
    /// Scoring vector `[D, 1]`.
    pub w: Param,
    dim: usize,
    cache: Option<(Tensor, Tensor)>,
}

impl AttnPool {
    /// Creates an attention-pooling layer for `dim`-dimensional tokens.
    pub fn new(dim: usize, seed: u64) -> Self {
        let mut rng = init_rng(seed);
        Self {
            w: Param::new(Tensor::kaiming(vec![dim, 1], dim, &mut rng)),
            dim,
            cache: None,
        }
    }
}

impl Layer for AttnPool {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.shape().len(), 2, "AttnPool expects [T, D]");
        assert_eq!(x.shape()[1], self.dim, "AttnPool dim mismatch");
        let t = x.shape()[0];
        let scores = x.matmul(&self.w.value).reshape(vec![1, t]);
        let alpha = scores.softmax_rows(); // [1, T]
        let pooled = alpha.matmul(x); // [1, D]
        if train {
            self.cache = Some((x.clone(), alpha.clone()));
        }
        pooled.reshape(vec![self.dim])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (x, alpha) = self.cache.take().expect("AttnPool::backward without forward");
        let t = x.shape()[0];
        let dy = grad_out.clone().reshape(vec![1, self.dim]);
        // pooled = α X → dα = dy Xᵀ, dX += αᵀ dy
        let dalpha = dy.matmul(&x.transpose()); // [1, T]
        let mut dx = alpha.transpose().matmul(&dy); // [T, D]
        let dscores = softmax_rows_backward(&alpha, &dalpha).reshape(vec![t, 1]);
        // scores = X w → dw = Xᵀ dscores, dX += dscores wᵀ
        self.w.grad.add_assign(&x.transpose().matmul(&dscores));
        dx.add_assign(&dscores.matmul(&self.w.value.transpose()));
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.w);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_gradients;

    #[test]
    fn self_attention_shape_preserved() {
        let mut a = SelfAttention::new(8, 0);
        let y = a.forward(&Tensor::zeros(vec![5, 8]), false);
        assert_eq!(y.shape(), &[5, 8]);
    }

    #[test]
    fn self_attention_gradients() {
        let mut a = SelfAttention::new(6, 11);
        check_layer_gradients(&mut a, &[4, 6], 4e-2);
    }

    #[test]
    fn linear_attention_shape_preserved() {
        let mut a = LinearAttention::new(8, 0);
        let y = a.forward(&Tensor::zeros(vec![5, 8]), false);
        assert_eq!(y.shape(), &[5, 8]);
    }

    #[test]
    fn linear_attention_gradients() {
        let mut a = LinearAttention::new(5, 13);
        check_layer_gradients(&mut a, &[4, 5], 4e-2);
    }

    #[test]
    fn attn_pool_reduces_tokens() {
        let mut a = AttnPool::new(8, 0);
        let y = a.forward(&Tensor::zeros(vec![5, 8]), false);
        assert_eq!(y.shape(), &[8]);
    }

    #[test]
    fn attn_pool_gradients() {
        let mut a = AttnPool::new(6, 17);
        check_layer_gradients(&mut a, &[5, 6], 4e-2);
    }

    #[test]
    fn attn_pool_is_convex_combination() {
        // Pooling constant tokens returns that constant.
        let mut a = AttnPool::new(4, 3);
        let x = Tensor::from_vec(vec![2.0; 12], vec![3, 4]);
        let y = a.forward(&x, false);
        for &v in y.data() {
            assert!((v - 2.0).abs() < 1e-5);
        }
    }

    #[test]
    fn attention_param_counts() {
        let mut a = SelfAttention::new(16, 0);
        assert_eq!(a.param_count(), 4 * 16 * 16);
        let mut p = AttnPool::new(16, 0);
        assert_eq!(p.param_count(), 16);
    }
}
