//! A minimal, dependency-free neural-network framework.
//!
//! The RankMap paper implements its throughput estimator and VQ-VAE in
//! PyTorch; this crate is the from-scratch Rust substrate that replaces it:
//! an `f32` tensor type, explicit forward/backward layers (no general
//! autograd tape — each layer caches what its backward pass needs), and
//! SGD/Adam optimizers.
//!
//! Supported layers cover exactly what the paper's models require:
//! convolutions (1D and 2D, grouped/depthwise), linear, batch
//! normalization, activations, dot-product self-attention, efficient
//! ("linear") attention, attention pooling, residual blocks and sequential
//! composition. Every layer's gradients are verified against finite
//! differences in the test suite.
//!
//! # Example
//!
//! ```
//! use rankmap_nn::layer::{Layer, Linear, Relu, Sequential};
//! use rankmap_nn::tensor::Tensor;
//! use rankmap_nn::optim::Adam;
//!
//! let mut net = Sequential::new(vec![
//!     Box::new(Linear::new(4, 16, 1)),
//!     Box::new(Relu::new()),
//!     Box::new(Linear::new(16, 1, 2)),
//! ]);
//! let mut opt = Adam::new(1e-2);
//! let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], vec![4]);
//! for _ in 0..200 {
//!     let y = net.forward(&x, true);
//!     let err = y.data()[0] - 0.5; // fit a constant
//!     net.backward(&Tensor::from_vec(vec![2.0 * err], vec![1]));
//!     opt.step(&mut net);
//!     net.zero_grad();
//! }
//! let y = net.forward(&x, false);
//! assert!((y.data()[0] - 0.5).abs() < 5e-2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attention;
pub mod conv;
pub mod gradcheck;
pub mod layer;
pub mod loss;
pub mod norm;
pub mod optim;
pub mod tensor;

pub use layer::{Layer, Param};
pub use tensor::Tensor;
