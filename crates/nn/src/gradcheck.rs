//! Finite-difference gradient verification utilities (used by tests across
//! the workspace, hence public).

use crate::layer::Layer;
use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Checks a layer's input and parameter gradients against central finite
/// differences on a random input of the given shape.
///
/// The scalar loss is `L = Σ w_i · y_i` with fixed random weights `w`, so
/// `∂L/∂y = w` exactly.
///
/// # Panics
///
/// Panics (assertion failure) if any relative gradient error exceeds `tol`.
pub fn check_layer_gradients<L: Layer + ?Sized>(layer: &mut L, input_shape: &[usize], tol: f32) {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let x = Tensor::rand_uniform(input_shape.to_vec(), 1.0, &mut rng);
    check_layer_gradients_with_input(layer, &x, tol);
}

/// Like [`check_layer_gradients`] but on a caller-provided input — needed
/// for layers with non-differentiable kinks (ReLU at 0) where the probe
/// input must stay away from the kink.
///
/// # Panics
///
/// Panics (assertion failure) if any relative gradient error exceeds `tol`.
pub fn check_layer_gradients_with_input<L: Layer + ?Sized>(layer: &mut L, x: &Tensor, tol: f32) {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE ^ 0x5EED);
    let x = x.clone();
    let y0 = layer.forward(&x, true);
    let w: Vec<f32> = (0..y0.len()).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let dy = Tensor::from_vec(w.clone(), y0.shape().to_vec());
    layer.zero_grad();
    let dx = layer.backward(&dy);

    let loss = |layer: &mut L, x: &Tensor| -> f32 {
        let y = layer.forward(x, true);
        // Discard the cache this probe forward created so subsequent
        // backward calls stay paired; probing only reads the output.
        y.data().iter().zip(&w).map(|(a, b)| a * b).sum()
    };

    // Input gradient check on a subsample of coordinates.
    let eps = 1e-2f32;
    let stride = (x.len() / 24).max(1);
    for idx in (0..x.len()).step_by(stride) {
        let mut xp = x.clone();
        xp.data_mut()[idx] += eps;
        let mut xm = x.clone();
        xm.data_mut()[idx] -= eps;
        let num = (loss(layer, &xp) - loss(layer, &xm)) / (2.0 * eps);
        let ana = dx.data()[idx];
        assert_close(num, ana, tol, &format!("input grad [{idx}]"));
    }

    // Parameter gradient check: perturb a few coordinates of each param.
    // Collect analytic grads first (backward above already accumulated).
    // We re-run forward/backward per probe to keep caches consistent.
    let mut param_sizes = Vec::new();
    layer.visit_params(&mut |p| param_sizes.push(p.len()));
    for (pi, &size) in param_sizes.iter().enumerate() {
        if size == 0 {
            continue;
        }
        let stride = (size / 8).max(1);
        for idx in (0..size).step_by(stride) {
            let ana = read_param_grad(layer, pi, idx);
            let num = {
                nudge_param(layer, pi, idx, eps);
                let lp = loss(layer, &x);
                nudge_param(layer, pi, idx, -2.0 * eps);
                let lm = loss(layer, &x);
                nudge_param(layer, pi, idx, eps);
                (lp - lm) / (2.0 * eps)
            };
            assert_close(num, ana, tol, &format!("param {pi} grad [{idx}]"));
        }
    }
}

fn assert_close(num: f32, ana: f32, tol: f32, what: &str) {
    let denom = num.abs().max(ana.abs()).max(1.0);
    let rel = (num - ana).abs() / denom;
    assert!(
        rel <= tol,
        "{what}: numeric {num} vs analytic {ana} (rel err {rel}, tol {tol})"
    );
}

fn nudge_param<L: Layer + ?Sized>(layer: &mut L, param_idx: usize, coord: usize, delta: f32) {
    let mut i = 0;
    layer.visit_params(&mut |p| {
        if i == param_idx {
            p.value.data_mut()[coord] += delta;
        }
        i += 1;
    });
}

fn read_param_grad<L: Layer + ?Sized>(layer: &mut L, param_idx: usize, coord: usize) -> f32 {
    let mut i = 0;
    let mut out = 0.0;
    layer.visit_params(&mut |p| {
        if i == param_idx {
            out = p.grad.data()[coord];
        }
        i += 1;
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Layer, Linear};

    #[test]
    fn gradcheck_passes_for_known_good_layer() {
        let mut l = Linear::new(3, 2, 42);
        check_layer_gradients(&mut l, &[3], 2e-2);
    }

    #[test]
    #[should_panic(expected = "grad")]
    fn gradcheck_catches_broken_backward() {
        struct Broken(Linear);
        impl Layer for Broken {
            fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
                self.0.forward(x, train)
            }
            fn backward(&mut self, grad_out: &Tensor) -> Tensor {
                // Deliberately wrong: scales the gradient.
                self.0.backward(grad_out).scale(3.0)
            }
            fn visit_params(&mut self, f: &mut dyn FnMut(&mut crate::Param)) {
                self.0.visit_params(f);
            }
        }
        let mut b = Broken(Linear::new(3, 2, 1));
        check_layer_gradients(&mut b, &[3], 1e-2);
    }
}
