//! 1-D and 2-D convolutions (grouped / depthwise capable).

use crate::layer::{init_rng, Layer, Param};
use crate::tensor::Tensor;

/// 2-D convolution over `[C, H, W]` tensors with groups, stride, and
/// symmetric zero padding. `groups == in_c` gives a depthwise convolution.
#[derive(Debug, Clone)]
pub struct Conv2d {
    /// Kernel `[out_c, in_c/groups, k, k]`.
    pub w: Param,
    /// Bias `[out_c]`.
    pub b: Param,
    in_c: usize,
    out_c: usize,
    k: usize,
    stride: usize,
    pad: usize,
    groups: usize,
    cache: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution layer.
    ///
    /// # Panics
    ///
    /// Panics if `in_c`/`out_c` are not divisible by `groups`.
    pub fn new(
        in_c: usize,
        out_c: usize,
        k: usize,
        stride: usize,
        pad: usize,
        groups: usize,
        seed: u64,
    ) -> Self {
        assert!(
            groups >= 1 && in_c.is_multiple_of(groups) && out_c.is_multiple_of(groups),
            "bad group count"
        );
        let mut rng = init_rng(seed);
        let fan_in = (in_c / groups) * k * k;
        Self {
            w: Param::new(Tensor::kaiming(
                vec![out_c, in_c / groups, k, k],
                fan_in,
                &mut rng,
            )),
            b: Param::new(Tensor::zeros(vec![out_c])),
            in_c,
            out_c,
            k,
            stride,
            pad,
            groups,
            cache: None,
        }
    }

    /// Output spatial size for an input of the given size.
    pub fn out_size(&self, input: usize) -> usize {
        (input + 2 * self.pad - self.k) / self.stride + 1
    }

    /// Lock-free inference without the training cache, safe to call
    /// concurrently through `&self`.
    ///
    /// Dense (`groups == 1`) convolutions lower to im2col + matmul: the
    /// patch matrix keeps the hot loops contiguous, and the matmul's
    /// zero-row skip drops the work for the mostly-zero mapping `Q`
    /// tensors for free. Grouped/depthwise convolutions use a direct
    /// kernel with the padding checks hoisted out of the interior.
    pub fn infer(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.shape().len(), 3, "Conv2d expects [C,H,W]");
        assert_eq!(x.shape()[0], self.in_c, "Conv2d channel mismatch");
        if self.groups == 1 {
            self.infer_im2col(x)
        } else if self.groups == self.in_c
            && self.out_c == self.in_c
            && self.k == 3
            && self.stride == 1
            && self.pad == 1
        {
            self.infer_dw3x3(x)
        } else {
            self.infer_direct(x)
        }
    }

    /// im2col + matmul path for dense convolutions.
    fn infer_im2col(&self, x: &Tensor) -> Tensor {
        let (h, w) = (x.shape()[1], x.shape()[2]);
        let (oh, ow) = (self.out_size(h), self.out_size(w));
        let k2 = self.k * self.k;
        let patch_w = self.in_c * k2;
        // patches[p][ic*k2 + ky*k + kx] for output pixel p = oy*ow + ox.
        let mut patches = Tensor::zeros(vec![oh * ow, patch_w]);
        {
            let xd = x.data();
            let pd = patches.data_mut();
            for oy in 0..oh {
                for ox in 0..ow {
                    let row = (oy * ow + ox) * patch_w;
                    for ky in 0..self.k {
                        let iy = (oy * self.stride + ky) as isize - self.pad as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..self.k {
                            let ix = (ox * self.stride + kx) as isize - self.pad as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            for ic in 0..self.in_c {
                                pd[row + ic * k2 + ky * self.k + kx] =
                                    xd[(ic * h + iy as usize) * w + ix as usize];
                            }
                        }
                    }
                }
            }
        }
        // Weight matrix [in_c·k², out_c]: transposing the kernel once per
        // call keeps the matmul inner loop wide and independent across
        // output channels (a serial per-pixel dot product measures ~2×
        // slower — it is one latency-bound FMA chain).
        let mut wmat = Tensor::zeros(vec![patch_w, self.out_c]);
        {
            let wd = self.w.value.data();
            let wm = wmat.data_mut();
            for oc in 0..self.out_c {
                for i in 0..patch_w {
                    wm[i * self.out_c + oc] = wd[oc * patch_w + i];
                }
            }
        }
        let pixels = patches.matmul(&wmat); // [oh·ow, out_c]
        let mut out = Tensor::zeros(vec![self.out_c, oh, ow]);
        {
            let pd = pixels.data();
            let od = out.data_mut();
            let bd = self.b.value.data();
            for p in 0..oh * ow {
                for oc in 0..self.out_c {
                    od[oc * oh * ow + p] = pd[p * self.out_c + oc] + bd[oc];
                }
            }
        }
        out
    }

    /// Specialized depthwise 3×3, stride-1, pad-1 kernel: the estimator
    /// backbone's workhorse. Rows above/below the image alias a cached
    /// zero row, so the per-row loops carry no branches and vectorize;
    /// only the first/last column keep their padding handling.
    fn infer_dw3x3(&self, x: &Tensor) -> Tensor {
        let (h, w) = (x.shape()[1], x.shape()[2]);
        let mut out = Tensor::zeros(vec![self.out_c, h, w]);
        let xd = x.data();
        let wd = self.w.value.data();
        let od = out.data_mut();
        let zero_row = vec![0.0f32; w];
        for c in 0..self.in_c {
            let bias = self.b.value.data()[c];
            let k = &wd[c * 9..(c + 1) * 9];
            let plane = &xd[c * h * w..(c + 1) * h * w];
            let oplane = &mut od[c * h * w..(c + 1) * h * w];
            for oy in 0..h {
                let up: &[f32] =
                    if oy > 0 { &plane[(oy - 1) * w..oy * w] } else { &zero_row };
                let mid = &plane[oy * w..(oy + 1) * w];
                let dn: &[f32] =
                    if oy + 1 < h { &plane[(oy + 1) * w..(oy + 2) * w] } else { &zero_row };
                let orow = &mut oplane[oy * w..(oy + 1) * w];
                for ox in 1..w.saturating_sub(1) {
                    orow[ox] = bias
                        + k[0] * up[ox - 1]
                        + k[1] * up[ox]
                        + k[2] * up[ox + 1]
                        + k[3] * mid[ox - 1]
                        + k[4] * mid[ox]
                        + k[5] * mid[ox + 1]
                        + k[6] * dn[ox - 1]
                        + k[7] * dn[ox]
                        + k[8] * dn[ox + 1];
                }
                // Left/right borders: the out-of-image column drops out.
                orow[0] = bias + k[1] * up[0] + k[4] * mid[0] + k[7] * dn[0];
                if w > 1 {
                    orow[0] += k[2] * up[1] + k[5] * mid[1] + k[8] * dn[1];
                }
                if w > 1 {
                    orow[w - 1] = bias
                        + k[0] * up[w - 2]
                        + k[1] * up[w - 1]
                        + k[3] * mid[w - 2]
                        + k[4] * mid[w - 1]
                        + k[6] * dn[w - 2]
                        + k[7] * dn[w - 1];
                }
            }
        }
        out
    }

    /// Direct kernel for grouped/depthwise convolutions.
    fn infer_direct(&self, x: &Tensor) -> Tensor {
        let (h, w) = (x.shape()[1], x.shape()[2]);
        let (oh, ow) = (self.out_size(h), self.out_size(w));
        let icg = self.in_c / self.groups;
        let ocg = self.out_c / self.groups;
        let mut out = Tensor::zeros(vec![self.out_c, oh, ow]);
        let xd = x.data();
        let wd = self.w.value.data();
        let od = out.data_mut();
        for g in 0..self.groups {
            for oc in g * ocg..(g + 1) * ocg {
                let bias = self.b.value.data()[oc];
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = bias;
                        for ic in 0..icg {
                            let xc = g * icg + ic;
                            for ky in 0..self.k {
                                let iy = (oy * self.stride + ky) as isize - self.pad as isize;
                                if iy < 0 || iy >= h as isize {
                                    continue;
                                }
                                for kx in 0..self.k {
                                    let ix =
                                        (ox * self.stride + kx) as isize - self.pad as isize;
                                    if ix < 0 || ix >= w as isize {
                                        continue;
                                    }
                                    let xi = (xc * h + iy as usize) * w + ix as usize;
                                    let wi = ((oc * icg + ic) * self.k + ky) * self.k + kx;
                                    acc += xd[xi] * wd[wi];
                                }
                            }
                        }
                        od[(oc * oh + oy) * ow + ox] = acc;
                    }
                }
            }
        }
        out
    }
}

impl Layer for Conv2d {
    /// Seed-faithful training forward (the direct kernel, all groups):
    /// kept verbatim so the training path — and the sequential-baseline
    /// benchmark built on it — is byte-for-byte the original cost model.
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.shape().len(), 3, "Conv2d expects [C,H,W]");
        assert_eq!(x.shape()[0], self.in_c, "Conv2d channel mismatch");
        let out = self.infer_direct(x);
        if train {
            self.cache = Some(x.clone());
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self.cache.take().expect("Conv2d::backward without forward");
        let (h, w) = (x.shape()[1], x.shape()[2]);
        let (oh, ow) = (self.out_size(h), self.out_size(w));
        assert_eq!(grad_out.shape(), &[self.out_c, oh, ow], "Conv2d grad shape");
        let icg = self.in_c / self.groups;
        let ocg = self.out_c / self.groups;
        let mut dx = Tensor::zeros(x.shape().to_vec());
        let xd = x.data();
        let gd = grad_out.data();
        let wd = self.w.value.data();
        {
            let dwd = self.w.grad.data_mut();
            let dbd = self.b.grad.data_mut();
            let dxd = dx.data_mut();
            for g in 0..self.groups {
                for oc in g * ocg..(g + 1) * ocg {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let go = gd[(oc * oh + oy) * ow + ox];
                            if go == 0.0 {
                                continue;
                            }
                            dbd[oc] += go;
                            for ic in 0..icg {
                                let xc = g * icg + ic;
                                for ky in 0..self.k {
                                    let iy =
                                        (oy * self.stride + ky) as isize - self.pad as isize;
                                    if iy < 0 || iy >= h as isize {
                                        continue;
                                    }
                                    for kx in 0..self.k {
                                        let ix = (ox * self.stride + kx) as isize
                                            - self.pad as isize;
                                        if ix < 0 || ix >= w as isize {
                                            continue;
                                        }
                                        let xi = (xc * h + iy as usize) * w + ix as usize;
                                        let wi =
                                            ((oc * icg + ic) * self.k + ky) * self.k + kx;
                                        dwd[wi] += go * xd[xi];
                                        dxd[xi] += go * wd[wi];
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.w);
        f(&mut self.b);
    }
}

/// 1-D convolution over `[C, L]` tensors (used by the VQ-VAE encoder to
/// embed layer-feature sequences).
#[derive(Debug, Clone)]
pub struct Conv1d {
    /// Kernel `[out_c, in_c, k]`.
    pub w: Param,
    /// Bias `[out_c]`.
    pub b: Param,
    in_c: usize,
    out_c: usize,
    k: usize,
    stride: usize,
    pad: usize,
    cache: Option<Tensor>,
}

impl Conv1d {
    /// Creates a 1-D convolution layer.
    pub fn new(in_c: usize, out_c: usize, k: usize, stride: usize, pad: usize, seed: u64) -> Self {
        let mut rng = init_rng(seed);
        Self {
            w: Param::new(Tensor::kaiming(vec![out_c, in_c, k], in_c * k, &mut rng)),
            b: Param::new(Tensor::zeros(vec![out_c])),
            in_c,
            out_c,
            k,
            stride,
            pad,
            cache: None,
        }
    }

    /// Output length for an input of the given length.
    pub fn out_len(&self, input: usize) -> usize {
        (input + 2 * self.pad - self.k) / self.stride + 1
    }

    /// Lock-free inference without the training cache.
    pub fn infer(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.shape().len(), 2, "Conv1d expects [C,L]");
        assert_eq!(x.shape()[0], self.in_c, "Conv1d channel mismatch");
        let l = x.shape()[1];
        let ol = self.out_len(l);
        let mut out = Tensor::zeros(vec![self.out_c, ol]);
        let xd = x.data();
        let wd = self.w.value.data();
        let od = out.data_mut();
        for oc in 0..self.out_c {
            let bias = self.b.value.data()[oc];
            for op in 0..ol {
                let mut acc = bias;
                for ic in 0..self.in_c {
                    for kk in 0..self.k {
                        let ip = (op * self.stride + kk) as isize - self.pad as isize;
                        if ip < 0 || ip >= l as isize {
                            continue;
                        }
                        acc += xd[ic * l + ip as usize]
                            * wd[(oc * self.in_c + ic) * self.k + kk];
                    }
                }
                od[oc * ol + op] = acc;
            }
        }
        out
    }
}

impl Layer for Conv1d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let out = self.infer(x);
        if train {
            self.cache = Some(x.clone());
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self.cache.take().expect("Conv1d::backward without forward");
        let l = x.shape()[1];
        let ol = self.out_len(l);
        assert_eq!(grad_out.shape(), &[self.out_c, ol], "Conv1d grad shape");
        let mut dx = Tensor::zeros(x.shape().to_vec());
        let xd = x.data();
        let gd = grad_out.data();
        let wd = self.w.value.data();
        {
            let dwd = self.w.grad.data_mut();
            let dbd = self.b.grad.data_mut();
            let dxd = dx.data_mut();
            for oc in 0..self.out_c {
                for op in 0..ol {
                    let go = gd[oc * ol + op];
                    if go == 0.0 {
                        continue;
                    }
                    dbd[oc] += go;
                    for ic in 0..self.in_c {
                        for kk in 0..self.k {
                            let ip = (op * self.stride + kk) as isize - self.pad as isize;
                            if ip < 0 || ip >= l as isize {
                                continue;
                            }
                            let xi = ic * l + ip as usize;
                            let wi = (oc * self.in_c + ic) * self.k + kk;
                            dwd[wi] += go * xd[xi];
                            dxd[xi] += go * wd[wi];
                        }
                    }
                }
            }
        }
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.w);
        f(&mut self.b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_gradients;

    #[test]
    fn conv2d_output_shape() {
        let mut c = Conv2d::new(3, 8, 3, 2, 1, 1, 0);
        let y = c.forward(&Tensor::zeros(vec![3, 9, 9]), false);
        assert_eq!(y.shape(), &[8, 5, 5]);
    }

    #[test]
    fn conv2d_identity_kernel() {
        // 1×1 conv with identity weights passes the input through.
        let mut c = Conv2d::new(2, 2, 1, 1, 0, 1, 0);
        for v in c.w.value.data_mut() {
            *v = 0.0;
        }
        c.w.value.data_mut()[0] = 1.0; // out0 <- in0
        c.w.value.data_mut()[3] = 1.0; // out1 <- in1
        let x = Tensor::from_vec((0..8).map(|v| v as f32).collect(), vec![2, 2, 2]);
        let y = c.forward(&x, false);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn conv2d_gradients() {
        let mut c = Conv2d::new(2, 3, 3, 1, 1, 1, 5);
        check_layer_gradients(&mut c, &[2, 5, 5], 3e-2);
    }

    #[test]
    fn conv2d_strided_gradients() {
        let mut c = Conv2d::new(2, 2, 3, 2, 1, 1, 6);
        check_layer_gradients(&mut c, &[2, 6, 6], 3e-2);
    }

    #[test]
    fn depthwise_conv_gradients() {
        let mut c = Conv2d::new(4, 4, 3, 1, 1, 4, 7);
        check_layer_gradients(&mut c, &[4, 5, 5], 3e-2);
    }

    #[test]
    fn depthwise_channels_independent() {
        let mut c = Conv2d::new(2, 2, 3, 1, 1, 2, 1);
        // Zero the second channel's kernel: its output must be all-bias.
        for v in c.w.value.data_mut()[9..18].iter_mut() {
            *v = 0.0;
        }
        let x = Tensor::full(vec![2, 4, 4], 1.0);
        let y = c.forward(&x, false);
        for &v in &y.data()[16..32] {
            assert_eq!(v, 0.0);
        }
    }

    #[test]
    fn conv1d_output_shape() {
        let mut c = Conv1d::new(22, 16, 3, 1, 1, 0);
        let y = c.forward(&Tensor::zeros(vec![22, 10]), false);
        assert_eq!(y.shape(), &[16, 10]);
    }

    #[test]
    fn conv1d_gradients() {
        let mut c = Conv1d::new(3, 4, 3, 1, 1, 9);
        check_layer_gradients(&mut c, &[3, 7], 3e-2);
    }

    #[test]
    fn infer_matches_forward_on_sparse_input() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(31);
        let mut c = Conv2d::new(4, 6, 3, 2, 1, 1, 8);
        // Mostly-zero input with a few populated rows, like a Q tensor.
        let mut x = Tensor::zeros(vec![4, 9, 9]);
        for i in 0..9 {
            x.data_mut()[i] = rng.gen_range(-1.0f32..1.0);
            x.data_mut()[2 * 81 + 3 * 9 + i] = rng.gen_range(-1.0f32..1.0);
        }
        let dense = c.forward(&x, false);
        let sparse = c.infer(&x);
        assert_eq!(dense.shape(), sparse.shape());
        for (a, b) in dense.data().iter().zip(sparse.data()) {
            assert!(
                (a - b).abs() < 1e-5,
                "im2col inference drifted from the direct kernel: {a} vs {b}"
            );
        }
    }

    #[test]
    fn dw3x3_fast_path_matches_direct() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(33);
        let mut c = Conv2d::new(6, 6, 3, 1, 1, 6, 10);
        let x = Tensor::rand_uniform(vec![6, 7, 9], 1.0, &mut rng);
        let fast = c.infer(&x);
        let direct = c.forward(&x, false);
        assert_eq!(fast.shape(), direct.shape());
        for (a, b) in fast.data().iter().zip(direct.data()) {
            assert!((a - b).abs() < 1e-5, "dw stencil drifted: {a} vs {b}");
        }
    }

    #[test]
    fn infer_matches_forward_dense_strided() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(32);
        let mut c = Conv2d::new(3, 5, 3, 2, 1, 1, 9);
        let x = Tensor::rand_uniform(vec![3, 11, 16], 1.0, &mut rng);
        let direct = c.forward(&x, false);
        let fast = c.infer(&x);
        for (a, b) in direct.data().iter().zip(fast.data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn conv2d_param_count() {
        let mut c = Conv2d::new(16, 32, 3, 1, 1, 1, 0);
        assert_eq!(c.param_count(), 32 * 16 * 9 + 32);
        let mut d = Conv2d::new(16, 16, 3, 1, 1, 16, 0);
        assert_eq!(d.param_count(), 16 * 9 + 16);
    }
}
