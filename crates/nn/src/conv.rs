//! 1-D and 2-D convolutions (grouped / depthwise capable).

use crate::layer::{init_rng, Layer, Param};
use crate::tensor::Tensor;

/// 2-D convolution over `[C, H, W]` tensors with groups, stride, and
/// symmetric zero padding. `groups == in_c` gives a depthwise convolution.
#[derive(Debug, Clone)]
pub struct Conv2d {
    /// Kernel `[out_c, in_c/groups, k, k]`.
    pub w: Param,
    /// Bias `[out_c]`.
    pub b: Param,
    in_c: usize,
    out_c: usize,
    k: usize,
    stride: usize,
    pad: usize,
    groups: usize,
    cache: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution layer.
    ///
    /// # Panics
    ///
    /// Panics if `in_c`/`out_c` are not divisible by `groups`.
    pub fn new(
        in_c: usize,
        out_c: usize,
        k: usize,
        stride: usize,
        pad: usize,
        groups: usize,
        seed: u64,
    ) -> Self {
        assert!(groups >= 1 && in_c % groups == 0 && out_c % groups == 0, "bad group count");
        let mut rng = init_rng(seed);
        let fan_in = (in_c / groups) * k * k;
        Self {
            w: Param::new(Tensor::kaiming(
                vec![out_c, in_c / groups, k, k],
                fan_in,
                &mut rng,
            )),
            b: Param::new(Tensor::zeros(vec![out_c])),
            in_c,
            out_c,
            k,
            stride,
            pad,
            groups,
            cache: None,
        }
    }

    /// Output spatial size for an input of the given size.
    pub fn out_size(&self, input: usize) -> usize {
        (input + 2 * self.pad - self.k) / self.stride + 1
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.shape().len(), 3, "Conv2d expects [C,H,W]");
        assert_eq!(x.shape()[0], self.in_c, "Conv2d channel mismatch");
        let (h, w) = (x.shape()[1], x.shape()[2]);
        let (oh, ow) = (self.out_size(h), self.out_size(w));
        let icg = self.in_c / self.groups;
        let ocg = self.out_c / self.groups;
        let mut out = Tensor::zeros(vec![self.out_c, oh, ow]);
        let xd = x.data();
        let wd = self.w.value.data();
        let od = out.data_mut();
        for g in 0..self.groups {
            for oc in g * ocg..(g + 1) * ocg {
                let bias = self.b.value.data()[oc];
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = bias;
                        for ic in 0..icg {
                            let xc = g * icg + ic;
                            for ky in 0..self.k {
                                let iy = (oy * self.stride + ky) as isize - self.pad as isize;
                                if iy < 0 || iy >= h as isize {
                                    continue;
                                }
                                for kx in 0..self.k {
                                    let ix =
                                        (ox * self.stride + kx) as isize - self.pad as isize;
                                    if ix < 0 || ix >= w as isize {
                                        continue;
                                    }
                                    let xi = (xc * h + iy as usize) * w + ix as usize;
                                    let wi = ((oc * icg + ic) * self.k + ky) * self.k + kx;
                                    acc += xd[xi] * wd[wi];
                                }
                            }
                        }
                        od[(oc * oh + oy) * ow + ox] = acc;
                    }
                }
            }
        }
        if train {
            self.cache = Some(x.clone());
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self.cache.take().expect("Conv2d::backward without forward");
        let (h, w) = (x.shape()[1], x.shape()[2]);
        let (oh, ow) = (self.out_size(h), self.out_size(w));
        assert_eq!(grad_out.shape(), &[self.out_c, oh, ow], "Conv2d grad shape");
        let icg = self.in_c / self.groups;
        let ocg = self.out_c / self.groups;
        let mut dx = Tensor::zeros(x.shape().to_vec());
        let xd = x.data();
        let gd = grad_out.data();
        let wd = self.w.value.data();
        {
            let dwd = self.w.grad.data_mut();
            let dbd = self.b.grad.data_mut();
            let dxd = dx.data_mut();
            for g in 0..self.groups {
                for oc in g * ocg..(g + 1) * ocg {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let go = gd[(oc * oh + oy) * ow + ox];
                            if go == 0.0 {
                                continue;
                            }
                            dbd[oc] += go;
                            for ic in 0..icg {
                                let xc = g * icg + ic;
                                for ky in 0..self.k {
                                    let iy =
                                        (oy * self.stride + ky) as isize - self.pad as isize;
                                    if iy < 0 || iy >= h as isize {
                                        continue;
                                    }
                                    for kx in 0..self.k {
                                        let ix = (ox * self.stride + kx) as isize
                                            - self.pad as isize;
                                        if ix < 0 || ix >= w as isize {
                                            continue;
                                        }
                                        let xi = (xc * h + iy as usize) * w + ix as usize;
                                        let wi =
                                            ((oc * icg + ic) * self.k + ky) * self.k + kx;
                                        dwd[wi] += go * xd[xi];
                                        dxd[xi] += go * wd[wi];
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.w);
        f(&mut self.b);
    }
}

/// 1-D convolution over `[C, L]` tensors (used by the VQ-VAE encoder to
/// embed layer-feature sequences).
#[derive(Debug, Clone)]
pub struct Conv1d {
    /// Kernel `[out_c, in_c, k]`.
    pub w: Param,
    /// Bias `[out_c]`.
    pub b: Param,
    in_c: usize,
    out_c: usize,
    k: usize,
    stride: usize,
    pad: usize,
    cache: Option<Tensor>,
}

impl Conv1d {
    /// Creates a 1-D convolution layer.
    pub fn new(in_c: usize, out_c: usize, k: usize, stride: usize, pad: usize, seed: u64) -> Self {
        let mut rng = init_rng(seed);
        Self {
            w: Param::new(Tensor::kaiming(vec![out_c, in_c, k], in_c * k, &mut rng)),
            b: Param::new(Tensor::zeros(vec![out_c])),
            in_c,
            out_c,
            k,
            stride,
            pad,
            cache: None,
        }
    }

    /// Output length for an input of the given length.
    pub fn out_len(&self, input: usize) -> usize {
        (input + 2 * self.pad - self.k) / self.stride + 1
    }
}

impl Layer for Conv1d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.shape().len(), 2, "Conv1d expects [C,L]");
        assert_eq!(x.shape()[0], self.in_c, "Conv1d channel mismatch");
        let l = x.shape()[1];
        let ol = self.out_len(l);
        let mut out = Tensor::zeros(vec![self.out_c, ol]);
        let xd = x.data();
        let wd = self.w.value.data();
        let od = out.data_mut();
        for oc in 0..self.out_c {
            let bias = self.b.value.data()[oc];
            for op in 0..ol {
                let mut acc = bias;
                for ic in 0..self.in_c {
                    for kk in 0..self.k {
                        let ip = (op * self.stride + kk) as isize - self.pad as isize;
                        if ip < 0 || ip >= l as isize {
                            continue;
                        }
                        acc += xd[ic * l + ip as usize]
                            * wd[(oc * self.in_c + ic) * self.k + kk];
                    }
                }
                od[oc * ol + op] = acc;
            }
        }
        if train {
            self.cache = Some(x.clone());
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self.cache.take().expect("Conv1d::backward without forward");
        let l = x.shape()[1];
        let ol = self.out_len(l);
        assert_eq!(grad_out.shape(), &[self.out_c, ol], "Conv1d grad shape");
        let mut dx = Tensor::zeros(x.shape().to_vec());
        let xd = x.data();
        let gd = grad_out.data();
        let wd = self.w.value.data();
        {
            let dwd = self.w.grad.data_mut();
            let dbd = self.b.grad.data_mut();
            let dxd = dx.data_mut();
            for oc in 0..self.out_c {
                for op in 0..ol {
                    let go = gd[oc * ol + op];
                    if go == 0.0 {
                        continue;
                    }
                    dbd[oc] += go;
                    for ic in 0..self.in_c {
                        for kk in 0..self.k {
                            let ip = (op * self.stride + kk) as isize - self.pad as isize;
                            if ip < 0 || ip >= l as isize {
                                continue;
                            }
                            let xi = ic * l + ip as usize;
                            let wi = (oc * self.in_c + ic) * self.k + kk;
                            dwd[wi] += go * xd[xi];
                            dxd[xi] += go * wd[wi];
                        }
                    }
                }
            }
        }
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.w);
        f(&mut self.b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_gradients;

    #[test]
    fn conv2d_output_shape() {
        let mut c = Conv2d::new(3, 8, 3, 2, 1, 1, 0);
        let y = c.forward(&Tensor::zeros(vec![3, 9, 9]), false);
        assert_eq!(y.shape(), &[8, 5, 5]);
    }

    #[test]
    fn conv2d_identity_kernel() {
        // 1×1 conv with identity weights passes the input through.
        let mut c = Conv2d::new(2, 2, 1, 1, 0, 1, 0);
        for v in c.w.value.data_mut() {
            *v = 0.0;
        }
        c.w.value.data_mut()[0] = 1.0; // out0 <- in0
        c.w.value.data_mut()[3] = 1.0; // out1 <- in1
        let x = Tensor::from_vec((0..8).map(|v| v as f32).collect(), vec![2, 2, 2]);
        let y = c.forward(&x, false);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn conv2d_gradients() {
        let mut c = Conv2d::new(2, 3, 3, 1, 1, 1, 5);
        check_layer_gradients(&mut c, &[2, 5, 5], 3e-2);
    }

    #[test]
    fn conv2d_strided_gradients() {
        let mut c = Conv2d::new(2, 2, 3, 2, 1, 1, 6);
        check_layer_gradients(&mut c, &[2, 6, 6], 3e-2);
    }

    #[test]
    fn depthwise_conv_gradients() {
        let mut c = Conv2d::new(4, 4, 3, 1, 1, 4, 7);
        check_layer_gradients(&mut c, &[4, 5, 5], 3e-2);
    }

    #[test]
    fn depthwise_channels_independent() {
        let mut c = Conv2d::new(2, 2, 3, 1, 1, 2, 1);
        // Zero the second channel's kernel: its output must be all-bias.
        for v in c.w.value.data_mut()[9..18].iter_mut() {
            *v = 0.0;
        }
        let x = Tensor::full(vec![2, 4, 4], 1.0);
        let y = c.forward(&x, false);
        for &v in &y.data()[16..32] {
            assert_eq!(v, 0.0);
        }
    }

    #[test]
    fn conv1d_output_shape() {
        let mut c = Conv1d::new(22, 16, 3, 1, 1, 0);
        let y = c.forward(&Tensor::zeros(vec![22, 10]), false);
        assert_eq!(y.shape(), &[16, 10]);
    }

    #[test]
    fn conv1d_gradients() {
        let mut c = Conv1d::new(3, 4, 3, 1, 1, 9);
        check_layer_gradients(&mut c, &[3, 7], 3e-2);
    }

    #[test]
    fn conv2d_param_count() {
        let mut c = Conv2d::new(16, 32, 3, 1, 1, 1, 0);
        assert_eq!(c.param_count(), 32 * 16 * 9 + 32);
        let mut d = Conv2d::new(16, 16, 3, 1, 1, 16, 0);
        assert_eq!(d.param_count(), 16 * 9 + 16);
    }
}
