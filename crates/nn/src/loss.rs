//! Loss functions.

use crate::tensor::Tensor;

/// Mean-squared-error loss: returns `(loss, dloss/dprediction)`.
///
/// `L = mean((pred − target)²)`, the per-decoder-stream objective the paper
/// trains its estimator with ("Using L2-loss for each decoder stream").
///
/// # Panics
///
/// Panics if shapes differ.
pub fn mse(pred: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert_eq!(pred.shape(), target.shape(), "mse shape mismatch");
    let n = pred.len().max(1) as f32;
    let mut grad = Tensor::zeros(pred.shape().to_vec());
    let mut loss = 0.0;
    for (i, (&p, &t)) in pred.data().iter().zip(target.data()).enumerate() {
        let d = p - t;
        loss += d * d;
        grad.data_mut()[i] = 2.0 * d / n;
    }
    (loss / n, grad)
}

/// Huber (smooth-L1) loss with threshold `delta`; less sensitive to the
/// occasional mislabeled sample from a noisy simulator run.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn huber(pred: &Tensor, target: &Tensor, delta: f32) -> (f32, Tensor) {
    assert_eq!(pred.shape(), target.shape(), "huber shape mismatch");
    let n = pred.len().max(1) as f32;
    let mut grad = Tensor::zeros(pred.shape().to_vec());
    let mut loss = 0.0;
    for (i, (&p, &t)) in pred.data().iter().zip(target.data()).enumerate() {
        let d = p - t;
        if d.abs() <= delta {
            loss += 0.5 * d * d;
            grad.data_mut()[i] = d / n;
        } else {
            loss += delta * (d.abs() - 0.5 * delta);
            grad.data_mut()[i] = delta * d.signum() / n;
        }
    }
    (loss / n, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_zero_at_target() {
        let t = Tensor::from_vec(vec![1.0, 2.0], vec![2]);
        let (l, g) = mse(&t, &t);
        assert_eq!(l, 0.0);
        assert!(g.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn mse_known_value() {
        let p = Tensor::from_vec(vec![3.0, 0.0], vec![2]);
        let t = Tensor::from_vec(vec![1.0, 0.0], vec![2]);
        let (l, g) = mse(&p, &t);
        assert!((l - 2.0).abs() < 1e-6); // (4 + 0) / 2
        assert!((g.data()[0] - 2.0).abs() < 1e-6); // 2·2/2
    }

    #[test]
    fn mse_gradient_matches_finite_difference() {
        let p = Tensor::from_vec(vec![0.5, -1.0, 2.0], vec![3]);
        let t = Tensor::from_vec(vec![0.0, 1.0, 2.0], vec![3]);
        let (_, g) = mse(&p, &t);
        let eps = 1e-3;
        for i in 0..3 {
            let mut pp = p.clone();
            pp.data_mut()[i] += eps;
            let mut pm = p.clone();
            pm.data_mut()[i] -= eps;
            let num = (mse(&pp, &t).0 - mse(&pm, &t).0) / (2.0 * eps);
            assert!((num - g.data()[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn huber_matches_mse_for_small_errors() {
        let p = Tensor::from_vec(vec![0.1], vec![1]);
        let t = Tensor::from_vec(vec![0.0], vec![1]);
        let (lh, _) = huber(&p, &t, 1.0);
        assert!((lh - 0.005).abs() < 1e-6);
    }

    #[test]
    fn huber_linear_for_large_errors() {
        let p = Tensor::from_vec(vec![10.0], vec![1]);
        let t = Tensor::from_vec(vec![0.0], vec![1]);
        let (lh, g) = huber(&p, &t, 1.0);
        assert!((lh - 9.5).abs() < 1e-5);
        assert!((g.data()[0] - 1.0).abs() < 1e-6);
    }
}
