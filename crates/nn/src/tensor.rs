//! Dense `f32` tensors with row-major layout.

use rand::Rng;
use std::fmt;

/// A dense, row-major `f32` tensor.
///
/// Deliberately minimal: shape + flat storage + the handful of operations
/// the layer zoo needs. No views, no broadcasting — the explicitness keeps
/// the hand-written backward passes auditable.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from raw data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape's element count.
    pub fn from_vec(data: Vec<f32>, shape: Vec<usize>) -> Self {
        let expect: usize = shape.iter().product();
        assert_eq!(data.len(), expect, "data length {} != shape product {}", data.len(), expect);
        Self { shape, data }
    }

    /// All-zero tensor.
    pub fn zeros(shape: Vec<usize>) -> Self {
        let n: usize = shape.iter().product();
        Self { shape, data: vec![0.0; n] }
    }

    /// Tensor filled with a constant.
    pub fn full(shape: Vec<usize>, value: f32) -> Self {
        let n: usize = shape.iter().product();
        Self { shape, data: vec![value; n] }
    }

    /// Uniform random tensor in `[-scale, scale]` (used for weight init).
    pub fn rand_uniform<R: Rng + ?Sized>(shape: Vec<usize>, scale: f32, rng: &mut R) -> Self {
        let n: usize = shape.iter().product();
        let data = (0..n).map(|_| rng.gen_range(-scale..=scale)).collect();
        Self { shape, data }
    }

    /// Kaiming-style init for a parameter with the given fan-in.
    pub fn kaiming<R: Rng + ?Sized>(shape: Vec<usize>, fan_in: usize, rng: &mut R) -> Self {
        let scale = (2.0 / fan_in.max(1) as f32).sqrt();
        Self::rand_uniform(shape, scale, rng)
    }

    /// Shape of the tensor.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable flat data access.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat data access.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its flat storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reinterprets the tensor with a new shape of equal element count.
    ///
    /// # Panics
    ///
    /// Panics if element counts differ.
    pub fn reshape(mut self, shape: Vec<usize>) -> Self {
        let expect: usize = shape.iter().product();
        assert_eq!(self.data.len(), expect, "reshape element count mismatch");
        self.shape = shape;
        self
    }

    /// Element-wise sum with another tensor of identical shape.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "add shape mismatch");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a + b).collect();
        Tensor { shape: self.shape.clone(), data }
    }

    /// In-place element-wise accumulate.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Element-wise scale.
    pub fn scale(&self, k: f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|v| v * k).collect(),
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean squared magnitude (for diagnostics and tests).
    pub fn mean_sq(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().map(|v| v * v).sum::<f32>() / self.data.len() as f32
        }
    }

    /// Matrix multiply: `self [m×k] · other [k×n] → [m×n]`.
    ///
    /// Row-blocked `i-k-j` kernel with a zero-skip on the left operand
    /// (mapping tensors are mostly zeros). Row blocks fan out across the
    /// thread pool when the product is large enough to amortize the spawn
    /// cost; the per-row arithmetic (and hence the result, bit for bit) is
    /// identical in the serial and parallel paths.
    ///
    /// # Panics
    ///
    /// Panics unless both tensors are 2-D with compatible inner dims.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "matmul lhs must be 2-D");
        assert_eq!(other.shape.len(), 2, "matmul rhs must be 2-D");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul inner dimension mismatch");
        // Flops below this stay serial: thread spawn costs ~µs, which only
        // pays off for matrices far larger than the estimator's.
        const PAR_MIN_FLOPS: usize = 1 << 21;
        let threads = rayon::current_num_threads();
        let mut out = vec![0.0f32; m * n];
        if threads > 1 && m >= 2 * threads && m * k * n >= PAR_MIN_FLOPS {
            let rows_per = m.div_ceil(threads);
            let lhs_chunks: Vec<(usize, &[f32])> = self
                .data
                .chunks(rows_per * k)
                .enumerate()
                .collect();
            let blocks = rayon::iter::par_map_slice(&lhs_chunks, &|&(_, lhs)| {
                let rows = lhs.len() / k;
                let mut block = vec![0.0f32; rows * n];
                matmul_rows(lhs, &other.data, &mut block, rows, k, n);
                block
            });
            for (block, dst) in blocks.iter().zip(out.chunks_mut(rows_per * n)) {
                dst.copy_from_slice(block);
            }
        } else {
            matmul_rows(&self.data, &other.data, &mut out, m, k, n);
        }
        Tensor { shape: vec![m, n], data: out }
    }

    /// In-place ReLU (used by the allocation-free inference path).
    pub fn relu_inplace(&mut self) {
        for v in &mut self.data {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
    }

    /// In-place row-wise softmax of a 2-D tensor — the inference path.
    ///
    /// Uses [`fast_exp`] (polynomial `2^x`, relative error < 1e-6) instead
    /// of libm `exp`: attention layers spend a large share of their time
    /// exponentiating scores, and softmax ratios are insensitive at that
    /// precision. The training path ([`Tensor::softmax_rows`]) keeps libm.
    ///
    /// # Panics
    ///
    /// Panics unless the tensor is 2-D.
    pub fn softmax_rows_inplace(&mut self) {
        assert_eq!(self.shape.len(), 2, "softmax_rows_inplace needs a 2-D tensor");
        let (m, n) = (self.shape[0], self.shape[1]);
        for i in 0..m {
            let row = &mut self.data[i * n..(i + 1) * n];
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            // Three separate passes so the exponential pass stays free of
            // cross-iteration dependencies and auto-vectorizes.
            for v in row.iter_mut() {
                *v = fast_exp(*v - max);
            }
            let denom: f32 = row.iter().sum();
            let inv = 1.0 / denom;
            for v in row.iter_mut() {
                *v *= inv;
            }
        }
    }

    /// 2-D transpose.
    ///
    /// # Panics
    ///
    /// Panics unless the tensor is 2-D.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2, "transpose needs a 2-D tensor");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor { shape: vec![n, m], data: out }
    }

    /// Row-wise softmax of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics unless the tensor is 2-D.
    pub fn softmax_rows(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2, "softmax_rows needs a 2-D tensor");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let row = &self.data[i * n..(i + 1) * n];
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut denom = 0.0;
            for (j, &v) in row.iter().enumerate() {
                let e = (v - max).exp();
                out[i * n + j] = e;
                denom += e;
            }
            for v in &mut out[i * n..(i + 1) * n] {
                *v /= denom;
            }
        }
        Tensor { shape: vec![m, n], data: out }
    }
}

/// Fast `e^x` for `x ≤ 0` (the softmax regime): `2^(x·log₂e)` with the
/// fractional power from a degree-7 Taylor polynomial and the integer
/// power spliced into the float exponent bits. Relative error < 1e-6;
/// inputs below −87 flush to 0 like libm.
#[inline]
pub fn fast_exp(x: f32) -> f32 {
    // Branch-free (the clamp handles underflow: 2^-126 · p ≈ 0) so the
    // softmax loops auto-vectorize. `floor` is computed by truncating the
    // biased value `y + 126 ≥ 0` — unlike `f32::floor`, integer
    // truncation vectorizes on every x86-64 baseline.
    const LOG2E: f32 = std::f32::consts::LOG2_E;
    let y = x.clamp(-87.0, 87.0) * LOG2E;
    let ti = (y + 126.0) as i32; // trunc(y + 126) == floor(y) + 126 here
    let yi = (ti - 126) as f32;
    let f = y - yi;
    // 2^f on [0, 1): Taylor in f·ln2 through degree 7.
    let p = 1.0
        + f * (std::f32::consts::LN_2
            + f * (0.240_226_5
                + f * (0.055_504_11
                    + f * (0.009_618_13
                        + f * (0.001_333_355
                            + f * (1.540_353_5e-4 + f * 1.525_27e-5))))));
    let bits = ((ti + 1) << 23) as u32;
    f32::from_bits(bits) * p
}

/// Shared `i-k-j` matmul kernel over raw row-major storage:
/// `out [rows×n] = lhs [rows×k] · rhs [k×n]`, skipping zero `lhs` entries.
///
/// Narrow outputs (`n ≤ 48` — attention layers live here) accumulate into
/// a stack array: through the output slice, every `p` step pays a reload
/// and store per lane because the compiler cannot prove `out` and `rhs`
/// disjoint.
fn matmul_rows(lhs: &[f32], rhs: &[f32], out: &mut [f32], rows: usize, k: usize, n: usize) {
    if n <= 48 {
        for i in 0..rows {
            let mut acc = [0.0f32; 48];
            for p in 0..k {
                let a = lhs[i * k + p];
                if a == 0.0 {
                    continue;
                }
                let row = &rhs[p * n..(p + 1) * n];
                for (d, &b) in acc[..n].iter_mut().zip(row) {
                    *d += a * b;
                }
            }
            out[i * n..(i + 1) * n].copy_from_slice(&acc[..n]);
        }
        return;
    }
    for i in 0..rows {
        for p in 0..k {
            let a = lhs[i * k + p];
            if a == 0.0 {
                continue;
            }
            let row = &rhs[p * n..(p + 1) * n];
            let dst = &mut out[i * n..(i + 1) * n];
            for (d, &b) in dst.iter_mut().zip(row) {
                *d += a * b;
            }
        }
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)
    }
}

/// Backward helper for `softmax` applied row-wise: given the softmax output
/// `y` and upstream gradient `dy`, returns `dx` (`dx_i = y_i (dy_i − Σ_j
/// y_j dy_j)`).
pub fn softmax_rows_backward(y: &Tensor, dy: &Tensor) -> Tensor {
    assert_eq!(y.shape(), dy.shape(), "softmax backward shape mismatch");
    let (m, n) = (y.shape()[0], y.shape()[1]);
    let mut dx = vec![0.0f32; m * n];
    for i in 0..m {
        let yr = &y.data()[i * n..(i + 1) * n];
        let dyr = &dy.data()[i * n..(i + 1) * n];
        let dot: f32 = yr.iter().zip(dyr).map(|(a, b)| a * b).sum();
        for j in 0..n {
            dx[i * n + j] = yr[j] * (dyr[j] - dot);
        }
    }
    Tensor::from_vec(dx, vec![m, n])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], vec![2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], vec![2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], vec![2, 3]);
        let i = Tensor::from_vec(vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0], vec![3, 3]);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn transpose_roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Tensor::rand_uniform(vec![3, 5], 1.0, &mut rng);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], vec![2, 3]);
        let s = a.softmax_rows();
        for i in 0..2 {
            let sum: f32 = s.data()[i * 3..(i + 1) * 3].iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], vec![1, 3]);
        let b = Tensor::from_vec(vec![101.0, 102.0, 103.0], vec![1, 3]);
        let (sa, sb) = (a.softmax_rows(), b.softmax_rows());
        for (x, y) in sa.data().iter().zip(sb.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_backward_matches_finite_difference() {
        let x = Tensor::from_vec(vec![0.3, -0.7, 1.2, 0.1], vec![1, 4]);
        let w = [0.5f32, -1.0, 0.25, 2.0]; // fixed loss weights
        let loss = |t: &Tensor| -> f32 {
            t.softmax_rows().data().iter().zip(&w).map(|(a, b)| a * b).sum()
        };
        let y = x.softmax_rows();
        let dy = Tensor::from_vec(w.to_vec(), vec![1, 4]);
        let dx = softmax_rows_backward(&y, &dy);
        let eps = 1e-3;
        for j in 0..4 {
            let mut xp = x.clone();
            xp.data_mut()[j] += eps;
            let mut xm = x.clone();
            xm.data_mut()[j] -= eps;
            let num = (loss(&xp) - loss(&xm)) / (2.0 * eps);
            assert!(
                (num - dx.data()[j]).abs() < 1e-3,
                "softmax grad mismatch at {j}: {num} vs {}",
                dx.data()[j]
            );
        }
    }

    #[test]
    fn large_matmul_parallel_path_matches_serial() {
        // Big enough to cross the parallel threshold on multi-core hosts;
        // on single-core hosts this still exercises the serial kernel.
        let mut rng = StdRng::seed_from_u64(6);
        let a = Tensor::rand_uniform(vec![160, 96], 1.0, &mut rng);
        let b = Tensor::rand_uniform(vec![96, 160], 1.0, &mut rng);
        let fast = a.matmul(&b);
        // Reference: naive triple loop.
        let mut expect = vec![0.0f32; 160 * 160];
        for i in 0..160 {
            for p in 0..96 {
                let av = a.data()[i * 96 + p];
                for j in 0..160 {
                    expect[i * 160 + j] += av * b.data()[p * 160 + j];
                }
            }
        }
        for (x, y) in fast.data().iter().zip(&expect) {
            assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn relu_inplace_clamps_negatives() {
        let mut t = Tensor::from_vec(vec![-1.0, 0.0, 2.5, -0.1], vec![4]);
        t.relu_inplace();
        assert_eq!(t.data(), &[0.0, 0.0, 2.5, 0.0]);
    }

    #[test]
    fn softmax_rows_inplace_matches_out_of_place() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], vec![2, 3]);
        let reference = a.softmax_rows();
        let mut b = a.clone();
        b.softmax_rows_inplace();
        for (x, y) in b.data().iter().zip(reference.data()) {
            assert!((x - y).abs() < 1e-5, "fast softmax drifted: {x} vs {y}");
        }
    }

    #[test]
    fn fast_exp_accuracy() {
        for i in 0..2000 {
            let x = -(i as f32) * 0.05; // [0, -100]
            let fast = fast_exp(x);
            let exact = x.exp();
            let tol = 5e-6 * exact.max(f32::MIN_POSITIVE);
            assert!(
                (fast - exact).abs() <= tol.max(1e-30),
                "fast_exp({x}) = {fast}, libm = {exact}"
            );
        }
        assert!(fast_exp(-100.0) < 1e-37, "deep negatives must flush to ~0");
        assert!((fast_exp(0.0) - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "shape product")]
    fn bad_shape_panics() {
        let _ = Tensor::from_vec(vec![1.0, 2.0], vec![3]);
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], vec![2, 2]);
        let b = a.clone().reshape(vec![4]);
        assert_eq!(b.data(), a.data());
        assert_eq!(b.shape(), &[4]);
    }

    #[test]
    fn add_and_scale() {
        let a = Tensor::from_vec(vec![1.0, 2.0], vec![2]);
        let b = Tensor::from_vec(vec![3.0, 4.0], vec![2]);
        assert_eq!(a.add(&b).data(), &[4.0, 6.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0]);
    }
}
