//! Optimizers.

use crate::layer::Layer;

/// Plain stochastic gradient descent with optional momentum-free weight
/// decay.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// L2 weight decay coefficient.
    pub weight_decay: f32,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f32) -> Self {
        Self { lr, weight_decay: 0.0 }
    }

    /// Applies one update to every parameter of `layer`.
    pub fn step<L: Layer + ?Sized>(&self, layer: &mut L) {
        let (lr, wd) = (self.lr, self.weight_decay);
        layer.visit_params(&mut |p| {
            let grads = p.grad.data().to_vec();
            for (v, g) in p.value.data_mut().iter_mut().zip(grads) {
                *v -= lr * (g + wd * *v);
            }
        });
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    t: i32,
}

impl Adam {
    /// Creates an Adam optimizer with standard betas.
    pub fn new(lr: f32) -> Self {
        Self { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0 }
    }

    /// Applies one update to every parameter of `layer`.
    pub fn step<L: Layer + ?Sized>(&mut self, layer: &mut L) {
        self.t += 1;
        let (lr, b1, b2, eps, t) = (self.lr, self.beta1, self.beta2, self.eps, self.t);
        let bc1 = 1.0 - b1.powi(t);
        let bc2 = 1.0 - b2.powi(t);
        layer.visit_params(&mut |p| {
            let n = p.value.len();
            for i in 0..n {
                let g = p.grad.data()[i];
                let m = b1 * p.m.data()[i] + (1.0 - b1) * g;
                let v = b2 * p.v.data()[i] + (1.0 - b2) * g * g;
                p.m.data_mut()[i] = m;
                p.v.data_mut()[i] = v;
                let mhat = m / bc1;
                let vhat = v / bc2;
                p.value.data_mut()[i] -= lr * mhat / (vhat.sqrt() + eps);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Layer, Linear};
    use crate::loss::mse;
    use crate::tensor::Tensor;

    fn train_to_fit(opt_is_adam: bool) -> f32 {
        // Fit y = 2x₀ − x₁ + 0.5 with a single linear layer.
        let mut net = Linear::new(2, 1, 99);
        let mut adam = Adam::new(5e-2);
        let sgd = Sgd::new(5e-2);
        let data: Vec<([f32; 2], f32)> = vec![
            ([0.0, 0.0], 0.5),
            ([1.0, 0.0], 2.5),
            ([0.0, 1.0], -0.5),
            ([1.0, 1.0], 1.5),
            ([0.5, 0.25], 1.25),
        ];
        let mut last = f32::MAX;
        for _ in 0..400 {
            let mut total = 0.0;
            for (x, y) in &data {
                let xt = Tensor::from_vec(x.to_vec(), vec![2]);
                let yt = Tensor::from_vec(vec![*y], vec![1]);
                let pred = net.forward(&xt, true);
                let (l, g) = mse(&pred, &yt);
                total += l;
                net.backward(&g);
            }
            if opt_is_adam {
                adam.step(&mut net);
            } else {
                sgd.step(&mut net);
            }
            net.zero_grad();
            last = total / data.len() as f32;
        }
        last
    }

    #[test]
    fn adam_converges_on_linear_regression() {
        assert!(train_to_fit(true) < 1e-3, "Adam failed to fit linear data");
    }

    #[test]
    fn sgd_converges_on_linear_regression() {
        assert!(train_to_fit(false) < 1e-2, "SGD failed to fit linear data");
    }

    #[test]
    fn adam_step_changes_params() {
        let mut net = Linear::new(3, 1, 0);
        let before = net.w.value.clone();
        let x = Tensor::full(vec![3], 1.0);
        let y = net.forward(&x, true);
        net.backward(&Tensor::full(y.shape().to_vec(), 1.0));
        Adam::new(1e-2).step(&mut net);
        assert_ne!(before, net.w.value);
    }
}
