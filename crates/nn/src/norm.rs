//! Normalization layers.

use crate::layer::{Layer, Param};
use crate::tensor::Tensor;

/// Per-channel normalization over spatial positions of a `[C, H, W]` (or
/// `[C, L]`) tensor, with learned scale/shift and running statistics for
/// inference.
///
/// With batch size 1 — the training regime of the estimator — batch
/// normalization degenerates to exactly this (statistics over the spatial
/// axes), so the paper's "2D conv followed by batch normalization" maps
/// onto this layer.
#[derive(Debug, Clone)]
pub struct BatchNorm {
    /// Scale γ `[C]`.
    pub gamma: Param,
    /// Shift β `[C]`.
    pub beta: Param,
    channels: usize,
    eps: f32,
    momentum: f32,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    /// Cached (normalized x̂, inv_std, input shape) from forward.
    cache: Option<(Tensor, Vec<f32>)>,
}

impl BatchNorm {
    /// Creates a batch-norm layer over `channels` channels.
    ///
    /// The variance floor (`eps = 1e-2`) is deliberately generous: with
    /// near-constant feature maps (common for sparse mapping tensors) a
    /// tiny eps turns normalization into a ×100+ noise amplifier and
    /// destabilizes training.
    pub fn new(channels: usize) -> Self {
        Self {
            gamma: Param::new(Tensor::full(vec![channels], 1.0)),
            beta: Param::new(Tensor::zeros(vec![channels])),
            channels,
            eps: 1e-2,
            momentum: 0.1,
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
        cache: None,
        }
    }

    fn spatial(&self, x: &Tensor) -> usize {
        x.len() / self.channels
    }

    /// Lock-free inference: instance-norm statistics over the spatial
    /// axes, no cache, no running-average update. Bit-identical to
    /// `forward(x, false)`.
    pub fn infer(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.shape()[0], self.channels, "BatchNorm channel mismatch");
        let s = self.spatial(x);
        let mut y = Tensor::zeros(x.shape().to_vec());
        for c in 0..self.channels {
            let xs = &x.data()[c * s..(c + 1) * s];
            let mean = xs.iter().sum::<f32>() / s as f32;
            let var = xs.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / s as f32;
            let inv_std = 1.0 / (var + self.eps).sqrt();
            let g = self.gamma.value.data()[c];
            let b = self.beta.value.data()[c];
            for (i, &xv) in xs.iter().enumerate() {
                y.data_mut()[c * s + i] = g * ((xv - mean) * inv_std) + b;
            }
        }
        y
    }
}

impl Layer for BatchNorm {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.shape()[0], self.channels, "BatchNorm channel mismatch");
        let s = self.spatial(x);
        let mut y = Tensor::zeros(x.shape().to_vec());
        let mut inv_stds = vec![0.0f32; self.channels];
        let mut xhat = Tensor::zeros(x.shape().to_vec());
        #[allow(clippy::needless_range_loop)] // c indexes four parallel arrays
        for c in 0..self.channels {
            let xs = &x.data()[c * s..(c + 1) * s];
            // Statistics are always computed per sample over the spatial
            // axes (instance-norm semantics): with batch size 1 there is no
            // meaningful "batch" statistic, and running averages drift away
            // from what training normalized with, wrecking validation.
            // Running stats are still tracked as diagnostics.
            let mean = xs.iter().sum::<f32>() / s as f32;
            let var = xs.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / s as f32;
            if train {
                self.running_mean[c] =
                    (1.0 - self.momentum) * self.running_mean[c] + self.momentum * mean;
                self.running_var[c] =
                    (1.0 - self.momentum) * self.running_var[c] + self.momentum * var;
            }
            let inv_std = 1.0 / (var + self.eps).sqrt();
            inv_stds[c] = inv_std;
            let g = self.gamma.value.data()[c];
            let b = self.beta.value.data()[c];
            for (i, &xv) in xs.iter().enumerate() {
                let xh = (xv - mean) * inv_std;
                xhat.data_mut()[c * s + i] = xh;
                y.data_mut()[c * s + i] = g * xh + b;
            }
        }
        if train {
            self.cache = Some((xhat, inv_stds));
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (xhat, inv_stds) = self.cache.take().expect("BatchNorm::backward without forward");
        let s = self.spatial(grad_out);
        let mut dx = Tensor::zeros(grad_out.shape().to_vec());
        #[allow(clippy::needless_range_loop)] // c indexes four parallel arrays
        for c in 0..self.channels {
            let g = self.gamma.value.data()[c];
            let xh = &xhat.data()[c * s..(c + 1) * s];
            let dy = &grad_out.data()[c * s..(c + 1) * s];
            let sum_dy: f32 = dy.iter().sum();
            let sum_dy_xh: f32 = dy.iter().zip(xh).map(|(a, b)| a * b).sum();
            self.beta.grad.data_mut()[c] += sum_dy;
            self.gamma.grad.data_mut()[c] += sum_dy_xh;
            let n = s as f32;
            for i in 0..s {
                dx.data_mut()[c * s + i] = g * inv_stds[c] / n
                    * (n * dy[i] - sum_dy - xh[i] * sum_dy_xh);
            }
        }
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_gradients;

    #[test]
    fn normalizes_channels_in_train_mode() {
        let mut bn = BatchNorm::new(2);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0], vec![2, 4]);
        let y = bn.forward(&x, true);
        for c in 0..2 {
            let ys = &y.data()[c * 4..(c + 1) * 4];
            let mean: f32 = ys.iter().sum::<f32>() / 4.0;
            let var: f32 = ys.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5, "mean should be ~0, got {mean}");
            // eps = 1e-2 slightly shrinks the normalized variance.
            assert!((var - 1.0).abs() < 5e-2, "var should be ~1, got {var}");
        }
    }

    #[test]
    fn eval_matches_train_statistics() {
        // Instance-norm semantics: the same input normalizes identically in
        // train and eval mode (running stats are diagnostics only).
        let mut bn = BatchNorm::new(2);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, -1.0, 0.0, 2.0, 5.0], vec![2, 4]);
        let yt = bn.forward(&x, true);
        let ye = bn.forward(&x, false);
        for (a, b) in yt.data().iter().zip(ye.data()) {
            assert!((a - b).abs() < 1e-6, "train/eval outputs must match");
        }
    }

    #[test]
    fn gradients() {
        let mut bn = BatchNorm::new(3);
        check_layer_gradients(&mut bn, &[3, 6], 3e-2);
    }

    #[test]
    fn gradients_2d_spatial() {
        let mut bn = BatchNorm::new(2);
        check_layer_gradients(&mut bn, &[2, 4, 4], 3e-2);
    }

    #[test]
    fn param_count() {
        let mut bn = BatchNorm::new(16);
        assert_eq!(bn.param_count(), 32);
    }
}
