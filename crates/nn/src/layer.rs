//! The layer trait, parameters, and structural combinators.

use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A trainable parameter with its gradient accumulator and Adam state.
#[derive(Debug, Clone)]
pub struct Param {
    /// Current value.
    pub value: Tensor,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Tensor,
    /// Adam first-moment state.
    pub m: Tensor,
    /// Adam second-moment state.
    pub v: Tensor,
}

impl Param {
    /// Wraps an initial value with zeroed gradient/optimizer state.
    pub fn new(value: Tensor) -> Self {
        let shape = value.shape().to_vec();
        Self {
            value,
            grad: Tensor::zeros(shape.clone()),
            m: Tensor::zeros(shape.clone()),
            v: Tensor::zeros(shape),
        }
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Whether the parameter is empty.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

/// A neural-network layer with explicit forward/backward passes.
///
/// `forward` caches whatever the subsequent `backward` call needs; callers
/// must pair them (one `backward` after each `forward` with the same
/// sample). Gradients *accumulate* into [`Param::grad`] so minibatch
/// training sums per-sample gradients, then calls an optimizer and
/// [`Layer::zero_grad`].
pub trait Layer {
    /// Computes the layer output, caching intermediates when `train`.
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor;

    /// Propagates the output gradient, accumulating parameter gradients and
    /// returning the input gradient.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called without a preceding training
    /// forward pass.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Visits every trainable parameter (used by optimizers/serialization).
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Zeroes all parameter gradients.
    fn zero_grad(&mut self) {
        self.visit_params(&mut |p| {
            for g in p.grad.data_mut() {
                *g = 0.0;
            }
        });
    }

    /// Total scalar parameter count.
    fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.len());
        n
    }
}

/// Deterministic RNG used by layer constructors: layers take a `seed` so
/// whole models are reproducible without threading RNGs everywhere.
pub(crate) fn init_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
}

/// Fully connected layer. Accepts a 1-D `[in]` tensor or a 2-D `[T, in]`
/// tensor (applied row-wise).
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weight matrix `[in, out]`.
    pub w: Param,
    /// Bias vector `[out]`.
    pub b: Param,
    in_dim: usize,
    out_dim: usize,
    cache: Option<Tensor>,
}

impl Linear {
    /// Creates a Kaiming-initialized linear layer.
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        let mut rng = init_rng(seed);
        Self {
            w: Param::new(Tensor::kaiming(vec![in_dim, out_dim], in_dim, &mut rng)),
            b: Param::new(Tensor::zeros(vec![out_dim])),
            in_dim,
            out_dim,
            cache: None,
        }
    }

    fn as_rows(&self, x: &Tensor) -> Tensor {
        match x.shape().len() {
            1 => x.clone().reshape(vec![1, self.in_dim]),
            2 => x.clone(),
            d => panic!("Linear expects 1-D or 2-D input, got {d}-D"),
        }
    }

    /// Lock-free inference: `x · W + b` without touching the training
    /// cache, so concurrent callers can share one layer. Accepts the same
    /// 1-D `[in]` or 2-D `[T, in]` inputs as [`Layer::forward`]; a 2-D
    /// input is the batched "stacked matmul" path.
    pub fn infer(&self, x: &Tensor) -> Tensor {
        assert_eq!(
            *x.shape().last().expect("nonempty shape"),
            self.in_dim,
            "Linear input dim mismatch"
        );
        let one_d = x.shape().len() == 1;
        let rows = self.as_rows(x);
        let mut y = rows.matmul(&self.w.value);
        let t = y.shape()[0];
        for i in 0..t {
            for j in 0..self.out_dim {
                y.data_mut()[i * self.out_dim + j] += self.b.value.data()[j];
            }
        }
        if one_d {
            y.reshape(vec![self.out_dim])
        } else {
            y
        }
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(
            *x.shape().last().expect("nonempty shape"),
            self.in_dim,
            "Linear input dim mismatch"
        );
        let rows = self.as_rows(x);
        let mut y = rows.matmul(&self.w.value);
        let t = y.shape()[0];
        for i in 0..t {
            for j in 0..self.out_dim {
                y.data_mut()[i * self.out_dim + j] += self.b.value.data()[j];
            }
        }
        if train {
            self.cache = Some(rows);
        }
        if x.shape().len() == 1 {
            y.reshape(vec![self.out_dim])
        } else {
            y
        }
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let rows = self.cache.take().expect("Linear::backward without forward");
        let t = rows.shape()[0];
        let g = if grad_out.shape().len() == 1 {
            grad_out.clone().reshape(vec![1, self.out_dim])
        } else {
            grad_out.clone()
        };
        // dW = X^T G, db = Σ rows of G, dX = G W^T.
        let dw = rows.transpose().matmul(&g);
        self.w.grad.add_assign(&dw);
        for i in 0..t {
            for j in 0..self.out_dim {
                self.b.grad.data_mut()[j] += g.data()[i * self.out_dim + j];
            }
        }
        let dx = g.matmul(&self.w.value.transpose());
        if grad_out.shape().len() == 1 {
            dx.reshape(vec![self.in_dim])
        } else {
            dx
        }
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.w);
        f(&mut self.b);
    }
}

/// ReLU activation.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let mut y = x.clone();
        let mask: Vec<bool> = y
            .data_mut()
            .iter_mut()
            .map(|v| {
                if *v < 0.0 {
                    *v = 0.0;
                    false
                } else {
                    true
                }
            })
            .collect();
        if train {
            self.mask = Some(mask);
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self.mask.take().expect("Relu::backward without forward");
        let mut g = grad_out.clone();
        for (v, &keep) in g.data_mut().iter_mut().zip(&mask) {
            if !keep {
                *v = 0.0;
            }
        }
        g
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

/// GELU activation (tanh approximation).
#[derive(Debug, Clone, Default)]
pub struct Gelu {
    cache: Option<Tensor>,
}

impl Gelu {
    /// Creates a GELU layer.
    pub fn new() -> Self {
        Self::default()
    }

    fn phi(v: f32) -> f32 {
        const C: f32 = 0.797_884_6; // sqrt(2/π)
        0.5 * v * (1.0 + (C * (v + 0.044715 * v * v * v)).tanh())
    }
}

impl Layer for Gelu {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if train {
            self.cache = Some(x.clone());
        }
        let mut y = x.clone();
        for v in y.data_mut() {
            *v = Self::phi(*v);
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self.cache.take().expect("Gelu::backward without forward");
        let mut g = grad_out.clone();
        let eps = 1e-3;
        // Differentiable closed form is messy; the tanh approximation's
        // derivative via central difference is exact enough for training
        // and keeps the code honest with the forward definition.
        for (gv, &xv) in g.data_mut().iter_mut().zip(x.data()) {
            let d = (Self::phi(xv + eps) - Self::phi(xv - eps)) / (2.0 * eps);
            *gv *= d;
        }
        g
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

/// Logistic sigmoid activation.
#[derive(Debug, Clone, Default)]
pub struct Sigmoid {
    cache: Option<Tensor>,
}

impl Sigmoid {
    /// Creates a sigmoid layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Sigmoid {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let mut y = x.clone();
        for v in y.data_mut() {
            *v = 1.0 / (1.0 + (-*v).exp());
        }
        if train {
            self.cache = Some(y.clone());
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let y = self.cache.take().expect("Sigmoid::backward without forward");
        let mut g = grad_out.clone();
        for (gv, &yv) in g.data_mut().iter_mut().zip(y.data()) {
            *gv *= yv * (1.0 - yv);
        }
        g
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

/// Sequential composition of layers.
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Chains layers in order.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        Self { layers }
    }

    /// Number of child layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl Layer for Sequential {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let mut cur = x.clone();
        for l in &mut self.layers {
            cur = l.forward(&cur, train);
        }
        cur
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut g = grad_out.clone();
        for l in self.layers.iter_mut().rev() {
            g = l.backward(&g);
        }
        g
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for l in &mut self.layers {
            l.visit_params(f);
        }
    }
}

/// Residual wrapper: `y = x + inner(x)`. Requires the inner chain to
/// preserve shape.
pub struct Residual {
    inner: Box<dyn Layer>,
}

impl Residual {
    /// Wraps a shape-preserving inner layer.
    pub fn new(inner: Box<dyn Layer>) -> Self {
        Self { inner }
    }
}

impl Layer for Residual {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let y = self.inner.forward(x, train);
        assert_eq!(y.shape(), x.shape(), "Residual inner must preserve shape");
        y.add(x)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let g_inner = self.inner.backward(grad_out);
        g_inner.add(grad_out)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.inner.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_gradients;

    #[test]
    fn linear_shapes() {
        let mut l = Linear::new(4, 3, 0);
        let y = l.forward(&Tensor::zeros(vec![4]), false);
        assert_eq!(y.shape(), &[3]);
        let y2 = l.forward(&Tensor::zeros(vec![5, 4]), false);
        assert_eq!(y2.shape(), &[5, 3]);
    }

    #[test]
    fn linear_gradients() {
        let mut l = Linear::new(5, 3, 7);
        check_layer_gradients(&mut l, &[5], 2e-2);
        check_layer_gradients(&mut l, &[4, 5], 2e-2);
    }

    #[test]
    fn relu_gradients() {
        // Keep probe inputs away from the kink at zero, where finite
        // differences are meaningless.
        let mut l = Relu::new();
        let x = Tensor::from_vec(
            vec![0.8, -0.6, 1.2, -1.5, 0.4, -0.9, 2.0, -2.0, 0.5],
            vec![9],
        );
        crate::gradcheck::check_layer_gradients_with_input(&mut l, &x, 1e-3);
    }

    #[test]
    fn gelu_gradients() {
        let mut l = Gelu::new();
        check_layer_gradients(&mut l, &[7], 2e-2);
    }

    #[test]
    fn sigmoid_gradients() {
        let mut l = Sigmoid::new();
        check_layer_gradients(&mut l, &[6], 1e-2);
    }

    #[test]
    fn residual_adds_input() {
        // Zero-initialized linear ≈ identity residual at init? Linear has
        // random weights; instead use a ReLU on positive input: y = x + x.
        let mut r = Residual::new(Box::new(Relu::new()));
        let x = Tensor::from_vec(vec![1.0, 2.0], vec![2]);
        assert_eq!(r.forward(&x, false).data(), &[2.0, 4.0]);
    }

    #[test]
    fn residual_gradients() {
        let mut r = Residual::new(Box::new(Sequential::new(vec![
            Box::new(Linear::new(6, 6, 3)),
            Box::new(Relu::new()),
            Box::new(Linear::new(6, 6, 4)),
        ])));
        check_layer_gradients(&mut r, &[6], 3e-2);
    }

    #[test]
    fn sequential_param_count() {
        let mut s = Sequential::new(vec![
            Box::new(Linear::new(4, 8, 0)),
            Box::new(Relu::new()),
            Box::new(Linear::new(8, 2, 1)),
        ]);
        assert_eq!(s.param_count(), 4 * 8 + 8 + 8 * 2 + 2);
    }

    #[test]
    fn zero_grad_clears() {
        let mut l = Linear::new(3, 3, 0);
        let x = Tensor::full(vec![3], 1.0);
        let y = l.forward(&x, true);
        l.backward(&Tensor::full(y.shape().to_vec(), 1.0));
        assert!(l.w.grad.mean_sq() > 0.0);
        l.zero_grad();
        assert_eq!(l.w.grad.mean_sq(), 0.0);
    }
}
