//! Monte-Carlo Tree Search (UCT) over sequential decision problems.
//!
//! RankMap explores the mapping space — one component choice per
//! schedulable unit — with MCTS (§IV-E): selection and expansion by upper
//! confidence bounds, simulation by random completion of the partial
//! mapping, and the trained throughput estimator as the terminal reward.
//! This crate hosts the search machinery, generic over a
//! [`DecisionProblem`] so the same code drives RankMap, OmniBoost, and the
//! toy problems in the tests.
//!
//! # Batched search
//!
//! The estimator-in-the-loop search spends nearly all of its time in
//! terminal evaluations, so the search collects `K =`
//! [`MctsConfig::batch`] leaves per round under a **virtual loss** (each
//! selected path is temporarily penalized so the next selection in the
//! round explores elsewhere), then scores the whole round through one
//! [`DecisionProblem::evaluate_batch`] call — which oracles fan out across
//! the thread pool and run as stacked matmuls. A **transposition cache**
//! (see [`DecisionProblem::transposition_key`]) makes revisited terminal
//! states free. With `K = 1` the batched machinery reduces exactly to the
//! classic sequential loop — same RNG stream, same trajectory, same
//! result — which [`Mcts::search_sequential`] preserves as an executable
//! reference.
//!
//! # Warm-started search
//!
//! A dynamic workload manager re-searches on every arrival/departure, and
//! most of the decision vector is unchanged between consecutive events.
//! [`Mcts::search_warm`] takes a [`WarmStart`] — a per-depth action guide
//! distilled from the incumbent solution plus a bias probability — and
//! (a) evaluates the incumbent completion first, so the warm search can
//! never return a reward below the incumbent's, and (b) biases every
//! rollout step toward the guide action with probability
//! [`WarmStart::bias`], so the budget concentrates on re-deciding the
//! delta instead of rediscovering the unchanged placements.
//!
//! # Example
//!
//! ```
//! use rankmap_search::{DecisionProblem, Mcts, MctsConfig};
//!
//! /// Maximize the number of 1-bits in a 6-bit string.
//! struct OneMax;
//! impl DecisionProblem for OneMax {
//!     type State = Vec<usize>;
//!     fn root(&self) -> Vec<usize> { Vec::new() }
//!     fn action_count(&self, s: &Vec<usize>) -> usize {
//!         if s.len() >= 6 { 0 } else { 2 }
//!     }
//!     fn apply(&self, s: &Vec<usize>, a: usize) -> Vec<usize> {
//!         let mut t = s.clone();
//!         t.push(a);
//!         t
//!     }
//!     fn evaluate(&self, s: &Vec<usize>) -> f64 {
//!         s.iter().sum::<usize>() as f64
//!     }
//! }
//!
//! let result = Mcts::new(MctsConfig { iterations: 400, ..Default::default() })
//!     .search(&OneMax);
//! assert_eq!(result.best_state, vec![1, 1, 1, 1, 1, 1]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// A finite-horizon sequential decision problem with a terminal reward.
pub trait DecisionProblem {
    /// Search state (a partial decision vector).
    type State: Clone;

    /// The empty/initial state.
    fn root(&self) -> Self::State;

    /// Number of actions available in `state`; `0` marks a terminal state.
    fn action_count(&self, state: &Self::State) -> usize;

    /// Applies action `a` (in `0..action_count`) to a state.
    fn apply(&self, state: &Self::State, a: usize) -> Self::State;

    /// Applies action `a` in place — the rollout fast path. The default
    /// delegates to [`DecisionProblem::apply`]; growable states (decision
    /// vectors) should override with a push to kill the per-step clone.
    fn apply_in_place(&self, state: &mut Self::State, a: usize) {
        *state = self.apply(state, a);
    }

    /// Reward of a terminal state (may be `f64::NEG_INFINITY` for
    /// disqualified states, per RankMap's starvation threshold).
    fn evaluate(&self, state: &Self::State) -> f64;

    /// Rewards for a whole round of terminal states. The default maps
    /// [`DecisionProblem::evaluate`]; oracle-backed problems override this
    /// with one batched oracle query fanned out across the thread pool.
    fn evaluate_batch(&self, states: &[Self::State]) -> Vec<f64> {
        states.iter().map(|s| self.evaluate(s)).collect()
    }

    /// Stable 64-bit key identifying a terminal state for the
    /// transposition cache, or `None` (the default) to disable caching.
    /// States with equal keys must have equal rewards.
    fn transposition_key(&self, _state: &Self::State) -> Option<u64> {
        None
    }
}

/// MCTS hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MctsConfig {
    /// Search budget: number of select→expand→simulate→backpropagate
    /// iterations ("a predefined computational budget", §IV-E).
    pub iterations: usize,
    /// UCT exploration constant.
    pub exploration: f64,
    /// RNG seed (search is deterministic given the seed).
    pub seed: u64,
    /// Leaves evaluated per batched round (`K`). `1` reproduces the
    /// sequential search exactly; larger values trade per-round tree
    /// freshness for batched oracle evaluation.
    pub batch: usize,
    /// Virtual-loss weight applied to a selected path while its rollout
    /// awaits evaluation (only observable when `batch > 1`).
    pub virtual_loss: f64,
}

impl Default for MctsConfig {
    fn default() -> Self {
        Self { iterations: 2_000, exploration: 1.3, seed: 0, batch: 1, virtual_loss: 1.0 }
    }
}

/// Incumbent-derived guidance for a warm-started search.
///
/// `guide[d]` names the incumbent action at decision depth `d` (the number
/// of actions applied from the root), or `None` where the warm start has
/// no opinion — e.g. the units of a freshly arrived DNN, which the search
/// must decide from scratch. When every depth of a terminal path is
/// guided, the incumbent completion is evaluated as the very first
/// iteration, so the search's best reward starts at the incumbent's.
#[derive(Debug, Clone, PartialEq)]
pub struct WarmStart {
    /// Incumbent action per depth (`None` = unguided, re-decide freely).
    pub guide: Vec<Option<usize>>,
    /// Probability that a rollout step follows the guide action instead of
    /// sampling uniformly. `0.0` disables the bias (the seeded incumbent
    /// evaluation still happens); values near `1.0` pin guided depths to
    /// their incumbent choice.
    pub bias: f64,
}

impl WarmStart {
    /// Builds a fully guided warm start from a flat incumbent decision
    /// vector.
    pub fn pinned(actions: impl IntoIterator<Item = usize>, bias: f64) -> Self {
        Self { guide: actions.into_iter().map(Some).collect(), bias }
    }

    /// Whether every depth in `0..len` has a guide action.
    pub fn is_complete(&self, len: usize) -> bool {
        self.guide.len() >= len && self.guide.iter().take(len).all(Option::is_some)
    }
}

/// Outcome of a search.
#[derive(Debug, Clone)]
pub struct SearchResult<S> {
    /// Best terminal state ever simulated.
    pub best_state: S,
    /// Its raw reward.
    pub best_reward: f64,
    /// Number of terminal evaluations performed (cache hits included —
    /// this is the iteration budget actually spent).
    pub evaluations: usize,
    /// Terminal evaluations that reached the problem's (oracle's)
    /// `evaluate`/`evaluate_batch` — i.e. not served by the cache.
    pub oracle_evals: usize,
    /// Terminal evaluations served by the transposition cache.
    pub cache_hits: usize,
}

struct Node<S> {
    state: S,
    parent: Option<usize>,
    children: Vec<usize>,
    /// Next untried action index (actions expand in order; rollouts cover
    /// the rest stochastically).
    next_action: usize,
    action_count: usize,
    /// Number of actions applied from the root (the warm-start guide is
    /// indexed by this depth).
    depth: usize,
    visits: f64,
    /// Sum of min-max normalized rewards.
    value: f64,
}

/// One collected rollout awaiting (batched) evaluation.
struct PendingRollout<S> {
    leaf: usize,
    state: PendingState<S>,
    key: Option<u64>,
}

/// Where a pending rollout's reward comes from.
enum PendingState<S> {
    /// Served by the transposition cache (state kept for best-tracking).
    Cached { state: S, reward: f64 },
    /// Index into this round's deduplicated fresh-evaluation list; round
    /// duplicates share one entry, so the oracle sees each distinct
    /// terminal at most once per round.
    Fresh(usize),
}

/// UCT Monte-Carlo Tree Search.
#[derive(Debug, Clone)]
pub struct Mcts {
    config: MctsConfig,
}

impl Mcts {
    /// Creates a search instance.
    pub fn new(config: MctsConfig) -> Self {
        Self { config }
    }

    /// Runs the search and returns the best terminal state found.
    ///
    /// Rewards of `NEG_INFINITY` (disqualified mappings) are clamped to
    /// the running minimum for tree statistics, so the tree steers away
    /// from them without poisoning the averages.
    pub fn search<P: DecisionProblem>(&self, problem: &P) -> SearchResult<P::State> {
        self.search_batched(problem, None)
    }

    /// Runs the search warm-started from an incumbent solution: the
    /// incumbent completion (when fully guided) is evaluated first, and
    /// rollouts follow the guide with probability [`WarmStart::bias`].
    ///
    /// The returned best reward is therefore never below the incumbent's
    /// when the guide covers a full terminal path.
    pub fn search_warm<P: DecisionProblem>(
        &self,
        problem: &P,
        warm: &WarmStart,
    ) -> SearchResult<P::State> {
        self.search_batched(problem, Some(warm))
    }

    /// The classic one-rollout-per-iteration loop, kept verbatim as the
    /// executable reference: `search` with `batch == 1` must reproduce its
    /// trajectory exactly (checked in tests), and benchmarks use it as the
    /// sequential baseline.
    pub fn search_sequential<P: DecisionProblem>(&self, problem: &P) -> SearchResult<P::State> {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let root_state = problem.root();
        let root_actions = problem.action_count(&root_state);
        let mut nodes: Vec<Node<P::State>> = vec![Node {
            state: root_state.clone(),
            parent: None,
            children: Vec::new(),
            next_action: 0,
            action_count: root_actions,
            depth: 0,
            visits: 0.0,
            value: 0.0,
        }];
        let mut best_state = None;
        let mut best_reward = f64::NEG_INFINITY;
        let mut reward_min = f64::INFINITY;
        let mut reward_max = f64::NEG_INFINITY;
        let mut evaluations = 0;

        for _ in 0..self.config.iterations {
            let leaf = select_and_expand(problem, &mut nodes, self.config.exploration);
            // Simulation: random completion from the leaf.
            let mut sim = nodes[leaf].state.clone();
            loop {
                let k = problem.action_count(&sim);
                if k == 0 {
                    break;
                }
                let a = rng.gen_range(0..k);
                sim = problem.apply(&sim, a);
            }
            let raw = problem.evaluate(&sim);
            evaluations += 1;
            if raw > best_reward {
                best_reward = raw;
                best_state = Some(sim);
            }
            let norm = normalize_reward(raw, &mut reward_min, &mut reward_max);
            backpropagate(&mut nodes, leaf, norm, 1.0);
        }

        SearchResult {
            best_state: best_state.unwrap_or(root_state),
            best_reward,
            evaluations,
            oracle_evals: evaluations,
            cache_hits: 0,
        }
    }

    /// Batched virtual-loss search: collect up to `K` rollouts per round,
    /// score them through one `evaluate_batch` call, then backpropagate.
    fn search_batched<P: DecisionProblem>(
        &self,
        problem: &P,
        warm: Option<&WarmStart>,
    ) -> SearchResult<P::State> {
        let batch = self.config.batch.max(1);
        let vl = self.config.virtual_loss;
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let root_state = problem.root();
        let root_actions = problem.action_count(&root_state);
        let mut nodes: Vec<Node<P::State>> = vec![Node {
            state: root_state.clone(),
            parent: None,
            children: Vec::new(),
            next_action: 0,
            action_count: root_actions,
            depth: 0,
            visits: 0.0,
            value: 0.0,
        }];
        let mut best_state: Option<P::State> = None;
        let mut best_reward = f64::NEG_INFINITY;
        let mut reward_min = f64::INFINITY;
        let mut reward_max = f64::NEG_INFINITY;
        let mut evaluations = 0usize;
        let mut oracle_evals = 0usize;
        let mut cache_hits = 0usize;
        let mut transpositions: HashMap<u64, f64> = HashMap::new();
        // Reusable rollout buffer: apply_in_place into it instead of
        // cloning a fresh state per rollout step.
        let mut sim = root_state.clone();

        let mut remaining = self.config.iterations;

        // Warm start, part one: evaluate the incumbent completion before
        // anything else, so the search's running best can only improve on
        // it (spends one iteration of the budget).
        if let Some(w) = warm {
            if remaining > 0 {
                if let Some(incumbent) = complete_with_guide(problem, &root_state, w) {
                    let raw = problem.evaluate(&incumbent);
                    evaluations += 1;
                    oracle_evals += 1;
                    remaining -= 1;
                    if let Some(k) = problem.transposition_key(&incumbent) {
                        transpositions.insert(k, raw);
                    }
                    if raw > best_reward {
                        best_reward = raw;
                        best_state = Some(incumbent);
                    }
                    let norm = normalize_reward(raw, &mut reward_min, &mut reward_max);
                    backpropagate(&mut nodes, 0, norm, 1.0);
                }
            }
        }
        while remaining > 0 {
            let round = batch.min(remaining);
            remaining -= round;
            let mut pending: Vec<PendingRollout<P::State>> = Vec::with_capacity(round);
            let mut fresh: Vec<P::State> = Vec::with_capacity(round);
            // Terminals already scheduled this round, by transposition key.
            let mut round_index: HashMap<u64, usize> = HashMap::new();
            for _ in 0..round {
                let leaf = select_and_expand(problem, &mut nodes, self.config.exploration);
                // Virtual loss: visits go up with no value, discouraging
                // the next in-round selection from piling onto this path.
                apply_virtual_loss(&mut nodes, leaf, vl);
                // Rollout into the shared buffer. Warm start, part two:
                // guided depths follow the incumbent action with
                // probability `bias` instead of sampling uniformly.
                sim.clone_from(&nodes[leaf].state);
                let mut depth = nodes[leaf].depth;
                loop {
                    let k = problem.action_count(&sim);
                    if k == 0 {
                        break;
                    }
                    let a = match warm
                        .and_then(|w| w.guide.get(depth).copied().flatten().map(|g| (g, w.bias)))
                    {
                        Some((g, bias)) if g < k && rng.gen_bool(bias) => g,
                        _ => rng.gen_range(0..k),
                    };
                    problem.apply_in_place(&mut sim, a);
                    depth += 1;
                }
                let key = problem.transposition_key(&sim);
                let state = match key {
                    Some(k) => {
                        if let Some(&r) = transpositions.get(&k) {
                            PendingState::Cached { state: sim.clone(), reward: r }
                        } else if let Some(&idx) = round_index.get(&k) {
                            PendingState::Fresh(idx)
                        } else {
                            round_index.insert(k, fresh.len());
                            fresh.push(sim.clone());
                            PendingState::Fresh(fresh.len() - 1)
                        }
                    }
                    None => {
                        fresh.push(sim.clone());
                        PendingState::Fresh(fresh.len() - 1)
                    }
                };
                pending.push(PendingRollout { leaf, state, key });
            }
            // One oracle call for everything the caches could not answer.
            let fresh_rewards =
                if fresh.is_empty() { Vec::new() } else { problem.evaluate_batch(&fresh) };
            assert_eq!(
                fresh_rewards.len(),
                fresh.len(),
                "evaluate_batch must return one reward per state"
            );
            oracle_evals += fresh.len();
            cache_hits += round - fresh.len();
            // Revert virtual losses, then backpropagate the real rewards in
            // collection order (identical statistics to the sequential loop
            // at K = 1).
            for p in &pending {
                revert_virtual_loss(&mut nodes, p.leaf, vl);
            }
            for p in pending {
                let raw = match &p.state {
                    PendingState::Cached { reward, .. } => *reward,
                    PendingState::Fresh(idx) => {
                        let r = fresh_rewards[*idx];
                        if let Some(k) = p.key {
                            transpositions.insert(k, r);
                        }
                        r
                    }
                };
                evaluations += 1;
                if raw > best_reward {
                    best_reward = raw;
                    best_state = Some(match p.state {
                        PendingState::Cached { state, .. } => state,
                        PendingState::Fresh(idx) => fresh[idx].clone(),
                    });
                }
                let norm = normalize_reward(raw, &mut reward_min, &mut reward_max);
                backpropagate(&mut nodes, p.leaf, norm, 1.0);
            }
        }

        SearchResult {
            best_state: best_state.unwrap_or(root_state),
            best_reward,
            evaluations,
            oracle_evals,
            cache_hits,
        }
    }
}

/// UCT descent while fully expanded and non-terminal, then one-action
/// expansion; returns the leaf to roll out from.
fn select_and_expand<P: DecisionProblem>(
    problem: &P,
    nodes: &mut Vec<Node<P::State>>,
    exploration: f64,
) -> usize {
    let mut cur = 0usize;
    loop {
        let n = &nodes[cur];
        if n.action_count == 0 || n.next_action < n.action_count {
            break;
        }
        let ln = n.visits.max(1.0).ln();
        let mut best_child = n.children[0];
        let mut best_ucb = f64::NEG_INFINITY;
        for &c in &n.children {
            let ch = &nodes[c];
            let mean = if ch.visits > 0.0 { ch.value / ch.visits } else { 0.5 };
            let ucb = mean + exploration * (ln / ch.visits.max(1e-9)).sqrt();
            if ucb > best_ucb {
                best_ucb = ucb;
                best_child = c;
            }
        }
        cur = best_child;
    }
    if nodes[cur].action_count > 0 {
        let a = nodes[cur].next_action;
        nodes[cur].next_action += 1;
        let child_state = problem.apply(&nodes[cur].state, a);
        let child_actions = problem.action_count(&child_state);
        let child = Node {
            state: child_state,
            parent: Some(cur),
            children: Vec::new(),
            next_action: 0,
            action_count: child_actions,
            depth: nodes[cur].depth + 1,
            visits: 0.0,
            value: 0.0,
        };
        nodes.push(child);
        let id = nodes.len() - 1;
        nodes[cur].children.push(id);
        id
    } else {
        cur
    }
}

/// Replays the warm-start guide from `root` to a terminal state, or `None`
/// when a depth is unguided or its action is out of range (the guide no
/// longer matches the problem's shape).
fn complete_with_guide<P: DecisionProblem>(
    problem: &P,
    root: &P::State,
    warm: &WarmStart,
) -> Option<P::State> {
    let mut state = root.clone();
    let mut depth = 0usize;
    loop {
        let k = problem.action_count(&state);
        if k == 0 {
            return Some(state);
        }
        match warm.guide.get(depth).copied().flatten() {
            Some(a) if a < k => problem.apply_in_place(&mut state, a),
            _ => return None,
        }
        depth += 1;
    }
}

/// Folds a raw reward into the running min/max and returns its min-max
/// normalization (disqualified rewards normalize to 0).
fn normalize_reward(raw: f64, reward_min: &mut f64, reward_max: &mut f64) -> f64 {
    let clamped = if raw.is_finite() { raw } else { reward_min.min(0.0) };
    if clamped.is_finite() {
        *reward_min = reward_min.min(clamped);
        *reward_max = reward_max.max(clamped);
    }
    let span = (*reward_max - *reward_min).max(1e-12);
    if raw.is_finite() {
        (raw - *reward_min) / span
    } else {
        0.0
    }
}

fn backpropagate<S>(nodes: &mut [Node<S>], leaf: usize, norm: f64, visits: f64) {
    let mut up = Some(leaf);
    while let Some(i) = up {
        nodes[i].visits += visits;
        nodes[i].value += norm;
        up = nodes[i].parent;
    }
}

fn apply_virtual_loss<S>(nodes: &mut [Node<S>], leaf: usize, vl: f64) {
    let mut up = Some(leaf);
    while let Some(i) = up {
        nodes[i].visits += vl;
        up = nodes[i].parent;
    }
}

fn revert_virtual_loss<S>(nodes: &mut [Node<S>], leaf: usize, vl: f64) {
    let mut up = Some(leaf);
    while let Some(i) = up {
        nodes[i].visits -= vl;
        up = nodes[i].parent;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn search_machinery_is_send() {
        // The fleet's shard-parallel executor runs one warm-started
        // search per shard on a worker thread: the search engine, its
        // config, the warm-start guide, and results must all be movable
        // across threads.
        fn assert_send<T: Send>() {}
        assert_send::<Mcts>();
        assert_send::<MctsConfig>();
        assert_send::<WarmStart>();
        assert_send::<SearchResult<Vec<usize>>>();
    }

    /// Maximize Σ bits over a fixed-length binary string.
    struct OneMax(usize);

    impl DecisionProblem for OneMax {
        type State = Vec<usize>;
        fn root(&self) -> Vec<usize> {
            Vec::new()
        }
        fn action_count(&self, s: &Vec<usize>) -> usize {
            if s.len() >= self.0 {
                0
            } else {
                2
            }
        }
        fn apply(&self, s: &Vec<usize>, a: usize) -> Vec<usize> {
            let mut t = s.clone();
            t.push(a);
            t
        }
        fn evaluate(&self, s: &Vec<usize>) -> f64 {
            s.iter().sum::<usize>() as f64
        }
    }

    /// A deceptive problem with a disqualification trap: any string
    /// containing a `2` is rejected (−∞), the rest score Σ bits.
    struct Trapped(usize);

    impl DecisionProblem for Trapped {
        type State = Vec<usize>;
        fn root(&self) -> Vec<usize> {
            Vec::new()
        }
        fn action_count(&self, s: &Vec<usize>) -> usize {
            if s.len() >= self.0 {
                0
            } else {
                3
            }
        }
        fn apply(&self, s: &Vec<usize>, a: usize) -> Vec<usize> {
            let mut t = s.clone();
            t.push(a);
            t
        }
        fn evaluate(&self, s: &Vec<usize>) -> f64 {
            if s.contains(&2) {
                f64::NEG_INFINITY
            } else {
                s.iter().sum::<usize>() as f64
            }
        }
    }

    /// OneMax with in-place application, a transposition key, and an
    /// oracle-call counter — the shape of the real mapping problem.
    struct CountedOneMax {
        len: usize,
        oracle_calls: Cell<usize>,
    }

    impl DecisionProblem for CountedOneMax {
        type State = Vec<usize>;
        fn root(&self) -> Vec<usize> {
            Vec::new()
        }
        fn action_count(&self, s: &Vec<usize>) -> usize {
            if s.len() >= self.len {
                0
            } else {
                2
            }
        }
        fn apply(&self, s: &Vec<usize>, a: usize) -> Vec<usize> {
            let mut t = s.clone();
            t.push(a);
            t
        }
        fn apply_in_place(&self, s: &mut Vec<usize>, a: usize) {
            s.push(a);
        }
        fn evaluate(&self, s: &Vec<usize>) -> f64 {
            self.oracle_calls.set(self.oracle_calls.get() + 1);
            s.iter().sum::<usize>() as f64
        }
        fn transposition_key(&self, s: &Vec<usize>) -> Option<u64> {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for &b in s {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            Some(h)
        }
    }

    #[test]
    fn finds_onemax_optimum() {
        let r = Mcts::new(MctsConfig { iterations: 600, ..Default::default() })
            .search(&OneMax(8));
        assert_eq!(r.best_reward, 8.0);
        assert_eq!(r.best_state, vec![1; 8]);
    }

    #[test]
    fn survives_disqualification_traps() {
        let r = Mcts::new(MctsConfig { iterations: 1500, seed: 1, ..Default::default() })
            .search(&Trapped(6));
        assert!(r.best_reward.is_finite(), "must find a qualified state");
        assert_eq!(r.best_reward, 6.0, "should still find the optimum");
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = MctsConfig { iterations: 300, seed: 9, ..Default::default() };
        let a = Mcts::new(cfg).search(&OneMax(6));
        let b = Mcts::new(cfg).search(&OneMax(6));
        assert_eq!(a.best_state, b.best_state);
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn budget_controls_evaluations() {
        let r = Mcts::new(MctsConfig { iterations: 123, ..Default::default() })
            .search(&OneMax(4));
        assert_eq!(r.evaluations, 123);
    }

    #[test]
    fn more_budget_no_worse() {
        let small = Mcts::new(MctsConfig { iterations: 20, seed: 3, ..Default::default() })
            .search(&OneMax(12));
        let large = Mcts::new(MctsConfig { iterations: 2_000, seed: 3, ..Default::default() })
            .search(&OneMax(12));
        assert!(large.best_reward >= small.best_reward);
    }

    #[test]
    fn handles_root_terminal() {
        let r = Mcts::new(MctsConfig { iterations: 10, ..Default::default() })
            .search(&OneMax(0));
        assert_eq!(r.best_reward, 0.0);
        assert!(r.best_state.is_empty());
    }

    #[test]
    fn batched_k1_reproduces_sequential_trajectory() {
        for seed in 0..8 {
            let cfg = MctsConfig { iterations: 400, seed, batch: 1, ..Default::default() };
            let seq = Mcts::new(cfg).search_sequential(&OneMax(10));
            let bat = Mcts::new(cfg).search(&OneMax(10));
            assert_eq!(seq.best_state, bat.best_state, "seed {seed}: states diverged");
            assert_eq!(seq.best_reward, bat.best_reward, "seed {seed}: rewards diverged");
            assert_eq!(seq.evaluations, bat.evaluations, "seed {seed}: budgets diverged");
        }
    }

    #[test]
    fn batched_k1_reproduces_sequential_on_traps() {
        for seed in [0u64, 3, 11] {
            let cfg = MctsConfig { iterations: 900, seed, batch: 1, ..Default::default() };
            let seq = Mcts::new(cfg).search_sequential(&Trapped(6));
            let bat = Mcts::new(cfg).search(&Trapped(6));
            assert_eq!(seq.best_state, bat.best_state, "seed {seed}: states diverged");
            assert_eq!(seq.best_reward, bat.best_reward);
        }
    }

    #[test]
    fn batched_deterministic_and_budgeted_at_any_k() {
        for &k in &[2usize, 8, 32] {
            let cfg = MctsConfig { iterations: 500, seed: 4, batch: k, ..Default::default() };
            let a = Mcts::new(cfg).search(&OneMax(10));
            let b = Mcts::new(cfg).search(&OneMax(10));
            assert_eq!(a.best_state, b.best_state, "K={k} must stay deterministic");
            assert_eq!(a.evaluations, 500, "K={k} must spend the exact budget");
            assert_eq!(a.best_reward, 10.0, "K={k} should still solve OneMax(10)");
        }
    }

    #[test]
    fn transposition_cache_spares_oracle_calls() {
        // A 4-bit space has only 16 terminals; a 600-iteration search must
        // revisit, and revisits must not reach the oracle.
        let p = CountedOneMax { len: 4, oracle_calls: Cell::new(0) };
        let r = Mcts::new(MctsConfig { iterations: 600, seed: 2, ..Default::default() })
            .search(&p);
        assert_eq!(r.evaluations, 600);
        assert_eq!(r.oracle_evals, p.oracle_calls.get());
        assert!(
            p.oracle_calls.get() <= 16,
            "at most one oracle call per distinct terminal, got {}",
            p.oracle_calls.get()
        );
        assert_eq!(r.cache_hits, 600 - p.oracle_calls.get());
        assert_eq!(r.best_reward, 4.0);
    }

    #[test]
    fn round_duplicates_deduplicate_before_the_oracle() {
        // A 2-bit space has 4 terminals; a 16-wide round must hit
        // duplicates within the round, and they must not reach the oracle
        // even before the transposition cache is populated.
        let p = CountedOneMax { len: 2, oracle_calls: Cell::new(0) };
        let r = Mcts::new(MctsConfig { iterations: 64, seed: 5, batch: 16, ..Default::default() })
            .search(&p);
        assert_eq!(r.evaluations, 64);
        assert!(
            p.oracle_calls.get() <= 4,
            "at most one oracle call per distinct terminal, got {}",
            p.oracle_calls.get()
        );
        assert_eq!(r.oracle_evals, p.oracle_calls.get());
        assert_eq!(r.cache_hits, 64 - p.oracle_calls.get());
        assert_eq!(r.best_reward, 2.0);
    }

    #[test]
    fn warm_start_never_regresses_the_incumbent() {
        // Give the search a strong incumbent and a starvation budget: the
        // seeded evaluation must keep the incumbent's reward as the floor.
        for seed in 0..6u64 {
            let warm = WarmStart::pinned(vec![1usize; 12], 0.9);
            let r = Mcts::new(MctsConfig { iterations: 10, seed, ..Default::default() })
                .search_warm(&OneMax(12), &warm);
            assert!(
                r.best_reward >= 12.0,
                "seed {seed}: warm search fell below the incumbent: {}",
                r.best_reward
            );
            assert_eq!(r.best_state, vec![1; 12]);
        }
    }

    #[test]
    fn warm_start_rediscovers_the_delta() {
        // Guide the first 8 depths to 1 and leave the last 4 unguided: the
        // incumbent completion is impossible (guide incomplete), but the
        // bias concentrates the budget on the open suffix.
        let mut guide: Vec<Option<usize>> = vec![Some(1); 8];
        guide.extend(std::iter::repeat_n(None, 4));
        let warm = WarmStart { guide, bias: 0.95 };
        let r = Mcts::new(MctsConfig { iterations: 200, seed: 2, ..Default::default() })
            .search_warm(&OneMax(12), &warm);
        assert_eq!(r.best_reward, 12.0, "biased search should solve the suffix");
    }

    #[test]
    fn warm_start_spends_the_same_budget() {
        let warm = WarmStart::pinned(vec![1usize; 6], 0.8);
        let r = Mcts::new(MctsConfig { iterations: 77, seed: 1, ..Default::default() })
            .search_warm(&OneMax(6), &warm);
        assert_eq!(r.evaluations, 77, "the seeded evaluation counts against the budget");
    }

    #[test]
    fn warm_start_deterministic_given_seed() {
        let warm = WarmStart::pinned(vec![1usize, 0, 1, 0, 1, 0], 0.7);
        let cfg = MctsConfig { iterations: 150, seed: 8, batch: 4, ..Default::default() };
        let a = Mcts::new(cfg).search_warm(&OneMax(6), &warm);
        let b = Mcts::new(cfg).search_warm(&OneMax(6), &warm);
        assert_eq!(a.best_state, b.best_state);
        assert_eq!(a.best_reward, b.best_reward);
    }

    #[test]
    fn warm_start_ignores_out_of_range_guides() {
        // A guide action outside the action space must not be followed (or
        // crash) — the rollout falls back to uniform sampling.
        let warm = WarmStart::pinned(vec![7usize; 6], 1.0);
        let r = Mcts::new(MctsConfig { iterations: 300, seed: 3, ..Default::default() })
            .search_warm(&OneMax(6), &warm);
        assert_eq!(r.best_reward, 6.0);
    }

    #[test]
    fn virtual_loss_diversifies_rounds_without_breaking_search() {
        let cfg = MctsConfig {
            iterations: 800,
            seed: 6,
            batch: 16,
            virtual_loss: 2.0,
            ..Default::default()
        };
        let r = Mcts::new(cfg).search(&Trapped(6));
        assert_eq!(r.best_reward, 6.0, "batched search must still dodge the traps");
    }
}
