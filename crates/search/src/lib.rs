//! Monte-Carlo Tree Search (UCT) over sequential decision problems.
//!
//! RankMap explores the mapping space — one component choice per
//! schedulable unit — with MCTS (§IV-E): selection and expansion by upper
//! confidence bounds, simulation by random completion of the partial
//! mapping, and the trained throughput estimator as the terminal reward.
//! This crate hosts the search machinery, generic over a
//! [`DecisionProblem`] so the same code drives RankMap, OmniBoost, and the
//! toy problems in the tests.
//!
//! # Example
//!
//! ```
//! use rankmap_search::{DecisionProblem, Mcts, MctsConfig};
//!
//! /// Maximize the number of 1-bits in a 6-bit string.
//! struct OneMax;
//! impl DecisionProblem for OneMax {
//!     type State = Vec<usize>;
//!     fn root(&self) -> Vec<usize> { Vec::new() }
//!     fn action_count(&self, s: &Vec<usize>) -> usize {
//!         if s.len() >= 6 { 0 } else { 2 }
//!     }
//!     fn apply(&self, s: &Vec<usize>, a: usize) -> Vec<usize> {
//!         let mut t = s.clone();
//!         t.push(a);
//!         t
//!     }
//!     fn evaluate(&self, s: &Vec<usize>) -> f64 {
//!         s.iter().sum::<usize>() as f64
//!     }
//! }
//!
//! let result = Mcts::new(MctsConfig { iterations: 400, ..Default::default() })
//!     .search(&OneMax);
//! assert_eq!(result.best_state, vec![1, 1, 1, 1, 1, 1]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A finite-horizon sequential decision problem with a terminal reward.
pub trait DecisionProblem {
    /// Search state (a partial decision vector).
    type State: Clone;

    /// The empty/initial state.
    fn root(&self) -> Self::State;

    /// Number of actions available in `state`; `0` marks a terminal state.
    fn action_count(&self, state: &Self::State) -> usize;

    /// Applies action `a` (in `0..action_count`) to a state.
    fn apply(&self, state: &Self::State, a: usize) -> Self::State;

    /// Reward of a terminal state (may be `f64::NEG_INFINITY` for
    /// disqualified states, per RankMap's starvation threshold).
    fn evaluate(&self, state: &Self::State) -> f64;
}

/// MCTS hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MctsConfig {
    /// Search budget: number of select→expand→simulate→backpropagate
    /// iterations ("a predefined computational budget", §IV-E).
    pub iterations: usize,
    /// UCT exploration constant.
    pub exploration: f64,
    /// RNG seed (search is deterministic given the seed).
    pub seed: u64,
}

impl Default for MctsConfig {
    fn default() -> Self {
        Self { iterations: 2_000, exploration: 1.3, seed: 0 }
    }
}

/// Outcome of a search.
#[derive(Debug, Clone)]
pub struct SearchResult<S> {
    /// Best terminal state ever simulated.
    pub best_state: S,
    /// Its raw reward.
    pub best_reward: f64,
    /// Number of terminal evaluations performed.
    pub evaluations: usize,
}

struct Node<S> {
    state: S,
    parent: Option<usize>,
    children: Vec<usize>,
    /// Next untried action index (actions expand in order; rollouts cover
    /// the rest stochastically).
    next_action: usize,
    action_count: usize,
    visits: f64,
    /// Sum of min-max normalized rewards.
    value: f64,
}

/// UCT Monte-Carlo Tree Search.
#[derive(Debug, Clone)]
pub struct Mcts {
    config: MctsConfig,
}

impl Mcts {
    /// Creates a search instance.
    pub fn new(config: MctsConfig) -> Self {
        Self { config }
    }

    /// Runs the search and returns the best terminal state found.
    ///
    /// Rewards of `NEG_INFINITY` (disqualified mappings) are clamped to
    /// the running minimum for tree statistics, so the tree steers away
    /// from them without poisoning the averages.
    pub fn search<P: DecisionProblem>(&self, problem: &P) -> SearchResult<P::State> {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let root_state = problem.root();
        let root_actions = problem.action_count(&root_state);
        let mut nodes: Vec<Node<P::State>> = vec![Node {
            state: root_state.clone(),
            parent: None,
            children: Vec::new(),
            next_action: 0,
            action_count: root_actions,
            visits: 0.0,
            value: 0.0,
        }];
        let mut best_state = None;
        let mut best_reward = f64::NEG_INFINITY;
        let mut reward_min = f64::INFINITY;
        let mut reward_max = f64::NEG_INFINITY;
        let mut evaluations = 0;

        for _ in 0..self.config.iterations {
            // Selection: descend while fully expanded and non-terminal.
            let mut cur = 0usize;
            loop {
                let n = &nodes[cur];
                if n.action_count == 0 || n.next_action < n.action_count {
                    break;
                }
                let ln = n.visits.max(1.0).ln();
                let mut best_child = n.children[0];
                let mut best_ucb = f64::NEG_INFINITY;
                for &c in &n.children {
                    let ch = &nodes[c];
                    let mean = if ch.visits > 0.0 { ch.value / ch.visits } else { 0.5 };
                    let ucb = mean
                        + self.config.exploration * (ln / ch.visits.max(1e-9)).sqrt();
                    if ucb > best_ucb {
                        best_ucb = ucb;
                        best_child = c;
                    }
                }
                cur = best_child;
            }
            // Expansion: one untried action (if non-terminal).
            let leaf = if nodes[cur].action_count > 0 {
                let a = nodes[cur].next_action;
                nodes[cur].next_action += 1;
                let child_state = problem.apply(&nodes[cur].state, a);
                let child_actions = problem.action_count(&child_state);
                let child = Node {
                    state: child_state,
                    parent: Some(cur),
                    children: Vec::new(),
                    next_action: 0,
                    action_count: child_actions,
                    visits: 0.0,
                    value: 0.0,
                };
                nodes.push(child);
                let id = nodes.len() - 1;
                nodes[cur].children.push(id);
                id
            } else {
                cur
            };
            // Simulation: random completion from the leaf.
            let mut sim = nodes[leaf].state.clone();
            loop {
                let k = problem.action_count(&sim);
                if k == 0 {
                    break;
                }
                sim = problem.apply(&sim, rng.gen_range(0..k));
            }
            let raw = problem.evaluate(&sim);
            evaluations += 1;
            if raw > best_reward {
                best_reward = raw;
                best_state = Some(sim);
            }
            // Normalize for backpropagation.
            let clamped = if raw.is_finite() { raw } else { reward_min.min(0.0) };
            if clamped.is_finite() {
                reward_min = reward_min.min(clamped);
                reward_max = reward_max.max(clamped);
            }
            let span = (reward_max - reward_min).max(1e-12);
            let norm = if raw.is_finite() { (raw - reward_min) / span } else { 0.0 };
            // Backpropagation.
            let mut up = Some(leaf);
            while let Some(i) = up {
                nodes[i].visits += 1.0;
                nodes[i].value += norm;
                up = nodes[i].parent;
            }
        }

        SearchResult {
            best_state: best_state.unwrap_or(root_state),
            best_reward,
            evaluations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Maximize Σ bits over a fixed-length binary string.
    struct OneMax(usize);

    impl DecisionProblem for OneMax {
        type State = Vec<usize>;
        fn root(&self) -> Vec<usize> {
            Vec::new()
        }
        fn action_count(&self, s: &Vec<usize>) -> usize {
            if s.len() >= self.0 {
                0
            } else {
                2
            }
        }
        fn apply(&self, s: &Vec<usize>, a: usize) -> Vec<usize> {
            let mut t = s.clone();
            t.push(a);
            t
        }
        fn evaluate(&self, s: &Vec<usize>) -> f64 {
            s.iter().sum::<usize>() as f64
        }
    }

    /// A deceptive problem with a disqualification trap: any string
    /// containing a `2` is rejected (−∞), the rest score Σ bits.
    struct Trapped(usize);

    impl DecisionProblem for Trapped {
        type State = Vec<usize>;
        fn root(&self) -> Vec<usize> {
            Vec::new()
        }
        fn action_count(&self, s: &Vec<usize>) -> usize {
            if s.len() >= self.0 {
                0
            } else {
                3
            }
        }
        fn apply(&self, s: &Vec<usize>, a: usize) -> Vec<usize> {
            let mut t = s.clone();
            t.push(a);
            t
        }
        fn evaluate(&self, s: &Vec<usize>) -> f64 {
            if s.contains(&2) {
                f64::NEG_INFINITY
            } else {
                s.iter().sum::<usize>() as f64
            }
        }
    }

    #[test]
    fn finds_onemax_optimum() {
        let r = Mcts::new(MctsConfig { iterations: 600, ..Default::default() })
            .search(&OneMax(8));
        assert_eq!(r.best_reward, 8.0);
        assert_eq!(r.best_state, vec![1; 8]);
    }

    #[test]
    fn survives_disqualification_traps() {
        let r = Mcts::new(MctsConfig { iterations: 1500, seed: 1, ..Default::default() })
            .search(&Trapped(6));
        assert!(r.best_reward.is_finite(), "must find a qualified state");
        assert_eq!(r.best_reward, 6.0, "should still find the optimum");
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = MctsConfig { iterations: 300, seed: 9, ..Default::default() };
        let a = Mcts::new(cfg).search(&OneMax(6));
        let b = Mcts::new(cfg).search(&OneMax(6));
        assert_eq!(a.best_state, b.best_state);
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn budget_controls_evaluations() {
        let r = Mcts::new(MctsConfig { iterations: 123, ..Default::default() })
            .search(&OneMax(4));
        assert_eq!(r.evaluations, 123);
    }

    #[test]
    fn more_budget_no_worse() {
        let small = Mcts::new(MctsConfig { iterations: 20, seed: 3, ..Default::default() })
            .search(&OneMax(12));
        let large = Mcts::new(MctsConfig { iterations: 2_000, seed: 3, ..Default::default() })
            .search(&OneMax(12));
        assert!(large.best_reward >= small.best_reward);
    }

    #[test]
    fn handles_root_terminal() {
        let r = Mcts::new(MctsConfig { iterations: 10, ..Default::default() })
            .search(&OneMax(0));
        assert_eq!(r.best_reward, 0.0);
        assert!(r.best_state.is_empty());
    }
}
