//! Computing components (processors) of a heterogeneous platform.

use std::fmt;

/// Index of a computing component within a [`crate::Platform`].
///
/// A thin newtype over `usize` so that mappings cannot accidentally confuse
/// component indices with unit or DNN indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ComponentId(usize);

impl ComponentId {
    /// Wraps a raw index.
    pub const fn new(index: usize) -> Self {
        Self(index)
    }

    /// The raw index into [`crate::Platform::components`].
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl From<usize> for ComponentId {
    fn from(index: usize) -> Self {
        Self(index)
    }
}

/// Broad class of a computing component.
///
/// The reproduction targets the paper's three-way platform; `Npu` is
/// included so users can describe richer devices (e.g. RK3588's NPU) even
/// though the paper does not use it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ComponentKind {
    /// An embedded GPU (e.g. Mali-G610), high peak throughput, high
    /// per-kernel dispatch overhead.
    Gpu,
    /// The big CPU cluster of a big.LITTLE SoC (e.g. 4× Cortex-A76).
    BigCpu,
    /// The LITTLE CPU cluster (e.g. 4× Cortex-A55).
    LittleCpu,
    /// A neural accelerator. Not used by the paper's evaluation but
    /// supported by the platform description.
    Npu,
}

impl fmt::Display for ComponentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ComponentKind::Gpu => "GPU",
            ComponentKind::BigCpu => "big CPU",
            ComponentKind::LittleCpu => "LITTLE CPU",
            ComponentKind::Npu => "NPU",
        };
        f.write_str(s)
    }
}

/// A single computing component and the parameters of its roofline model.
///
/// The cost model in `rankmap-sim` computes a layer's execution time as
/// `max(flops / attained_gflops, bytes / mem_bw) + kernel_overhead`, where
/// `attained_gflops = peak_gflops * base_efficiency * utilization(layer)`
/// and `utilization` ramps from 0 to 1 as the layer grows past
/// [`Component::saturation_mflops`]. Small kernels therefore badly
/// under-utilize a GPU while barely denting a CPU — the effect that makes
/// fine-grained partitioning interesting in the first place.
#[derive(Debug, Clone, PartialEq)]
pub struct Component {
    name: String,
    kind: ComponentKind,
    /// Peak compute throughput of the whole component, in GFLOPS.
    pub peak_gflops: f64,
    /// Sustained memory bandwidth this component can draw alone, in GB/s.
    pub mem_bw_gbps: f64,
    /// Fixed per-kernel dispatch/launch overhead, in microseconds.
    pub kernel_overhead_us: f64,
    /// Fraction of peak attainable on large, GEMM-like kernels (0..=1).
    pub base_efficiency: f64,
    /// Kernel size (in MFLOPs) at which utilization reaches 50%.
    pub saturation_mflops: f64,
}

impl Component {
    /// Creates a component with placeholder capability numbers; chain the
    /// `with_*` builders to configure it.
    pub fn new(name: impl Into<String>, kind: ComponentKind) -> Self {
        Self {
            name: name.into(),
            kind,
            peak_gflops: 1.0,
            mem_bw_gbps: 1.0,
            kernel_overhead_us: 1.0,
            base_efficiency: 0.5,
            saturation_mflops: 1.0,
        }
    }

    /// Sets the peak compute throughput in GFLOPS.
    #[must_use]
    pub fn with_peak_gflops(mut self, v: f64) -> Self {
        assert!(v > 0.0, "peak GFLOPS must be positive");
        self.peak_gflops = v;
        self
    }

    /// Sets the sustained memory bandwidth in GB/s.
    #[must_use]
    pub fn with_mem_bw_gbps(mut self, v: f64) -> Self {
        assert!(v > 0.0, "memory bandwidth must be positive");
        self.mem_bw_gbps = v;
        self
    }

    /// Sets the fixed per-kernel overhead in microseconds.
    #[must_use]
    pub fn with_kernel_overhead_us(mut self, v: f64) -> Self {
        assert!(v >= 0.0, "kernel overhead cannot be negative");
        self.kernel_overhead_us = v;
        self
    }

    /// Sets the attainable fraction of peak on large kernels.
    #[must_use]
    pub fn with_base_efficiency(mut self, v: f64) -> Self {
        assert!(v > 0.0 && v <= 1.0, "efficiency must be in (0, 1]");
        self.base_efficiency = v;
        self
    }

    /// Sets the kernel size (MFLOPs) at which utilization reaches 50%.
    #[must_use]
    pub fn with_saturation_mflops(mut self, v: f64) -> Self {
        assert!(v > 0.0, "saturation size must be positive");
        self.saturation_mflops = v;
        self
    }

    /// Component name (e.g. `"mali-g610"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Broad component class.
    pub fn kind(&self) -> ComponentKind {
        self.kind
    }

    /// Utilization factor in `(0, 1)` for a kernel of `flops` floating-point
    /// operations: `u = flops / (flops + saturation)`.
    ///
    /// Monotonically increasing in `flops`; reaches exactly 0.5 at
    /// [`Component::saturation_mflops`].
    pub fn utilization(&self, flops: f64) -> f64 {
        let sat = self.saturation_mflops * 1.0e6;
        if flops <= 0.0 {
            return 0.0;
        }
        flops / (flops + sat)
    }

    /// Attained GFLOPS for a kernel of the given size.
    pub fn attained_gflops(&self, flops: f64) -> f64 {
        self.peak_gflops * self.base_efficiency * self.utilization(flops)
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}): {:.0} GFLOPS peak, {:.1} GB/s, {:.0} us/kernel",
            self.name, self.kind, self.peak_gflops, self.mem_bw_gbps, self.kernel_overhead_us
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu() -> Component {
        Component::new("g", ComponentKind::Gpu)
            .with_peak_gflops(450.0)
            .with_saturation_mflops(28.0)
            .with_base_efficiency(0.36)
    }

    #[test]
    fn utilization_is_monotone() {
        let c = gpu();
        let mut prev = 0.0;
        for flops in [1e3, 1e5, 1e6, 1e7, 1e8, 1e9] {
            let u = c.utilization(flops);
            assert!(u > prev, "utilization must grow with kernel size");
            assert!(u < 1.0);
            prev = u;
        }
    }

    #[test]
    fn utilization_half_at_saturation() {
        let c = gpu();
        let u = c.utilization(28.0e6);
        assert!((u - 0.5).abs() < 1e-12);
    }

    #[test]
    fn utilization_zero_for_zero_flops() {
        assert_eq!(gpu().utilization(0.0), 0.0);
    }

    #[test]
    fn attained_below_peak() {
        let c = gpu();
        assert!(c.attained_gflops(1e9) < c.peak_gflops);
    }

    #[test]
    fn component_id_display() {
        assert_eq!(ComponentId::new(2).to_string(), "c2");
        assert_eq!(ComponentId::from(5).index(), 5);
    }

    #[test]
    #[should_panic(expected = "efficiency")]
    fn invalid_efficiency_panics() {
        let _ = Component::new("x", ComponentKind::Npu).with_base_efficiency(1.5);
    }

    #[test]
    fn kind_display_names() {
        assert_eq!(ComponentKind::Gpu.to_string(), "GPU");
        assert_eq!(ComponentKind::BigCpu.to_string(), "big CPU");
        assert_eq!(ComponentKind::LittleCpu.to_string(), "LITTLE CPU");
        assert_eq!(ComponentKind::Npu.to_string(), "NPU");
    }
}
