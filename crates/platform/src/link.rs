//! Inter-component transfer links.

use std::fmt;

/// Transfer characteristics between two components of the platform.
///
/// On shared-memory SoCs like the RK3588S, moving an activation tensor
/// between a pipeline stage on the GPU and one on a CPU cluster means a
/// write-back plus a read through DRAM and a synchronization point in the
/// runtime. We model that as `latency + bytes / bandwidth`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    bandwidth_gbps: f64,
    latency_us: f64,
}

impl Link {
    /// Creates a link with the given bandwidth (GB/s) and fixed latency (µs).
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_gbps` is not positive or `latency_us` is
    /// negative.
    pub fn new(bandwidth_gbps: f64, latency_us: f64) -> Self {
        assert!(bandwidth_gbps > 0.0, "link bandwidth must be positive");
        assert!(latency_us >= 0.0, "link latency cannot be negative");
        Self { bandwidth_gbps, latency_us }
    }

    /// Usable bandwidth in GB/s.
    pub fn bandwidth_gbps(self) -> f64 {
        self.bandwidth_gbps
    }

    /// Fixed per-transfer latency in microseconds.
    pub fn latency_us(self) -> f64 {
        self.latency_us
    }

    /// Time in seconds to move `bytes` across this link.
    pub fn transfer_seconds(self, bytes: f64) -> f64 {
        self.latency_us * 1.0e-6 + bytes / (self.bandwidth_gbps * 1.0e9)
    }
}

impl fmt::Display for Link {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} GB/s + {:.0} us", self.bandwidth_gbps, self.latency_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_has_latency_floor() {
        let l = Link::new(8.0, 250.0);
        assert!(l.transfer_seconds(0.0) >= 250.0e-6);
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let l = Link::new(8.0, 0.0);
        let t1 = l.transfer_seconds(8.0e9);
        assert!((t1 - 1.0).abs() < 1e-9, "8 GB over 8 GB/s should take 1 s");
        assert!(l.transfer_seconds(16.0e9) > t1);
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_panics() {
        let _ = Link::new(0.0, 1.0);
    }
}
