//! Heterogeneous embedded platform descriptions for RankMap.
//!
//! This crate models the *hardware side* of the RankMap reproduction: the
//! computing components of a heterogeneous embedded device (big CPU cluster,
//! LITTLE CPU cluster, GPU), their raw capabilities, and the interconnect
//! used when a DNN pipeline crosses component boundaries.
//!
//! The flagship preset is [`Platform::orange_pi_5`], a calibrated stand-in
//! for the Orange Pi 5 board used in the paper (RK3588S: quad Cortex-A76 @
//! 2.4 GHz, quad Cortex-A55 @ 1.8 GHz, Mali-G610 GPU). The numbers are not a
//! cycle-accurate datasheet transcription; they are chosen so that the
//! downstream cost model in `rankmap-sim` lands close to the single-DNN
//! throughputs the paper reports (e.g. ResNet-50 ≈ 20 inf/s alone on the
//! GPU).
//!
//! # Example
//!
//! ```
//! use rankmap_platform::{Platform, ComponentKind};
//!
//! let platform = Platform::orange_pi_5();
//! assert_eq!(platform.component_count(), 3);
//! let gpu = platform.component_of_kind(ComponentKind::Gpu).unwrap();
//! assert!(gpu.peak_gflops > platform.components()[1].peak_gflops);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod component;
pub mod link;
pub mod preset;

pub use component::{Component, ComponentId, ComponentKind};
pub use link::Link;
pub use preset::PlatformBuilder;

use std::fmt;

/// A heterogeneous embedded platform: a set of computing components plus the
/// shared-memory interconnect between them.
///
/// Components are indexed by [`ComponentId`] in the order they were added.
/// The platform also carries device-global resources that are shared by all
/// components and matter for multi-DNN contention: total DRAM bandwidth and
/// the per-component cache capacity that drives cache-sensitivity effects.
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    name: String,
    components: Vec<Component>,
    /// Inter-component transfer characteristics (symmetric, via shared DRAM).
    link: Link,
    /// Total DRAM bandwidth shared by every component, in GB/s.
    dram_bw_gbps: f64,
    /// Effective last-level cache / local-buffer capacity per component id,
    /// in bytes. Used by the contention model for cache-sensitivity.
    cache_bytes: Vec<f64>,
}

impl Platform {
    /// Creates a platform from parts. Prefer [`PlatformBuilder`] or a preset.
    ///
    /// # Panics
    ///
    /// Panics if `components` is empty or if `cache_bytes` length differs
    /// from the component count.
    pub fn new(
        name: impl Into<String>,
        components: Vec<Component>,
        link: Link,
        dram_bw_gbps: f64,
        cache_bytes: Vec<f64>,
    ) -> Self {
        assert!(!components.is_empty(), "platform needs at least one component");
        assert_eq!(
            components.len(),
            cache_bytes.len(),
            "cache_bytes must have one entry per component"
        );
        assert!(dram_bw_gbps > 0.0, "DRAM bandwidth must be positive");
        Self { name: name.into(), components, link, dram_bw_gbps, cache_bytes }
    }

    /// The calibrated Orange Pi 5 preset used throughout the reproduction.
    ///
    /// Component order (and therefore [`ComponentId`] values) is fixed:
    /// `0` = GPU (Mali-G610), `1` = big CPU cluster (4×A76), `2` = LITTLE
    /// CPU cluster (4×A55). GPU first matches the paper's convention of the
    /// GPU being the default, highest-performing component.
    pub fn orange_pi_5() -> Self {
        PlatformBuilder::new("orange-pi-5")
            .component(
                Component::new("mali-g610", ComponentKind::Gpu)
                    .with_peak_gflops(450.0)
                    .with_mem_bw_gbps(14.0)
                    .with_kernel_overhead_us(110.0)
                    .with_base_efficiency(0.36)
                    .with_saturation_mflops(28.0),
            )
            .component(
                Component::new("cortex-a76x4", ComponentKind::BigCpu)
                    .with_peak_gflops(150.0)
                    .with_mem_bw_gbps(10.0)
                    .with_kernel_overhead_us(9.0)
                    .with_base_efficiency(0.55)
                    .with_saturation_mflops(2.0),
            )
            .component(
                Component::new("cortex-a55x4", ComponentKind::LittleCpu)
                    .with_peak_gflops(57.0)
                    .with_mem_bw_gbps(5.5)
                    .with_kernel_overhead_us(7.0)
                    .with_base_efficiency(0.45)
                    .with_saturation_mflops(1.0),
            )
            .link(Link::new(8.0, 250.0))
            .dram_bw_gbps(17.0)
            // "Cache" here is the effective capacity each component can keep
            // hot before thrashing shared DRAM: LLC + streaming locality, not
            // just the SRAM size. The knee of the contention model.
            .cache_bytes(vec![48.0e6, 16.0e6, 8.0e6])
            .build()
    }

    /// A calibrated Jetson-class preset: a second board profile for
    /// heterogeneous fleets (see `docs/heterogeneous.md`).
    ///
    /// Modeled on a Jetson Orin NX-class module: an Ampere-generation
    /// embedded GPU, a DLA-style neural accelerator, and two Cortex-A78AE
    /// CPU clusters (4 + 2 cores). Component order (and therefore
    /// [`ComponentId`] values) is fixed: `0` = GPU, `1` = DLA (NPU),
    /// `2` = big CPU cluster, `3` = small CPU cluster. Note the component
    /// *count* (4) differs from [`Platform::orange_pi_5`]'s 3 — mappings
    /// and plan caches are not portable between the two (see
    /// [`Platform::signature`]).
    ///
    /// As with the Orange Pi preset, the numbers are not a datasheet
    /// transcription; they are chosen so the downstream cost model puts
    /// the board a consistent ~2–4× ahead of the Orange Pi 5 on
    /// GPU-friendly DNNs, with a DLA that shines on large regular convs
    /// but pays heavy dispatch overhead on small kernels.
    pub fn jetson_orin_nx() -> Self {
        PlatformBuilder::new("jetson-orin-nx")
            .component(
                Component::new("ampere-gpu", ComponentKind::Gpu)
                    .with_peak_gflops(1800.0)
                    .with_mem_bw_gbps(45.0)
                    .with_kernel_overhead_us(60.0)
                    .with_base_efficiency(0.42)
                    .with_saturation_mflops(40.0),
            )
            .component(
                Component::new("dla", ComponentKind::Npu)
                    .with_peak_gflops(900.0)
                    .with_mem_bw_gbps(25.0)
                    .with_kernel_overhead_us(180.0)
                    .with_base_efficiency(0.5)
                    .with_saturation_mflops(60.0),
            )
            .component(
                Component::new("cortex-a78x4", ComponentKind::BigCpu)
                    .with_peak_gflops(220.0)
                    .with_mem_bw_gbps(18.0)
                    .with_kernel_overhead_us(7.0)
                    .with_base_efficiency(0.55)
                    .with_saturation_mflops(2.0),
            )
            .component(
                Component::new("cortex-a78x2", ComponentKind::LittleCpu)
                    .with_peak_gflops(110.0)
                    .with_mem_bw_gbps(12.0)
                    .with_kernel_overhead_us(7.0)
                    .with_base_efficiency(0.55)
                    .with_saturation_mflops(2.0),
            )
            .link(Link::new(20.0, 150.0))
            .dram_bw_gbps(60.0)
            .cache_bytes(vec![96.0e6, 32.0e6, 24.0e6, 12.0e6])
            .build()
    }

    /// A degenerate single-CPU platform, handy for unit tests.
    pub fn single_cpu() -> Self {
        PlatformBuilder::new("single-cpu")
            .component(
                Component::new("cpu", ComponentKind::BigCpu)
                    .with_peak_gflops(100.0)
                    .with_mem_bw_gbps(10.0)
                    .with_kernel_overhead_us(10.0)
                    .with_base_efficiency(0.5)
                    .with_saturation_mflops(2.0),
            )
            .link(Link::new(8.0, 100.0))
            .dram_bw_gbps(12.0)
            .cache_bytes(vec![2.0e6])
            .build()
    }

    /// A symmetric dual-CPU platform, handy for tests that need exactly two
    /// identical components.
    pub fn dual_cpu() -> Self {
        let cpu = |name: &str| {
            Component::new(name, ComponentKind::BigCpu)
                .with_peak_gflops(100.0)
                .with_mem_bw_gbps(10.0)
                .with_kernel_overhead_us(10.0)
                .with_base_efficiency(0.5)
                .with_saturation_mflops(2.0)
        };
        PlatformBuilder::new("dual-cpu")
            .component(cpu("cpu0"))
            .component(cpu("cpu1"))
            .link(Link::new(8.0, 100.0))
            .dram_bw_gbps(20.0)
            .cache_bytes(vec![2.0e6, 2.0e6])
            .build()
    }

    /// Platform name (e.g. `"orange-pi-5"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// A stable identity string for this exact platform configuration:
    /// `name:component_count:hex-digest`, where the digest hashes every
    /// capability number (component rooflines, link, DRAM bandwidth,
    /// cache sizes) as raw IEEE-754 bits.
    ///
    /// Equal signatures guarantee the boards price every mapping
    /// identically (the digest also pins the name, so identically-priced
    /// boards under different names still get distinct signatures).
    /// Artifacts recorded against one board (plan-cache snapshots) use it
    /// to refuse loading onto a different one instead of silently serving
    /// stale numbers.
    ///
    /// ```
    /// use rankmap_platform::Platform;
    /// assert_eq!(Platform::orange_pi_5().signature(), Platform::orange_pi_5().signature());
    /// assert_ne!(Platform::orange_pi_5().signature(), Platform::jetson_orin_nx().signature());
    /// ```
    pub fn signature(&self) -> String {
        // FNV-1a over the numbers that feed the cost model.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        eat(self.name.as_bytes());
        for c in &self.components {
            eat(c.name().as_bytes());
            eat(&[c.kind() as u8]);
            for v in [
                c.peak_gflops,
                c.mem_bw_gbps,
                c.kernel_overhead_us,
                c.base_efficiency,
                c.saturation_mflops,
            ] {
                eat(&v.to_bits().to_le_bytes());
            }
        }
        for v in [self.link.bandwidth_gbps(), self.link.latency_us(), self.dram_bw_gbps] {
            eat(&v.to_bits().to_le_bytes());
        }
        for v in &self.cache_bytes {
            eat(&v.to_bits().to_le_bytes());
        }
        format!("{}:{}:{:016x}", self.name, self.components.len(), h)
    }

    /// A uniformly speed-scaled clone of this platform: every rate
    /// (compute peaks, memory bandwidths, DRAM, link bandwidth) is
    /// multiplied by `factor` and every fixed overhead (kernel dispatch,
    /// link latency) divided by it, while the dimensionless knobs
    /// (efficiencies, saturation sizes, cache capacities) stay put.
    ///
    /// Because the cost model is a sum of `work / rate + overhead` terms,
    /// a `scaled(2.0)` board executes every mapping exactly twice as fast
    /// — and its isolated ideal rates double too, so *potential*
    /// (throughput / ideal) is invariant. That invariance is what the
    /// fleet's normalized-potential router relies on and what the
    /// heterogeneity test-suite asserts (see `docs/heterogeneous.md`).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not a positive finite number.
    pub fn scaled(&self, factor: f64) -> Platform {
        assert!(
            factor.is_finite() && factor > 0.0,
            "speed factor must be positive and finite"
        );
        let components = self
            .components
            .iter()
            .map(|c| {
                Component::new(c.name(), c.kind())
                    .with_peak_gflops(c.peak_gflops * factor)
                    .with_mem_bw_gbps(c.mem_bw_gbps * factor)
                    .with_kernel_overhead_us(c.kernel_overhead_us / factor)
                    .with_base_efficiency(c.base_efficiency)
                    .with_saturation_mflops(c.saturation_mflops)
            })
            .collect();
        Platform::new(
            format!("{}-x{factor}", self.name),
            components,
            Link::new(self.link.bandwidth_gbps() * factor, self.link.latency_us() / factor),
            self.dram_bw_gbps * factor,
            self.cache_bytes.clone(),
        )
    }

    /// All components, indexable by [`ComponentId::index`].
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// Number of computing components (`d` in the paper's formulation).
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// The component with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this platform.
    pub fn component(&self, id: ComponentId) -> &Component {
        &self.components[id.index()]
    }

    /// First component of the given kind, if any.
    pub fn component_of_kind(&self, kind: ComponentKind) -> Option<&Component> {
        self.components.iter().find(|c| c.kind() == kind)
    }

    /// Id of the first component of the given kind, if any.
    pub fn id_of_kind(&self, kind: ComponentKind) -> Option<ComponentId> {
        self.components
            .iter()
            .position(|c| c.kind() == kind)
            .map(ComponentId::new)
    }

    /// Iterator over `(ComponentId, &Component)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ComponentId, &Component)> {
        self.components
            .iter()
            .enumerate()
            .map(|(i, c)| (ComponentId::new(i), c))
    }

    /// The inter-component transfer link (symmetric, shared-DRAM based).
    pub fn transfer_link(&self) -> &Link {
        &self.link
    }

    /// Total DRAM bandwidth shared across components, in GB/s.
    pub fn dram_bw_gbps(&self) -> f64 {
        self.dram_bw_gbps
    }

    /// Effective cache / local-buffer capacity of a component, in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this platform.
    pub fn cache_bytes(&self, id: ComponentId) -> f64 {
        self.cache_bytes[id.index()]
    }

    /// All valid component ids, in order.
    pub fn component_ids(&self) -> Vec<ComponentId> {
        (0..self.components.len()).map(ComponentId::new).collect()
    }
}

impl fmt::Display for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "platform {} ({} components)", self.name, self.components.len())?;
        for (id, c) in self.iter() {
            writeln!(f, "  [{}] {}", id.index(), c)?;
        }
        write!(
            f,
            "  dram {:.1} GB/s, link {:.1} GB/s + {:.0} us",
            self.dram_bw_gbps,
            self.link.bandwidth_gbps(),
            self.link.latency_us()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orange_pi_has_three_components() {
        let p = Platform::orange_pi_5();
        assert_eq!(p.component_count(), 3);
        assert_eq!(p.components()[0].kind(), ComponentKind::Gpu);
        assert_eq!(p.components()[1].kind(), ComponentKind::BigCpu);
        assert_eq!(p.components()[2].kind(), ComponentKind::LittleCpu);
    }

    #[test]
    fn gpu_is_fastest_big_beats_little() {
        let p = Platform::orange_pi_5();
        let gflops: Vec<f64> = p.components().iter().map(|c| c.peak_gflops).collect();
        assert!(gflops[0] > gflops[1], "GPU should out-peak big CPU");
        assert!(gflops[1] > gflops[2], "big CPU should out-peak LITTLE CPU");
    }

    #[test]
    fn kind_lookup_roundtrip() {
        let p = Platform::orange_pi_5();
        for kind in [ComponentKind::Gpu, ComponentKind::BigCpu, ComponentKind::LittleCpu] {
            let id = p.id_of_kind(kind).expect("kind present");
            assert_eq!(p.component(id).kind(), kind);
        }
    }

    #[test]
    fn component_ids_are_dense() {
        let p = Platform::orange_pi_5();
        let ids = p.component_ids();
        assert_eq!(ids.len(), 3);
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(id.index(), i);
        }
    }

    #[test]
    fn display_mentions_all_components() {
        let p = Platform::orange_pi_5();
        let s = p.to_string();
        assert!(s.contains("mali-g610"));
        assert!(s.contains("cortex-a76x4"));
        assert!(s.contains("cortex-a55x4"));
    }

    #[test]
    #[should_panic(expected = "at least one component")]
    fn empty_platform_panics() {
        let _ = Platform::new("bad", vec![], Link::new(1.0, 1.0), 1.0, vec![]);
    }

    #[test]
    fn dual_cpu_is_symmetric() {
        let p = Platform::dual_cpu();
        assert_eq!(p.components()[0].peak_gflops, p.components()[1].peak_gflops);
    }

    #[test]
    fn jetson_preset_shape_and_ordering() {
        let p = Platform::jetson_orin_nx();
        assert_eq!(p.component_count(), 4, "the Jetson profile adds a fourth component");
        assert_eq!(p.components()[0].kind(), ComponentKind::Gpu);
        assert_eq!(p.components()[1].kind(), ComponentKind::Npu);
        let orange = Platform::orange_pi_5();
        assert!(
            p.components()[0].peak_gflops > orange.components()[0].peak_gflops,
            "the Jetson-class GPU must out-peak the Mali"
        );
    }

    #[test]
    fn signatures_identify_exact_configurations() {
        let a = Platform::orange_pi_5();
        assert_eq!(a.signature(), Platform::orange_pi_5().signature());
        assert_ne!(a.signature(), Platform::jetson_orin_nx().signature());
        assert_ne!(a.signature(), a.scaled(2.0).signature(), "a faster clone is a new identity");
        // A one-number capability change flips the digest even when the
        // name and shape stay the same.
        let mut tweaked = a.clone();
        tweaked.components[0].peak_gflops += 1.0;
        assert_ne!(a.signature(), tweaked.signature());
    }

    #[test]
    fn scaled_platform_scales_rates_and_overheads() {
        let p = Platform::orange_pi_5();
        let fast = p.scaled(2.0);
        assert_eq!(fast.component_count(), p.component_count());
        for (a, b) in p.components().iter().zip(fast.components()) {
            assert_eq!(b.peak_gflops, a.peak_gflops * 2.0);
            assert_eq!(b.mem_bw_gbps, a.mem_bw_gbps * 2.0);
            assert_eq!(b.kernel_overhead_us, a.kernel_overhead_us / 2.0);
            assert_eq!(b.base_efficiency, a.base_efficiency);
            assert_eq!(b.saturation_mflops, a.saturation_mflops);
        }
        assert_eq!(fast.dram_bw_gbps(), p.dram_bw_gbps() * 2.0);
        assert_eq!(fast.transfer_link().bandwidth_gbps(), p.transfer_link().bandwidth_gbps() * 2.0);
        assert_eq!(fast.cache_bytes(ComponentId::new(0)), p.cache_bytes(ComponentId::new(0)));
    }

    #[test]
    #[should_panic(expected = "speed factor")]
    fn non_positive_scale_panics() {
        let _ = Platform::orange_pi_5().scaled(0.0);
    }

    #[test]
    fn single_cpu_has_no_gpu() {
        let p = Platform::single_cpu();
        assert!(p.component_of_kind(ComponentKind::Gpu).is_none());
        assert!(p.id_of_kind(ComponentKind::BigCpu).is_some());
    }
}
