//! Builder for assembling [`Platform`] values.

use crate::{Component, Link, Platform};

/// Incrementally configures a [`Platform`].
///
/// # Example
///
/// ```
/// use rankmap_platform::{Component, ComponentKind, Link, PlatformBuilder};
///
/// let platform = PlatformBuilder::new("toy")
///     .component(
///         Component::new("cpu", ComponentKind::BigCpu)
///             .with_peak_gflops(50.0)
///             .with_mem_bw_gbps(8.0),
///     )
///     .link(Link::new(4.0, 100.0))
///     .dram_bw_gbps(10.0)
///     .build();
/// assert_eq!(platform.component_count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct PlatformBuilder {
    name: String,
    components: Vec<Component>,
    link: Link,
    dram_bw_gbps: f64,
    cache_bytes: Option<Vec<f64>>,
}

impl PlatformBuilder {
    /// Starts a builder for a platform with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            components: Vec::new(),
            link: Link::new(8.0, 200.0),
            dram_bw_gbps: 16.0,
            cache_bytes: None,
        }
    }

    /// Adds a computing component; order determines `ComponentId`s.
    #[must_use]
    pub fn component(mut self, c: Component) -> Self {
        self.components.push(c);
        self
    }

    /// Sets the symmetric inter-component transfer link.
    #[must_use]
    pub fn link(mut self, link: Link) -> Self {
        self.link = link;
        self
    }

    /// Sets the total shared DRAM bandwidth in GB/s.
    #[must_use]
    pub fn dram_bw_gbps(mut self, v: f64) -> Self {
        self.dram_bw_gbps = v;
        self
    }

    /// Sets per-component effective cache sizes in bytes. If omitted, 1 MiB
    /// per component is assumed.
    #[must_use]
    pub fn cache_bytes(mut self, v: Vec<f64>) -> Self {
        self.cache_bytes = Some(v);
        self
    }

    /// Finalizes the platform.
    ///
    /// # Panics
    ///
    /// Panics if no component was added or if an explicitly provided
    /// `cache_bytes` vector does not match the component count.
    pub fn build(self) -> Platform {
        let n = self.components.len();
        let cache = self
            .cache_bytes
            .unwrap_or_else(|| vec![1.0e6; n]);
        Platform::new(self.name, self.components, self.link, self.dram_bw_gbps, cache)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ComponentKind;

    #[test]
    fn builder_defaults_cache() {
        let p = PlatformBuilder::new("t")
            .component(Component::new("a", ComponentKind::BigCpu))
            .component(Component::new("b", ComponentKind::LittleCpu))
            .build();
        assert_eq!(p.cache_bytes(crate::ComponentId::new(0)), 1.0e6);
        assert_eq!(p.cache_bytes(crate::ComponentId::new(1)), 1.0e6);
    }

    #[test]
    #[should_panic(expected = "one entry per component")]
    fn mismatched_cache_panics() {
        let _ = PlatformBuilder::new("t")
            .component(Component::new("a", ComponentKind::BigCpu))
            .cache_bytes(vec![1.0, 2.0])
            .build();
    }
}
