//! Property-based tests on the simulator's core invariants.

use proptest::prelude::*;
use rankmap_models::ModelId;
use rankmap_platform::{ComponentId, Platform};
use rankmap_sim::{
    AnalyticalEngine, CompiledWorkload, ContentionParams, EventEngine, Mapping, Workload,
};

fn small_pool() -> Vec<ModelId> {
    vec![
        ModelId::AlexNet,
        ModelId::SqueezeNetV2,
        ModelId::MobileNet,
        ModelId::ResNet12,
        ModelId::GoogleNet,
    ]
}

prop_compose! {
    /// A workload of 1..=3 models from the small pool plus a random
    /// assignment vector for it.
    fn workload_and_mapping()(
        picks in prop::collection::vec(0usize..5, 1..=3),
        assign_seed in any::<u64>(),
    ) -> (Workload, Mapping) {
        let pool = small_pool();
        let ids: Vec<ModelId> = picks.iter().map(|&i| pool[i]).collect();
        let w = Workload::from_ids(ids);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(assign_seed);
        let m = Mapping::random(&w, 3, &mut rng);
        (w, m)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every random mapping fuses into stages that exactly cover the units
    /// in order, with no empty stage.
    #[test]
    fn stages_partition_units((w, m) in workload_and_mapping()) {
        for d in 0..w.len() {
            let stages = m.stages(d);
            prop_assert!(!stages.is_empty());
            prop_assert_eq!(stages[0].unit_range.start, 0);
            prop_assert_eq!(
                stages.last().unwrap().unit_range.end,
                w.models()[d].unit_count()
            );
            for pair in stages.windows(2) {
                prop_assert_eq!(pair[0].unit_range.end, pair[1].unit_range.start);
                prop_assert!(!pair[0].unit_range.is_empty());
                // Adjacent stages sit on different components, otherwise
                // they would have fused.
                prop_assert_ne!(pair[0].component, pair[1].component);
            }
        }
    }

    /// The analytical engine produces finite, non-negative rates and never
    /// over-commits a component.
    #[test]
    fn analytical_rates_feasible((w, m) in workload_and_mapping()) {
        let platform = Platform::orange_pi_5();
        let engine = AnalyticalEngine::new(&platform);
        let compiled =
            CompiledWorkload::compile(&platform, &w, &m, ContentionParams::default());
        let r = engine.solve(&compiled);
        for &x in &r.per_dnn {
            prop_assert!(x.is_finite() && x >= 0.0);
        }
        for stages in compiled.stages_by_component() {
            let util: f64 = stages
                .iter()
                .map(|&(d, k)| r.per_dnn[d] * compiled.stages[d][k].inflated_seconds)
                .sum();
            prop_assert!(util <= 1.06, "component over-committed: {}", util);
        }
    }

    /// Inflation never makes a stage faster than its isolated cost.
    #[test]
    fn inflation_is_at_least_one((w, m) in workload_and_mapping()) {
        let platform = Platform::orange_pi_5();
        let compiled =
            CompiledWorkload::compile(&platform, &w, &m, ContentionParams::default());
        for dnn in &compiled.stages {
            for s in dnn {
                prop_assert!(s.inflated_seconds >= s.base_seconds * 0.999);
            }
        }
    }

    /// The event engine is deterministic and bounded by (a small multiple
    /// of) the analytical estimate.
    #[test]
    fn event_engine_sane((w, m) in workload_and_mapping()) {
        let platform = Platform::orange_pi_5();
        let engine = EventEngine::quick(&platform);
        let a = engine.evaluate(&w, &m);
        let b = engine.evaluate(&w, &m);
        prop_assert_eq!(&a, &b);
        for &x in &a.per_dnn {
            prop_assert!(x.is_finite() && (0.0..500.0).contains(&x));
        }
    }

    /// Flat encoding round-trips.
    #[test]
    fn flat_roundtrip((w, m) in workload_and_mapping()) {
        let flat = m.to_flat();
        prop_assert_eq!(Mapping::from_flat(&w, &flat), m);
    }
}

#[test]
fn uniform_gpu_is_single_stage_always() {
    let pool = small_pool();
    for &id in &pool {
        let w = Workload::from_ids([id]);
        let m = Mapping::uniform(&w, ComponentId::new(0));
        assert_eq!(m.stages(0).len(), 1);
    }
}
