//! Execution simulator for multi-DNN pipelines on heterogeneous platforms.
//!
//! This crate is the reproduction's substitute for the Orange Pi 5 board:
//! every experiment that the paper runs *on hardware*, this repository runs
//! against the engines here.
//!
//! Two engines share one cost model:
//!
//! * [`AnalyticalEngine`] — a fixed-point, proportional-share contention
//!   solver. Fast (microseconds), used for quick estimates, tests, and the
//!   "oracle estimator" ablation.
//! * [`EventEngine`] — a discrete-event simulator with non-preemptive
//!   round-robin sharing per component, bounded inter-stage queues
//!   (backpressure), and inter-component transfer delays. This is "the
//!   board": it labels the estimator's training set and scores every final
//!   mapping in the experiment harness.
//!
//! The cost model is a roofline per layer (`max(compute, memory) +
//! dispatch overhead`) with a utilization ramp that penalizes small kernels
//! on wide components (GPUs), plus a cache-sensitivity contention model:
//! co-located stages inflate each other's time, and big-working-set stages
//! suffer more — which is what lets over-greedy mappings starve heavy DNNs,
//! just like on the real board.
//!
//! # Example
//!
//! ```
//! use rankmap_platform::Platform;
//! use rankmap_models::ModelId;
//! use rankmap_sim::{EventEngine, Mapping, Workload};
//!
//! let platform = Platform::orange_pi_5();
//! let workload = Workload::from_ids([ModelId::SqueezeNetV2, ModelId::ResNet50]);
//! let mapping = Mapping::uniform(&workload, rankmap_platform::ComponentId::new(0));
//! let engine = EventEngine::quick(&platform);
//! let report = engine.evaluate(&workload, &mapping);
//! assert_eq!(report.per_dnn.len(), 2);
//! assert!(report.per_dnn.iter().all(|&t| t > 0.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytical;
pub mod contention;
pub mod cost;
pub mod event;
pub mod migration;
pub mod report;
pub mod workload;

pub use analytical::AnalyticalEngine;
pub use contention::{
    CompileCache, CompiledStage, CompiledWorkload, ContentionParams, WorkloadCosts,
};
pub use cost::CostModel;
pub use event::{EventConfig, EventEngine};
pub use migration::{MigrationCost, MigrationModel, STEM_REBUILD_PER_UNIT};
pub use report::ThroughputReport;
pub use workload::{Mapping, MappingError, StageSpec, Workload};

/// A DNN is *starved* when its potential throughput `P = t_current/t_ideal`
/// falls below this fraction. The paper plots starved DNNs as the `P = 0`
/// histogram bin; on our simulated board throughput never reaches exactly
/// zero, so "indistinguishable from zero" is defined as 2%.
pub const STARVATION_POTENTIAL: f64 = 0.02;

#[cfg(test)]
mod thread_safety {
    use super::*;

    #[test]
    fn engines_and_state_are_send_and_sync() {
        // The serving stack moves per-shard engines to worker threads
        // between event barriers (see rankmap-fleet): every engine and
        // every piece of workload state must be Send, and the shared
        // pieces (compile caches, workloads behind Arc) Sync.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AnalyticalEngine<'static>>();
        assert_send_sync::<EventEngine<'static>>();
        assert_send_sync::<MigrationModel<'static>>();
        assert_send_sync::<CompileCache>();
        assert_send_sync::<Workload>();
        assert_send_sync::<Mapping>();
        assert_send_sync::<ThroughputReport>();
    }
}
