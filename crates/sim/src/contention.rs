//! Shared contention model: compiling a mapped workload into stages and
//! inflating stage times for co-location effects.

use crate::cost::CostModel;
use crate::workload::{Mapping, Workload};
use rankmap_platform::{ComponentId, Platform};

/// Tunables of the contention model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContentionParams {
    /// Cache-sensitivity strength: how much a fully cache-resident-hostile
    /// co-runner inflates a fully cache-sensitive stage.
    pub theta: f64,
    /// Super-linearity of thrash: the cache term is raised to this power.
    /// Real boards fall off a cliff when one more heavyweight joins an
    /// already-saturated component (the paper's baseline collapses from
    /// P ≈ 0.08 at 3 DNNs to P ≈ 0.005 at 4–5); `kappa > 1` reproduces
    /// that knee.
    pub kappa: f64,
    /// Per-extra-co-located-stage scheduling overhead (context switches,
    /// command-queue churn).
    pub alpha: f64,
}

impl Default for ContentionParams {
    fn default() -> Self {
        Self { theta: 1.1, kappa: 1.25, alpha: 0.02 }
    }
}

/// One pipeline stage after compilation: isolated time, placement, and the
/// data needed by both engines.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledStage {
    /// Component executing the stage.
    pub component: ComponentId,
    /// Isolated execution seconds (roofline).
    pub base_seconds: f64,
    /// Execution seconds after co-location inflation.
    pub inflated_seconds: f64,
    /// Working set in bytes (weights + peak activations).
    pub working_set: f64,
    /// Seconds to ship this stage's output to the next stage (0 when the
    /// next stage shares the component, or for the last stage).
    pub transfer_out_seconds: f64,
    /// Number of kernel launches per frame (one per layer). Components
    /// interleave co-located stages at kernel granularity, so many-kernel
    /// stages pay proportionally more queueing.
    pub kernel_count: usize,
    /// Whether the hosting component time-shares preemptively (CPU clusters
    /// under the OS scheduler) or only at kernel boundaries (GPU/NPU command
    /// queues). Preemptive sharing degrades gracefully; non-preemptive
    /// sharing makes a saturated component catastrophic for everyone.
    pub preemptive: bool,
}

impl CompiledStage {
    /// Mean kernel duration under contention — the round-robin interleaving
    /// quantum of this stage.
    pub fn mean_kernel_seconds(&self) -> f64 {
        self.inflated_seconds / self.kernel_count.max(1) as f64
    }
}

/// A workload+mapping compiled into per-DNN stage lists with inflated
/// times. Both the analytical and event engines consume this.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledWorkload {
    /// `stages[d]` is DNN `d`'s pipeline.
    pub stages: Vec<Vec<CompiledStage>>,
    /// Number of platform components.
    pub component_count: usize,
}

impl CompiledWorkload {
    /// Compiles a mapping: fuse stages, price them in isolation, then apply
    /// the cache-sensitivity inflation described in the crate docs.
    ///
    /// # Panics
    ///
    /// Panics if the mapping does not validate against the workload and
    /// platform (callers validate at API boundaries).
    pub fn compile(
        platform: &Platform,
        workload: &Workload,
        mapping: &Mapping,
        params: ContentionParams,
    ) -> Self {
        mapping
            .validate(workload, platform.component_count())
            .expect("mapping must be valid for this workload/platform");
        let cost = CostModel::new(platform);
        let mut stages: Vec<Vec<CompiledStage>> = Vec::with_capacity(workload.len());
        for (d, model) in workload.models().iter().enumerate() {
            let specs = mapping.stages(d);
            let mut list = Vec::with_capacity(specs.len());
            for (i, spec) in specs.iter().enumerate() {
                let base = cost.stage_seconds(model, spec.unit_range.clone(), spec.component);
                let ws = cost.stage_working_set(model, spec.unit_range.clone());
                let transfer = if i + 1 < specs.len() {
                    let bytes =
                        model.units()[spec.unit_range.end - 1].output_shape().bytes() as f64;
                    cost.transfer_seconds(bytes, spec.component, specs[i + 1].component)
                } else {
                    0.0
                };
                let kernels: usize = model.units()[spec.unit_range.clone()]
                    .iter()
                    .map(|u| u.kernel_count())
                    .sum();
                let preemptive = !matches!(
                    platform.component(spec.component).kind(),
                    rankmap_platform::ComponentKind::Gpu | rankmap_platform::ComponentKind::Npu
                );
                list.push(CompiledStage {
                    component: spec.component,
                    base_seconds: base,
                    inflated_seconds: base, // filled in below
                    working_set: ws,
                    transfer_out_seconds: transfer,
                    kernel_count: kernels,
                    preemptive,
                });
            }
            stages.push(list);
        }
        let mut compiled =
            Self { stages, component_count: platform.component_count() };
        compiled.apply_inflation(platform, params);
        compiled
    }

    /// Cache-sensitivity inflation. For a stage `s` of DNN `d` on
    /// component `p` (with `soft(x) = x / (x + cache_p)` ∈ [0, 1)):
    ///
    /// ```text
    /// footprint(d,p) = soft(Σ_{stages of d on p} ws)
    /// pressure(p)    = Σ_d footprint(d, p)                     < N
    /// sens(s)        = soft(ws(s))
    /// inflate(s)     = (1 + θ·sens(s)·(pressure(p) − footprint(d,p)))^κ
    ///                  + α·(n_p − 1)
    /// ```
    ///
    /// Pressure is accumulated per *DNN*, not per stage, so partitioning a
    /// network more finely does not magically multiply its cache footprint;
    /// only genuinely distinct co-runners thrash each other. Heavy stages
    /// (large working set) both create pressure and are sensitive to it,
    /// and `κ > 1` makes co-locating several heavyweights super-linearly
    /// bad — the phenomenon that lets greedy managers starve
    /// Inception-class models on the real board.
    fn apply_inflation(&mut self, platform: &Platform, params: ContentionParams) {
        let n = self.component_count;
        let d_count = self.stages.len();
        let soft = |ws: f64, cache: f64| ws / (ws + cache);
        // footprint[d][p] = soft per-DNN working set on component p.
        let mut raw_fp = vec![vec![0.0f64; n]; d_count];
        let mut counts = vec![0usize; n];
        for (d, dnn) in self.stages.iter().enumerate() {
            for s in dnn {
                raw_fp[d][s.component.index()] += s.working_set;
                counts[s.component.index()] += 1;
            }
        }
        let footprint: Vec<Vec<f64>> = raw_fp
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .map(|(p, &ws)| {
                        soft(ws, platform.cache_bytes(rankmap_platform::ComponentId::new(p)))
                    })
                    .collect()
            })
            .collect();
        let pressure: Vec<f64> =
            (0..n).map(|p| footprint.iter().map(|row| row[p]).sum()).collect();
        for (d, dnn) in self.stages.iter_mut().enumerate() {
            for s in dnn.iter_mut() {
                let p = s.component.index();
                let cache = platform.cache_bytes(s.component);
                let sens = soft(s.working_set, cache);
                let others = (pressure[p] - footprint[d][p]).max(0.0);
                let co = counts[p].saturating_sub(1) as f64;
                let inflate =
                    (1.0 + params.theta * sens * others).powf(params.kappa) + params.alpha * co;
                s.inflated_seconds = s.base_seconds * inflate;
            }
        }
    }

    /// Number of DNNs.
    pub fn dnn_count(&self) -> usize {
        self.stages.len()
    }

    /// Isolated pipeline rate bound per DNN (using inflated times):
    /// `1 / max(stage, transfer)` along the pipeline.
    pub fn pipeline_bound(&self, dnn: usize) -> f64 {
        let mut bottleneck: f64 = 0.0;
        for s in &self.stages[dnn] {
            bottleneck = bottleneck.max(s.inflated_seconds).max(s.transfer_out_seconds);
        }
        if bottleneck <= 0.0 {
            0.0
        } else {
            1.0 / bottleneck
        }
    }

    /// Stages grouped per component: `(dnn, stage_idx)` pairs.
    pub fn stages_by_component(&self) -> Vec<Vec<(usize, usize)>> {
        let mut by_comp = vec![Vec::new(); self.component_count];
        for (d, dnn) in self.stages.iter().enumerate() {
            for (k, s) in dnn.iter().enumerate() {
                by_comp[s.component.index()].push((d, k));
            }
        }
        by_comp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rankmap_models::ModelId;
    use rankmap_platform::Platform;

    fn compile_uniform(ids: &[ModelId]) -> CompiledWorkload {
        let p = Platform::orange_pi_5();
        let w = Workload::from_ids(ids.iter().copied());
        let m = Mapping::uniform(&w, ComponentId::new(0));
        CompiledWorkload::compile(&p, &w, &m, ContentionParams::default())
    }

    #[test]
    fn single_dnn_alone_not_inflated() {
        let c = compile_uniform(&[ModelId::AlexNet]);
        let s = &c.stages[0][0];
        assert!((s.inflated_seconds - s.base_seconds).abs() / s.base_seconds < 1e-9);
    }

    #[test]
    fn co_location_inflates() {
        let alone = compile_uniform(&[ModelId::ResNet50]);
        let shared = compile_uniform(&[ModelId::ResNet50, ModelId::Vgg16, ModelId::InceptionV4]);
        let t_alone = alone.stages[0][0].inflated_seconds;
        let t_shared = shared.stages[0][0].inflated_seconds;
        assert!(
            t_shared > t_alone * 1.5,
            "heavy co-location should inflate ResNet-50 noticeably: {t_alone} -> {t_shared}"
        );
    }

    #[test]
    fn heavy_stages_suffer_more_than_light() {
        let shared = compile_uniform(&[ModelId::InceptionV4, ModelId::SqueezeNetV2]);
        let heavy = &shared.stages[0][0];
        let light = &shared.stages[1][0];
        let heavy_ratio = heavy.inflated_seconds / heavy.base_seconds;
        let light_ratio = light.inflated_seconds / light.base_seconds;
        assert!(
            heavy_ratio >= light_ratio,
            "cache-sensitive (heavy) stage must inflate at least as much: {heavy_ratio} vs {light_ratio}"
        );
    }

    #[test]
    fn pipeline_bound_positive() {
        let c = compile_uniform(&[ModelId::MobileNet]);
        assert!(c.pipeline_bound(0) > 0.0);
    }

    #[test]
    fn stages_by_component_partition() {
        let p = Platform::orange_pi_5();
        let w = Workload::from_ids([ModelId::AlexNet, ModelId::MobileNetV2]);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(11);
        let m = Mapping::random(&w, 3, &mut rng);
        let c = CompiledWorkload::compile(&p, &w, &m, ContentionParams::default());
        let by_comp = c.stages_by_component();
        let total: usize = by_comp.iter().map(Vec::len).sum();
        let expect: usize = (0..w.len()).map(|d| m.stages(d).len()).sum();
        assert_eq!(total, expect);
    }

    #[test]
    fn inflation_bounded() {
        // Even a pathological all-on-LITTLE pile-up keeps inflation finite
        // and below ~1 + θ·max_pressure + α·n.
        let p = Platform::orange_pi_5();
        let ids = [
            ModelId::Vgg16,
            ModelId::Vgg19,
            ModelId::InceptionV4,
            ModelId::ResNet50,
            ModelId::DenseNet121,
        ];
        let w = Workload::from_ids(ids);
        let m = Mapping::uniform(&w, ComponentId::new(2));
        let c = CompiledWorkload::compile(&p, &w, &m, ContentionParams::default());
        for dnn in &c.stages {
            for s in dnn {
                let ratio = s.inflated_seconds / s.base_seconds;
                assert!(ratio >= 1.0 && ratio < 80.0, "inflation ratio {ratio} out of bounds");
            }
        }
    }
}
