//! Shared contention model: compiling a mapped workload into stages and
//! inflating stage times for co-location effects.

use crate::cost::CostModel;
use crate::workload::{Mapping, Workload};
use rankmap_models::ModelId;
use rankmap_platform::{ComponentId, Platform};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Tunables of the contention model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContentionParams {
    /// Cache-sensitivity strength: how much a fully cache-resident-hostile
    /// co-runner inflates a fully cache-sensitive stage.
    pub theta: f64,
    /// Super-linearity of thrash: the cache term is raised to this power.
    /// Real boards fall off a cliff when one more heavyweight joins an
    /// already-saturated component (the paper's baseline collapses from
    /// P ≈ 0.08 at 3 DNNs to P ≈ 0.005 at 4–5); `kappa > 1` reproduces
    /// that knee.
    pub kappa: f64,
    /// Per-extra-co-located-stage scheduling overhead (context switches,
    /// command-queue churn).
    pub alpha: f64,
}

impl Default for ContentionParams {
    fn default() -> Self {
        Self { theta: 1.1, kappa: 1.25, alpha: 0.02 }
    }
}

/// One pipeline stage after compilation: isolated time, placement, and the
/// data needed by both engines.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledStage {
    /// Component executing the stage.
    pub component: ComponentId,
    /// Isolated execution seconds (roofline).
    pub base_seconds: f64,
    /// Execution seconds after co-location inflation.
    pub inflated_seconds: f64,
    /// Working set in bytes (weights + peak activations).
    pub working_set: f64,
    /// Seconds to ship this stage's output to the next stage (0 when the
    /// next stage shares the component, or for the last stage).
    pub transfer_out_seconds: f64,
    /// Number of kernel launches per frame (one per layer). Components
    /// interleave co-located stages at kernel granularity, so many-kernel
    /// stages pay proportionally more queueing.
    pub kernel_count: usize,
    /// Whether the hosting component time-shares preemptively (CPU clusters
    /// under the OS scheduler) or only at kernel boundaries (GPU/NPU command
    /// queues). Preemptive sharing degrades gracefully; non-preemptive
    /// sharing makes a saturated component catastrophic for everyone.
    pub preemptive: bool,
}

impl CompiledStage {
    /// Mean kernel duration under contention — the round-robin interleaving
    /// quantum of this stage.
    pub fn mean_kernel_seconds(&self) -> f64 {
        self.inflated_seconds / self.kernel_count.max(1) as f64
    }
}

/// A workload+mapping compiled into per-DNN stage lists with inflated
/// times. Both the analytical and event engines consume this.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledWorkload {
    /// `stages[d]` is DNN `d`'s pipeline.
    pub stages: Vec<Vec<CompiledStage>>,
    /// Number of platform components.
    pub component_count: usize,
}

impl CompiledWorkload {
    /// Compiles a mapping: fuse stages, price them in isolation, then apply
    /// the cache-sensitivity inflation described in the crate docs.
    ///
    /// One-shot path: prices only the stages the mapping actually uses.
    /// Callers that evaluate many mappings of the *same* workload (every
    /// oracle in the search loop) should build a [`WorkloadCosts`] table
    /// once — or use a [`CompileCache`] — and call
    /// [`WorkloadCosts::compile`] per mapping instead; the results are
    /// bit-identical (asserted in tests).
    ///
    /// # Panics
    ///
    /// Panics if the mapping does not validate against the workload and
    /// platform (callers validate at API boundaries).
    pub fn compile(
        platform: &Platform,
        workload: &Workload,
        mapping: &Mapping,
        params: ContentionParams,
    ) -> Self {
        mapping
            .validate(workload, platform.component_count())
            .expect("mapping must be valid for this workload/platform");
        let cost = CostModel::new(platform);
        let mut stages: Vec<Vec<CompiledStage>> = Vec::with_capacity(workload.len());
        for (d, model) in workload.models().iter().enumerate() {
            let specs = mapping.stages(d);
            let mut list = Vec::with_capacity(specs.len());
            for (i, spec) in specs.iter().enumerate() {
                let base = cost.stage_seconds(model, spec.unit_range.clone(), spec.component);
                let ws = cost.stage_working_set(model, spec.unit_range.clone());
                let transfer = if i + 1 < specs.len() {
                    let bytes =
                        model.units()[spec.unit_range.end - 1].output_shape().bytes() as f64;
                    cost.transfer_seconds(bytes, spec.component, specs[i + 1].component)
                } else {
                    0.0
                };
                let kernels: usize = model.units()[spec.unit_range.clone()]
                    .iter()
                    .map(|u| u.kernel_count())
                    .sum();
                let preemptive = !matches!(
                    platform.component(spec.component).kind(),
                    rankmap_platform::ComponentKind::Gpu | rankmap_platform::ComponentKind::Npu
                );
                list.push(CompiledStage {
                    component: spec.component,
                    base_seconds: base,
                    inflated_seconds: base, // filled in below
                    working_set: ws,
                    transfer_out_seconds: transfer,
                    kernel_count: kernels,
                    preemptive,
                });
            }
            stages.push(list);
        }
        let cache_bytes: Vec<f64> = (0..platform.component_count())
            .map(|c| platform.cache_bytes(ComponentId::new(c)))
            .collect();
        let mut compiled = Self { stages, component_count: platform.component_count() };
        compiled.apply_inflation(&cache_bytes, params);
        compiled
    }

    /// Cache-sensitivity inflation. For a stage `s` of DNN `d` on
    /// component `p` (with `soft(x) = x / (x + cache_p)` ∈ [0, 1)):
    ///
    /// ```text
    /// footprint(d,p) = soft(Σ_{stages of d on p} ws)
    /// pressure(p)    = Σ_d footprint(d, p)                     < N
    /// sens(s)        = soft(ws(s))
    /// inflate(s)     = (1 + θ·sens(s)·(pressure(p) − footprint(d,p)))^κ
    ///                  + α·(n_p − 1)
    /// ```
    ///
    /// Pressure is accumulated per *DNN*, not per stage, so partitioning a
    /// network more finely does not magically multiply its cache footprint;
    /// only genuinely distinct co-runners thrash each other. Heavy stages
    /// (large working set) both create pressure and are sensitive to it,
    /// and `κ > 1` makes co-locating several heavyweights super-linearly
    /// bad — the phenomenon that lets greedy managers starve
    /// Inception-class models on the real board.
    fn apply_inflation(&mut self, cache_bytes: &[f64], params: ContentionParams) {
        let n = self.component_count;
        let d_count = self.stages.len();
        let soft = |ws: f64, cache: f64| ws / (ws + cache);
        // footprint[d][p] = soft per-DNN working set on component p.
        let mut raw_fp = vec![vec![0.0f64; n]; d_count];
        let mut counts = vec![0usize; n];
        for (d, dnn) in self.stages.iter().enumerate() {
            for s in dnn {
                raw_fp[d][s.component.index()] += s.working_set;
                counts[s.component.index()] += 1;
            }
        }
        let footprint: Vec<Vec<f64>> = raw_fp
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .map(|(p, &ws)| soft(ws, cache_bytes[p]))
                    .collect()
            })
            .collect();
        let pressure: Vec<f64> =
            (0..n).map(|p| footprint.iter().map(|row| row[p]).sum()).collect();
        for (d, dnn) in self.stages.iter_mut().enumerate() {
            for s in dnn.iter_mut() {
                let p = s.component.index();
                let sens = soft(s.working_set, cache_bytes[p]);
                let others = (pressure[p] - footprint[d][p]).max(0.0);
                let co = counts[p].saturating_sub(1) as f64;
                let inflate =
                    (1.0 + params.theta * sens * others).powf(params.kappa) + params.alpha * co;
                s.inflated_seconds = s.base_seconds * inflate;
            }
        }
    }

    /// Number of DNNs.
    pub fn dnn_count(&self) -> usize {
        self.stages.len()
    }

    /// Isolated pipeline rate bound per DNN (using inflated times):
    /// `1 / max(stage, transfer)` along the pipeline.
    pub fn pipeline_bound(&self, dnn: usize) -> f64 {
        let mut bottleneck: f64 = 0.0;
        for s in &self.stages[dnn] {
            bottleneck = bottleneck.max(s.inflated_seconds).max(s.transfer_out_seconds);
        }
        if bottleneck <= 0.0 {
            0.0
        } else {
            1.0 / bottleneck
        }
    }

    /// Stages grouped per component: `(dnn, stage_idx)` pairs.
    pub fn stages_by_component(&self) -> Vec<Vec<(usize, usize)>> {
        let mut by_comp = vec![Vec::new(); self.component_count];
        for (d, dnn) in self.stages.iter().enumerate() {
            for (k, s) in dnn.iter().enumerate() {
                by_comp[s.component.index()].push((d, k));
            }
        }
        by_comp
    }
}

/// Pre-priced workload: every unit's isolated cost on every component,
/// computed once per workload instead of once per oracle query.
///
/// Compiling a mapping only needs per-stage *sums* of per-unit values; the
/// per-unit values themselves (a roofline walk over every layer) never
/// change while the workload is fixed, yet the seed implementation
/// recomputed them on every `CompiledWorkload::compile` — thousands of
/// times per search. This table hoists that work out of the hot loop:
/// [`WorkloadCosts::compile`] is a cheap range-sum pass that produces a
/// `CompiledWorkload` bit-identical to the direct path.
#[derive(Debug, Clone)]
pub struct WorkloadCosts {
    platform: Platform,
    /// `unit_seconds[d][c][u]`: isolated seconds of unit `u` of DNN `d`
    /// on component `c`.
    unit_seconds: Vec<Vec<Vec<f64>>>,
    /// `unit_weight_bytes[d][u]`.
    unit_weight_bytes: Vec<Vec<u64>>,
    /// `unit_peak_activation[d][u]`.
    unit_peak_activation: Vec<Vec<u64>>,
    /// `unit_kernels[d][u]`.
    unit_kernels: Vec<Vec<usize>>,
    /// `unit_out_bytes[d][u]`: bytes crossing a stage boundary after `u`.
    unit_out_bytes: Vec<Vec<f64>>,
    /// Per-component preemptive flag.
    preemptive: Vec<bool>,
    /// Per-component cache capacity (bytes).
    cache_bytes: Vec<f64>,
}

impl WorkloadCosts {
    /// Prices every unit of `workload` on every component of `platform`.
    pub fn new(platform: &Platform, workload: &Workload) -> Self {
        let cost = CostModel::new(platform);
        let comps = platform.component_count();
        let mut unit_seconds = Vec::with_capacity(workload.len());
        let mut unit_weight_bytes = Vec::with_capacity(workload.len());
        let mut unit_peak_activation = Vec::with_capacity(workload.len());
        let mut unit_kernels = Vec::with_capacity(workload.len());
        let mut unit_out_bytes = Vec::with_capacity(workload.len());
        for model in workload.models() {
            let units = model.units();
            unit_seconds.push(
                (0..comps)
                    .map(|c| {
                        let cid = ComponentId::new(c);
                        units.iter().map(|u| cost.unit_seconds(u, cid)).collect()
                    })
                    .collect(),
            );
            unit_weight_bytes.push(units.iter().map(|u| u.weight_bytes()).collect());
            unit_peak_activation
                .push(units.iter().map(|u| u.peak_activation_bytes()).collect());
            unit_kernels.push(units.iter().map(|u| u.kernel_count()).collect());
            unit_out_bytes
                .push(units.iter().map(|u| u.output_shape().bytes() as f64).collect());
        }
        let preemptive = (0..comps)
            .map(|c| {
                !matches!(
                    platform.component(ComponentId::new(c)).kind(),
                    rankmap_platform::ComponentKind::Gpu | rankmap_platform::ComponentKind::Npu
                )
            })
            .collect();
        let cache_bytes =
            (0..comps).map(|c| platform.cache_bytes(ComponentId::new(c))).collect();
        Self {
            platform: platform.clone(),
            unit_seconds,
            unit_weight_bytes,
            unit_peak_activation,
            unit_kernels,
            unit_out_bytes,
            preemptive,
            cache_bytes,
        }
    }

    /// Compiles one mapping of the priced workload — the hot-loop
    /// equivalent of [`CompiledWorkload::compile`].
    ///
    /// # Panics
    ///
    /// Panics if the mapping does not validate against the workload and
    /// platform.
    pub fn compile(
        &self,
        workload: &Workload,
        mapping: &Mapping,
        params: ContentionParams,
    ) -> CompiledWorkload {
        mapping
            .validate(workload, self.platform.component_count())
            .expect("mapping must be valid for this workload/platform");
        let cost = CostModel::new(&self.platform);
        let mut stages: Vec<Vec<CompiledStage>> = Vec::with_capacity(self.unit_seconds.len());
        for d in 0..self.unit_seconds.len() {
            let specs = mapping.stages(d);
            let mut list = Vec::with_capacity(specs.len());
            for (i, spec) in specs.iter().enumerate() {
                let c = spec.component.index();
                let range = spec.unit_range.clone();
                let base: f64 = self.unit_seconds[d][c][range.clone()].iter().sum();
                let weights: u64 = self.unit_weight_bytes[d][range.clone()].iter().sum();
                let peak_act = self.unit_peak_activation[d][range.clone()]
                    .iter()
                    .max()
                    .copied()
                    .unwrap_or(0);
                let transfer = if i + 1 < specs.len() {
                    cost.transfer_seconds(
                        self.unit_out_bytes[d][range.end - 1],
                        spec.component,
                        specs[i + 1].component,
                    )
                } else {
                    0.0
                };
                let kernels: usize = self.unit_kernels[d][range.clone()].iter().sum();
                list.push(CompiledStage {
                    component: spec.component,
                    base_seconds: base,
                    inflated_seconds: base, // filled in below
                    working_set: (weights + peak_act) as f64,
                    transfer_out_seconds: transfer,
                    kernel_count: kernels,
                    preemptive: self.preemptive[c],
                });
            }
            stages.push(list);
        }
        let mut compiled = CompiledWorkload {
            stages,
            component_count: self.platform.component_count(),
        };
        compiled.apply_inflation(&self.cache_bytes, params);
        compiled
    }
}

/// Memoized [`WorkloadCosts`] keyed by model mix: the oracle-facing cache
/// that stops `BoardOracle`/`AnalyticalOracle` re-pricing the workload on
/// every query. Thread-safe; clones share nothing (each oracle owns one).
///
/// A cache binds to the first platform it prices for — mixing platforms
/// in one cache would silently serve stale costs, so it panics instead.
#[derive(Debug, Default)]
pub struct CompileCache {
    inner: Mutex<HashMap<Vec<ModelId>, Arc<WorkloadCosts>>>,
    bound_platform: std::sync::OnceLock<Platform>,
}

impl CompileCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The priced costs for `workload`, computing them on first sight of
    /// this model mix.
    ///
    /// # Panics
    ///
    /// Panics if called with a different platform than the first call.
    pub fn costs(&self, platform: &Platform, workload: &Workload) -> Arc<WorkloadCosts> {
        let bound = self.bound_platform.get_or_init(|| platform.clone());
        assert_eq!(
            bound, platform,
            "CompileCache is bound to one platform; use a separate cache per platform"
        );
        let key: Vec<ModelId> = workload.models().iter().map(|m| m.id()).collect();
        let mut map = self.inner.lock().expect("compile cache poisoned");
        map.entry(key)
            .or_insert_with(|| Arc::new(WorkloadCosts::new(platform, workload)))
            .clone()
    }

    /// Number of distinct workloads priced so far.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("compile cache poisoned").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rankmap_models::ModelId;
    use rankmap_platform::Platform;

    fn compile_uniform(ids: &[ModelId]) -> CompiledWorkload {
        let p = Platform::orange_pi_5();
        let w = Workload::from_ids(ids.iter().copied());
        let m = Mapping::uniform(&w, ComponentId::new(0));
        CompiledWorkload::compile(&p, &w, &m, ContentionParams::default())
    }

    #[test]
    fn single_dnn_alone_not_inflated() {
        let c = compile_uniform(&[ModelId::AlexNet]);
        let s = &c.stages[0][0];
        assert!((s.inflated_seconds - s.base_seconds).abs() / s.base_seconds < 1e-9);
    }

    #[test]
    fn co_location_inflates() {
        let alone = compile_uniform(&[ModelId::ResNet50]);
        let shared = compile_uniform(&[ModelId::ResNet50, ModelId::Vgg16, ModelId::InceptionV4]);
        let t_alone = alone.stages[0][0].inflated_seconds;
        let t_shared = shared.stages[0][0].inflated_seconds;
        assert!(
            t_shared > t_alone * 1.5,
            "heavy co-location should inflate ResNet-50 noticeably: {t_alone} -> {t_shared}"
        );
    }

    #[test]
    fn heavy_stages_suffer_more_than_light() {
        let shared = compile_uniform(&[ModelId::InceptionV4, ModelId::SqueezeNetV2]);
        let heavy = &shared.stages[0][0];
        let light = &shared.stages[1][0];
        let heavy_ratio = heavy.inflated_seconds / heavy.base_seconds;
        let light_ratio = light.inflated_seconds / light.base_seconds;
        assert!(
            heavy_ratio >= light_ratio,
            "cache-sensitive (heavy) stage must inflate at least as much: {heavy_ratio} vs {light_ratio}"
        );
    }

    #[test]
    fn pipeline_bound_positive() {
        let c = compile_uniform(&[ModelId::MobileNet]);
        assert!(c.pipeline_bound(0) > 0.0);
    }

    #[test]
    fn stages_by_component_partition() {
        let p = Platform::orange_pi_5();
        let w = Workload::from_ids([ModelId::AlexNet, ModelId::MobileNetV2]);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(11);
        let m = Mapping::random(&w, 3, &mut rng);
        let c = CompiledWorkload::compile(&p, &w, &m, ContentionParams::default());
        let by_comp = c.stages_by_component();
        let total: usize = by_comp.iter().map(Vec::len).sum();
        let expect: usize = (0..w.len()).map(|d| m.stages(d).len()).sum();
        assert_eq!(total, expect);
    }

    #[test]
    fn cached_compile_is_bit_identical() {
        let p = Platform::orange_pi_5();
        let w = Workload::from_ids([
            ModelId::AlexNet,
            ModelId::MobileNetV2,
            ModelId::ResNet50,
        ]);
        let costs = WorkloadCosts::new(&p, &w);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(77);
        for _ in 0..20 {
            let m = Mapping::random(&w, 3, &mut rng);
            let direct = CompiledWorkload::compile(&p, &w, &m, ContentionParams::default());
            let cached = costs.compile(&w, &m, ContentionParams::default());
            assert_eq!(direct, cached, "cost-table compile must match the direct path");
        }
    }

    #[test]
    fn compile_cache_memoizes_by_mix() {
        let p = Platform::orange_pi_5();
        let cache = CompileCache::new();
        let w1 = Workload::from_ids([ModelId::AlexNet, ModelId::MobileNet]);
        let w2 = Workload::from_ids([ModelId::AlexNet, ModelId::MobileNet]);
        let w3 = Workload::from_ids([ModelId::MobileNet, ModelId::AlexNet]);
        let a = cache.costs(&p, &w1);
        let b = cache.costs(&p, &w2);
        assert!(Arc::ptr_eq(&a, &b), "same mix must hit the cache");
        let _ = cache.costs(&p, &w3);
        assert_eq!(cache.len(), 2, "order matters: a different mix is a new entry");
    }

    #[test]
    fn inflation_bounded() {
        // Even a pathological all-on-LITTLE pile-up keeps inflation finite
        // and below ~1 + θ·max_pressure + α·n.
        let p = Platform::orange_pi_5();
        let ids = [
            ModelId::Vgg16,
            ModelId::Vgg19,
            ModelId::InceptionV4,
            ModelId::ResNet50,
            ModelId::DenseNet121,
        ];
        let w = Workload::from_ids(ids);
        let m = Mapping::uniform(&w, ComponentId::new(2));
        let c = CompiledWorkload::compile(&p, &w, &m, ContentionParams::default());
        for dnn in &c.stages {
            for s in dnn {
                let ratio = s.inflated_seconds / s.base_seconds;
                assert!((1.0..80.0).contains(&ratio), "inflation ratio {ratio} out of bounds");
            }
        }
    }
}
