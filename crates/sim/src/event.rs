//! Discrete-event pipeline simulator — the reproduction's "board".

use crate::contention::{CompiledWorkload, ContentionParams};
use crate::report::ThroughputReport;
use crate::workload::{Mapping, Workload};
use rankmap_platform::Platform;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Simulation window configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventConfig {
    /// Virtual seconds to simulate.
    pub sim_seconds: f64,
    /// Leading portion discarded before counting completions.
    pub warmup_seconds: f64,
    /// Capacity of each inter-stage queue (backpressure depth).
    pub queue_capacity: usize,
    /// Kernel launches are batched into at most this many dispatches per
    /// stage per frame on non-preemptive components: interleaving fidelity
    /// vs event count. `usize::MAX` simulates every kernel individually.
    pub max_chunks_per_stage: usize,
    /// Preemption quantum of the OS scheduler on CPU components, seconds.
    pub cpu_quantum_seconds: f64,
}

impl Default for EventConfig {
    fn default() -> Self {
        Self {
            sim_seconds: 30.0,
            warmup_seconds: 5.0,
            queue_capacity: 2,
            max_chunks_per_stage: 24,
            cpu_quantum_seconds: 0.015,
        }
    }
}

impl EventConfig {
    /// Shorter window for tests and dataset generation.
    pub fn quick() -> Self {
        Self {
            sim_seconds: 12.0,
            warmup_seconds: 2.0,
            queue_capacity: 2,
            max_chunks_per_stage: 12,
            cpu_quantum_seconds: 0.02,
        }
    }
}

/// Discrete-event simulator of a mapped multi-DNN workload.
///
/// Mechanics:
/// * every component runs its assigned stages in **non-preemptive
///   round-robin at kernel granularity**: one dispatch executes a chunk of
///   the stage's kernels, then the stage goes to the back of the queue —
///   exactly how co-resident DNNs interleave on an OpenCL command queue.
///   A stage with many kernels therefore waits for its co-runners once per
///   chunk, which is what starves everyone on a saturated GPU;
/// * adjacent stages are connected by **bounded queues**
///   ([`EventConfig::queue_capacity`]); a stage only accepts a frame when it
///   holds an input and has reserved a downstream slot, so backpressure
///   propagates like in the ARM-CL pipeline runtime;
/// * stage service times are the contention-inflated costs from
///   [`CompiledWorkload`]; cross-component hops pay the transfer delay.
///
/// Throughput per DNN = frames leaving its last stage after warm-up,
/// divided by the measurement window.
#[derive(Debug, Clone)]
pub struct EventEngine<'p> {
    platform: &'p Platform,
    params: ContentionParams,
    config: EventConfig,
}

impl<'p> EventEngine<'p> {
    /// Creates an engine with the default (paper-scale) window.
    pub fn new(platform: &'p Platform) -> Self {
        Self { platform, params: ContentionParams::default(), config: EventConfig::default() }
    }

    /// Creates an engine with the short window used by tests/dataset labelling.
    pub fn quick(platform: &'p Platform) -> Self {
        Self::new(platform).with_config(EventConfig::quick())
    }

    /// Overrides the window configuration.
    #[must_use]
    pub fn with_config(mut self, config: EventConfig) -> Self {
        self.config = config;
        self
    }

    /// Overrides the contention parameters.
    #[must_use]
    pub fn with_params(mut self, params: ContentionParams) -> Self {
        self.params = params;
        self
    }

    /// The platform this engine simulates.
    pub fn platform(&self) -> &'p Platform {
        self.platform
    }

    /// Measured ideal throughput of a model alone on the given component
    /// (the paper's `t_ideal` when `component` is the GPU).
    pub fn ideal_rate(
        &self,
        id: rankmap_models::ModelId,
        component: rankmap_platform::ComponentId,
    ) -> f64 {
        let w = Workload::from_ids([id]);
        let m = Mapping::uniform(&w, component);
        self.evaluate(&w, &m).per_dnn[0]
    }

    /// Runs the simulation, returning per-DNN throughput.
    ///
    /// # Panics
    ///
    /// Panics if the mapping is invalid for this workload/platform.
    pub fn evaluate(&self, workload: &Workload, mapping: &Mapping) -> ThroughputReport {
        let compiled = CompiledWorkload::compile(self.platform, workload, mapping, self.params);
        self.run(&compiled)
    }

    /// Runs the simulation against pre-priced workload costs (the hot-loop
    /// path: no per-query roofline walk). Produces exactly what
    /// [`EventEngine::evaluate`] would.
    pub fn evaluate_with(
        &self,
        costs: &crate::contention::WorkloadCosts,
        workload: &Workload,
        mapping: &Mapping,
    ) -> ThroughputReport {
        self.run(&costs.compile(workload, mapping, self.params))
    }

    /// Runs an already compiled workload.
    pub fn run(&self, compiled: &CompiledWorkload) -> ThroughputReport {
        EventSim::new(compiled, self.config).run()
    }
}

/// Internal mutable simulation state (split out so the event loop can use
/// methods instead of borrow-heavy macros).
struct EventSim<'c> {
    compiled: &'c CompiledWorkload,
    cfg: EventConfig,
    horizon: u64,
    warmup: u64,
    /// Frames waiting at each stage input (stage 0 is an infinite source).
    avail: Vec<Vec<usize>>,
    /// Reserved downstream-queue slots per stage.
    reserved: Vec<Vec<usize>>,
    /// Whether the stage is in a component's round-robin queue.
    queued: Vec<Vec<bool>>,
    /// Chunks completed of the frame currently in service (0 = idle).
    progress: Vec<Vec<usize>>,
    /// Chunk plan per stage: (chunk_count, chunk_ns).
    chunks: Vec<Vec<(usize, u64)>>,
    rr: Vec<VecDeque<(usize, usize)>>,
    busy: Vec<bool>,
    heap: BinaryHeap<Reverse<HeapEvent>>,
    seq: u64,
    completions: Vec<u64>,
}

/// `(time_ns, sequence, dnn, stage, kind)` — ordered by time then FIFO.
type HeapEvent = (u64, u64, usize, usize, u8);

const EV_CHUNK_DONE: u8 = 0;
const EV_FRAME_ARRIVED: u8 = 1;

fn to_ns(s: f64) -> u64 {
    (s * 1e9).round().max(0.0) as u64
}

impl<'c> EventSim<'c> {
    fn new(compiled: &'c CompiledWorkload, cfg: EventConfig) -> Self {
        let shape: Vec<usize> = compiled.stages.iter().map(Vec::len).collect();
        let zeros = |init: usize| -> Vec<Vec<usize>> {
            shape.iter().map(|&n| vec![init; n]).collect()
        };
        let chunks = compiled
            .stages
            .iter()
            .map(|stages| {
                stages
                    .iter()
                    .map(|s| {
                        // CPU stages are sliced by the scheduler quantum;
                        // GPU stages only yield at kernel boundaries.
                        let n = if s.preemptive {
                            (s.inflated_seconds / cfg.cpu_quantum_seconds).ceil().max(1.0)
                                as usize
                        } else {
                            s.kernel_count.clamp(1, cfg.max_chunks_per_stage)
                        };
                        let dur = to_ns(s.inflated_seconds / n as f64).max(1);
                        (n, dur)
                    })
                    .collect()
            })
            .collect();
        Self {
            compiled,
            cfg,
            horizon: to_ns(cfg.sim_seconds),
            warmup: to_ns(cfg.warmup_seconds),
            avail: zeros(0),
            reserved: zeros(0),
            queued: compiled.stages.iter().map(|s| vec![false; s.len()]).collect(),
            progress: zeros(0),
            chunks,
            rr: vec![VecDeque::new(); compiled.component_count],
            busy: vec![false; compiled.component_count],
            heap: BinaryHeap::new(),
            seq: 0,
            completions: vec![0; compiled.dnn_count()],
        }
    }

    fn can_accept_frame(&self, d: usize, k: usize) -> bool {
        let last = self.compiled.stages[d].len() - 1;
        let has_input = k == 0 || self.avail[d][k] > 0;
        let has_space = k == last || self.reserved[d][k] < self.cfg.queue_capacity;
        has_input && has_space
    }

    /// Runnable: mid-frame (always) or able to start a fresh frame.
    fn runnable(&self, d: usize, k: usize) -> bool {
        self.progress[d][k] > 0 || self.can_accept_frame(d, k)
    }

    fn push_event(&mut self, t: u64, d: usize, k: usize, kind: u8) {
        self.seq += 1;
        self.heap.push(Reverse((t, self.seq, d, k, kind)));
    }

    /// Enqueues a stage in its component's RR queue if runnable and absent.
    fn wake(&mut self, d: usize, k: usize, now: u64) {
        if !self.queued[d][k] && self.runnable(d, k) {
            let comp = self.compiled.stages[d][k].component.index();
            self.rr[comp].push_back((d, k));
            self.queued[d][k] = true;
            self.dispatch(comp, now);
        }
    }

    /// If the component is idle, starts the next runnable stage's chunk.
    fn dispatch(&mut self, comp: usize, now: u64) {
        if self.busy[comp] {
            return;
        }
        while let Some((d, k)) = self.rr[comp].pop_front() {
            self.queued[d][k] = false;
            if self.progress[d][k] == 0 {
                // Start a fresh frame if inputs/space allow.
                if !self.can_accept_frame(d, k) {
                    continue;
                }
                if k > 0 {
                    self.avail[d][k] -= 1;
                }
                if k < self.compiled.stages[d].len() - 1 {
                    self.reserved[d][k] += 1;
                }
            }
            self.busy[comp] = true;
            let (_, dur) = self.chunks[d][k];
            self.push_event(now + dur, d, k, EV_CHUNK_DONE);
            return;
        }
    }

    fn on_chunk_done(&mut self, t: u64, d: usize, k: usize) {
        let comp = self.compiled.stages[d][k].component.index();
        self.busy[comp] = false;
        self.progress[d][k] += 1;
        let (n_chunks, _) = self.chunks[d][k];
        if self.progress[d][k] >= n_chunks {
            // Frame complete.
            self.progress[d][k] = 0;
            let last = self.compiled.stages[d].len() - 1;
            if k == last {
                if t > self.warmup {
                    self.completions[d] += 1;
                }
            } else {
                let transfer = self.compiled.stages[d][k].transfer_out_seconds;
                if transfer > 0.0 {
                    self.push_event(t + to_ns(transfer).max(1), d, k + 1, EV_FRAME_ARRIVED);
                } else {
                    self.avail[d][k + 1] += 1;
                    self.reserved[d][k] -= 1;
                    self.wake(d, k + 1, t);
                }
            }
        }
        // Back of the queue (round-robin) if there is more to do.
        self.wake(d, k, t);
        self.dispatch(comp, t);
    }

    fn on_frame_arrived(&mut self, t: u64, d: usize, k: usize) {
        self.avail[d][k] += 1;
        self.reserved[d][k - 1] -= 1;
        self.wake(d, k, t);
        // Upstream stage may have been blocked on the queue slot.
        self.wake(d, k - 1, t);
    }

    fn run(mut self) -> ThroughputReport {
        for d in 0..self.compiled.dnn_count() {
            self.wake(d, 0, 0);
        }
        while let Some(Reverse((t, _s, d, k, kind))) = self.heap.pop() {
            if t > self.horizon {
                break;
            }
            match kind {
                EV_CHUNK_DONE => self.on_chunk_done(t, d, k),
                _ => self.on_frame_arrived(t, d, k),
            }
        }
        let window = (self.cfg.sim_seconds - self.cfg.warmup_seconds).max(1e-9);
        ThroughputReport::new(
            self.completions.iter().map(|&c| c as f64 / window).collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytical::AnalyticalEngine;
    use rankmap_models::ModelId;
    use rankmap_platform::ComponentId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn single_dnn_rate_close_to_pipeline_bound() {
        let p = Platform::orange_pi_5();
        let eng = EventEngine::quick(&p);
        let w = Workload::from_ids([ModelId::AlexNet]);
        let m = Mapping::uniform(&w, ComponentId::new(0));
        let r = eng.evaluate(&w, &m);
        let compiled = CompiledWorkload::compile(&p, &w, &m, ContentionParams::default());
        let bound = compiled.pipeline_bound(0);
        let ratio = r.per_dnn[0] / bound;
        assert!(
            (0.8..=1.05).contains(&ratio),
            "event rate should approach the pipeline bound: {ratio}"
        );
    }

    #[test]
    fn paper_t_ideal_calibration_on_event_engine() {
        let p = Platform::orange_pi_5();
        let eng = EventEngine::quick(&p);
        let gpu = ComponentId::new(0);
        let alexnet = eng.ideal_rate(ModelId::AlexNet, gpu);
        let squeezenet = eng.ideal_rate(ModelId::SqueezeNet, gpu);
        let resnet = eng.ideal_rate(ModelId::ResNet50, gpu);
        let inception = eng.ideal_rate(ModelId::InceptionResnetV1, gpu);
        assert!(squeezenet > alexnet, "SqueezeNet must out-rate AlexNet");
        assert!(alexnet > resnet, "AlexNet must out-rate ResNet-50");
        assert!(resnet > inception, "ResNet-50 must out-rate Inception-ResNet-V1");
        assert!(inception > 1.0, "Inception-ResNet-V1 should still progress alone");
    }

    #[test]
    fn gpu_pileup_collapses_light_dnn_too() {
        let p = Platform::orange_pi_5();
        let eng = EventEngine::quick(&p);
        let alone = eng.ideal_rate(ModelId::SqueezeNetV2, ComponentId::new(0));
        let w = Workload::from_ids([
            ModelId::SqueezeNetV2,
            ModelId::InceptionV4,
            ModelId::ResNet50,
            ModelId::Vgg16,
        ]);
        let r = eng.evaluate(&w, &Mapping::uniform(&w, ComponentId::new(0)));
        assert!(
            r.per_dnn[0] < alone * 0.2,
            "kernel interleaving should drag SqueezeNet down: {} vs {alone}",
            r.per_dnn[0]
        );
    }

    #[test]
    fn oversubscription_starves_heavy_dnn() {
        // Five models all on the LITTLE cluster: the heavy ones should drop
        // below the starvation potential.
        let p = Platform::orange_pi_5();
        let eng = EventEngine::quick(&p);
        let w = Workload::from_ids([
            ModelId::InceptionV4,
            ModelId::Vgg19,
            ModelId::ResNet50,
            ModelId::DenseNet169,
            ModelId::Vgg16,
        ]);
        let r = eng.evaluate(&w, &Mapping::uniform(&w, ComponentId::new(2)));
        let gpu = ComponentId::new(0);
        let ideals: Vec<f64> =
            w.models().iter().map(|m| eng.ideal_rate(m.id(), gpu)).collect();
        let pots = r.potentials(&ideals);
        assert!(
            pots.iter().any(|&p| p < crate::STARVATION_POTENTIAL),
            "an all-LITTLE pileup must starve someone: {pots:?}"
        );
    }

    #[test]
    fn event_and_analytical_agree_on_ranking() {
        let p = Platform::orange_pi_5();
        let ev = EventEngine::quick(&p);
        let an = AnalyticalEngine::new(&p);
        let w = Workload::from_ids([ModelId::ResNet50, ModelId::MobileNet, ModelId::SqueezeNetV2]);
        let mut rng = StdRng::seed_from_u64(17);
        let mut pairs = Vec::new();
        for _ in 0..8 {
            let m = Mapping::random(&w, 3, &mut rng);
            pairs.push((ev.evaluate(&w, &m).average(), an.evaluate(&w, &m).average()));
        }
        let mut concordant = 0;
        let mut total = 0;
        for i in 0..pairs.len() {
            for j in i + 1..pairs.len() {
                total += 1;
                if (pairs[i].0 - pairs[j].0) * (pairs[i].1 - pairs[j].1) >= 0.0 {
                    concordant += 1;
                }
            }
        }
        assert!(
            concordant as f64 / total as f64 > 0.6,
            "engines should mostly agree on mapping order: {concordant}/{total}"
        );
    }

    #[test]
    fn backpressure_limits_queues() {
        // Indirect check: simulation terminates and produces finite rates
        // even with a pathologically unbalanced pipeline.
        let p = Platform::orange_pi_5();
        let eng = EventEngine::quick(&p);
        let w = Workload::from_ids([ModelId::Vgg16]);
        let mut assign = vec![ComponentId::new(0); 16];
        assign[15] = ComponentId::new(2); // fc tail alone on LITTLE
        let r = eng.evaluate(&w, &Mapping::new(vec![assign]));
        assert!(r.per_dnn[0].is_finite());
        assert!(r.per_dnn[0] > 0.0);
    }

    #[test]
    fn determinism() {
        let p = Platform::orange_pi_5();
        let eng = EventEngine::quick(&p);
        let w = Workload::from_ids([ModelId::AlexNet, ModelId::ResNet50]);
        let mut rng = StdRng::seed_from_u64(3);
        let m = Mapping::random(&w, 3, &mut rng);
        let a = eng.evaluate(&w, &m);
        let b = eng.evaluate(&w, &m);
        assert_eq!(a, b, "the event engine must be deterministic");
    }

    #[test]
    fn spreading_beats_baseline_on_event_engine() {
        let p = Platform::orange_pi_5();
        let eng = EventEngine::quick(&p);
        let w = Workload::from_ids([
            ModelId::SqueezeNetV2,
            ModelId::InceptionV4,
            ModelId::ResNet50,
            ModelId::Vgg16,
        ]);
        let baseline = eng.evaluate(&w, &Mapping::uniform(&w, ComponentId::new(0))).average();
        let mut rng = StdRng::seed_from_u64(9);
        let better = (0..20)
            .filter(|_| {
                let m = Mapping::random(&w, 3, &mut rng);
                eng.evaluate(&w, &m).average() > baseline
            })
            .count();
        assert!(
            better >= 15,
            "most random mappings should beat the all-GPU baseline, got {better}/20"
        );
    }
}
