//! Fixed-point contention solver with kernel-granularity fair sharing.

use crate::contention::{CompiledWorkload, ContentionParams};
use crate::report::ThroughputReport;
use crate::workload::{Mapping, Workload};
use rankmap_platform::Platform;

/// Analytical multi-DNN throughput model.
///
/// Each component is a unit-capacity server shared by the pipeline stages
/// mapped to it. Sharing is **kernel-granularity round-robin** — an OpenCL
/// command queue interleaves kernels from co-resident stages — which in
/// fluid terms is weighted fair sharing with weight equal to the stage's
/// *mean kernel duration*: when everyone is backlogged, a stage with `k`
/// kernels of mean duration `m` completes a frame every `k · Σ_j m_j`
/// seconds. This is what makes a saturated GPU catastrophic for every
/// co-resident DNN (many small kernels each wait a full round), matching
/// the paper's observation that 91% of random partitioned mappings beat
/// the all-on-GPU baseline.
///
/// The solver iterates: rates → per-component weighted max–min allocations
/// → per-DNN bottleneck rates, with geometric damping, until fixed point.
///
/// Orders of magnitude faster than the [`crate::EventEngine`], at the cost
/// of ignoring queueing transients; agreement between the two is checked in
/// tests.
#[derive(Debug, Clone)]
pub struct AnalyticalEngine<'p> {
    platform: &'p Platform,
    params: ContentionParams,
    iterations: usize,
}

impl<'p> AnalyticalEngine<'p> {
    /// Creates a solver with default contention parameters.
    pub fn new(platform: &'p Platform) -> Self {
        Self { platform, params: ContentionParams::default(), iterations: 160 }
    }

    /// Overrides the contention parameters.
    #[must_use]
    pub fn with_params(mut self, params: ContentionParams) -> Self {
        self.params = params;
        self
    }

    /// Evaluates a mapping, returning per-DNN steady-state throughput.
    ///
    /// # Panics
    ///
    /// Panics if the mapping is invalid for this workload/platform.
    pub fn evaluate(&self, workload: &Workload, mapping: &Mapping) -> ThroughputReport {
        let compiled = CompiledWorkload::compile(self.platform, workload, mapping, self.params);
        self.solve(&compiled)
    }

    /// Evaluates a mapping against pre-priced workload costs (the hot-loop
    /// path: no per-query roofline walk). Produces exactly what
    /// [`AnalyticalEngine::evaluate`] would.
    pub fn evaluate_with(
        &self,
        costs: &crate::contention::WorkloadCosts,
        workload: &Workload,
        mapping: &Mapping,
    ) -> ThroughputReport {
        self.solve(&costs.compile(workload, mapping, self.params))
    }

    /// Solves an already compiled workload.
    pub fn solve(&self, compiled: &CompiledWorkload) -> ThroughputReport {
        let n = compiled.dnn_count();
        let by_comp = compiled.stages_by_component();
        // Start at the (inflated) isolated pipeline bound.
        let bounds: Vec<f64> = (0..n).map(|d| compiled.pipeline_bound(d)).collect();
        let mut x: Vec<f64> = bounds.clone();
        for _ in 0..self.iterations {
            let mut limit = vec![f64::INFINITY; n];
            for stages in &by_comp {
                if stages.is_empty() {
                    continue;
                }
                let demands: Vec<f64> = stages
                    .iter()
                    .map(|&(d, k)| x[d] * compiled.stages[d][k].inflated_seconds)
                    .collect();
                // Preemptive components (CPU clusters) share time equally
                // per stage; non-preemptive queues (GPU) serve whole kernels
                // round-robin, i.e. weight = mean kernel duration.
                let weights: Vec<f64> = stages
                    .iter()
                    .map(|&(d, k)| {
                        let s = &compiled.stages[d][k];
                        if s.preemptive {
                            1.0
                        } else {
                            s.mean_kernel_seconds() * 1e3
                        }
                    })
                    .collect();
                let alloc = weighted_max_min_fair(&demands, &weights, 1.0);
                for (i, &(d, k)) in stages.iter().enumerate() {
                    let t = compiled.stages[d][k].inflated_seconds;
                    if t > 0.0 {
                        limit[d] = limit[d].min(alloc[i] / t);
                    }
                }
            }
            let mut max_delta = 0.0f64;
            for d in 0..n {
                let target = limit[d].min(bounds[d]).max(1e-9);
                let next = (x[d] * target).sqrt(); // geometric damping
                max_delta = max_delta.max((next - x[d]).abs() / x[d].max(1e-12));
                x[d] = next;
            }
            if max_delta < 1e-6 {
                break;
            }
        }
        ThroughputReport::new(x)
    }
}

/// Weighted max–min fair allocation of `capacity` across `demands`: every
/// demand is either fully satisfied or capped at a level proportional to
/// its weight; leftover capacity from small demands is redistributed.
///
/// With equal weights this reduces to classic max–min fairness. Weight here
/// is the mean kernel duration: coarse-kernel stages hold the server longer
/// per round, exactly like a non-preemptive round-robin queue.
pub fn weighted_max_min_fair(demands: &[f64], weights: &[f64], capacity: f64) -> Vec<f64> {
    assert_eq!(demands.len(), weights.len(), "demands/weights length mismatch");
    let n = demands.len();
    let mut alloc = vec![0.0; n];
    if n == 0 {
        return alloc;
    }
    let total: f64 = demands.iter().sum();
    if total <= capacity {
        alloc.copy_from_slice(demands);
        return alloc;
    }
    let mut remaining = capacity;
    let mut unsat: Vec<usize> = (0..n).collect();
    loop {
        let weight_sum: f64 = unsat.iter().map(|&i| weights[i].max(1e-12)).sum();
        // Fair level λ such that each unsatisfied i would get λ·w_i.
        let level = remaining / weight_sum;
        let (sat, still): (Vec<usize>, Vec<usize>) = unsat
            .iter()
            .partition(|&&i| demands[i] <= level * weights[i].max(1e-12));
        if sat.is_empty() {
            for &i in &still {
                alloc[i] = level * weights[i].max(1e-12);
            }
            break;
        }
        for &i in &sat {
            alloc[i] = demands[i];
            remaining -= demands[i];
        }
        unsat = still;
        if unsat.is_empty() {
            break;
        }
    }
    alloc
}

#[cfg(test)]
mod tests {
    use super::*;
    use rankmap_models::ModelId;
    use rankmap_platform::ComponentId;

    #[test]
    fn fair_under_capacity_satisfies_all() {
        let a = weighted_max_min_fair(&[0.2, 0.3], &[1.0, 1.0], 1.0);
        assert_eq!(a, vec![0.2, 0.3]);
    }

    #[test]
    fn fair_over_capacity_caps_equally_for_equal_weights() {
        let a = weighted_max_min_fair(&[0.9, 0.9], &[1.0, 1.0], 1.0);
        assert!((a[0] - 0.5).abs() < 1e-12);
        assert!((a[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fair_redistributes_leftover() {
        let a = weighted_max_min_fair(&[0.1, 0.9, 0.9], &[1.0, 1.0, 1.0], 1.0);
        assert!((a[0] - 0.1).abs() < 1e-12);
        assert!((a[1] - 0.45).abs() < 1e-12);
        assert!((a[2] - 0.45).abs() < 1e-12);
    }

    #[test]
    fn fair_conserves_capacity() {
        let a = weighted_max_min_fair(&[0.5, 0.7, 0.2, 1.4], &[1.0, 2.0, 0.5, 4.0], 1.0);
        let sum: f64 = a.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "over-capacity case should use all capacity");
    }

    #[test]
    fn heavier_kernels_get_bigger_share() {
        let a = weighted_max_min_fair(&[1.0, 1.0], &[3.0, 1.0], 1.0);
        assert!((a[0] - 0.75).abs() < 1e-12);
        assert!((a[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn single_dnn_hits_pipeline_bound() {
        let p = Platform::orange_pi_5();
        let w = Workload::from_ids([ModelId::AlexNet]);
        let m = Mapping::uniform(&w, ComponentId::new(0));
        let eng = AnalyticalEngine::new(&p);
        let r = eng.evaluate(&w, &m);
        let compiled = CompiledWorkload::compile(&p, &w, &m, ContentionParams::default());
        let bound = compiled.pipeline_bound(0);
        assert!(
            (r.per_dnn[0] - bound).abs() / bound < 0.02,
            "alone, the solver should sit at the pipeline bound"
        );
    }

    #[test]
    fn adding_dnns_never_helps_existing_ones() {
        let p = Platform::orange_pi_5();
        let eng = AnalyticalEngine::new(&p);
        let w1 = Workload::from_ids([ModelId::ResNet50]);
        let m1 = Mapping::uniform(&w1, ComponentId::new(0));
        let alone = eng.evaluate(&w1, &m1).per_dnn[0];
        let w2 = Workload::from_ids([ModelId::ResNet50, ModelId::Vgg16]);
        let m2 = Mapping::uniform(&w2, ComponentId::new(0));
        let shared = eng.evaluate(&w2, &m2).per_dnn[0];
        assert!(shared < alone, "co-running VGG-16 must cost ResNet-50 throughput");
    }

    #[test]
    fn utilization_conserved_per_component() {
        let p = Platform::orange_pi_5();
        let w = Workload::from_ids([
            ModelId::ResNet50,
            ModelId::Vgg16,
            ModelId::MobileNet,
            ModelId::SqueezeNetV2,
        ]);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
        for _ in 0..10 {
            let m = Mapping::random(&w, 3, &mut rng);
            let compiled = CompiledWorkload::compile(&p, &w, &m, ContentionParams::default());
            let eng = AnalyticalEngine::new(&p);
            let r = eng.solve(&compiled);
            for stages in compiled.stages_by_component() {
                let util: f64 = stages
                    .iter()
                    .map(|&(d, k)| r.per_dnn[d] * compiled.stages[d][k].inflated_seconds)
                    .sum();
                assert!(util <= 1.05, "component over-committed: {util}");
            }
        }
    }

    #[test]
    fn gpu_pileup_collapses_everyone() {
        // Kernel-granularity sharing: even the light DNN is dragged down by
        // heavyweights' kernels on a saturated GPU.
        let p = Platform::orange_pi_5();
        let eng = AnalyticalEngine::new(&p);
        let alone = {
            let w = Workload::from_ids([ModelId::SqueezeNetV2]);
            eng.evaluate(&w, &Mapping::uniform(&w, ComponentId::new(0))).per_dnn[0]
        };
        let w = Workload::from_ids([
            ModelId::SqueezeNetV2,
            ModelId::InceptionV4,
            ModelId::ResNet50,
            ModelId::Vgg16,
        ]);
        let shared =
            eng.evaluate(&w, &Mapping::uniform(&w, ComponentId::new(0))).per_dnn[0];
        assert!(
            shared < alone * 0.15,
            "SqueezeNet should collapse in a 4-DNN GPU pileup: {shared} vs {alone}"
        );
    }

    #[test]
    fn spreading_beats_gpu_pileup_for_4dnns() {
        // The motivation experiment's core claim: distributing a 4-DNN
        // workload usually beats all-on-GPU.
        let p = Platform::orange_pi_5();
        let eng = AnalyticalEngine::new(&p);
        let w = Workload::from_ids([
            ModelId::SqueezeNetV2,
            ModelId::InceptionV4,
            ModelId::ResNet50,
            ModelId::Vgg16,
        ]);
        let baseline = eng.evaluate(&w, &Mapping::uniform(&w, ComponentId::new(0))).average();
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(42);
        let better = (0..60)
            .filter(|_| {
                let m = Mapping::random(&w, 3, &mut rng);
                eng.evaluate(&w, &m).average() > baseline
            })
            .count();
        assert!(
            better > 45,
            "most random mappings should beat the all-GPU baseline, got {better}/60"
        );
    }
}
