//! Workloads (sets of concurrently executing DNNs) and mappings
//! (partition + placement decisions).

use rand::Rng;
use rankmap_models::{DnnModel, ModelId};
use rankmap_platform::ComponentId;
use std::fmt;
use std::ops::Range;

/// A multi-DNN workload: the set of networks that must run concurrently.
///
/// Owns fully built [`DnnModel`] descriptions so that downstream consumers
/// (cost model, estimator featurization) can borrow layer data freely.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    models: Vec<DnnModel>,
}

impl Workload {
    /// Creates a workload from already-built models.
    ///
    /// # Panics
    ///
    /// Panics if `models` is empty.
    pub fn new(models: Vec<DnnModel>) -> Self {
        assert!(!models.is_empty(), "a workload needs at least one DNN");
        Self { models }
    }

    /// Builds a workload from registry ids.
    pub fn from_ids(ids: impl IntoIterator<Item = ModelId>) -> Self {
        let models: Vec<DnnModel> = ids.into_iter().map(ModelId::build).collect();
        Self::new(models)
    }

    /// The DNNs in this workload, in submission order.
    pub fn models(&self) -> &[DnnModel] {
        &self.models
    }

    /// Number of concurrent DNNs (`N` in the paper).
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether the workload is empty (never true for constructed values).
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// Unit counts per DNN — the decision-space dimensions.
    pub fn unit_counts(&self) -> Vec<usize> {
        self.models.iter().map(|m| m.unit_count()).collect()
    }

    /// Total number of schedulable units across all DNNs.
    pub fn total_units(&self) -> usize {
        self.models.iter().map(|m| m.unit_count()).sum()
    }

    /// Size of the mapping space, `d^total_units`, as an `f64` (the paper's
    /// `3^(8+20+18+18) ≈ 4e10` style count).
    pub fn mapping_space(&self, component_count: usize) -> f64 {
        (component_count as f64).powi(self.total_units() as i32)
    }
}

/// Error produced when a mapping does not fit a workload/platform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MappingError {
    /// The mapping has assignments for a different number of DNNs.
    DnnCountMismatch {
        /// DNNs in the mapping.
        mapping: usize,
        /// DNNs in the workload.
        workload: usize,
    },
    /// One DNN's assignment vector has the wrong number of units.
    UnitCountMismatch {
        /// Index of the offending DNN.
        dnn: usize,
        /// Units in the mapping.
        mapping: usize,
        /// Units in the model.
        model: usize,
    },
    /// An assignment references a component the platform does not have.
    UnknownComponent {
        /// Index of the offending DNN.
        dnn: usize,
        /// Index of the offending unit.
        unit: usize,
        /// The out-of-range component.
        component: usize,
    },
}

impl fmt::Display for MappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappingError::DnnCountMismatch { mapping, workload } => write!(
                f,
                "mapping covers {mapping} DNNs but the workload has {workload}"
            ),
            MappingError::UnitCountMismatch { dnn, mapping, model } => write!(
                f,
                "DNN {dnn}: mapping has {mapping} unit assignments, model has {model} units"
            ),
            MappingError::UnknownComponent { dnn, unit, component } => write!(
                f,
                "DNN {dnn} unit {unit}: component {component} does not exist on this platform"
            ),
        }
    }
}

impl std::error::Error for MappingError {}

/// One pipeline stage of a mapped DNN: a contiguous run of units bound to a
/// single component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageSpec {
    /// Half-open range of unit indices fused into this stage.
    pub unit_range: Range<usize>,
    /// The component executing the stage.
    pub component: ComponentId,
}

/// A complete mapping `M`: for every DNN, one component per schedulable
/// unit. Contiguous equal-component runs fuse into pipeline stages, so this
/// encoding covers exactly the paper's `d^units` solution space.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Mapping {
    per_dnn: Vec<Vec<ComponentId>>,
}

impl Mapping {
    /// Creates a mapping from raw per-DNN unit assignments.
    pub fn new(per_dnn: Vec<Vec<ComponentId>>) -> Self {
        Self { per_dnn }
    }

    /// Maps every unit of every DNN onto a single component (the paper's
    /// baseline is `Mapping::uniform(w, gpu)`).
    pub fn uniform(workload: &Workload, component: ComponentId) -> Self {
        Self {
            per_dnn: workload
                .models()
                .iter()
                .map(|m| vec![component; m.unit_count()])
                .collect(),
        }
    }

    /// Draws a uniformly random mapping over `component_count` components.
    pub fn random<R: Rng + ?Sized>(
        workload: &Workload,
        component_count: usize,
        rng: &mut R,
    ) -> Self {
        Self {
            per_dnn: workload
                .models()
                .iter()
                .map(|m| {
                    (0..m.unit_count())
                        .map(|_| ComponentId::new(rng.gen_range(0..component_count)))
                        .collect()
                })
                .collect(),
        }
    }

    /// Builds a mapping from a flat assignment vector laid out DNN-major
    /// (all of DNN 0's units, then DNN 1's, …) — the encoding used by the
    /// search tree.
    ///
    /// # Panics
    ///
    /// Panics if `flat.len() != workload.total_units()`.
    pub fn from_flat(workload: &Workload, flat: &[ComponentId]) -> Self {
        assert_eq!(flat.len(), workload.total_units(), "flat assignment length mismatch");
        let mut per_dnn = Vec::with_capacity(workload.len());
        let mut off = 0;
        for m in workload.models() {
            let n = m.unit_count();
            per_dnn.push(flat[off..off + n].to_vec());
            off += n;
        }
        Self { per_dnn }
    }

    /// Flattens to the DNN-major vector (inverse of [`Mapping::from_flat`]).
    pub fn to_flat(&self) -> Vec<ComponentId> {
        self.per_dnn.iter().flatten().copied().collect()
    }

    /// Per-DNN unit assignments.
    pub fn per_dnn(&self) -> &[Vec<ComponentId>] {
        &self.per_dnn
    }

    /// Assignment vector of one DNN.
    ///
    /// # Panics
    ///
    /// Panics if `dnn` is out of range.
    pub fn assignment(&self, dnn: usize) -> &[ComponentId] {
        &self.per_dnn[dnn]
    }

    /// Checks this mapping against a workload and component count.
    ///
    /// # Errors
    ///
    /// Returns the first [`MappingError`] encountered.
    pub fn validate(
        &self,
        workload: &Workload,
        component_count: usize,
    ) -> Result<(), MappingError> {
        if self.per_dnn.len() != workload.len() {
            return Err(MappingError::DnnCountMismatch {
                mapping: self.per_dnn.len(),
                workload: workload.len(),
            });
        }
        for (d, (assign, model)) in self.per_dnn.iter().zip(workload.models()).enumerate() {
            if assign.len() != model.unit_count() {
                return Err(MappingError::UnitCountMismatch {
                    dnn: d,
                    mapping: assign.len(),
                    model: model.unit_count(),
                });
            }
            for (u, c) in assign.iter().enumerate() {
                if c.index() >= component_count {
                    return Err(MappingError::UnknownComponent {
                        dnn: d,
                        unit: u,
                        component: c.index(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Fuses one DNN's assignment into pipeline stages (maximal contiguous
    /// runs on the same component).
    ///
    /// # Panics
    ///
    /// Panics if `dnn` is out of range.
    pub fn stages(&self, dnn: usize) -> Vec<StageSpec> {
        let assign = &self.per_dnn[dnn];
        let mut out = Vec::new();
        let mut start = 0;
        for i in 1..=assign.len() {
            if i == assign.len() || assign[i] != assign[start] {
                out.push(StageSpec { unit_range: start..i, component: assign[start] });
                start = i;
            }
        }
        out
    }

    /// Total number of pipeline stages across all DNNs.
    pub fn stage_count(&self) -> usize {
        (0..self.per_dnn.len()).map(|d| self.stages(d).len()).sum()
    }
}

impl fmt::Display for Mapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (d, assign) in self.per_dnn.iter().enumerate() {
            write!(f, "dnn{}: ", d)?;
            for c in assign {
                write!(f, "{}", c.index())?;
            }
            if d + 1 < self.per_dnn.len() {
                writeln!(f)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_workload() -> Workload {
        Workload::from_ids([ModelId::AlexNet, ModelId::SqueezeNetV2])
    }

    #[test]
    fn workload_counts() {
        let w = toy_workload();
        assert_eq!(w.len(), 2);
        assert_eq!(w.unit_counts(), vec![8, 10]);
        assert_eq!(w.total_units(), 18);
    }

    #[test]
    fn mapping_space_matches_paper_example() {
        // AlexNet + MobileNet + ResNet-50 + ShuffleNet: 3^(8+20+18+18) ≈ 4e10;
        // the paper's partition-point counts equal our unit counts.
        let w = Workload::from_ids([
            ModelId::AlexNet,
            ModelId::MobileNet,
            ModelId::ResNet50,
            ModelId::ShuffleNet,
        ]);
        assert_eq!(w.total_units(), 8 + 20 + 18 + 18);
        let space = w.mapping_space(3);
        assert!((space.log(3.0) - w.total_units() as f64).abs() < 1e-6);
    }

    #[test]
    fn uniform_mapping_single_stage_per_dnn() {
        let w = toy_workload();
        let m = Mapping::uniform(&w, ComponentId::new(0));
        assert!(m.validate(&w, 3).is_ok());
        for d in 0..w.len() {
            assert_eq!(m.stages(d).len(), 1);
            assert_eq!(m.stages(d)[0].unit_range, 0..w.models()[d].unit_count());
        }
    }

    #[test]
    fn random_mapping_is_valid() {
        let w = toy_workload();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let m = Mapping::random(&w, 3, &mut rng);
            assert!(m.validate(&w, 3).is_ok());
        }
    }

    #[test]
    fn stages_fuse_contiguous_runs() {
        let w = Workload::from_ids([ModelId::AlexNet]);
        assert_eq!(w.unit_counts(), vec![8]);
        let c = |i| ComponentId::new(i);
        let m = Mapping::new(vec![vec![
            c(0),
            c(0),
            c(1),
            c(1),
            c(1),
            c(0),
            c(2),
            c(2),
        ]]);
        let stages = m.stages(0);
        assert_eq!(stages.len(), 4);
        assert_eq!(stages[0].unit_range, 0..2);
        assert_eq!(stages[1].unit_range, 2..5);
        assert_eq!(stages[2].unit_range, 5..6);
        assert_eq!(stages[3].unit_range, 6..8);
        assert_eq!(m.stage_count(), 4);
    }

    #[test]
    fn flat_roundtrip() {
        let w = toy_workload();
        let mut rng = StdRng::seed_from_u64(3);
        let m = Mapping::random(&w, 3, &mut rng);
        let flat = m.to_flat();
        assert_eq!(Mapping::from_flat(&w, &flat), m);
    }

    #[test]
    fn validation_catches_unit_mismatch() {
        let w = toy_workload();
        let m = Mapping::new(vec![vec![ComponentId::new(0); 8], vec![ComponentId::new(0); 9]]);
        match m.validate(&w, 3) {
            Err(MappingError::UnitCountMismatch { dnn: 1, mapping: 9, model: 10 }) => {}
            other => panic!("expected unit mismatch, got {other:?}"),
        }
    }

    #[test]
    fn validation_catches_bad_component() {
        let w = toy_workload();
        let mut per = Mapping::uniform(&w, ComponentId::new(0)).per_dnn().to_vec();
        per[0][3] = ComponentId::new(9);
        let m = Mapping::new(per);
        assert!(matches!(
            m.validate(&w, 3),
            Err(MappingError::UnknownComponent { dnn: 0, unit: 3, component: 9 })
        ));
    }

    #[test]
    fn display_is_compact() {
        let w = Workload::from_ids([ModelId::AlexNet]);
        let m = Mapping::uniform(&w, ComponentId::new(2));
        assert_eq!(m.to_string(), "dnn0: 22222222");
    }
}
