//! Roofline cost model: how long does a layer / unit / stage take on a
//! given component, in isolation?

use rankmap_models::{DnnModel, LayerDesc, Unit};
use rankmap_platform::{ComponentId, Platform};

/// Isolated-execution cost model over a platform.
///
/// Per layer: `t = max(flops / attained_gflops, bytes / mem_bw) + overhead`,
/// where attained GFLOPS includes the component's base efficiency and a
/// utilization ramp penalizing small kernels (see
/// [`rankmap_platform::Component::attained_gflops`]).
#[derive(Debug, Clone)]
pub struct CostModel<'p> {
    platform: &'p Platform,
}

impl<'p> CostModel<'p> {
    /// Creates a cost model over the platform.
    pub fn new(platform: &'p Platform) -> Self {
        Self { platform }
    }

    /// The platform this model prices against.
    pub fn platform(&self) -> &'p Platform {
        self.platform
    }

    /// Seconds to execute one layer on a component, in isolation.
    pub fn layer_seconds(&self, layer: &LayerDesc, c: ComponentId) -> f64 {
        let comp = self.platform.component(c);
        let flops = layer.flops();
        let compute = flops / (comp.attained_gflops(flops).max(1e-9) * 1e9);
        let memory = layer.memory_bytes() as f64 / (comp.mem_bw_gbps * 1e9);
        compute.max(memory) + comp.kernel_overhead_us * 1e-6
    }

    /// Seconds to execute one schedulable unit on a component, in isolation.
    pub fn unit_seconds(&self, unit: &Unit, c: ComponentId) -> f64 {
        unit.layers.iter().map(|l| self.layer_seconds(l, c)).sum()
    }

    /// Seconds for a contiguous run of units `range` of `model` on `c`.
    pub fn stage_seconds(
        &self,
        model: &DnnModel,
        range: std::ops::Range<usize>,
        c: ComponentId,
    ) -> f64 {
        model.units()[range].iter().map(|u| self.unit_seconds(u, c)).sum()
    }

    /// Working-set bytes of a stage: weights + peak activation footprint of
    /// its units (used by the cache-sensitivity contention model).
    pub fn stage_working_set(&self, model: &DnnModel, range: std::ops::Range<usize>) -> f64 {
        let units = &model.units()[range];
        let weights: u64 = units.iter().map(Unit::weight_bytes).sum();
        let peak_act = units.iter().map(Unit::peak_activation_bytes).max().unwrap_or(0);
        (weights + peak_act) as f64
    }

    /// Seconds to move a stage-boundary tensor between two components
    /// (zero when they are the same component).
    pub fn transfer_seconds(&self, bytes: f64, from: ComponentId, to: ComponentId) -> f64 {
        if from == to {
            0.0
        } else {
            self.platform.transfer_link().transfer_seconds(bytes)
        }
    }

    /// Isolated pipeline throughput (inferences/second) for a mapped DNN:
    /// the steady-state rate of the slowest pipeline element, counting
    /// inter-stage transfers as pipeline elements.
    pub fn isolated_pipeline_rate(
        &self,
        model: &DnnModel,
        stages: &[crate::workload::StageSpec],
    ) -> f64 {
        let mut bottleneck: f64 = 0.0;
        for (i, st) in stages.iter().enumerate() {
            let t = self.stage_seconds(model, st.unit_range.clone(), st.component);
            bottleneck = bottleneck.max(t);
            if i + 1 < stages.len() {
                let bytes =
                    model.units()[st.unit_range.end - 1].output_shape().bytes() as f64;
                let tr = self.transfer_seconds(bytes, st.component, stages[i + 1].component);
                bottleneck = bottleneck.max(tr);
            }
        }
        if bottleneck <= 0.0 {
            0.0
        } else {
            1.0 / bottleneck
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{Mapping, Workload};
    use rankmap_models::ModelId;
    use rankmap_platform::ComponentKind;

    fn setup() -> Platform {
        Platform::orange_pi_5()
    }

    #[test]
    fn gpu_beats_little_on_big_convs() {
        let p = setup();
        let cost = CostModel::new(&p);
        let m = ModelId::Vgg16.build();
        let conv3 = &m.units()[4].layers[0]; // a mid-network 256-channel conv
        let gpu = cost.layer_seconds(conv3, p.id_of_kind(ComponentKind::Gpu).unwrap());
        let little = cost.layer_seconds(conv3, p.id_of_kind(ComponentKind::LittleCpu).unwrap());
        assert!(gpu < little, "GPU should beat LITTLE on a large conv");
    }

    #[test]
    fn tiny_kernels_prefer_cpu_dispatch() {
        let p = setup();
        let cost = CostModel::new(&p);
        // A tiny squeeze conv: GPU overhead dominates.
        let m = ModelId::SqueezeNetV2.build();
        let squeeze = &m.units()[1].layers[0];
        let gpu = cost.layer_seconds(squeeze, p.id_of_kind(ComponentKind::Gpu).unwrap());
        let big = cost.layer_seconds(squeeze, p.id_of_kind(ComponentKind::BigCpu).unwrap());
        assert!(
            big < gpu,
            "tiny kernels should run faster on the big CPU ({big} vs {gpu})"
        );
    }

    #[test]
    fn stage_time_is_sum_of_units() {
        let p = setup();
        let cost = CostModel::new(&p);
        let m = ModelId::AlexNet.build();
        let c = ComponentId::new(0);
        let whole = cost.stage_seconds(&m, 0..m.unit_count(), c);
        let split: f64 = (0..m.unit_count())
            .map(|i| cost.stage_seconds(&m, i..i + 1, c))
            .sum();
        assert!((whole - split).abs() < 1e-12);
    }

    #[test]
    fn isolated_rate_monotone_in_partitioning() {
        // Splitting a DNN into pipeline stages on the same component can
        // only help (bottleneck shrinks) when transfers are free (same
        // component → no transfer cost).
        let p = setup();
        let cost = CostModel::new(&p);
        let w = Workload::from_ids([ModelId::ResNet50]);
        let m = &w.models()[0];
        let gpu = ComponentId::new(0);
        let whole = Mapping::uniform(&w, gpu);
        let rate_whole = cost.isolated_pipeline_rate(m, &whole.stages(0));
        // Split in half, still all on GPU → identical stages fuse back, so
        // compare against a two-component split instead.
        let mut assign = vec![gpu; m.unit_count()];
        for a in assign.iter_mut().take(m.unit_count() / 2) {
            *a = ComponentId::new(1);
        }
        let half = Mapping::new(vec![assign]);
        let rate_half = cost.isolated_pipeline_rate(m, &half.stages(0));
        assert!(rate_whole > 0.0 && rate_half > 0.0);
        // Pipelining across big CPU + GPU should beat GPU-alone for ResNet-50
        // or at least be in the same ballpark (bottleneck halves, transfer small).
        assert!(
            rate_half > rate_whole * 0.5,
            "pipelined rate {rate_half} collapsed vs whole {rate_whole}"
        );
    }

    #[test]
    fn transfer_zero_on_same_component() {
        let p = setup();
        let cost = CostModel::new(&p);
        assert_eq!(cost.transfer_seconds(1e6, ComponentId::new(1), ComponentId::new(1)), 0.0);
        assert!(cost.transfer_seconds(1e6, ComponentId::new(0), ComponentId::new(1)) > 0.0);
    }

    #[test]
    fn working_set_includes_weights() {
        let p = setup();
        let cost = CostModel::new(&p);
        let m = ModelId::Vgg16.build();
        let ws = cost.stage_working_set(&m, 0..m.unit_count());
        assert!(ws > m.total_weight_bytes() as f64 * 0.99);
    }

    /// Calibration against the paper's reported single-DNN GPU throughputs
    /// (§V-B): Inception-ResNet-V1 ≈ 4, AlexNet ≈ 43, SqueezeNet-V1 ≈ 67,
    /// ResNet-50 ≈ 20 inferences/s. The simulated board should land within
    /// a factor of ~2 of each — the experiments depend on relative order,
    /// not absolute values.
    #[test]
    fn calibration_matches_paper_t_ideal_shape() {
        let p = setup();
        let cost = CostModel::new(&p);
        let gpu = ComponentId::new(0);
        let rate = |id: ModelId| {
            let w = Workload::from_ids([id]);
            let m = &w.models()[0];
            let map = Mapping::uniform(&w, gpu);
            cost.isolated_pipeline_rate(m, &map.stages(0))
        };
        let inception = rate(ModelId::InceptionResnetV1);
        let alexnet = rate(ModelId::AlexNet);
        let squeezenet = rate(ModelId::SqueezeNet);
        let resnet = rate(ModelId::ResNet50);
        let within = |measured: f64, paper: f64| measured > paper / 2.2 && measured < paper * 2.2;
        assert!(within(inception, 4.0), "Inception-ResNet-V1 ideal ≈ 4, got {inception:.1}");
        assert!(within(alexnet, 43.0), "AlexNet ideal ≈ 43, got {alexnet:.1}");
        assert!(within(squeezenet, 67.0), "SqueezeNet ideal ≈ 67, got {squeezenet:.1}");
        assert!(within(resnet, 20.0), "ResNet-50 ideal ≈ 20, got {resnet:.1}");
        // Relative order must hold exactly.
        assert!(squeezenet > alexnet && alexnet > resnet && resnet > inception);
    }
}
