//! Per-DNN throughput reports produced by the engines.

use std::fmt;

/// Result of evaluating a mapping: the steady-state throughput of every DNN
/// in the workload, in inferences per second.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputReport {
    /// `per_dnn[d]` = inferences/second of DNN `d`.
    pub per_dnn: Vec<f64>,
}

impl ThroughputReport {
    /// Wraps per-DNN rates.
    pub fn new(per_dnn: Vec<f64>) -> Self {
        Self { per_dnn }
    }

    /// The paper's system throughput `T = Σ tᵢ / N`.
    pub fn average(&self) -> f64 {
        if self.per_dnn.is_empty() {
            0.0
        } else {
            self.per_dnn.iter().sum::<f64>() / self.per_dnn.len() as f64
        }
    }

    /// Potential throughput `Pᵢ = tᵢ_current / tᵢ_ideal` for each DNN, given
    /// the matching vector of isolated-on-GPU rates.
    ///
    /// # Panics
    ///
    /// Panics if `ideals` has a different length.
    pub fn potentials(&self, ideals: &[f64]) -> Vec<f64> {
        assert_eq!(ideals.len(), self.per_dnn.len(), "ideal rates length mismatch");
        self.per_dnn
            .iter()
            .zip(ideals)
            .map(|(&t, &ideal)| if ideal > 0.0 { t / ideal } else { 0.0 })
            .collect()
    }

    /// Minimum per-DNN throughput (what the starvation threshold guards).
    pub fn min(&self) -> f64 {
        self.per_dnn.iter().copied().fold(f64::INFINITY, f64::min)
    }
}

impl fmt::Display for ThroughputReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, t) in self.per_dnn.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t:.2}")?;
        }
        write!(f, "] inf/s (avg {:.2})", self.average())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_matches_paper_definition() {
        let r = ThroughputReport::new(vec![10.0, 20.0, 30.0]);
        assert!((r.average() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn potentials_divide_by_ideal() {
        let r = ThroughputReport::new(vec![5.0, 10.0]);
        let p = r.potentials(&[10.0, 40.0]);
        assert_eq!(p, vec![0.5, 0.25]);
    }

    #[test]
    fn zero_ideal_yields_zero_potential() {
        let r = ThroughputReport::new(vec![5.0]);
        assert_eq!(r.potentials(&[0.0]), vec![0.0]);
    }

    #[test]
    fn min_finds_weakest() {
        let r = ThroughputReport::new(vec![4.0, 0.5, 9.0]);
        assert_eq!(r.min(), 0.5);
    }

    #[test]
    fn display_shows_average() {
        let r = ThroughputReport::new(vec![1.0, 3.0]);
        assert!(r.to_string().contains("avg 2.00"));
    }
}
