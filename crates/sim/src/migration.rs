//! Migration-cost model: what switching from one mapping to another costs.
//!
//! Re-mapping a running workload is not free. Every schedulable unit that
//! moves to a different component has to have its weights re-staged for
//! the new executor — on a shared-memory SoC that is a write-back plus a
//! read through DRAM and a runtime synchronization point, exactly the
//! [`Link`](rankmap_platform::Link) the platform already models for
//! inter-stage activation traffic. The model here charges
//! `link.transfer_seconds(unit_weight_bytes)` per moved unit and reports
//! the total as a *stall*: the window during which the remapped pipelines
//! are not producing inferences.
//!
//! Freshly arrived DNNs are not charged — their weights must be loaded
//! under any mapping, so they cannot differentiate candidate mappings in a
//! remap decision.

use crate::workload::{Mapping, Workload};
use rankmap_platform::Platform;

/// The cost of migrating a running workload from one mapping to another.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MigrationCost {
    /// Total stall in seconds (weight re-staging over the transfer link).
    pub stall_seconds: f64,
    /// Total weight bytes moved between components.
    pub moved_bytes: f64,
    /// Number of schedulable units whose component changed.
    pub moved_units: usize,
}

impl MigrationCost {
    /// A free migration (nothing moved).
    pub const ZERO: MigrationCost =
        MigrationCost { stall_seconds: 0.0, moved_bytes: 0.0, moved_units: 0 };

    /// Whether anything actually moves.
    pub fn is_free(&self) -> bool {
        self.moved_units == 0
    }
}

/// Computes [`MigrationCost`]s from a platform's transfer link and the
/// workload's per-unit weight footprints.
#[derive(Debug, Clone)]
pub struct MigrationModel<'p> {
    platform: &'p Platform,
}

impl<'p> MigrationModel<'p> {
    /// Creates a model over a platform.
    pub fn new(platform: &'p Platform) -> Self {
        Self { platform }
    }

    /// Cost of moving `workload` from its incumbent placements to `new`.
    ///
    /// `old[d]` is DNN `d`'s incumbent unit assignment, or `None` for a
    /// freshly arrived DNN (charged nothing — its load cost is identical
    /// under every candidate mapping). Incumbent slices whose length does
    /// not match the model's unit count are treated as fresh.
    ///
    /// # Panics
    ///
    /// Panics if `old.len() != workload.len()` or if `new` does not cover
    /// the workload.
    pub fn cost(
        &self,
        workload: &Workload,
        old: &[Option<Vec<rankmap_platform::ComponentId>>],
        new: &Mapping,
    ) -> MigrationCost {
        assert_eq!(old.len(), workload.len(), "one incumbent entry per DNN");
        assert_eq!(new.per_dnn().len(), workload.len(), "mapping must cover the workload");
        let link = self.platform.transfer_link();
        let mut cost = MigrationCost::ZERO;
        for (d, model) in workload.models().iter().enumerate() {
            let Some(prev) = &old[d] else { continue };
            if prev.len() != model.unit_count() {
                continue;
            }
            for (u, unit) in model.units().iter().enumerate() {
                if prev[u] != new.assignment(d)[u] {
                    let bytes = unit.weight_bytes() as f64;
                    cost.stall_seconds += link.transfer_seconds(bytes);
                    cost.moved_bytes += bytes;
                    cost.moved_units += 1;
                }
            }
        }
        cost
    }

    /// Convenience: cost between two complete mappings of the same
    /// workload (every DNN treated as surviving).
    ///
    /// # Panics
    ///
    /// Panics if either mapping does not cover the workload.
    pub fn cost_between(
        &self,
        workload: &Workload,
        old: &Mapping,
        new: &Mapping,
    ) -> MigrationCost {
        let old_vecs: Vec<Option<Vec<rankmap_platform::ComponentId>>> =
            old.per_dnn().iter().map(|v| Some(v.clone())).collect();
        self.cost(workload, &old_vecs, new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rankmap_models::ModelId;
    use rankmap_platform::ComponentId;

    fn w() -> Workload {
        Workload::from_ids([ModelId::AlexNet, ModelId::SqueezeNetV2])
    }

    #[test]
    fn identical_mappings_are_free() {
        let p = Platform::orange_pi_5();
        let m = Mapping::uniform(&w(), ComponentId::new(0));
        let cost = MigrationModel::new(&p).cost_between(&w(), &m, &m);
        assert_eq!(cost, MigrationCost::ZERO);
        assert!(cost.is_free());
    }

    #[test]
    fn full_move_charges_every_unit() {
        let p = Platform::orange_pi_5();
        let workload = w();
        let old = Mapping::uniform(&workload, ComponentId::new(0));
        let new = Mapping::uniform(&workload, ComponentId::new(1));
        let cost = MigrationModel::new(&p).cost_between(&workload, &old, &new);
        assert_eq!(cost.moved_units, workload.total_units());
        let total_weights: f64 = workload
            .models()
            .iter()
            .map(|m| m.total_weight_bytes() as f64)
            .sum();
        assert!((cost.moved_bytes - total_weights).abs() < 1.0);
        assert!(cost.stall_seconds > 0.0);
    }

    #[test]
    fn fresh_arrivals_cost_nothing() {
        let p = Platform::orange_pi_5();
        let workload = w();
        let new = Mapping::uniform(&workload, ComponentId::new(1));
        // DNN 0 survives on component 0 (moves), DNN 1 is a fresh arrival.
        let old = vec![
            Some(vec![ComponentId::new(0); workload.models()[0].unit_count()]),
            None,
        ];
        let cost = MigrationModel::new(&p).cost(&workload, &old, &new);
        assert_eq!(cost.moved_units, workload.models()[0].unit_count());
        assert!(
            (cost.moved_bytes - workload.models()[0].total_weight_bytes() as f64).abs() < 1.0
        );
    }

    #[test]
    fn heavier_weights_stall_longer() {
        let p = Platform::orange_pi_5();
        let light = Workload::from_ids([ModelId::SqueezeNetV2]);
        let heavy = Workload::from_ids([ModelId::Vgg16]);
        let mm = MigrationModel::new(&p);
        let stall = |wl: &Workload| {
            mm.cost_between(
                wl,
                &Mapping::uniform(wl, ComponentId::new(0)),
                &Mapping::uniform(wl, ComponentId::new(2)),
            )
            .stall_seconds
        };
        assert!(
            stall(&heavy) > stall(&light) * 10.0,
            "VGG-16's weights should dwarf SqueezeNet's transfer time"
        );
    }

    #[test]
    fn partial_move_charges_only_changed_units() {
        let p = Platform::orange_pi_5();
        let workload = Workload::from_ids([ModelId::AlexNet]);
        let n = workload.models()[0].unit_count();
        let old = Mapping::uniform(&workload, ComponentId::new(0));
        let mut assign = vec![ComponentId::new(0); n];
        assign[n - 1] = ComponentId::new(1);
        let new = Mapping::new(vec![assign]);
        let cost = MigrationModel::new(&p).cost_between(&workload, &old, &new);
        assert_eq!(cost.moved_units, 1);
        let last_unit = workload.models()[0].units()[n - 1].weight_bytes() as f64;
        assert!((cost.moved_bytes - last_unit).abs() < 1.0);
    }
}
