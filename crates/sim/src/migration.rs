//! Migration-cost model: what switching from one mapping to another costs.
//!
//! Re-mapping a running workload is not free. Two charges make up the
//! stall window during which the remapped pipelines produce nothing:
//!
//! * **Weight re-staging.** Every schedulable unit that moves to a
//!   different component has to have its weights re-staged for the new
//!   executor — on a shared-memory SoC that is a write-back plus a read
//!   through DRAM and a runtime synchronization point, exactly the
//!   [`Link`](rankmap_platform::Link) the platform already models for
//!   inter-stage activation traffic. The model charges
//!   `link.transfer_seconds(unit_weight_bytes)` per moved unit.
//! * **Estimator warm-up.** The serving stack keeps a compiled stem
//!   (per-stage embeddings + stacked decoder inputs, see
//!   `rankmap_estimator::CompiledStem`) for the running workload context.
//!   A component switch invalidates the stem entries of every DNN whose
//!   placement changed, and the rebuild runs on the CPU before the next
//!   remap decision can be scored. The model charges
//!   [`MigrationModel::stem_rebuild_per_unit`] seconds per schedulable
//!   unit of each re-placed DNN (rebuild cost is linear in the stages the
//!   stem compiles). `with_stem_rebuild(0.0)` restores the weight-only
//!   model.
//!
//! Freshly arrived DNNs are not charged either way — their weights must
//! be loaded and their stem compiled under any mapping, so they cannot
//! differentiate candidate mappings in a remap decision.

use crate::workload::{Mapping, Workload};
use rankmap_platform::Platform;

/// Default estimator warm-up charge per schedulable unit of a re-placed
/// DNN, in seconds. Calibrated to the compiled-stem rebuild of the
/// multi-task estimator on the big CPU cluster: one embedding-table pass
/// plus the stacked decoder-input refresh per stage, ~1.5 ms each.
pub const STEM_REBUILD_PER_UNIT: f64 = 1.5e-3;

/// The cost of migrating a running workload from one mapping to another.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MigrationCost {
    /// Total stall in seconds: weight re-staging plus estimator warm-up.
    pub stall_seconds: f64,
    /// Weight re-staging share of the stall (transfer-link time).
    pub weight_seconds: f64,
    /// Estimator warm-up share of the stall (compiled-stem rebuild).
    pub stem_seconds: f64,
    /// Total weight bytes moved between components.
    pub moved_bytes: f64,
    /// Number of schedulable units whose component changed.
    pub moved_units: usize,
    /// Number of surviving DNNs whose placement changed (each one's stem
    /// entries are rebuilt).
    pub rebuilt_dnns: usize,
}

impl MigrationCost {
    /// A free migration (nothing moved).
    pub const ZERO: MigrationCost = MigrationCost {
        stall_seconds: 0.0,
        weight_seconds: 0.0,
        stem_seconds: 0.0,
        moved_bytes: 0.0,
        moved_units: 0,
        rebuilt_dnns: 0,
    };

    /// Whether anything actually moves.
    pub fn is_free(&self) -> bool {
        self.moved_units == 0
    }
}

/// Computes [`MigrationCost`]s from a platform's transfer link, the
/// workload's per-unit weight footprints, and the estimator warm-up model.
#[derive(Debug, Clone)]
pub struct MigrationModel<'p> {
    platform: &'p Platform,
    stem_rebuild_per_unit: f64,
}

impl<'p> MigrationModel<'p> {
    /// Creates a model over a platform with the default estimator warm-up
    /// charge ([`STEM_REBUILD_PER_UNIT`]).
    pub fn new(platform: &'p Platform) -> Self {
        Self { platform, stem_rebuild_per_unit: STEM_REBUILD_PER_UNIT }
    }

    /// Overrides the estimator warm-up charge (seconds per schedulable
    /// unit of a re-placed DNN). `0.0` restores the weight-only model.
    ///
    /// # Panics
    ///
    /// Panics if `seconds_per_unit` is negative or non-finite.
    pub fn with_stem_rebuild(mut self, seconds_per_unit: f64) -> Self {
        assert!(
            seconds_per_unit.is_finite() && seconds_per_unit >= 0.0,
            "stem rebuild charge must be a non-negative finite time"
        );
        self.stem_rebuild_per_unit = seconds_per_unit;
        self
    }

    /// The estimator warm-up charge per unit of a re-placed DNN (seconds).
    pub fn stem_rebuild_per_unit(&self) -> f64 {
        self.stem_rebuild_per_unit
    }

    /// Cost of moving `workload` from its incumbent placements to `new`.
    ///
    /// `old[d]` is DNN `d`'s incumbent unit assignment, or `None` for a
    /// freshly arrived DNN (charged nothing — its load cost is identical
    /// under every candidate mapping). Incumbent slices whose length does
    /// not match the model's unit count are treated as fresh.
    ///
    /// # Panics
    ///
    /// Panics if `old.len() != workload.len()` or if `new` does not cover
    /// the workload.
    pub fn cost(
        &self,
        workload: &Workload,
        old: &[Option<Vec<rankmap_platform::ComponentId>>],
        new: &Mapping,
    ) -> MigrationCost {
        assert_eq!(old.len(), workload.len(), "one incumbent entry per DNN");
        assert_eq!(new.per_dnn().len(), workload.len(), "mapping must cover the workload");
        let link = self.platform.transfer_link();
        let mut cost = MigrationCost::ZERO;
        for (d, model) in workload.models().iter().enumerate() {
            let Some(prev) = &old[d] else { continue };
            if prev.len() != model.unit_count() {
                continue;
            }
            let mut dnn_moved = false;
            for (u, unit) in model.units().iter().enumerate() {
                if prev[u] != new.assignment(d)[u] {
                    let bytes = unit.weight_bytes() as f64;
                    cost.weight_seconds += link.transfer_seconds(bytes);
                    cost.moved_bytes += bytes;
                    cost.moved_units += 1;
                    dnn_moved = true;
                }
            }
            if dnn_moved {
                // The compiled stem caches one embedding per stage of the
                // DNN's placement context; any switch rebuilds them all.
                cost.stem_seconds += self.stem_rebuild_per_unit * model.unit_count() as f64;
                cost.rebuilt_dnns += 1;
            }
        }
        cost.stall_seconds = cost.weight_seconds + cost.stem_seconds;
        cost
    }

    /// Cost of re-staging *every* unit of `workload` — weights and stem
    /// rebuilds for all DNNs, priced without fabricating a component
    /// pair. This is the (lower-bound) charge for moving a workload to
    /// another board entirely, where no incumbent placement survives.
    pub fn full_restage(&self, workload: &Workload) -> MigrationCost {
        let link = self.platform.transfer_link();
        let mut cost = MigrationCost::ZERO;
        for model in workload.models() {
            for unit in model.units() {
                let bytes = unit.weight_bytes() as f64;
                cost.weight_seconds += link.transfer_seconds(bytes);
                cost.moved_bytes += bytes;
                cost.moved_units += 1;
            }
            cost.stem_seconds += self.stem_rebuild_per_unit * model.unit_count() as f64;
            cost.rebuilt_dnns += 1;
        }
        cost.stall_seconds = cost.weight_seconds + cost.stem_seconds;
        cost
    }

    /// Convenience: cost between two complete mappings of the same
    /// workload (every DNN treated as surviving).
    ///
    /// # Panics
    ///
    /// Panics if either mapping does not cover the workload.
    pub fn cost_between(
        &self,
        workload: &Workload,
        old: &Mapping,
        new: &Mapping,
    ) -> MigrationCost {
        let old_vecs: Vec<Option<Vec<rankmap_platform::ComponentId>>> =
            old.per_dnn().iter().map(|v| Some(v.clone())).collect();
        self.cost(workload, &old_vecs, new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rankmap_models::ModelId;
    use rankmap_platform::ComponentId;

    fn w() -> Workload {
        Workload::from_ids([ModelId::AlexNet, ModelId::SqueezeNetV2])
    }

    #[test]
    fn identical_mappings_are_free() {
        let p = Platform::orange_pi_5();
        let m = Mapping::uniform(&w(), ComponentId::new(0));
        let cost = MigrationModel::new(&p).cost_between(&w(), &m, &m);
        assert_eq!(cost, MigrationCost::ZERO);
        assert!(cost.is_free());
    }

    #[test]
    fn full_move_charges_every_unit() {
        let p = Platform::orange_pi_5();
        let workload = w();
        let old = Mapping::uniform(&workload, ComponentId::new(0));
        let new = Mapping::uniform(&workload, ComponentId::new(1));
        let cost = MigrationModel::new(&p).cost_between(&workload, &old, &new);
        assert_eq!(cost.moved_units, workload.total_units());
        let total_weights: f64 = workload
            .models()
            .iter()
            .map(|m| m.total_weight_bytes() as f64)
            .sum();
        assert!((cost.moved_bytes - total_weights).abs() < 1.0);
        assert!(cost.stall_seconds > 0.0);
    }

    #[test]
    fn fresh_arrivals_cost_nothing() {
        let p = Platform::orange_pi_5();
        let workload = w();
        let new = Mapping::uniform(&workload, ComponentId::new(1));
        // DNN 0 survives on component 0 (moves), DNN 1 is a fresh arrival.
        let old = vec![
            Some(vec![ComponentId::new(0); workload.models()[0].unit_count()]),
            None,
        ];
        let cost = MigrationModel::new(&p).cost(&workload, &old, &new);
        assert_eq!(cost.moved_units, workload.models()[0].unit_count());
        assert_eq!(cost.rebuilt_dnns, 1, "only the survivor rebuilds its stem");
        assert!(
            (cost.moved_bytes - workload.models()[0].total_weight_bytes() as f64).abs() < 1.0
        );
    }

    #[test]
    fn heavier_weights_stall_longer() {
        let p = Platform::orange_pi_5();
        let light = Workload::from_ids([ModelId::SqueezeNetV2]);
        let heavy = Workload::from_ids([ModelId::Vgg16]);
        let mm = MigrationModel::new(&p);
        let cost = |wl: &Workload| {
            mm.cost_between(
                wl,
                &Mapping::uniform(wl, ComponentId::new(0)),
                &Mapping::uniform(wl, ComponentId::new(2)),
            )
        };
        assert!(
            cost(&heavy).weight_seconds > cost(&light).weight_seconds * 10.0,
            "VGG-16's weights should dwarf SqueezeNet's transfer time"
        );
        assert!(cost(&heavy).stall_seconds > cost(&light).stall_seconds);
    }

    #[test]
    fn partial_move_charges_only_changed_units() {
        let p = Platform::orange_pi_5();
        let workload = Workload::from_ids([ModelId::AlexNet]);
        let n = workload.models()[0].unit_count();
        let old = Mapping::uniform(&workload, ComponentId::new(0));
        let mut assign = vec![ComponentId::new(0); n];
        assign[n - 1] = ComponentId::new(1);
        let new = Mapping::new(vec![assign]);
        let cost = MigrationModel::new(&p).cost_between(&workload, &old, &new);
        assert_eq!(cost.moved_units, 1);
        let last_unit = workload.models()[0].units()[n - 1].weight_bytes() as f64;
        assert!((cost.moved_bytes - last_unit).abs() < 1.0);
    }

    #[test]
    fn full_restage_prices_every_unit_like_a_complete_move() {
        let p = Platform::orange_pi_5();
        let workload = w();
        let mm = MigrationModel::new(&p);
        let restage = mm.full_restage(&workload);
        // On a single-shared-link platform it must agree with moving
        // everything between any two components.
        let moved = mm.cost_between(
            &workload,
            &Mapping::uniform(&workload, ComponentId::new(0)),
            &Mapping::uniform(&workload, ComponentId::new(2)),
        );
        assert_eq!(restage, moved);
        assert_eq!(restage.moved_units, workload.total_units());
        assert_eq!(restage.rebuilt_dnns, workload.len());
    }

    #[test]
    fn stem_rebuild_is_charged_per_replaced_dnn() {
        let p = Platform::orange_pi_5();
        let workload = w();
        let old = Mapping::uniform(&workload, ComponentId::new(0));
        // Move only DNN 1 (SqueezeNet); DNN 0 stays put.
        let mut per_dnn = old.per_dnn().to_vec();
        per_dnn[1] = vec![ComponentId::new(1); workload.models()[1].unit_count()];
        let new = Mapping::new(per_dnn);
        let cost = MigrationModel::new(&p).cost_between(&workload, &old, &new);
        assert_eq!(cost.rebuilt_dnns, 1);
        let expected = STEM_REBUILD_PER_UNIT * workload.models()[1].unit_count() as f64;
        assert!((cost.stem_seconds - expected).abs() < 1e-12);
        assert!(
            (cost.stall_seconds - cost.weight_seconds - cost.stem_seconds).abs() < 1e-12,
            "stall must be the sum of its parts"
        );
    }

    #[test]
    fn disabling_stem_rebuild_restores_weight_only_stall() {
        let p = Platform::orange_pi_5();
        let workload = w();
        let old = Mapping::uniform(&workload, ComponentId::new(0));
        let new = Mapping::uniform(&workload, ComponentId::new(1));
        let with = MigrationModel::new(&p).cost_between(&workload, &old, &new);
        let without = MigrationModel::new(&p)
            .with_stem_rebuild(0.0)
            .cost_between(&workload, &old, &new);
        assert_eq!(without.stem_seconds, 0.0);
        assert!((without.stall_seconds - without.weight_seconds).abs() < 1e-15);
        assert!(with.stall_seconds > without.stall_seconds);
        assert_eq!(with.moved_bytes, without.moved_bytes);
    }
}
