//! Property-based tests over the whole model zoo.

use proptest::prelude::*;
use rankmap_models::{LayerType, ModelId};

fn arb_model() -> impl Strategy<Value = ModelId> {
    let all = ModelId::all();
    (0..all.len()).prop_map(move |i| all[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every model's accounting is self-consistent.
    #[test]
    fn model_accounting_consistent(id in arb_model()) {
        let m = id.build();
        let unit_flops: f64 = m.units().iter().map(|u| u.flops()).sum();
        prop_assert!((unit_flops - m.total_flops()).abs() < 1.0);
        let unit_bytes: u64 = m.units().iter().map(|u| u.weight_bytes()).sum();
        prop_assert_eq!(unit_bytes, m.total_weight_bytes());
        prop_assert_eq!(m.layer_count(), m.layers().count());
    }

    /// Every layer has sane shapes: positive dims, non-zero output.
    #[test]
    fn layer_shapes_sane(id in arb_model()) {
        let m = id.build();
        for l in m.layers() {
            prop_assert!(l.ofm.elements() > 0, "{}: empty output in layer {}", id, l.index);
            prop_assert!(l.ifm.elements() > 0, "{}: empty input in layer {}", id, l.index);
            prop_assert!(l.flops() > 0.0);
            if matches!(l.ty, LayerType::Conv | LayerType::DwConv | LayerType::Fc) {
                prop_assert!(l.weights.elements() > 0, "{}: weightless {} layer", id, l.ty);
            }
        }
    }

    /// Feature vectors are finite and the normalized ones bounded.
    #[test]
    fn feature_vectors_well_formed(id in arb_model()) {
        let m = id.build();
        for l in m.layers() {
            for v in l.feature_vec() {
                prop_assert!(v.is_finite());
            }
            for v in l.normalized_features() {
                prop_assert!((0.0..=2.0).contains(&v));
            }
        }
    }

    /// Units have working sets dominated by weights + activations.
    #[test]
    fn working_sets_positive(id in arb_model()) {
        let m = id.build();
        for u in m.units() {
            prop_assert!(u.working_set_bytes() > 0);
            prop_assert!(u.working_set_bytes() >= u.weight_bytes());
            prop_assert!(u.kernel_count() >= 1);
        }
    }
}
