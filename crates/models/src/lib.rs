//! DNN model zoo for the RankMap reproduction.
//!
//! The paper trains and evaluates on a pool of 23 computer-vision DNNs (plus
//! Inception-ResNet-V1 in its dynamic-workload experiment). This crate
//! provides layer-accurate *descriptions* of those architectures — not
//! runnable networks: what the scheduler needs is, per layer, the paper's
//! 22-dimensional feature vector (Equation 1) together with FLOPs and byte
//! counts, and a segmentation of each network into *schedulable units*
//! (the valid partition points between pipeline stages).
//!
//! Unit counts match the paper where it states them (AlexNet 8,
//! MobileNet 20, ResNet-50 18, ShuffleNet 18).
//!
//! # Example
//!
//! ```
//! use rankmap_models::ModelId;
//!
//! let resnet = ModelId::ResNet50.build();
//! assert_eq!(resnet.unit_count(), 18);
//! let gflops = resnet.total_flops() / 1e9;
//! assert!(gflops > 6.0 && gflops < 10.0, "ResNet-50 ≈ 8 GFLOPs, got {gflops}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod layer;
pub mod model;
pub mod zoo;

pub use builder::NetBuilder;
pub use layer::{Activation, LayerDesc, LayerType, PadStride, TensorShape, WeightShape, FEATURE_DIM};
pub use model::{DnnModel, ModelId, Unit};
