//! Whole-network descriptions and the model registry.

use crate::layer::{LayerDesc, TensorShape};
use crate::zoo;
use std::fmt;
use std::str::FromStr;

/// A *schedulable unit*: a contiguous block of layers that the manager never
/// splits (a conv block, a residual bottleneck, an inception cell, …).
///
/// Pipeline stages are contiguous runs of units; the gaps between units are
/// the "valid partition points" the paper counts when sizing the mapping
/// space (3^units per DNN on a three-component platform).
#[derive(Debug, Clone, PartialEq)]
pub struct Unit {
    /// Human-readable block name, e.g. `"conv1"` or `"bottleneck3_2"`.
    pub name: String,
    /// The layers fused into this unit, in execution order.
    pub layers: Vec<LayerDesc>,
}

impl Unit {
    /// Creates a unit from named layers.
    pub fn new(name: impl Into<String>, layers: Vec<LayerDesc>) -> Self {
        Self { name: name.into(), layers }
    }

    /// Total FLOPs of one inference through this unit.
    pub fn flops(&self) -> f64 {
        self.layers.iter().map(LayerDesc::flops).sum()
    }

    /// Total weight bytes held by this unit.
    pub fn weight_bytes(&self) -> u64 {
        self.layers.iter().map(LayerDesc::weight_bytes).sum()
    }

    /// Peak activation bytes inside the unit (max of any layer's
    /// input+output footprint).
    pub fn peak_activation_bytes(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| l.ifm_bytes() + l.ofm_bytes())
            .max()
            .unwrap_or(0)
    }

    /// Working-set estimate for contention modelling: weights plus peak
    /// activations.
    pub fn working_set_bytes(&self) -> u64 {
        self.weight_bytes() + self.peak_activation_bytes()
    }

    /// Shape of the tensor leaving this unit (the transfer payload when the
    /// next unit lives on a different component).
    ///
    /// # Panics
    ///
    /// Panics if the unit has no layers (never produced by the zoo).
    pub fn output_shape(&self) -> TensorShape {
        self.layers.last().expect("unit has layers").ofm
    }

    /// Number of kernel launches this unit costs (one per layer).
    pub fn kernel_count(&self) -> usize {
        self.layers.len()
    }
}

/// A complete DNN description: input shape plus ordered schedulable units.
#[derive(Debug, Clone, PartialEq)]
pub struct DnnModel {
    id: ModelId,
    name: String,
    input: TensorShape,
    units: Vec<Unit>,
}

impl DnnModel {
    /// Assembles a model. Used by the zoo builders; library users normally
    /// call [`ModelId::build`].
    ///
    /// # Panics
    ///
    /// Panics if `units` is empty.
    pub fn new(id: ModelId, name: impl Into<String>, input: TensorShape, units: Vec<Unit>) -> Self {
        assert!(!units.is_empty(), "a model needs at least one unit");
        Self { id, name: name.into(), input, units }
    }

    /// The registry id this model was built from.
    pub fn id(&self) -> ModelId {
        self.id
    }

    /// Human-readable architecture name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Network input shape.
    pub fn input(&self) -> TensorShape {
        self.input
    }

    /// The schedulable units in execution order.
    pub fn units(&self) -> &[Unit] {
        &self.units
    }

    /// Number of schedulable units (valid partition points + 1).
    pub fn unit_count(&self) -> usize {
        self.units.len()
    }

    /// Iterator over all layers across units, in execution order.
    pub fn layers(&self) -> impl Iterator<Item = &LayerDesc> {
        self.units.iter().flat_map(|u| u.layers.iter())
    }

    /// Number of layers across all units.
    pub fn layer_count(&self) -> usize {
        self.units.iter().map(|u| u.layers.len()).sum()
    }

    /// Total FLOPs for one inference.
    pub fn total_flops(&self) -> f64 {
        self.units.iter().map(Unit::flops).sum()
    }

    /// Total parameter bytes.
    pub fn total_weight_bytes(&self) -> u64 {
        self.units.iter().map(Unit::weight_bytes).sum()
    }
}

impl fmt::Display for DnnModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} units, {} layers, {:.2} GFLOPs, {:.1} MB weights)",
            self.name,
            self.unit_count(),
            self.layer_count(),
            self.total_flops() / 1e9,
            self.total_weight_bytes() as f64 / 1e6
        )
    }
}

macro_rules! model_registry {
    ($(($variant:ident, $name:literal, $builder:path)),+ $(,)?) => {
        /// Identifier for every architecture in the reproduction's model pool.
        ///
        /// The 23 pool models of the paper plus Inception-ResNet-V1 (used in
        /// the paper's Fig. 8 dynamic-workload experiment).
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        #[allow(missing_docs)]
        pub enum ModelId {
            $($variant),+
        }

        impl ModelId {
            /// Every model in the registry, in declaration order.
            pub fn all() -> Vec<ModelId> {
                vec![$(ModelId::$variant),+]
            }

            /// Canonical architecture name (matches the paper's spelling).
            pub fn name(self) -> &'static str {
                match self {
                    $(ModelId::$variant => $name),+
                }
            }

            /// Builds the full layer-level description of this architecture.
            pub fn build(self) -> DnnModel {
                match self {
                    $(ModelId::$variant => $builder(self)),+
                }
            }
        }

        impl FromStr for ModelId {
            type Err = ParseModelError;

            fn from_str(s: &str) -> Result<Self, Self::Err> {
                match s {
                    $($name => Ok(ModelId::$variant),)+
                    _ => Err(ParseModelError { input: s.to_string() }),
                }
            }
        }
    };
}

model_registry! {
    (AlexNet, "AlexNet", zoo::alexnet::build),
    (DenseNet121, "DenseNet-121", zoo::densenet::build_121),
    (DenseNet169, "DenseNet-169", zoo::densenet::build_169),
    (EfficientNetB0, "EfficientNet-B0", zoo::efficientnet::build_b0),
    (EfficientNetB1, "EfficientNet-B1", zoo::efficientnet::build_b1),
    (EfficientNetB2, "EfficientNet-B2", zoo::efficientnet::build_b2),
    (GoogleNet, "GoogleNet", zoo::inception::build_googlenet),
    (InceptionResnetV1, "Inception-ResNet-V1", zoo::inception::build_inception_resnet_v1),
    (InceptionResnetV2, "Inception-ResNet-V2", zoo::inception::build_inception_resnet_v2),
    (InceptionV3, "Inception-V3", zoo::inception::build_v3),
    (InceptionV4, "Inception-V4", zoo::inception::build_v4),
    (MobileNet, "MobileNet", zoo::mobilenet::build_v1),
    (MobileNetV2, "MobileNet-V2", zoo::mobilenet::build_v2),
    (ResNet12, "ResNet-12", zoo::resnet::build_12),
    (ResNet50, "ResNet-50", zoo::resnet::build_50),
    (ResNet50V2, "ResNet-50-V2", zoo::resnet::build_50_v2),
    (ResNext50, "ResNeXt-50", zoo::resnet::build_resnext_50),
    (ShuffleNet, "ShuffleNet", zoo::shufflenet::build),
    (SqueezeNet, "SqueezeNet", zoo::squeezenet::build_v1),
    (SqueezeNetV2, "SqueezeNet-V2", zoo::squeezenet::build_v2),
    (SsdMobileNet, "SSD-MobileNet", zoo::detection::build_ssd_mobilenet),
    (YoloV3, "YOLO-V3", zoo::detection::build_yolo_v3),
    (Vgg16, "VGG-16", zoo::vgg::build_16),
    (Vgg19, "VGG-19", zoo::vgg::build_19),
}

impl ModelId {
    /// The 23-model training pool from the paper (everything except
    /// Inception-ResNet-V1, which only appears in the dynamic experiment).
    pub fn paper_pool() -> Vec<ModelId> {
        ModelId::all()
            .into_iter()
            .filter(|m| *m != ModelId::InceptionResnetV1)
            .collect()
    }
}

impl fmt::Display for ModelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown model name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseModelError {
    input: String,
}

impl fmt::Display for ParseModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown model name: {:?}", self.input)
    }
}

impl std::error::Error for ParseModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_24_models() {
        assert_eq!(ModelId::all().len(), 24);
        assert_eq!(ModelId::paper_pool().len(), 23);
    }

    #[test]
    fn names_parse_roundtrip() {
        for id in ModelId::all() {
            let parsed: ModelId = id.name().parse().expect("roundtrip");
            assert_eq!(parsed, id);
        }
    }

    #[test]
    fn unknown_name_errors() {
        let err = "NotANet".parse::<ModelId>().unwrap_err();
        assert!(err.to_string().contains("NotANet"));
    }

    #[test]
    fn every_model_builds_nonempty() {
        for id in ModelId::all() {
            let m = id.build();
            assert!(m.unit_count() >= 5, "{} has too few units", id);
            assert!(m.unit_count() <= 32, "{} has too many units ({})", id, m.unit_count());
            assert!(m.total_flops() > 1e8, "{} has implausibly few FLOPs", id);
            for u in m.units() {
                assert!(!u.layers.is_empty(), "{} unit {} empty", id, u.name);
            }
        }
    }

    #[test]
    fn layer_indices_are_global_and_increasing() {
        for id in ModelId::all() {
            let m = id.build();
            let mut prev = None;
            for l in m.layers() {
                if let Some(p) = prev {
                    assert!(l.index > p, "{}: layer indices must strictly increase", id);
                }
                prev = Some(l.index);
            }
        }
    }

    #[test]
    fn unit_shapes_chain() {
        // The input of each unit's first layer matches the previous unit's
        // output for strictly sequential models (VGG is sequential).
        let m = ModelId::Vgg16.build();
        for w in m.units().windows(2) {
            let out = w[0].output_shape();
            let next_in = w[1].layers[0].ifm;
            assert_eq!(out, next_in, "VGG-16 units must chain");
        }
    }
}
