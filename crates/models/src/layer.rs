//! Layer descriptors and the paper's 22-dimensional feature vector.

use std::fmt;

/// Length of the per-layer feature vector of Equation 1 in the paper:
/// index (1) + type (1) + ifm (4) + ofm (4) + weights (4) + biases (1) +
/// activation (1) + pad-stride (6) = 22.
pub const FEATURE_DIM: usize = 22;

/// Shape of an activation tensor: `(minibatch, channels, height, width)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TensorShape {
    /// Minibatch size (always 1 for edge inference in this reproduction).
    pub n: u32,
    /// Number of channels.
    pub c: u32,
    /// Feature-map height.
    pub h: u32,
    /// Feature-map width.
    pub w: u32,
}

impl TensorShape {
    /// Creates a shape.
    pub const fn new(n: u32, c: u32, h: u32, w: u32) -> Self {
        Self { n, c, h, w }
    }

    /// A conventional `1×c×h×w` inference shape.
    pub const fn chw(c: u32, h: u32, w: u32) -> Self {
        Self { n: 1, c, h, w }
    }

    /// Total number of elements.
    pub fn elements(&self) -> u64 {
        self.n as u64 * self.c as u64 * self.h as u64 * self.w as u64
    }

    /// Size in bytes assuming `f32` storage.
    pub fn bytes(&self) -> u64 {
        self.elements() * 4
    }
}

impl fmt::Display for TensorShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}x{}", self.n, self.c, self.h, self.w)
    }
}

/// Shape of a weight tensor: `(out_channels, in_channels_per_group, kh, kw)`.
///
/// For fully connected layers `kh = kw = 1` and the channel fields carry the
/// fan-in/fan-out. For weight-less layers all fields are zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct WeightShape {
    /// Output channels (or FC output features).
    pub out_c: u32,
    /// Input channels per group (or FC input features).
    pub in_c: u32,
    /// Kernel height.
    pub kh: u32,
    /// Kernel width.
    pub kw: u32,
}

impl WeightShape {
    /// Creates a weight shape.
    pub const fn new(out_c: u32, in_c: u32, kh: u32, kw: u32) -> Self {
        Self { out_c, in_c, kh, kw }
    }

    /// The all-zero shape used by weight-less layers.
    pub const fn none() -> Self {
        Self { out_c: 0, in_c: 0, kh: 0, kw: 0 }
    }

    /// Number of weight parameters.
    pub fn elements(&self) -> u64 {
        self.out_c as u64 * self.in_c as u64 * self.kh as u64 * self.kw as u64
    }
}

/// 6-dimensional padding/stride descriptor (`ps` in Equation 1):
/// `(pad_top, pad_bottom, pad_left, pad_right, stride_h, stride_w)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PadStride {
    /// Top padding rows.
    pub pad_top: u32,
    /// Bottom padding rows.
    pub pad_bottom: u32,
    /// Left padding columns.
    pub pad_left: u32,
    /// Right padding columns.
    pub pad_right: u32,
    /// Vertical stride.
    pub stride_h: u32,
    /// Horizontal stride.
    pub stride_w: u32,
}

impl PadStride {
    /// Symmetric padding `p` with stride `s` in both dimensions.
    pub const fn symmetric(p: u32, s: u32) -> Self {
        Self { pad_top: p, pad_bottom: p, pad_left: p, pad_right: p, stride_h: s, stride_w: s }
    }

    /// No padding, unit stride — the default for FC-like layers.
    pub const fn unit() -> Self {
        Self::symmetric(0, 1)
    }
}

/// Operator class of a layer (`t` in Equation 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerType {
    /// Standard (possibly grouped) 2D convolution.
    Conv,
    /// Depth-wise 2D convolution.
    DwConv,
    /// Max pooling.
    MaxPool,
    /// Average pooling (incl. global average pooling).
    AvgPool,
    /// Fully connected / linear.
    Fc,
    /// Batch normalization (inference-folded or standalone).
    BatchNorm,
    /// Standalone activation layer.
    Act,
    /// Element-wise residual addition.
    Add,
    /// Channel concatenation.
    Concat,
    /// Channel shuffle (ShuffleNet).
    Shuffle,
    /// Nearest-neighbour upsampling (YOLO necks).
    Upsample,
    /// Element-wise multiply (squeeze-and-excite gating).
    Mul,
}

impl LayerType {
    /// Stable numeric code used in the feature vector.
    pub fn code(self) -> u32 {
        match self {
            LayerType::Conv => 1,
            LayerType::DwConv => 2,
            LayerType::MaxPool => 3,
            LayerType::AvgPool => 4,
            LayerType::Fc => 5,
            LayerType::BatchNorm => 6,
            LayerType::Act => 7,
            LayerType::Add => 8,
            LayerType::Concat => 9,
            LayerType::Shuffle => 10,
            LayerType::Upsample => 11,
            LayerType::Mul => 12,
        }
    }

    /// All layer types, in code order.
    pub fn all() -> [LayerType; 12] {
        [
            LayerType::Conv,
            LayerType::DwConv,
            LayerType::MaxPool,
            LayerType::AvgPool,
            LayerType::Fc,
            LayerType::BatchNorm,
            LayerType::Act,
            LayerType::Add,
            LayerType::Concat,
            LayerType::Shuffle,
            LayerType::Upsample,
            LayerType::Mul,
        ]
    }
}

impl fmt::Display for LayerType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LayerType::Conv => "conv",
            LayerType::DwConv => "dwconv",
            LayerType::MaxPool => "maxpool",
            LayerType::AvgPool => "avgpool",
            LayerType::Fc => "fc",
            LayerType::BatchNorm => "bn",
            LayerType::Act => "act",
            LayerType::Add => "add",
            LayerType::Concat => "concat",
            LayerType::Shuffle => "shuffle",
            LayerType::Upsample => "upsample",
            LayerType::Mul => "mul",
        };
        f.write_str(s)
    }
}

/// Fused activation function (`a` in Equation 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Activation {
    /// No activation.
    #[default]
    None,
    /// Rectified linear unit.
    Relu,
    /// ReLU clipped at 6 (mobile nets).
    Relu6,
    /// Swish / SiLU (EfficientNet).
    Swish,
    /// Logistic sigmoid.
    Sigmoid,
    /// Softmax (classifier heads).
    Softmax,
    /// Leaky ReLU (YOLO).
    LeakyRelu,
}

impl Activation {
    /// Stable numeric code used in the feature vector.
    pub fn code(self) -> u32 {
        match self {
            Activation::None => 0,
            Activation::Relu => 1,
            Activation::Relu6 => 2,
            Activation::Swish => 3,
            Activation::Sigmoid => 4,
            Activation::Softmax => 5,
            Activation::LeakyRelu => 6,
        }
    }
}

/// A single DNN layer, carrying everything Equation 1 encodes.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerDesc {
    /// Layer index `j` within its DNN (0-based, global across units).
    pub index: u32,
    /// Operator class `t`.
    pub ty: LayerType,
    /// Input feature-map shape.
    pub ifm: TensorShape,
    /// Output feature-map shape.
    pub ofm: TensorShape,
    /// Weight tensor shape (zeros when the layer has no weights).
    pub weights: WeightShape,
    /// Number of bias parameters `b`.
    pub biases: u32,
    /// Fused activation `a`.
    pub act: Activation,
    /// Padding and stride information `ps`.
    pub pad_stride: PadStride,
}

impl LayerDesc {
    /// Floating-point operations for one inference through this layer.
    ///
    /// Convolutions and FC count multiply-accumulates as 2 FLOPs; pooling
    /// counts one op per kernel element; element-wise layers count one or
    /// two ops per output element.
    pub fn flops(&self) -> f64 {
        let out = self.ofm.elements() as f64;
        match self.ty {
            LayerType::Conv | LayerType::DwConv => {
                let per_out =
                    self.weights.in_c as f64 * self.weights.kh as f64 * self.weights.kw as f64;
                2.0 * out * per_out.max(1.0)
            }
            LayerType::Fc => 2.0 * self.weights.out_c as f64 * self.weights.in_c as f64,
            LayerType::MaxPool | LayerType::AvgPool => {
                let k = (self.weights.kh.max(1) * self.weights.kw.max(1)) as f64;
                out * k
            }
            LayerType::BatchNorm => 2.0 * out,
            LayerType::Act | LayerType::Add | LayerType::Mul | LayerType::Shuffle => out,
            LayerType::Concat | LayerType::Upsample => out,
        }
    }

    /// Bytes of weights + biases (f32).
    pub fn weight_bytes(&self) -> u64 {
        self.weights.elements() * 4 + self.biases as u64 * 4
    }

    /// Bytes of input activations (f32).
    pub fn ifm_bytes(&self) -> u64 {
        self.ifm.bytes()
    }

    /// Bytes of output activations (f32).
    pub fn ofm_bytes(&self) -> u64 {
        self.ofm.bytes()
    }

    /// Total bytes touched by one inference: weights + input + output.
    pub fn memory_bytes(&self) -> u64 {
        self.weight_bytes() + self.ifm_bytes() + self.ofm_bytes()
    }

    /// The raw 22-dimensional feature vector of Equation 1:
    /// `[j, t, ifm(4), ofm(4), w(4), b, a, ps(6)]`.
    pub fn feature_vec(&self) -> [f32; FEATURE_DIM] {
        [
            self.index as f32,
            self.ty.code() as f32,
            self.ifm.n as f32,
            self.ifm.c as f32,
            self.ifm.h as f32,
            self.ifm.w as f32,
            self.ofm.n as f32,
            self.ofm.c as f32,
            self.ofm.h as f32,
            self.ofm.w as f32,
            self.weights.out_c as f32,
            self.weights.in_c as f32,
            self.weights.kh as f32,
            self.weights.kw as f32,
            self.biases as f32,
            self.act.code() as f32,
            self.pad_stride.pad_top as f32,
            self.pad_stride.pad_bottom as f32,
            self.pad_stride.pad_left as f32,
            self.pad_stride.pad_right as f32,
            self.pad_stride.stride_h as f32,
            self.pad_stride.stride_w as f32,
        ]
    }

    /// Log-scaled, roughly unit-range version of [`LayerDesc::feature_vec`],
    /// suitable as neural-network input. Dimension-like entries are mapped
    /// through `ln(1+x)` and divided by `ln(1+cap)` of a generous cap;
    /// categorical codes are divided by their maximum code.
    pub fn normalized_features(&self) -> [f32; FEATURE_DIM] {
        let raw = self.feature_vec();
        let mut out = [0.0f32; FEATURE_DIM];
        // Per-position caps for log normalization; codes handled separately.
        const DIM_CAP: f32 = 4096.0;
        const IDX_CAP: f32 = 256.0;
        for (i, &v) in raw.iter().enumerate() {
            out[i] = match i {
                0 => norm_log(v, IDX_CAP),
                1 => v / 12.0,
                15 => v / 6.0,
                16..=21 => norm_log(v, 16.0),
                _ => norm_log(v, DIM_CAP),
            };
        }
        out
    }
}

fn norm_log(v: f32, cap: f32) -> f32 {
    (1.0 + v.max(0.0)).ln() / (1.0 + cap).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv_layer() -> LayerDesc {
        LayerDesc {
            index: 3,
            ty: LayerType::Conv,
            ifm: TensorShape::chw(64, 56, 56),
            ofm: TensorShape::chw(128, 28, 28),
            weights: WeightShape::new(128, 64, 3, 3),
            biases: 128,
            act: Activation::Relu,
            pad_stride: PadStride::symmetric(1, 2),
        }
    }

    #[test]
    fn feature_vec_has_22_dims() {
        assert_eq!(conv_layer().feature_vec().len(), FEATURE_DIM);
        assert_eq!(FEATURE_DIM, 22);
    }

    #[test]
    fn conv_flops_formula() {
        let l = conv_layer();
        let expected = 2.0 * 128.0 * 28.0 * 28.0 * 64.0 * 9.0;
        assert_eq!(l.flops(), expected);
    }

    #[test]
    fn fc_flops_formula() {
        let l = LayerDesc {
            index: 0,
            ty: LayerType::Fc,
            ifm: TensorShape::chw(4096, 1, 1),
            ofm: TensorShape::chw(1000, 1, 1),
            weights: WeightShape::new(1000, 4096, 1, 1),
            biases: 1000,
            act: Activation::Softmax,
            pad_stride: PadStride::unit(),
        };
        assert_eq!(l.flops(), 2.0 * 1000.0 * 4096.0);
        assert_eq!(l.weight_bytes(), (1000 * 4096 + 1000) * 4);
    }

    #[test]
    fn dwconv_flops_are_per_channel() {
        let l = LayerDesc {
            index: 0,
            ty: LayerType::DwConv,
            ifm: TensorShape::chw(32, 112, 112),
            ofm: TensorShape::chw(32, 112, 112),
            weights: WeightShape::new(32, 1, 3, 3),
            biases: 32,
            act: Activation::Relu6,
            pad_stride: PadStride::symmetric(1, 1),
        };
        let expected = 2.0 * 32.0 * 112.0 * 112.0 * 9.0;
        assert_eq!(l.flops(), expected);
    }

    #[test]
    fn weightless_layer_zero_weight_bytes() {
        let l = LayerDesc {
            index: 1,
            ty: LayerType::Add,
            ifm: TensorShape::chw(256, 14, 14),
            ofm: TensorShape::chw(256, 14, 14),
            weights: WeightShape::none(),
            biases: 0,
            act: Activation::Relu,
            pad_stride: PadStride::unit(),
        };
        assert_eq!(l.weight_bytes(), 0);
        assert!(l.flops() > 0.0);
    }

    #[test]
    fn feature_positions_match_equation1() {
        let f = conv_layer().feature_vec();
        assert_eq!(f[0], 3.0); // index j
        assert_eq!(f[1], LayerType::Conv.code() as f32); // type t
        assert_eq!(f[2..6], [1.0, 64.0, 56.0, 56.0]); // ifm
        assert_eq!(f[6..10], [1.0, 128.0, 28.0, 28.0]); // ofm
        assert_eq!(f[10..14], [128.0, 64.0, 3.0, 3.0]); // weights
        assert_eq!(f[14], 128.0); // biases
        assert_eq!(f[15], Activation::Relu.code() as f32); // activation
        assert_eq!(f[16..22], [1.0, 1.0, 1.0, 1.0, 2.0, 2.0]); // pad-stride
    }

    #[test]
    fn normalized_features_bounded() {
        for v in conv_layer().normalized_features() {
            assert!((0.0..=1.5).contains(&v), "normalized feature out of range: {v}");
        }
    }

    #[test]
    fn layer_type_codes_unique() {
        let mut codes: Vec<u32> = LayerType::all().iter().map(|t| t.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), LayerType::all().len());
    }

    #[test]
    fn tensor_shape_accounting() {
        let s = TensorShape::chw(3, 224, 224);
        assert_eq!(s.elements(), 3 * 224 * 224);
        assert_eq!(s.bytes(), 3 * 224 * 224 * 4);
        assert_eq!(s.to_string(), "1x3x224x224");
    }
}
