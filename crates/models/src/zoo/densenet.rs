//! DenseNet-121 / DenseNet-169 (Huang et al., 2017), growth rate 32.
//!
//! Dense blocks are grouped into units (large blocks split in two) so the
//! unit count stays in the same regime as the rest of the pool.

use crate::builder::NetBuilder;
use crate::layer::Activation::{self, Relu, Softmax};
use crate::model::{DnnModel, ModelId};

const GROWTH: u32 = 32;

/// One dense layer: BN → 1×1 conv (4·growth) → 3×3 conv (growth) → concat.
fn dense_layer(b: &mut NetBuilder) {
    let cin = b.shape();
    b.bn(Relu);
    b.conv(4 * GROWTH, 1, 1, 0, Relu);
    b.conv(GROWTH, 3, 1, 1, Activation::None);
    b.concat_to(cin.c + GROWTH);
}

/// Transition: BN → 1×1 conv halving channels → 2×2 average pool.
fn transition(b: &mut NetBuilder, name: &str) {
    let cin = b.shape();
    b.bn(Relu);
    b.conv(cin.c / 2, 1, 1, 0, Activation::None);
    b.pool_avg(2, 2, 0);
    b.end_unit(name);
}

fn build(id: ModelId, name: &str, blocks: [usize; 4]) -> DnnModel {
    let mut b = NetBuilder::new(3, 224, 224);
    b.conv(64, 7, 2, 3, Relu).pool_max(3, 2, 1).end_unit("stem");
    for (bi, &layers) in blocks.iter().enumerate() {
        // Split blocks with more than 12 layers into two units.
        let halves: Vec<usize> =
            if layers > 12 { vec![layers / 2, layers - layers / 2] } else { vec![layers] };
        for (hi, &n) in halves.iter().enumerate() {
            for _ in 0..n {
                dense_layer(&mut b);
            }
            let suffix = if halves.len() > 1 { format!("{}", (b'a' + hi as u8) as char) } else { String::new() };
            b.end_unit(format!("dense{}{}", bi + 1, suffix));
        }
        if bi < 3 {
            transition(&mut b, &format!("trans{}", bi + 1));
        }
    }
    b.bn(Relu).global_avg_pool().fc(1000, Softmax).end_unit("head");
    b.finish(id, name)
}

/// Builds DenseNet-121 (blocks 6/12/24/16).
pub fn build_121(id: ModelId) -> DnnModel {
    build(id, "DenseNet-121", [6, 12, 24, 16])
}

/// Builds DenseNet-169 (blocks 6/12/32/32).
pub fn build_169(id: ModelId) -> DnnModel {
    build(id, "DenseNet-169", [6, 12, 32, 32])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn densenet121_unit_count() {
        // stem + 1 + t + 1 + t + 2 + t + 2 + head = 11
        assert_eq!(build_121(ModelId::DenseNet121).unit_count(), 11);
    }

    #[test]
    fn densenet169_deeper_than_121() {
        let d121 = build_121(ModelId::DenseNet121);
        let d169 = build_169(ModelId::DenseNet169);
        assert!(d169.layer_count() > d121.layer_count());
        assert!(d169.total_flops() > d121.total_flops());
    }

    #[test]
    fn densenet121_flops_plausible() {
        let g = build_121(ModelId::DenseNet121).total_flops() / 1e9;
        // Reference ≈ 5.7 GFLOPs (2×MAC).
        assert!((4.0..8.0).contains(&g), "DenseNet-121 ≈ 5.7 GFLOPs, got {g}");
    }

    #[test]
    fn channels_grow_by_growth_rate() {
        let m = build_121(ModelId::DenseNet121);
        // First dense block: 64 input + 6 layers × 32 growth = 256 channels.
        let db1 = &m.units()[1];
        assert_eq!(db1.output_shape().c, 64 + 6 * GROWTH);
    }
}
