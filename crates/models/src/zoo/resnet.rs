//! ResNet family: ResNet-12, ResNet-50, ResNet-50-V2, ResNeXt-50.
//!
//! ResNet-50 exposes 18 schedulable units (stem + 16 bottlenecks + head),
//! matching the paper's "18 valid partition points".

use crate::builder::NetBuilder;
use crate::layer::Activation::{self, Relu, Softmax};
use crate::model::{DnnModel, ModelId};

/// Emits one bottleneck unit: 1×1 reduce → 3×3 (stride `s`) → 1×1 expand,
/// with a projection shortcut when the shape changes. `groups > 1` gives the
/// ResNeXt variant; `pre_act` emits the V2 pre-activation BN layers.
#[allow(clippy::too_many_arguments)]
fn bottleneck(
    b: &mut NetBuilder,
    name: &str,
    mid: u32,
    out: u32,
    s: u32,
    groups: u32,
    pre_act: bool,
) {
    let cell_in = b.shape();
    if pre_act {
        b.bn(Relu);
    }
    b.conv(mid, 1, 1, 0, Relu);
    if groups > 1 {
        b.gconv(mid, 3, s, 1, groups, Relu);
    } else {
        b.conv(mid, 3, s, 1, Relu);
    }
    b.conv(out, 1, 1, 0, Activation::None);
    let main_out = b.shape();
    if cell_in.c != out || s != 1 {
        b.set_shape(cell_in);
        b.conv(out, 1, s, 0, Activation::None);
    }
    b.set_shape(main_out);
    b.add(Relu);
    b.end_unit(name);
}

fn build_50_family(id: ModelId, name: &str, groups: u32, width_factor: u32, pre_act: bool) -> DnnModel {
    let mut b = NetBuilder::new(3, 224, 224);
    b.conv(64, 7, 2, 3, Relu).pool_max(3, 2, 1).end_unit("stem");
    let stages: [(usize, u32, u32); 4] =
        [(3, 64, 256), (4, 128, 512), (6, 256, 1024), (3, 512, 2048)];
    for (si, &(blocks, mid, out)) in stages.iter().enumerate() {
        for bi in 0..blocks {
            let s = if si > 0 && bi == 0 { 2 } else { 1 };
            bottleneck(
                &mut b,
                &format!("bottleneck{}_{}", si + 2, bi + 1),
                mid * width_factor,
                out,
                s,
                groups,
                pre_act,
            );
        }
    }
    b.global_avg_pool().fc(1000, Softmax).end_unit("head");
    b.finish(id, name)
}

/// Builds ResNet-50 (18 units).
pub fn build_50(id: ModelId) -> DnnModel {
    build_50_family(id, "ResNet-50", 1, 1, false)
}

/// Builds ResNet-50-V2 (pre-activation variant, 18 units).
pub fn build_50_v2(id: ModelId) -> DnnModel {
    build_50_family(id, "ResNet-50-V2", 1, 1, true)
}

/// Builds ResNeXt-50 32×4d (18 units).
pub fn build_resnext_50(id: ModelId) -> DnnModel {
    build_50_family(id, "ResNeXt-50", 32, 2, false)
}

/// Builds the compact ResNet-12 used in few-shot learning (84×84 input,
/// 4 residual blocks of three 3×3 convolutions + classifier head).
pub fn build_12(id: ModelId) -> DnnModel {
    let mut b = NetBuilder::new(3, 84, 84);
    let channels = [64u32, 160, 320, 640];
    for (i, &c) in channels.iter().enumerate() {
        let cell_in = b.shape();
        b.conv(c, 3, 1, 1, Relu).conv(c, 3, 1, 1, Relu).conv(c, 3, 1, 1, Activation::None);
        let main_out = b.shape();
        if cell_in.c != c {
            b.set_shape(cell_in);
            b.conv(c, 1, 1, 0, Activation::None);
        }
        b.set_shape(main_out);
        b.add(Relu).pool_max(2, 2, 0);
        b.end_unit(format!("block{}", i + 1));
    }
    b.global_avg_pool().fc(1000, Softmax).end_unit("head");
    b.finish(id, "ResNet-12")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet50_has_18_units() {
        assert_eq!(build_50(ModelId::ResNet50).unit_count(), 18);
    }

    #[test]
    fn resnet50_flops_near_8g() {
        let g = build_50(ModelId::ResNet50).total_flops() / 1e9;
        assert!((6.0..10.0).contains(&g), "ResNet-50 ≈ 8 GFLOPs (2×MAC), got {g}");
    }

    #[test]
    fn resnet50_params_near_25m() {
        let mb = build_50(ModelId::ResNet50).total_weight_bytes() as f64 / 1e6;
        assert!((90.0..120.0).contains(&mb), "ResNet-50 ≈ 102 MB f32 weights, got {mb}");
    }

    #[test]
    fn resnext_heavier_mid_but_grouped() {
        let r = build_50(ModelId::ResNet50);
        let x = build_resnext_50(ModelId::ResNext50);
        assert_eq!(x.unit_count(), 18);
        // ResNeXt-50 32x4d has similar total FLOPs to ResNet-50.
        let ratio = x.total_flops() / r.total_flops();
        assert!((0.7..1.4).contains(&ratio), "ResNeXt/ResNet FLOP ratio {ratio}");
    }

    #[test]
    fn v2_has_extra_bn_layers() {
        let v1 = build_50(ModelId::ResNet50);
        let v2 = build_50_v2(ModelId::ResNet50V2);
        assert!(v2.layer_count() > v1.layer_count());
        assert_eq!(v2.unit_count(), 18);
    }

    #[test]
    fn resnet12_is_small() {
        let m = build_12(ModelId::ResNet12);
        assert_eq!(m.unit_count(), 5);
        assert!(m.total_flops() < build_50(ModelId::ResNet50).total_flops());
    }

    #[test]
    fn stage_spatial_sizes() {
        let m = build_50(ModelId::ResNet50);
        // After stem: 56x56; final bottleneck output: 7x7 with 2048 channels.
        assert_eq!(m.units()[0].output_shape().h, 56);
        let last_bn = &m.units()[m.unit_count() - 2];
        assert_eq!(last_bn.output_shape().c, 2048);
        assert_eq!(last_bn.output_shape().h, 7);
    }
}
