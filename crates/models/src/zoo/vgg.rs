//! VGG-16 / VGG-19 (Simonyan & Zisserman, 2014).
//!
//! Each convolution is its own schedulable unit (pools attach to the
//! preceding conv), giving 16 and 19 units respectively.

use crate::builder::NetBuilder;
use crate::layer::Activation::{Relu, Softmax};
use crate::model::{DnnModel, ModelId};

fn build_vgg(id: ModelId, name: &str, blocks: &[(u32, usize)]) -> DnnModel {
    let mut b = NetBuilder::new(3, 224, 224);
    let mut unit = 0;
    for (bi, &(channels, convs)) in blocks.iter().enumerate() {
        for ci in 0..convs {
            b.conv(channels, 3, 1, 1, Relu);
            if ci == convs - 1 {
                b.pool_max(2, 2, 0);
            }
            unit += 1;
            b.end_unit(format!("conv{}_{}", bi + 1, ci + 1));
        }
    }
    let _ = unit;
    b.fc(4096, Relu).end_unit("fc6");
    b.fc(4096, Relu).end_unit("fc7");
    b.fc(1000, Softmax).end_unit("fc8");
    b.finish(id, name)
}

/// Builds VGG-16 (13 conv units + 3 FC units).
pub fn build_16(id: ModelId) -> DnnModel {
    build_vgg(id, "VGG-16", &[(64, 2), (128, 2), (256, 3), (512, 3), (512, 3)])
}

/// Builds VGG-19 (16 conv units + 3 FC units).
pub fn build_19(id: ModelId) -> DnnModel {
    build_vgg(id, "VGG-19", &[(64, 2), (128, 2), (256, 4), (512, 4), (512, 4)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgg16_unit_count() {
        assert_eq!(build_16(ModelId::Vgg16).unit_count(), 16);
    }

    #[test]
    fn vgg19_unit_count() {
        assert_eq!(build_19(ModelId::Vgg19).unit_count(), 19);
    }

    #[test]
    fn vgg16_flops_near_31g() {
        let g = build_16(ModelId::Vgg16).total_flops() / 1e9;
        assert!((25.0..36.0).contains(&g), "VGG-16 ≈ 31 GFLOPs, got {g}");
    }

    #[test]
    fn vgg19_heavier_than_vgg16() {
        assert!(
            build_19(ModelId::Vgg19).total_flops() > build_16(ModelId::Vgg16).total_flops()
        );
    }

    #[test]
    fn vgg16_fc6_fanin() {
        let m = build_16(ModelId::Vgg16);
        let fc6 = m.units().iter().find(|u| u.name == "fc6").unwrap();
        assert_eq!(fc6.layers[0].weights.in_c, 512 * 7 * 7);
    }
}
