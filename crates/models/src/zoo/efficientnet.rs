//! EfficientNet B0–B2 (Tan & Le, 2019) with squeeze-and-excite MBConv
//! blocks. One unit per MBConv block plus stem and head units.

use crate::builder::NetBuilder;
use crate::layer::Activation::{self, Sigmoid, Softmax, Swish};
use crate::model::{DnnModel, ModelId};

/// Mobile inverted bottleneck with squeeze-and-excite.
fn mbconv(b: &mut NetBuilder, name: &str, out: u32, expand: u32, k: u32, s: u32) {
    let cell_in = b.shape();
    let mid = cell_in.c * expand;
    if expand > 1 {
        b.conv(mid, 1, 1, 0, Swish);
    }
    b.dwconv(k, s, Swish);
    let main = b.shape();
    // Squeeze-and-excite: pool to 1×1, bottleneck FCs, channel-wise gate.
    let se = (cell_in.c / 4).max(4);
    b.global_avg_pool();
    b.fc(se, Swish);
    b.fc(mid, Sigmoid);
    b.set_shape(main);
    b.mul();
    b.conv(out, 1, 1, 0, Activation::None);
    if s == 1 && cell_in.c == out {
        b.add(Activation::None);
    }
    b.end_unit(name);
}

/// Stage configuration: `(expand, out_c, repeats, stride, kernel)`.
type Stage = (u32, u32, usize, u32, u32);

fn build(id: ModelId, name: &str, input: u32, stem: u32, head: u32, stages: &[Stage]) -> DnnModel {
    let mut b = NetBuilder::new(3, input, input);
    b.conv(stem, 3, 2, 1, Swish).end_unit("stem");
    let mut idx = 1;
    for &(e, c, n, s, k) in stages {
        for r in 0..n {
            let stride = if r == 0 { s } else { 1 };
            mbconv(&mut b, &format!("mbconv{}", idx), c, e, k, stride);
            idx += 1;
        }
    }
    b.conv(head, 1, 1, 0, Swish).end_unit("conv_head");
    b.global_avg_pool().fc(1000, Softmax).end_unit("fc");
    b.finish(id, name)
}

/// Builds EfficientNet-B0 at 224×224 (19 units).
pub fn build_b0(id: ModelId) -> DnnModel {
    let stages: [Stage; 7] = [
        (1, 16, 1, 1, 3),
        (6, 24, 2, 2, 3),
        (6, 40, 2, 2, 5),
        (6, 80, 3, 2, 3),
        (6, 112, 3, 1, 5),
        (6, 192, 4, 2, 5),
        (6, 320, 1, 1, 3),
    ];
    build(id, "EfficientNet-B0", 224, 32, 1280, &stages)
}

/// Builds EfficientNet-B1 at 240×240 (26 units).
pub fn build_b1(id: ModelId) -> DnnModel {
    let stages: [Stage; 7] = [
        (1, 16, 2, 1, 3),
        (6, 24, 3, 2, 3),
        (6, 40, 3, 2, 5),
        (6, 80, 4, 2, 3),
        (6, 112, 4, 1, 5),
        (6, 192, 5, 2, 5),
        (6, 320, 2, 1, 3),
    ];
    build(id, "EfficientNet-B1", 240, 32, 1280, &stages)
}

/// Builds EfficientNet-B2 at 260×260 (26 units, wider than B1).
pub fn build_b2(id: ModelId) -> DnnModel {
    let stages: [Stage; 7] = [
        (1, 16, 2, 1, 3),
        (6, 24, 3, 2, 3),
        (6, 48, 3, 2, 5),
        (6, 88, 4, 2, 3),
        (6, 120, 4, 1, 5),
        (6, 208, 5, 2, 5),
        (6, 352, 2, 1, 3),
    ];
    build(id, "EfficientNet-B2", 260, 32, 1408, &stages)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn b0_unit_count() {
        assert_eq!(build_b0(ModelId::EfficientNetB0).unit_count(), 19);
    }

    #[test]
    fn b1_b2_unit_count() {
        assert_eq!(build_b1(ModelId::EfficientNetB1).unit_count(), 26);
        assert_eq!(build_b2(ModelId::EfficientNetB2).unit_count(), 26);
    }

    #[test]
    fn scaling_increases_cost() {
        let b0 = build_b0(ModelId::EfficientNetB0).total_flops();
        let b1 = build_b1(ModelId::EfficientNetB1).total_flops();
        let b2 = build_b2(ModelId::EfficientNetB2).total_flops();
        assert!(b0 < b1 && b1 < b2, "B0 < B1 < B2 FLOPs expected");
    }

    #[test]
    fn b0_flops_near_0_8g() {
        let g = build_b0(ModelId::EfficientNetB0).total_flops() / 1e9;
        assert!((0.5..1.5).contains(&g), "EfficientNet-B0 ≈ 0.8 GFLOPs, got {g}");
    }

    #[test]
    fn se_blocks_present() {
        let m = build_b0(ModelId::EfficientNetB0);
        let gates = m.layers().filter(|l| l.ty == crate::LayerType::Mul).count();
        assert_eq!(gates, 16, "one SE gate per MBConv block");
    }
}
