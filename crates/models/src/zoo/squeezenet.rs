//! SqueezeNet V1.0 and the lighter V1.1 revision (the paper's
//! "SqueezeNet-V2") — 10 schedulable units each.

use crate::builder::NetBuilder;
use crate::layer::Activation::Relu;
use crate::model::{DnnModel, ModelId};

/// Fire module: 1×1 squeeze, then parallel 1×1 / 3×3 expands, concatenated.
fn fire(b: &mut NetBuilder, name: &str, squeeze: u32, e1: u32, e3: u32, pool_after: bool) {
    b.conv(squeeze, 1, 1, 0, Relu);
    let sq = b.shape();
    b.conv(e1, 1, 1, 0, Relu);
    b.set_shape(sq);
    b.conv(e3, 3, 1, 1, Relu);
    b.concat_to(e1 + e3);
    if pool_after {
        b.pool_max(3, 2, 0);
    }
    b.end_unit(name);
}

/// Builds SqueezeNet V1.0 at 224×224 (10 units).
pub fn build_v1(id: ModelId) -> DnnModel {
    let mut b = NetBuilder::new(3, 224, 224);
    b.conv(96, 7, 2, 0, Relu).pool_max(3, 2, 0).end_unit("conv1");
    fire(&mut b, "fire2", 16, 64, 64, false);
    fire(&mut b, "fire3", 16, 64, 64, false);
    fire(&mut b, "fire4", 32, 128, 128, true);
    fire(&mut b, "fire5", 32, 128, 128, false);
    fire(&mut b, "fire6", 48, 192, 192, false);
    fire(&mut b, "fire7", 48, 192, 192, false);
    fire(&mut b, "fire8", 64, 256, 256, true);
    fire(&mut b, "fire9", 64, 256, 256, false);
    b.conv(1000, 1, 1, 0, Relu).global_avg_pool().end_unit("conv10");
    b.finish(id, "SqueezeNet")
}

/// Builds SqueezeNet V1.1 ("SqueezeNet-V2" in the paper's pool): 3×3 stem,
/// earlier pooling, ~2.4× cheaper than V1.0 at matched accuracy (10 units).
pub fn build_v2(id: ModelId) -> DnnModel {
    let mut b = NetBuilder::new(3, 224, 224);
    b.conv(64, 3, 2, 0, Relu).pool_max(3, 2, 0).end_unit("conv1");
    fire(&mut b, "fire2", 16, 64, 64, false);
    fire(&mut b, "fire3", 16, 64, 64, true);
    fire(&mut b, "fire4", 32, 128, 128, false);
    fire(&mut b, "fire5", 32, 128, 128, true);
    fire(&mut b, "fire6", 48, 192, 192, false);
    fire(&mut b, "fire7", 48, 192, 192, false);
    fire(&mut b, "fire8", 64, 256, 256, false);
    fire(&mut b, "fire9", 64, 256, 256, false);
    b.conv(1000, 1, 1, 0, Relu).global_avg_pool().end_unit("conv10");
    b.finish(id, "SqueezeNet-V2")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_have_10_units() {
        assert_eq!(build_v1(ModelId::SqueezeNet).unit_count(), 10);
        assert_eq!(build_v2(ModelId::SqueezeNetV2).unit_count(), 10);
    }

    #[test]
    fn v2_cheaper_than_v1() {
        let v1 = build_v1(ModelId::SqueezeNet).total_flops();
        let v2 = build_v2(ModelId::SqueezeNetV2).total_flops();
        assert!(v2 < v1 * 0.7, "V1.1 should be much cheaper: {v2} vs {v1}");
    }

    #[test]
    fn tiny_weight_footprint() {
        let mb = build_v1(ModelId::SqueezeNet).total_weight_bytes() as f64 / 1e6;
        assert!(mb < 8.0, "SqueezeNet ≈ 5 MB f32 weights, got {mb}");
    }

    #[test]
    fn fire_output_channels_concatenate() {
        let m = build_v1(ModelId::SqueezeNet);
        let f2 = m.units().iter().find(|u| u.name == "fire2").unwrap();
        assert_eq!(f2.output_shape().c, 128);
    }
}
