//! Detection models: SSD with MobileNet backbone and YOLO-V3.

use crate::builder::NetBuilder;
use crate::layer::Activation::{self, LeakyRelu, Relu6, Sigmoid};
use crate::model::{DnnModel, ModelId};
use crate::zoo::mobilenet;

/// Builds SSD-MobileNet at 300×300 (20 units: backbone + extras + heads).
pub fn build_ssd_mobilenet(id: ModelId) -> DnnModel {
    let mut b = NetBuilder::new(3, 300, 300);
    mobilenet::v1_backbone(&mut b, false);
    // Extra feature layers pyramid: 1×1 reduce + 3×3 stride-2 expand.
    let extras: [(u32, u32); 4] = [(256, 512), (128, 256), (128, 256), (64, 128)];
    for (i, &(reduce, out)) in extras.iter().enumerate() {
        b.conv(reduce, 1, 1, 0, Relu6).conv(out, 3, 2, 1, Relu6);
        b.end_unit(format!("extra{}", i + 1));
    }
    // Detection heads over two of the scales (class + box convs).
    let head_in = b.shape();
    b.conv(24, 3, 1, 1, Activation::None).conv(546, 3, 1, 1, Sigmoid);
    b.end_unit("head_cls");
    b.set_shape(head_in);
    b.conv(24, 3, 1, 1, Activation::None).conv(24, 3, 1, 1, Activation::None);
    b.end_unit("head_box");
    b.finish(id, "SSD-MobileNet")
}

/// Darknet residual block: 1×1 halve → 3×3 restore → add.
fn darknet_res(b: &mut NetBuilder, c: u32) {
    b.conv(c / 2, 1, 1, 0, LeakyRelu);
    b.conv(c, 3, 1, 1, LeakyRelu);
    b.add(Activation::None);
}

/// YOLO conv-set: alternating 1×1/3×3 convolutions ending at `c` channels.
fn conv_set(b: &mut NetBuilder, c: u32) {
    b.conv(c, 1, 1, 0, LeakyRelu);
    b.conv(c * 2, 3, 1, 1, LeakyRelu);
    b.conv(c, 1, 1, 0, LeakyRelu);
    b.conv(c * 2, 3, 1, 1, LeakyRelu);
    b.conv(c, 1, 1, 0, LeakyRelu);
}

/// Builds YOLO-V3 (Darknet-53 backbone) at 416×416 (14 units).
pub fn build_yolo_v3(id: ModelId) -> DnnModel {
    let mut b = NetBuilder::new(3, 416, 416);
    b.conv(32, 3, 1, 1, LeakyRelu).end_unit("stem");
    // Downsample stages with residual blocks: (channels, blocks, units).
    let stages: [(u32, usize, usize); 5] =
        [(64, 1, 1), (128, 2, 1), (256, 8, 2), (512, 8, 2), (1024, 4, 1)];
    for (si, &(c, blocks, units)) in stages.iter().enumerate() {
        b.conv(c, 3, 2, 1, LeakyRelu);
        let per_unit = blocks.div_ceil(units);
        let mut emitted = 0;
        for ui in 0..units {
            let n = per_unit.min(blocks - emitted);
            for _ in 0..n {
                darknet_res(&mut b, c);
            }
            emitted += n;
            b.end_unit(format!("dark{}_{}", si + 1, ui + 1));
        }
    }
    // Head 1 at 13×13.
    conv_set(&mut b, 512);
    b.end_unit("convset1");
    let route1 = b.shape();
    b.conv(1024, 3, 1, 1, LeakyRelu).conv(255, 1, 1, 0, Activation::None);
    b.end_unit("detect1");
    // Neck to 26×26.
    b.set_shape(route1);
    b.conv(256, 1, 1, 0, LeakyRelu).upsample2().concat_to(256 + 512);
    b.end_unit("neck1");
    conv_set(&mut b, 256);
    let route2 = b.shape();
    b.conv(512, 3, 1, 1, LeakyRelu).conv(255, 1, 1, 0, Activation::None);
    b.end_unit("detect2");
    // Neck to 52×52.
    b.set_shape(route2);
    b.conv(128, 1, 1, 0, LeakyRelu).upsample2().concat_to(128 + 256);
    b.end_unit("neck2");
    conv_set(&mut b, 128);
    b.conv(256, 3, 1, 1, LeakyRelu).conv(255, 1, 1, 0, Activation::None);
    b.end_unit("detect3");
    b.finish(id, "YOLO-V3")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ssd_unit_count() {
        assert_eq!(build_ssd_mobilenet(ModelId::SsdMobileNet).unit_count(), 20);
    }

    #[test]
    fn yolo_unit_count() {
        assert_eq!(build_yolo_v3(ModelId::YoloV3).unit_count(), 14);
    }

    #[test]
    fn yolo_is_heavy() {
        let g = build_yolo_v3(ModelId::YoloV3).total_flops() / 1e9;
        assert!(g > 40.0, "YOLO-V3 at 416 ≈ 65 GFLOPs (2×MAC), got {g}");
    }

    #[test]
    fn ssd_multiscale_pyramid_shrinks() {
        let m = build_ssd_mobilenet(ModelId::SsdMobileNet);
        let e1 = m.units().iter().find(|u| u.name == "extra1").unwrap();
        let e4 = m.units().iter().find(|u| u.name == "extra4").unwrap();
        assert!(e4.output_shape().h < e1.output_shape().h);
    }

    #[test]
    fn yolo_has_three_detect_heads() {
        let m = build_yolo_v3(ModelId::YoloV3);
        let heads =
            m.units().iter().filter(|u| u.name.starts_with("detect")).count();
        assert_eq!(heads, 3);
        for u in m.units().iter().filter(|u| u.name.starts_with("detect")) {
            assert_eq!(u.output_shape().c, 255);
        }
    }
}
