//! MobileNet V1 / V2 (Howard et al. 2017, Sandler et al. 2018).
//!
//! MobileNet V1 exposes 20 schedulable units (stride-2 separable blocks are
//! split into depthwise and pointwise units), matching the paper's
//! "20 valid partition points".

use crate::builder::NetBuilder;
use crate::layer::Activation::{self, Relu6, Softmax};
use crate::model::{DnnModel, ModelId};

/// The 13 depthwise-separable blocks of MobileNet V1: `(out_c, stride)`.
pub const V1_BLOCKS: [(u32, u32); 13] = [
    (64, 1),
    (128, 2),
    (128, 1),
    (256, 2),
    (256, 1),
    (512, 2),
    (512, 1),
    (512, 1),
    (512, 1),
    (512, 1),
    (512, 1),
    (1024, 2),
    (1024, 1),
];

/// Emits the MobileNet V1 backbone (conv1 + 13 separable blocks) into `b`.
/// When `split_stride2` is set, stride-2 blocks become two units (dw + pw).
/// Returns the number of units emitted.
pub fn v1_backbone(b: &mut NetBuilder, split_stride2: bool) -> usize {
    let mut units = 0;
    b.conv(32, 3, 2, 1, Relu6).end_unit("conv1");
    units += 1;
    for (i, &(out, s)) in V1_BLOCKS.iter().enumerate() {
        if split_stride2 && s == 2 {
            b.dwconv(3, s, Relu6).end_unit(format!("sep{}_dw", i + 2));
            b.conv(out, 1, 1, 0, Relu6).end_unit(format!("sep{}_pw", i + 2));
            units += 2;
        } else {
            b.dwconv(3, s, Relu6).conv(out, 1, 1, 0, Relu6).end_unit(format!("sep{}", i + 2));
            units += 1;
        }
    }
    units
}

/// Builds MobileNet V1 at 224×224 (20 units).
pub fn build_v1(id: ModelId) -> DnnModel {
    let mut b = NetBuilder::new(3, 224, 224);
    v1_backbone(&mut b, true);
    b.global_avg_pool().end_unit("gap");
    b.fc(1000, Softmax).end_unit("fc");
    b.finish(id, "MobileNet")
}

/// Inverted-residual bottleneck of MobileNet V2.
fn inverted_residual(b: &mut NetBuilder, name: &str, out: u32, expand: u32, s: u32) {
    let cell_in = b.shape();
    if expand > 1 {
        b.conv(cell_in.c * expand, 1, 1, 0, Relu6);
    }
    b.dwconv(3, s, Relu6);
    b.conv(out, 1, 1, 0, Activation::None);
    if s == 1 && cell_in.c == out {
        b.add(Activation::None);
    }
    b.end_unit(name);
}

/// Builds MobileNet V2 at 224×224 (20 units).
pub fn build_v2(id: ModelId) -> DnnModel {
    let mut b = NetBuilder::new(3, 224, 224);
    b.conv(32, 3, 2, 1, Relu6).end_unit("conv1");
    // (expand, out_c, repeats, first_stride)
    let cfg: [(u32, u32, usize, u32); 7] = [
        (1, 16, 1, 1),
        (6, 24, 2, 2),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ];
    let mut idx = 1;
    for &(e, c, n, s) in &cfg {
        for r in 0..n {
            let stride = if r == 0 { s } else { 1 };
            inverted_residual(&mut b, &format!("bottleneck{}", idx), c, e, stride);
            idx += 1;
        }
    }
    b.conv(1280, 1, 1, 0, Relu6).end_unit("conv_last");
    b.global_avg_pool().fc(1000, Softmax).end_unit("head");
    b.finish(id, "MobileNet-V2")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mobilenet_v1_has_20_units() {
        assert_eq!(build_v1(ModelId::MobileNet).unit_count(), 20);
    }

    #[test]
    fn mobilenet_v2_has_20_units() {
        assert_eq!(build_v2(ModelId::MobileNetV2).unit_count(), 20);
    }

    #[test]
    fn v1_flops_near_1_1g() {
        let g = build_v1(ModelId::MobileNet).total_flops() / 1e9;
        assert!((0.8..1.6).contains(&g), "MobileNet ≈ 1.1 GFLOPs, got {g}");
    }

    #[test]
    fn v2_lighter_than_v1() {
        assert!(
            build_v2(ModelId::MobileNetV2).total_flops()
                < build_v1(ModelId::MobileNet).total_flops()
        );
    }

    #[test]
    fn v1_final_spatial_is_7x7() {
        let m = build_v1(ModelId::MobileNet);
        let gap = m.units().iter().find(|u| u.name == "gap").unwrap();
        assert_eq!(gap.layers[0].ifm.h, 7);
        assert_eq!(gap.layers[0].ifm.c, 1024);
    }
}
