//! AlexNet (Krizhevsky et al., 2012) — 8 schedulable units, matching the
//! paper's "8 valid partition points" for AlexNet.

use crate::builder::NetBuilder;
use crate::layer::Activation::{Relu, Softmax};
use crate::model::{DnnModel, ModelId};

/// Builds AlexNet at its canonical 227×227 input.
pub fn build(id: ModelId) -> DnnModel {
    let mut b = NetBuilder::new(3, 227, 227);
    b.conv(96, 11, 4, 0, Relu).pool_max(3, 2, 0).end_unit("conv1");
    // conv2/4/5 use the original two-tower grouping (groups = 2).
    b.gconv(256, 5, 1, 2, 2, Relu).pool_max(3, 2, 0).end_unit("conv2");
    b.conv(384, 3, 1, 1, Relu).end_unit("conv3");
    b.gconv(384, 3, 1, 1, 2, Relu).end_unit("conv4");
    b.gconv(256, 3, 1, 1, 2, Relu).pool_max(3, 2, 0).end_unit("conv5");
    b.fc(4096, Relu).end_unit("fc6");
    b.fc(4096, Relu).end_unit("fc7");
    b.fc(1000, Softmax).end_unit("fc8");
    b.finish(id, "AlexNet")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alexnet_has_8_units() {
        assert_eq!(build(ModelId::AlexNet).unit_count(), 8);
    }

    #[test]
    fn alexnet_flops_near_1_4_gflops() {
        let g = build(ModelId::AlexNet).total_flops() / 1e9;
        assert!((1.0..2.2).contains(&g), "AlexNet ≈ 1.4 GFLOPs, got {g}");
    }

    #[test]
    fn alexnet_params_near_60m() {
        let mb = build(ModelId::AlexNet).total_weight_bytes() as f64 / 1e6;
        assert!((200.0..280.0).contains(&mb), "AlexNet ≈ 240 MB f32 weights, got {mb}");
    }

    #[test]
    fn conv1_output_is_55x55() {
        let m = build(ModelId::AlexNet);
        let first = m.layers().next().unwrap();
        assert_eq!((first.ofm.h, first.ofm.w), (55, 55));
        assert_eq!(first.ofm.c, 96);
    }
}
