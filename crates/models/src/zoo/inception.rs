//! The Inception family: GoogleNet, Inception-V3, Inception-V4, and the
//! residual variants Inception-ResNet-V1/V2.
//!
//! Cells are linearized (branch layers emitted sequentially, fused with a
//! `Concat`/`Add` layer) since units are scheduled atomically.

use crate::builder::NetBuilder;
use crate::layer::Activation::{self, Relu, Softmax};
use crate::layer::TensorShape;
use crate::model::{DnnModel, ModelId};

/// One conv spec of an inception branch: `(channels, (kh, kw), (ph, pw))`.
type BranchConv = (u32, (u32, u32), (u32, u32));


/// Classic GoogLeNet inception cell with four branches.
fn googlenet_cell(b: &mut NetBuilder, b1: u32, b3r: u32, b3: u32, b5r: u32, b5: u32, pp: u32) {
    let cin = b.shape();
    b.conv(b1, 1, 1, 0, Relu);
    b.set_shape(cin);
    b.conv(b3r, 1, 1, 0, Relu).conv(b3, 3, 1, 1, Relu);
    b.set_shape(cin);
    b.conv(b5r, 1, 1, 0, Relu).conv(b5, 5, 1, 2, Relu);
    b.set_shape(cin);
    b.pool_max(3, 1, 1).conv(pp, 1, 1, 0, Relu);
    b.concat_to(b1 + b3 + b5 + pp);
}

/// Builds GoogLeNet (Inception-V1) at 224×224 (12 units).
pub fn build_googlenet(id: ModelId) -> DnnModel {
    let mut b = NetBuilder::new(3, 224, 224);
    b.conv(64, 7, 2, 3, Relu).pool_max(3, 2, 1).end_unit("stem_a");
    b.conv(64, 1, 1, 0, Relu).conv(192, 3, 1, 1, Relu).pool_max(3, 2, 1).end_unit("stem_b");
    googlenet_cell(&mut b, 64, 96, 128, 16, 32, 32);
    b.end_unit("inception3a");
    googlenet_cell(&mut b, 128, 128, 192, 32, 96, 64);
    b.pool_max(3, 2, 1);
    b.end_unit("inception3b");
    googlenet_cell(&mut b, 192, 96, 208, 16, 48, 64);
    b.end_unit("inception4a");
    googlenet_cell(&mut b, 160, 112, 224, 24, 64, 64);
    b.end_unit("inception4b");
    googlenet_cell(&mut b, 128, 128, 256, 24, 64, 64);
    b.end_unit("inception4c");
    googlenet_cell(&mut b, 112, 144, 288, 32, 64, 64);
    b.end_unit("inception4d");
    googlenet_cell(&mut b, 256, 160, 320, 32, 128, 128);
    b.pool_max(3, 2, 1);
    b.end_unit("inception4e");
    googlenet_cell(&mut b, 256, 160, 320, 32, 128, 128);
    b.end_unit("inception5a");
    googlenet_cell(&mut b, 384, 192, 384, 48, 128, 128);
    b.end_unit("inception5b");
    b.global_avg_pool().fc(1000, Softmax).end_unit("head");
    b.finish(id, "GoogleNet")
}

/// Builds Inception-V3 at 299×299 (14 units).
pub fn build_v3(id: ModelId) -> DnnModel {
    let mut b = NetBuilder::new(3, 299, 299);
    b.conv(32, 3, 2, 0, Relu).conv(32, 3, 1, 0, Relu).conv(64, 3, 1, 1, Relu).pool_max(3, 2, 0);
    b.end_unit("stem_a");
    b.conv(80, 1, 1, 0, Relu).conv(192, 3, 1, 0, Relu).pool_max(3, 2, 0).end_unit("stem_b");
    // 3 × InceptionA at 35×35.
    for (i, pp) in [32u32, 64, 64].iter().enumerate() {
        let cin = b.shape();
        b.conv(64, 1, 1, 0, Relu);
        b.set_shape(cin);
        b.conv(48, 1, 1, 0, Relu).conv(64, 5, 1, 2, Relu);
        b.set_shape(cin);
        b.conv(64, 1, 1, 0, Relu).conv(96, 3, 1, 1, Relu).conv(96, 3, 1, 1, Relu);
        b.set_shape(cin);
        b.pool_avg(3, 1, 1).conv(*pp, 1, 1, 0, Relu);
        b.concat_to(64 + 64 + 96 + pp);
        b.end_unit(format!("mixed5{}", (b'b' + i as u8) as char));
    }
    // Reduction A: 35 → 17.
    {
        let cin = b.shape();
        b.conv(384, 3, 2, 0, Relu);
        b.set_shape(cin);
        b.conv(64, 1, 1, 0, Relu).conv(96, 3, 1, 1, Relu).conv(96, 3, 2, 0, Relu);
        b.set_shape(cin);
        b.pool_max(3, 2, 0);
        b.concat_to(cin.c + 384 + 96);
        b.end_unit("mixed6a");
    }
    // 4 × InceptionB at 17×17 with factorized 7×1/1×7 convolutions.
    for (i, mid) in [128u32, 160, 160, 192].iter().enumerate() {
        let cin = b.shape();
        let m = *mid;
        b.conv(192, 1, 1, 0, Relu);
        b.set_shape(cin);
        b.conv(m, 1, 1, 0, Relu)
            .conv_rect(m, (1, 7), 1, (0, 3), Relu)
            .conv_rect(192, (7, 1), 1, (3, 0), Relu);
        b.set_shape(cin);
        b.conv(m, 1, 1, 0, Relu)
            .conv_rect(m, (7, 1), 1, (3, 0), Relu)
            .conv_rect(m, (1, 7), 1, (0, 3), Relu)
            .conv_rect(m, (7, 1), 1, (3, 0), Relu)
            .conv_rect(192, (1, 7), 1, (0, 3), Relu);
        b.set_shape(cin);
        b.pool_avg(3, 1, 1).conv(192, 1, 1, 0, Relu);
        b.concat_to(768);
        b.end_unit(format!("mixed6{}", (b'b' + i as u8) as char));
    }
    // Reduction B: 17 → 8.
    {
        let cin = b.shape();
        b.conv(192, 1, 1, 0, Relu).conv(320, 3, 2, 0, Relu);
        b.set_shape(cin);
        b.conv(192, 1, 1, 0, Relu)
            .conv_rect(192, (1, 7), 1, (0, 3), Relu)
            .conv_rect(192, (7, 1), 1, (3, 0), Relu)
            .conv(192, 3, 2, 0, Relu);
        b.set_shape(cin);
        b.pool_max(3, 2, 0);
        b.concat_to(cin.c + 320 + 192);
        b.end_unit("mixed7a");
    }
    // 2 × InceptionC at 8×8.
    for i in 0..2 {
        let cin = b.shape();
        b.conv(320, 1, 1, 0, Relu);
        b.set_shape(cin);
        b.conv(384, 1, 1, 0, Relu);
        let mid = b.shape();
        b.conv_rect(384, (1, 3), 1, (0, 1), Relu);
        b.set_shape(mid);
        b.conv_rect(384, (3, 1), 1, (1, 0), Relu);
        b.set_shape(cin);
        b.conv(448, 1, 1, 0, Relu).conv(384, 3, 1, 1, Relu);
        let mid2 = b.shape();
        b.conv_rect(384, (1, 3), 1, (0, 1), Relu);
        b.set_shape(mid2);
        b.conv_rect(384, (3, 1), 1, (1, 0), Relu);
        b.set_shape(cin);
        b.pool_avg(3, 1, 1).conv(192, 1, 1, 0, Relu);
        b.concat_to(320 + 768 + 768 + 192);
        b.end_unit(format!("mixed7{}", (b'b' + i as u8) as char));
    }
    b.global_avg_pool().fc(1000, Softmax).end_unit("head");
    b.finish(id, "Inception-V3")
}

/// Builds Inception-V4 at 299×299 (20 units).
pub fn build_v4(id: ModelId) -> DnnModel {
    let mut b = NetBuilder::new(3, 299, 299);
    b.conv(32, 3, 2, 0, Relu).conv(32, 3, 1, 0, Relu).conv(64, 3, 1, 1, Relu);
    b.end_unit("stem_a");
    // Mixed 3a: pool + conv 96, concat to 160 at 73×73.
    {
        let cin = b.shape();
        b.pool_max(3, 2, 0);
        b.set_shape(cin);
        b.conv(96, 3, 2, 0, Relu);
        b.concat_to(160);
        b.end_unit("stem_b");
    }
    // Mixed 4a/5a: factorized branches down to 384 at 35×35.
    {
        let cin = b.shape();
        b.conv(64, 1, 1, 0, Relu).conv(96, 3, 1, 0, Relu);
        b.set_shape(cin);
        b.conv(64, 1, 1, 0, Relu)
            .conv_rect(64, (1, 7), 1, (0, 3), Relu)
            .conv_rect(64, (7, 1), 1, (3, 0), Relu)
            .conv(96, 3, 1, 0, Relu);
        b.concat_to(192);
        b.conv(192, 3, 2, 0, Relu);
        b.concat_to(384);
        b.end_unit("stem_c");
    }
    // 4 × InceptionA.
    for i in 0..4 {
        let cin = b.shape();
        b.conv(96, 1, 1, 0, Relu);
        b.set_shape(cin);
        b.conv(64, 1, 1, 0, Relu).conv(96, 3, 1, 1, Relu);
        b.set_shape(cin);
        b.conv(64, 1, 1, 0, Relu).conv(96, 3, 1, 1, Relu).conv(96, 3, 1, 1, Relu);
        b.set_shape(cin);
        b.pool_avg(3, 1, 1).conv(96, 1, 1, 0, Relu);
        b.concat_to(384);
        b.end_unit(format!("inceptionA{}", i + 1));
    }
    // Reduction A: 35 → 17, 384 → 1024.
    {
        let cin = b.shape();
        b.conv(384, 3, 2, 0, Relu);
        b.set_shape(cin);
        b.conv(192, 1, 1, 0, Relu).conv(224, 3, 1, 1, Relu).conv(256, 3, 2, 0, Relu);
        b.set_shape(cin);
        b.pool_max(3, 2, 0);
        b.concat_to(cin.c + 384 + 256);
        b.end_unit("reductionA");
    }
    // 7 × InceptionB.
    for i in 0..7 {
        let cin = b.shape();
        b.conv(384, 1, 1, 0, Relu);
        b.set_shape(cin);
        b.conv(192, 1, 1, 0, Relu)
            .conv_rect(224, (1, 7), 1, (0, 3), Relu)
            .conv_rect(256, (7, 1), 1, (3, 0), Relu);
        b.set_shape(cin);
        b.conv(192, 1, 1, 0, Relu)
            .conv_rect(192, (7, 1), 1, (3, 0), Relu)
            .conv_rect(224, (1, 7), 1, (0, 3), Relu)
            .conv_rect(224, (7, 1), 1, (3, 0), Relu)
            .conv_rect(256, (1, 7), 1, (0, 3), Relu);
        b.set_shape(cin);
        b.pool_avg(3, 1, 1).conv(128, 1, 1, 0, Relu);
        b.concat_to(1024);
        b.end_unit(format!("inceptionB{}", i + 1));
    }
    // Reduction B: 17 → 8, 1024 → 1536.
    {
        let cin = b.shape();
        b.conv(192, 1, 1, 0, Relu).conv(192, 3, 2, 0, Relu);
        b.set_shape(cin);
        b.conv(256, 1, 1, 0, Relu)
            .conv_rect(256, (1, 7), 1, (0, 3), Relu)
            .conv_rect(320, (7, 1), 1, (3, 0), Relu)
            .conv(320, 3, 2, 0, Relu);
        b.set_shape(cin);
        b.pool_max(3, 2, 0);
        b.concat_to(cin.c + 192 + 320);
        b.end_unit("reductionB");
    }
    // 3 × InceptionC.
    for i in 0..3 {
        let cin = b.shape();
        b.conv(256, 1, 1, 0, Relu);
        b.set_shape(cin);
        b.conv(384, 1, 1, 0, Relu);
        let mid = b.shape();
        b.conv_rect(256, (1, 3), 1, (0, 1), Relu);
        b.set_shape(mid);
        b.conv_rect(256, (3, 1), 1, (1, 0), Relu);
        b.set_shape(cin);
        b.conv(384, 1, 1, 0, Relu)
            .conv_rect(448, (1, 3), 1, (0, 1), Relu)
            .conv_rect(512, (3, 1), 1, (1, 0), Relu);
        let mid2 = b.shape();
        b.conv_rect(256, (3, 1), 1, (1, 0), Relu);
        b.set_shape(mid2);
        b.conv_rect(256, (1, 3), 1, (0, 1), Relu);
        b.set_shape(cin);
        b.pool_avg(3, 1, 1).conv(256, 1, 1, 0, Relu);
        b.concat_to(1536);
        b.end_unit(format!("inceptionC{}", i + 1));
    }
    b.global_avg_pool().fc(1000, Softmax).end_unit("head");
    b.finish(id, "Inception-V4")
}

/// Residual inception block: parallel small branches concatenated, projected
/// back to `out` channels by a linear 1×1 conv, then residual-added.
fn resnet_block(
    b: &mut NetBuilder,
    cin: TensorShape,
    branches: &[&[BranchConv]],
    out: u32,
) {
    let mut concat_c = 0;
    for branch in branches {
        b.set_shape(cin);
        for &(c, (kh, kw), (ph, pw)) in *branch {
            b.conv_rect(c, (kh, kw), 1, (ph, pw), Relu);
        }
        concat_c += branch.last().unwrap().0;
    }
    b.concat_to(concat_c);
    b.conv(out, 1, 1, 0, Activation::None);
    b.add(Relu);
}

fn build_inception_resnet(id: ModelId, name: &str, v2: bool) -> DnnModel {
    let mut b = NetBuilder::new(3, 299, 299);
    // Stem.
    b.conv(32, 3, 2, 0, Relu).conv(32, 3, 1, 0, Relu).conv(64, 3, 1, 1, Relu).pool_max(3, 2, 0);
    b.end_unit("stem_a");
    let stem_c: u32 = if v2 { 384 } else { 256 };
    b.conv(80, 1, 1, 0, Relu).conv(192, 3, 1, 0, Relu).conv(stem_c, 3, 2, 0, Relu);
    b.end_unit("stem_b");
    // 5 × block35 (Inception-ResNet-A).
    let a_out = stem_c;
    for i in 0..5 {
        let cin = b.shape();
        let b3: &[BranchConv] =
            &[(32, (1, 1), (0, 0)), (32, (3, 3), (1, 1))];
        let b3b: &[BranchConv] = if v2 {
            &[(32, (1, 1), (0, 0)), (48, (3, 3), (1, 1)), (64, (3, 3), (1, 1))]
        } else {
            &[(32, (1, 1), (0, 0)), (32, (3, 3), (1, 1)), (32, (3, 3), (1, 1))]
        };
        let b1: &[BranchConv] = &[(32, (1, 1), (0, 0))];
        resnet_block(&mut b, cin, &[b1, b3, b3b], a_out);
        b.end_unit(format!("block35_{}", i + 1));
    }
    // Reduction A.
    {
        let cin = b.shape();
        b.conv(384, 3, 2, 0, Relu);
        b.set_shape(cin);
        b.conv(192, 1, 1, 0, Relu).conv(192, 3, 1, 1, Relu).conv(256, 3, 2, 0, Relu);
        b.set_shape(cin);
        b.pool_max(3, 2, 0);
        b.concat_to(cin.c + 384 + 256);
        b.end_unit("reductionA");
    }
    let b_out = b.shape().c;
    // 10 × block17 (Inception-ResNet-B).
    for i in 0..10 {
        let cin = b.shape();
        let (c1, c2, c3) = if v2 { (128, 160, 192) } else { (128, 128, 128) };
        let br1: &[BranchConv] = &[(c3, (1, 1), (0, 0))];
        let br2: Vec<BranchConv> =
            vec![(c1, (1, 1), (0, 0)), (c2, (1, 7), (0, 3)), (c3, (7, 1), (3, 0))];
        resnet_block(&mut b, cin, &[br1, &br2], b_out);
        b.end_unit(format!("block17_{}", i + 1));
    }
    // Reduction B.
    {
        let cin = b.shape();
        b.conv(256, 1, 1, 0, Relu).conv(384, 3, 2, 0, Relu);
        b.set_shape(cin);
        b.conv(256, 1, 1, 0, Relu).conv(256, 3, 2, 0, Relu);
        b.set_shape(cin);
        b.conv(256, 1, 1, 0, Relu).conv(256, 3, 1, 1, Relu).conv(256, 3, 2, 0, Relu);
        b.set_shape(cin);
        b.pool_max(3, 2, 0);
        b.concat_to(cin.c + 384 + 256 + 256);
        b.end_unit("reductionB");
    }
    let c_out = b.shape().c;
    // 5 × block8 (Inception-ResNet-C).
    for i in 0..5 {
        let cin = b.shape();
        let (c1, c2, c3) = if v2 { (192, 224, 256) } else { (192, 192, 192) };
        let br1: &[BranchConv] = &[(c3, (1, 1), (0, 0))];
        let br2: Vec<BranchConv> =
            vec![(c1, (1, 1), (0, 0)), (c2, (1, 3), (0, 1)), (c3, (3, 1), (1, 0))];
        resnet_block(&mut b, cin, &[br1, &br2], c_out);
        b.end_unit(format!("block8_{}", i + 1));
    }
    b.global_avg_pool().fc(1000, Softmax).end_unit("head");
    b.finish(id, name)
}

/// Builds Inception-ResNet-V1 at 299×299 (25 units) — the heavyweight model
/// of the paper's Fig. 8 dynamic-workload experiment.
pub fn build_inception_resnet_v1(id: ModelId) -> DnnModel {
    build_inception_resnet(id, "Inception-ResNet-V1", false)
}

/// Builds Inception-ResNet-V2 at 299×299 (25 units).
pub fn build_inception_resnet_v2(id: ModelId) -> DnnModel {
    build_inception_resnet(id, "Inception-ResNet-V2", true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn googlenet_unit_count() {
        assert_eq!(build_googlenet(ModelId::GoogleNet).unit_count(), 12);
    }

    #[test]
    fn v3_unit_count() {
        assert_eq!(build_v3(ModelId::InceptionV3).unit_count(), 14);
    }

    #[test]
    fn v4_unit_count() {
        assert_eq!(build_v4(ModelId::InceptionV4).unit_count(), 20);
    }

    #[test]
    fn inception_resnet_unit_count() {
        assert_eq!(build_inception_resnet_v1(ModelId::InceptionResnetV1).unit_count(), 25);
        assert_eq!(build_inception_resnet_v2(ModelId::InceptionResnetV2).unit_count(), 25);
    }

    #[test]
    fn v4_heavier_than_v3() {
        let v3 = build_v3(ModelId::InceptionV3).total_flops();
        let v4 = build_v4(ModelId::InceptionV4).total_flops();
        assert!(v4 > v3, "Inception-V4 should out-cost V3");
    }

    #[test]
    fn v3_flops_near_11g() {
        let g = build_v3(ModelId::InceptionV3).total_flops() / 1e9;
        assert!((8.0..15.0).contains(&g), "Inception-V3 ≈ 11 GFLOPs (2×MAC), got {g}");
    }

    #[test]
    fn resnet_v2_wider_than_v1() {
        let v1 = build_inception_resnet_v1(ModelId::InceptionResnetV1).total_flops();
        let v2 = build_inception_resnet_v2(ModelId::InceptionResnetV2).total_flops();
        assert!(v2 > v1);
    }

    #[test]
    fn googlenet_final_channels_1024() {
        let m = build_googlenet(ModelId::GoogleNet);
        let b5 = m.units().iter().find(|u| u.name == "inception5b").unwrap();
        assert_eq!(b5.output_shape().c, 1024);
    }

    #[test]
    fn inception_models_have_many_small_kernels() {
        // The defining property for scheduling: lots of kernel launches.
        let v4 = build_v4(ModelId::InceptionV4);
        assert!(v4.layer_count() > 100, "Inception-V4 has >100 layers");
    }
}
