//! Architecture builders for the paper's model pool.
//!
//! Each family module exposes `build*` functions consumed by
//! [`crate::ModelId::build`]. The descriptions use canonical layer
//! configurations (channel widths, kernel sizes, strides) of the published
//! architectures; branchy cells are linearized as documented in
//! [`crate::NetBuilder`].

pub mod alexnet;
pub mod densenet;
pub mod detection;
pub mod efficientnet;
pub mod inception;
pub mod mobilenet;
pub mod resnet;
pub mod shufflenet;
pub mod squeezenet;
pub mod vgg;
