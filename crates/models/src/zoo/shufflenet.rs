//! ShuffleNet V1 with 3 groups (Zhang et al., 2018) — 18 schedulable units,
//! matching the paper's "18 valid partition points".

use crate::builder::NetBuilder;
use crate::layer::Activation::{self, Relu, Softmax};
use crate::model::{DnnModel, ModelId};

const GROUPS: u32 = 3;

/// One ShuffleNet unit: 1×1 gconv → shuffle → 3×3 dw (stride `s`) → 1×1
/// gconv, fused by residual add (stride 1) or pool-shortcut concat
/// (stride 2).
fn shuffle_unit(b: &mut NetBuilder, name: &str, out: u32, s: u32, first: bool) {
    let cell_in = b.shape();
    let mid = out / 4;
    // The very first unit takes 24 channels which 3 groups do not divide
    // evenly in the reference net either; it uses a plain conv there.
    if first {
        b.conv(mid, 1, 1, 0, Relu);
    } else {
        b.gconv(mid, 1, 1, 0, GROUPS, Relu);
    }
    b.shuffle();
    b.dwconv(3, s, Activation::None);
    let branch_out = if s == 2 { out - cell_in.c } else { out };
    b.gconv(branch_out, 1, 1, 0, GROUPS, Activation::None);
    if s == 2 {
        b.concat_to(out);
    } else {
        b.add(Relu);
    }
    b.end_unit(name);
}

/// Builds ShuffleNet V1 (g = 3) at 224×224 (18 units).
pub fn build(id: ModelId) -> DnnModel {
    let mut b = NetBuilder::new(3, 224, 224);
    b.conv(24, 3, 2, 1, Relu).pool_max(3, 2, 1).end_unit("stem");
    let stages: [(u32, usize); 3] = [(240, 4), (480, 8), (960, 4)];
    let mut first = true;
    for (si, &(out, n)) in stages.iter().enumerate() {
        for ui in 0..n {
            let s = if ui == 0 { 2 } else { 1 };
            shuffle_unit(&mut b, &format!("stage{}_{}", si + 2, ui + 1), out, s, first);
            first = false;
        }
    }
    b.global_avg_pool().fc(1000, Softmax).end_unit("head");
    b.finish(id, "ShuffleNet")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shufflenet_has_18_units() {
        assert_eq!(build(ModelId::ShuffleNet).unit_count(), 18);
    }

    #[test]
    fn shufflenet_is_light() {
        let g = build(ModelId::ShuffleNet).total_flops() / 1e9;
        assert!(g < 1.5, "ShuffleNet should be well under 1.5 GFLOPs, got {g}");
    }

    #[test]
    fn stage_channels() {
        let m = build(ModelId::ShuffleNet);
        let s2_last = m.units().iter().find(|u| u.name == "stage2_4").unwrap();
        assert_eq!(s2_last.output_shape().c, 240);
        let s4_last = m.units().iter().find(|u| u.name == "stage4_4").unwrap();
        assert_eq!(s4_last.output_shape().c, 960);
        assert_eq!(s4_last.output_shape().h, 7);
    }

    #[test]
    fn contains_shuffle_layers() {
        let m = build(ModelId::ShuffleNet);
        let shuffles = m
            .layers()
            .filter(|l| l.ty == crate::LayerType::Shuffle)
            .count();
        assert_eq!(shuffles, 16);
    }
}
