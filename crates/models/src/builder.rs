//! Fluent construction of layer-level network descriptions.

use crate::layer::{
    Activation, LayerDesc, LayerType, PadStride, TensorShape, WeightShape,
};
use crate::model::{DnnModel, ModelId, Unit};

/// Output spatial size of a conv/pool window:
/// `(in + pad_a + pad_b - k) / s + 1` (floor).
pub fn conv_out(input: u32, k: u32, s: u32, pad: u32) -> u32 {
    let padded = input + 2 * pad;
    assert!(padded >= k, "kernel {k} larger than padded input {padded}");
    (padded - k) / s + 1
}

/// Incrementally builds a [`DnnModel`], tracking the current tensor shape
/// and the global layer index.
///
/// Layers accumulate into a *pending* buffer; [`NetBuilder::end_unit`] seals
/// them into a schedulable [`Unit`]. Branchy cells (inception, fire, SE)
/// are linearized: branch layers are emitted with explicitly set shapes and
/// followed by a `Concat`/`Add` layer with the fused output shape — the
/// scheduler never splits inside a unit, so only per-layer costs matter,
/// not intra-unit topology.
#[derive(Debug, Clone)]
pub struct NetBuilder {
    input: TensorShape,
    cur: TensorShape,
    next_index: u32,
    pending: Vec<LayerDesc>,
    units: Vec<Unit>,
}

impl NetBuilder {
    /// Starts building a network whose input is `c×h×w`.
    pub fn new(c: u32, h: u32, w: u32) -> Self {
        let input = TensorShape::chw(c, h, w);
        Self { input, cur: input, next_index: 0, pending: Vec::new(), units: Vec::new() }
    }

    /// The current tensor shape flowing through the network.
    pub fn shape(&self) -> TensorShape {
        self.cur
    }

    /// Overrides the current shape (used when linearizing branches).
    pub fn set_shape(&mut self, s: TensorShape) -> &mut Self {
        self.cur = s;
        self
    }

    /// Pushes a fully specified layer, advancing shape and index.
    pub fn push(&mut self, mut layer: LayerDesc) -> &mut Self {
        layer.index = self.next_index;
        self.next_index += 1;
        self.cur = layer.ofm;
        self.pending.push(layer);
        self
    }

    /// Standard convolution with square kernel `k`, stride `s`, symmetric
    /// padding `p` and fused activation.
    pub fn conv(&mut self, out_c: u32, k: u32, s: u32, p: u32, act: Activation) -> &mut Self {
        let ifm = self.cur;
        let oh = conv_out(ifm.h, k, s, p);
        let ow = conv_out(ifm.w, k, s, p);
        self.push(LayerDesc {
            index: 0,
            ty: LayerType::Conv,
            ifm,
            ofm: TensorShape::chw(out_c, oh, ow),
            weights: WeightShape::new(out_c, ifm.c, k, k),
            biases: out_c,
            act,
            pad_stride: PadStride::symmetric(p, s),
        })
    }

    /// Grouped convolution: weights store `in_c / groups` input channels.
    pub fn gconv(
        &mut self,
        out_c: u32,
        k: u32,
        s: u32,
        p: u32,
        groups: u32,
        act: Activation,
    ) -> &mut Self {
        let ifm = self.cur;
        assert!(groups >= 1 && ifm.c.is_multiple_of(groups), "channels must divide groups");
        let oh = conv_out(ifm.h, k, s, p);
        let ow = conv_out(ifm.w, k, s, p);
        self.push(LayerDesc {
            index: 0,
            ty: LayerType::Conv,
            ifm,
            ofm: TensorShape::chw(out_c, oh, ow),
            weights: WeightShape::new(out_c, ifm.c / groups, k, k),
            biases: out_c,
            act,
            pad_stride: PadStride::symmetric(p, s),
        })
    }

    /// Rectangular convolution (e.g. the 1×7 / 7×1 factorized kernels of
    /// Inception).
    pub fn conv_rect(
        &mut self,
        out_c: u32,
        (kh, kw): (u32, u32),
        s: u32,
        (ph, pw): (u32, u32),
        act: Activation,
    ) -> &mut Self {
        let ifm = self.cur;
        let oh = (ifm.h + 2 * ph - kh) / s + 1;
        let ow = (ifm.w + 2 * pw - kw) / s + 1;
        self.push(LayerDesc {
            index: 0,
            ty: LayerType::Conv,
            ifm,
            ofm: TensorShape::chw(out_c, oh, ow),
            weights: WeightShape::new(out_c, ifm.c, kh, kw),
            biases: out_c,
            act,
            pad_stride: PadStride {
                pad_top: ph,
                pad_bottom: ph,
                pad_left: pw,
                pad_right: pw,
                stride_h: s,
                stride_w: s,
            },
        })
    }

    /// Depth-wise convolution (`k×k`, stride `s`, SAME-ish padding `k/2`).
    pub fn dwconv(&mut self, k: u32, s: u32, act: Activation) -> &mut Self {
        let ifm = self.cur;
        let p = k / 2;
        let oh = conv_out(ifm.h, k, s, p);
        let ow = conv_out(ifm.w, k, s, p);
        self.push(LayerDesc {
            index: 0,
            ty: LayerType::DwConv,
            ifm,
            ofm: TensorShape::chw(ifm.c, oh, ow),
            weights: WeightShape::new(ifm.c, 1, k, k),
            biases: ifm.c,
            act,
            pad_stride: PadStride::symmetric(p, s),
        })
    }

    /// Max pooling.
    pub fn pool_max(&mut self, k: u32, s: u32, p: u32) -> &mut Self {
        self.pool(LayerType::MaxPool, k, s, p)
    }

    /// Average pooling.
    pub fn pool_avg(&mut self, k: u32, s: u32, p: u32) -> &mut Self {
        self.pool(LayerType::AvgPool, k, s, p)
    }

    fn pool(&mut self, ty: LayerType, k: u32, s: u32, p: u32) -> &mut Self {
        let ifm = self.cur;
        let oh = conv_out(ifm.h, k, s, p);
        let ow = conv_out(ifm.w, k, s, p);
        self.push(LayerDesc {
            index: 0,
            ty,
            ifm,
            ofm: TensorShape::chw(ifm.c, oh, ow),
            weights: WeightShape::new(0, 0, k, k),
            biases: 0,
            act: Activation::None,
            pad_stride: PadStride::symmetric(p, s),
        })
    }

    /// Global average pooling down to `c×1×1`.
    pub fn global_avg_pool(&mut self) -> &mut Self {
        let ifm = self.cur;
        self.push(LayerDesc {
            index: 0,
            ty: LayerType::AvgPool,
            ifm,
            ofm: TensorShape::chw(ifm.c, 1, 1),
            weights: WeightShape::new(0, 0, ifm.h, ifm.w),
            biases: 0,
            act: Activation::None,
            pad_stride: PadStride::unit(),
        })
    }

    /// Fully connected layer over the flattened current tensor.
    pub fn fc(&mut self, out: u32, act: Activation) -> &mut Self {
        let ifm = self.cur;
        let fan_in = ifm.elements() as u32;
        self.push(LayerDesc {
            index: 0,
            ty: LayerType::Fc,
            ifm,
            ofm: TensorShape::chw(out, 1, 1),
            weights: WeightShape::new(out, fan_in, 1, 1),
            biases: out,
            act,
            pad_stride: PadStride::unit(),
        })
    }

    /// Batch-normalization layer over the current tensor.
    pub fn bn(&mut self, act: Activation) -> &mut Self {
        let ifm = self.cur;
        self.push(LayerDesc {
            index: 0,
            ty: LayerType::BatchNorm,
            ifm,
            ofm: ifm,
            weights: WeightShape::none(),
            biases: 2 * ifm.c,
            act,
            pad_stride: PadStride::unit(),
        })
    }

    /// Residual element-wise addition (shape preserved).
    pub fn add(&mut self, act: Activation) -> &mut Self {
        self.elementwise(LayerType::Add, act)
    }

    /// Squeeze-and-excite style element-wise multiply (shape preserved).
    pub fn mul(&mut self) -> &mut Self {
        self.elementwise(LayerType::Mul, Activation::None)
    }

    /// ShuffleNet channel shuffle (shape preserved).
    pub fn shuffle(&mut self) -> &mut Self {
        self.elementwise(LayerType::Shuffle, Activation::None)
    }

    fn elementwise(&mut self, ty: LayerType, act: Activation) -> &mut Self {
        let ifm = self.cur;
        self.push(LayerDesc {
            index: 0,
            ty,
            ifm,
            ofm: ifm,
            weights: WeightShape::none(),
            biases: 0,
            act,
            pad_stride: PadStride::unit(),
        })
    }

    /// Channel concatenation producing `out_c` channels at the current
    /// spatial size (the inputs are the just-emitted branch layers).
    pub fn concat_to(&mut self, out_c: u32) -> &mut Self {
        let ifm = self.cur;
        self.push(LayerDesc {
            index: 0,
            ty: LayerType::Concat,
            ifm,
            ofm: TensorShape::chw(out_c, ifm.h, ifm.w),
            weights: WeightShape::none(),
            biases: 0,
            act: Activation::None,
            pad_stride: PadStride::unit(),
        })
    }

    /// Nearest-neighbour 2× upsample (YOLO neck).
    pub fn upsample2(&mut self) -> &mut Self {
        let ifm = self.cur;
        self.push(LayerDesc {
            index: 0,
            ty: LayerType::Upsample,
            ifm,
            ofm: TensorShape::chw(ifm.c, ifm.h * 2, ifm.w * 2),
            weights: WeightShape::none(),
            biases: 0,
            act: Activation::None,
            pad_stride: PadStride::unit(),
        })
    }

    /// Seals all pending layers into a named schedulable unit.
    ///
    /// # Panics
    ///
    /// Panics if no layers are pending.
    pub fn end_unit(&mut self, name: impl Into<String>) -> &mut Self {
        assert!(!self.pending.is_empty(), "end_unit with no pending layers");
        let layers = std::mem::take(&mut self.pending);
        self.units.push(Unit::new(name, layers));
        self
    }

    /// Number of sealed units so far.
    pub fn unit_count(&self) -> usize {
        self.units.len()
    }

    /// Finalizes the model.
    ///
    /// # Panics
    ///
    /// Panics if layers are pending (missing `end_unit`) or no unit exists.
    pub fn finish(self, id: ModelId, name: impl Into<String>) -> DnnModel {
        assert!(self.pending.is_empty(), "finish() with pending layers; call end_unit");
        DnnModel::new(id, name, self.input, self.units)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_out_matches_known_cases() {
        assert_eq!(conv_out(227, 11, 4, 0), 55); // AlexNet conv1
        assert_eq!(conv_out(224, 7, 2, 3), 112); // ResNet stem
        assert_eq!(conv_out(56, 3, 1, 1), 56); // SAME conv
        assert_eq!(conv_out(55, 3, 2, 0), 27); // AlexNet pool1
    }

    #[test]
    fn builder_tracks_shapes() {
        let mut b = NetBuilder::new(3, 224, 224);
        b.conv(64, 7, 2, 3, Activation::Relu).pool_max(3, 2, 1).end_unit("stem");
        assert_eq!(b.shape(), TensorShape::chw(64, 56, 56));
        let m = b.finish(ModelId::ResNet50, "toy");
        assert_eq!(m.unit_count(), 1);
        assert_eq!(m.layer_count(), 2);
    }

    #[test]
    fn indices_assigned_sequentially() {
        let mut b = NetBuilder::new(3, 32, 32);
        b.conv(8, 3, 1, 1, Activation::Relu).end_unit("a");
        b.conv(8, 3, 1, 1, Activation::Relu).bn(Activation::None).end_unit("b");
        let m = b.finish(ModelId::AlexNet, "toy");
        let idx: Vec<u32> = m.layers().map(|l| l.index).collect();
        assert_eq!(idx, vec![0, 1, 2]);
    }

    #[test]
    fn fc_flattens_input() {
        let mut b = NetBuilder::new(256, 6, 6);
        b.fc(4096, Activation::Relu).end_unit("fc");
        let m = b.finish(ModelId::AlexNet, "toy");
        let l = m.layers().next().unwrap();
        assert_eq!(l.weights.in_c, 256 * 6 * 6);
        assert_eq!(l.weights.out_c, 4096);
    }

    #[test]
    #[should_panic(expected = "pending layers")]
    fn finish_with_pending_panics() {
        let mut b = NetBuilder::new(3, 32, 32);
        b.conv(8, 3, 1, 1, Activation::Relu);
        let _ = b.finish(ModelId::AlexNet, "bad");
    }

    #[test]
    fn gconv_divides_fanin() {
        let mut b = NetBuilder::new(240, 28, 28);
        b.gconv(240, 1, 1, 0, 3, Activation::None).end_unit("g");
        let m = b.finish(ModelId::ShuffleNet, "toy");
        assert_eq!(m.layers().next().unwrap().weights.in_c, 80);
    }

    #[test]
    fn upsample_doubles_spatial() {
        let mut b = NetBuilder::new(256, 13, 13);
        b.upsample2().end_unit("u");
        assert_eq!(b.shape(), TensorShape::chw(256, 26, 26));
    }
}
