//! ODMDEF (Lim & Kim, IEEE Access 2021): adaptive layer allocation with a
//! linear regression + k-NN hybrid predictor over profiled multi-DNN
//! samples.

use crate::linreg;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rankmap_core::runtime::WorkloadMapper;
use rankmap_models::ModelId;
use rankmap_platform::Platform;
use rankmap_sim::{AnalyticalEngine, CostModel, Mapping, Workload};

/// The ODMDEF manager.
///
/// Offline it profiles a corpus of random multi-DNN mappings (the paper
/// notes it "needs a considerable amount of data to achieve reliable
/// accuracy"). Online it samples random candidate mappings, predicts each
/// one's average throughput with a k-NN over the corpus blended with a
/// linear regression, and picks the best candidate. Priority-unaware.
pub struct Odmdef {
    corpus: Vec<(Vec<f64>, f64)>,
    beta: Vec<f64>,
    k: usize,
    candidates: usize,
    seed: u64,
    feature_dims: usize,
    /// Owned profiling engine (same contention model as the platform).
    engine_platform: Platform,
}

impl Odmdef {
    /// Builds the manager, profiling `corpus_size` random workload/mapping
    /// pairs drawn from `pool`.
    pub fn new(platform: &Platform, pool: &[ModelId], corpus_size: usize, seed: u64) -> Self {
        let engine = AnalyticalEngine::new(platform);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut corpus = Vec::with_capacity(corpus_size);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let dims = platform.component_count() * 2;
        for _ in 0..corpus_size {
            use rand::Rng;
            let n = rng.gen_range(1..=5.min(pool.len()));
            let ids: Vec<ModelId> = (0..n).map(|_| pool[rng.gen_range(0..pool.len())]).collect();
            let w = Workload::from_ids(ids);
            let m = Mapping::random(&w, platform.component_count(), &mut rng);
            let f = Self::featurize(platform, &w, &m);
            let avg = engine.evaluate(&w, &m).average();
            xs.extend_from_slice(&f);
            ys.push(avg);
            corpus.push((f, avg));
        }
        let beta = linreg::fit(&xs, &ys, dims);
        Self {
            corpus,
            beta,
            k: 5,
            candidates: 64,
            seed: seed ^ 0x0DA7A,
            feature_dims: dims,
            engine_platform: platform.clone(),
        }
    }

    /// Features of a mapping: per component, (total GFLOPs assigned, stage
    /// count) — the utilization summary ODMDEF's predictor keys on.
    fn featurize(platform: &Platform, workload: &Workload, mapping: &Mapping) -> Vec<f64> {
        let cost = CostModel::new(platform);
        let _ = &cost;
        let n = platform.component_count();
        let mut flops = vec![0.0f64; n];
        let mut stages = vec![0.0f64; n];
        for (d, model) in workload.models().iter().enumerate() {
            for spec in mapping.stages(d) {
                stages[spec.component.index()] += 1.0;
                flops[spec.component.index()] += model.units()[spec.unit_range.clone()]
                    .iter()
                    .map(|u| u.flops())
                    .sum::<f64>()
                    / 1e9;
            }
        }
        flops.into_iter().chain(stages).collect()
    }

    fn knn_predict(&self, f: &[f64]) -> f64 {
        let mut dists: Vec<(f64, f64)> = self
            .corpus
            .iter()
            .map(|(cf, y)| {
                let d: f64 = cf.iter().zip(f).map(|(a, b)| (a - b) * (a - b)).sum();
                (d, *y)
            })
            .collect();
        dists.sort_by(|a, b| a.0.total_cmp(&b.0));
        let k = self.k.min(dists.len()).max(1);
        dists[..k].iter().map(|(_, y)| y).sum::<f64>() / k as f64
    }

    fn predict(&self, f: &[f64]) -> f64 {
        // Hybrid: average the k-NN estimate and the regression estimate.
        0.5 * self.knn_predict(f) + 0.5 * linreg::predict(&self.beta, f)
    }

    /// Number of profiled samples in the corpus.
    pub fn corpus_len(&self) -> usize {
        self.corpus.len()
    }
}

impl WorkloadMapper for Odmdef {
    fn name(&self) -> String {
        "ODMDEF".into()
    }

    fn remap(&mut self, workload: &Workload) -> Mapping {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n_comp = self.feature_dims / 2;
        let mut best: Option<(f64, Mapping)> = None;
        for _ in 0..self.candidates {
            let m = Mapping::random(workload, n_comp, &mut rng);
            let f = Self::featurize(&self.engine_platform, workload, &m);
            let score = self.predict(&f);
            if best.as_ref().is_none_or(|(s, _)| score > *s) {
                best = Some((score, m));
            }
        }
        best.expect("candidates > 0").1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn odmdef() -> Odmdef {
        let p = Platform::orange_pi_5();
        Odmdef::new(
            &p,
            &[ModelId::AlexNet, ModelId::SqueezeNetV2, ModelId::MobileNet],
            40,
            3,
        )
    }

    #[test]
    fn produces_valid_mapping() {
        let mut o = odmdef();
        let w = Workload::from_ids([ModelId::AlexNet, ModelId::MobileNet]);
        let m = o.remap(&w);
        assert!(m.validate(&w, 3).is_ok());
        assert_eq!(o.name(), "ODMDEF");
    }

    #[test]
    fn corpus_is_populated() {
        assert_eq!(odmdef().corpus_len(), 40);
    }

    #[test]
    fn knn_interpolates_corpus() {
        let o = odmdef();
        let (f, y) = o.corpus[0].clone();
        let pred = o.knn_predict(&f);
        // Exact corpus point: nearest neighbour distance 0 participates.
        assert!(pred > 0.0);
        assert!((pred - y).abs() < y.abs() * 3.0 + 1.0);
    }

    #[test]
    fn deterministic_candidates() {
        let mut o = odmdef();
        let w = Workload::from_ids([ModelId::AlexNet]);
        let a = o.remap(&w);
        let b = o.remap(&w);
        assert_eq!(a, b);
    }
}
