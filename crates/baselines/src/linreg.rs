//! Tiny ordinary-least-squares helper shared by MOSAIC and ODMDEF.

/// Fits `y ≈ Xβ` by solving the normal equations with ridge damping.
/// `x` is row-major with `dims` features per row (a 1-column of ones is
/// appended internally for the intercept).
///
/// # Panics
///
/// Panics if `x.len() != y.len() * dims` or the system is empty.
pub fn fit(x: &[f64], y: &[f64], dims: usize) -> Vec<f64> {
    let n = y.len();
    assert!(n > 0 && x.len() == n * dims, "linreg dimension mismatch");
    let d = dims + 1; // + intercept
    // Build XᵀX and Xᵀy.
    let mut xtx = vec![0.0f64; d * d];
    let mut xty = vec![0.0f64; d];
    let row = |i: usize, j: usize| -> f64 {
        if j < dims {
            x[i * dims + j]
        } else {
            1.0
        }
    };
    for (i, &yi) in y.iter().enumerate().take(n) {
        for a in 0..d {
            xty[a] += row(i, a) * yi;
            for b in 0..d {
                xtx[a * d + b] += row(i, a) * row(i, b);
            }
        }
    }
    for a in 0..d {
        xtx[a * d + a] += 1e-6; // ridge
    }
    solve(&mut xtx, &mut xty, d);
    xty
}

/// Predicts with a fitted coefficient vector.
pub fn predict(beta: &[f64], features: &[f64]) -> f64 {
    let dims = beta.len() - 1;
    assert_eq!(features.len(), dims, "feature length mismatch");
    features.iter().zip(beta).map(|(f, b)| f * b).sum::<f64>() + beta[dims]
}

/// In-place Gaussian elimination with partial pivoting: solves `A·x = b`,
/// leaving the solution in `b`.
fn solve(a: &mut [f64], b: &mut [f64], n: usize) {
    for col in 0..n {
        // Pivot.
        let mut piv = col;
        for r in col + 1..n {
            if a[r * n + col].abs() > a[piv * n + col].abs() {
                piv = r;
            }
        }
        if piv != col {
            for c in 0..n {
                a.swap(col * n + c, piv * n + c);
            }
            b.swap(col, piv);
        }
        let diag = a[col * n + col];
        if diag.abs() < 1e-12 {
            continue;
        }
        for r in 0..n {
            if r == col {
                continue;
            }
            let k = a[r * n + col] / diag;
            for c in 0..n {
                a[r * n + c] -= k * a[col * n + c];
            }
            b[r] -= k * b[col];
        }
    }
    for i in 0..n {
        let diag = a[i * n + i];
        if diag.abs() > 1e-12 {
            b[i] /= diag;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_linear_function() {
        // y = 3x₀ − 2x₁ + 1
        let x = vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 1.0, 1.0, 2.0, 3.0];
        let y = vec![1.0, 4.0, -1.0, 2.0, 1.0];
        let beta = fit(&x, &y, 2);
        assert!((beta[0] - 3.0).abs() < 1e-4, "slope 0: {:?}", beta);
        assert!((beta[1] + 2.0).abs() < 1e-4, "slope 1: {:?}", beta);
        assert!((beta[2] - 1.0).abs() < 1e-4, "intercept: {:?}", beta);
    }

    #[test]
    fn prediction_matches_fit() {
        let x = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let y = vec![3.0, 7.0, 11.0, 15.0];
        let beta = fit(&x, &y, 2);
        for i in 0..4 {
            let p = predict(&beta, &x[i * 2..(i + 1) * 2]);
            assert!((p - y[i]).abs() < 1e-4);
        }
    }

    #[test]
    fn handles_constant_target() {
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let y = vec![5.0, 5.0, 5.0, 5.0];
        let beta = fit(&x, &y, 1);
        assert!((predict(&beta, &[10.0]) - 5.0).abs() < 1e-3);
    }
}
