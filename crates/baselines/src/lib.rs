//! The comparison managers the paper evaluates RankMap against (§V):
//!
//! * [`BaselineGpu`] — everything on the GPU, the traditional default.
//! * [`Mosaic`] — linear-regression latency model trained on single-DNN
//!   profiles, greedy self-optimizing slicing (Han et al., PACT 2019).
//! * [`Odmdef`] — linear regression + k-NN over a corpus of profiled
//!   multi-DNN samples, candidate sampling (Lim & Kim, IEEE Access 2021).
//! * [`Ga`] — evolutionary search whose fitness is measured *on the
//!   board* (Kang et al., IEEE Access 2020): accurate but very slow and
//!   unable to reuse knowledge across workloads.
//! * [`OmniBoost`] — the same MCTS machinery as RankMap but rewarded by
//!   mean throughput with no priorities and no starvation guard
//!   (Karatzas & Anagnostopoulos, DAC 2023).
//!
//! All of them implement [`WorkloadMapper`], so the experiment harness
//! treats every manager uniformly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ga;
pub mod linreg;
pub mod mosaic;
pub mod odmdef;
pub mod omniboost;

pub use ga::{Ga, GaConfig};
pub use mosaic::Mosaic;
pub use odmdef::Odmdef;
pub use omniboost::OmniBoost;

use rankmap_core::runtime::WorkloadMapper;
use rankmap_platform::{ComponentId, ComponentKind, Platform};
use rankmap_sim::{Mapping, Workload};

/// The paper's baseline: map every DNN entirely onto the GPU.
#[derive(Debug, Clone)]
pub struct BaselineGpu {
    gpu: ComponentId,
}

impl BaselineGpu {
    /// Creates the baseline for a platform (falls back to component 0 when
    /// no GPU exists).
    pub fn new(platform: &Platform) -> Self {
        Self { gpu: platform.id_of_kind(ComponentKind::Gpu).unwrap_or(ComponentId::new(0)) }
    }
}

impl WorkloadMapper for BaselineGpu {
    fn name(&self) -> String {
        "Baseline".into()
    }

    fn remap(&mut self, workload: &Workload) -> Mapping {
        Mapping::uniform(workload, self.gpu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rankmap_models::ModelId;

    #[test]
    fn baseline_maps_everything_to_gpu() {
        let p = Platform::orange_pi_5();
        let mut b = BaselineGpu::new(&p);
        let w = Workload::from_ids([ModelId::AlexNet, ModelId::ResNet50]);
        let m = b.remap(&w);
        for d in 0..w.len() {
            assert_eq!(m.stages(d).len(), 1);
            assert_eq!(m.stages(d)[0].component, ComponentId::new(0));
        }
        assert_eq!(b.name(), "Baseline");
    }
}
