//! MOSAIC (Han et al., PACT 2019): model slicing driven by a linear
//! regression that "correlates layer input sizes with computational
//! needs, trained on single DNN cases".

use crate::linreg;
use rankmap_core::runtime::WorkloadMapper;
use rankmap_models::ModelId;
use rankmap_platform::{ComponentId, Platform};
use rankmap_sim::{CostModel, Mapping, Workload};

/// The MOSAIC manager.
///
/// Offline, it profiles *single* units in isolation and fits, per
/// component, a linear model `latency ≈ β·(input volume, weight count)`.
/// Online, it slices each DNN into one stage per component (balancing
/// *predicted* latency) and assigns slices so the biggest slice lands on
/// the fastest component. Because its model ignores contention entirely,
/// concurrent DNNs pile up on the GPU — the failure mode the paper
/// documents.
pub struct Mosaic {
    /// Per-component regression coefficients.
    betas: Vec<Vec<f64>>,
    fastest_order: Vec<ComponentId>,
}

impl Mosaic {
    /// Profiles the given pool on the platform and fits the latency models.
    pub fn new(platform: &Platform, pool: &[ModelId]) -> Self {
        let cost = CostModel::new(platform);
        let mut betas = Vec::new();
        for c in platform.component_ids() {
            let mut xs = Vec::new();
            let mut ys = Vec::new();
            for id in pool {
                let model = id.build();
                for unit in model.units() {
                    let volume: f64 =
                        unit.layers.iter().map(|l| l.ifm.elements() as f64).sum();
                    let weights: f64 = unit.weight_bytes() as f64;
                    xs.push(volume / 1e6);
                    xs.push(weights / 1e6);
                    ys.push(cost.unit_seconds(unit, c) * 1e3);
                }
            }
            betas.push(linreg::fit(&xs, &ys, 2));
        }
        // Fastest component = smallest predicted latency on a reference
        // large unit: rank by peak GFLOPS instead (simple and faithful to
        // "GPU preferred").
        let mut order = platform.component_ids();
        order.sort_by(|&a, &b| {
            platform
                .component(b)
                .peak_gflops
                .total_cmp(&platform.component(a).peak_gflops)
        });
        Self { betas, fastest_order: order }
    }

    /// Predicted latency (ms) of a unit on a component.
    fn predict_unit(&self, volume_m: f64, weights_m: f64, c: ComponentId) -> f64 {
        linreg::predict(&self.betas[c.index()], &[volume_m, weights_m]).max(1e-6)
    }
}

impl WorkloadMapper for Mosaic {
    fn name(&self) -> String {
        "MOSAIC".into()
    }

    fn remap(&mut self, workload: &Workload) -> Mapping {
        let components = self.betas.len();
        let mut per_dnn = Vec::with_capacity(workload.len());
        for model in workload.models() {
            let feats: Vec<(f64, f64)> = model
                .units()
                .iter()
                .map(|u| {
                    (
                        u.layers.iter().map(|l| l.ifm.elements() as f64).sum::<f64>() / 1e6,
                        u.weight_bytes() as f64 / 1e6,
                    )
                })
                .collect();
            // Total predicted work on the fastest component.
            let fastest = self.fastest_order[0];
            let total: f64 =
                feats.iter().map(|&(v, w)| self.predict_unit(v, w, fastest)).sum();
            // Slice into `components` contiguous chunks of ~equal predicted
            // latency; chunk i runs on the i-th fastest component, so the
            // big early convolutional body gravitates to the GPU.
            let per_slice = total / components as f64;
            let mut assign = Vec::with_capacity(model.unit_count());
            let mut acc = 0.0;
            let mut slice = 0usize;
            for &(v, w) in &feats {
                assign.push(self.fastest_order[slice.min(components - 1)]);
                acc += self.predict_unit(v, w, fastest);
                if acc > per_slice * (slice + 1) as f64 && slice + 1 < components {
                    slice += 1;
                }
            }
            per_dnn.push(assign);
        }
        Mapping::new(per_dnn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mosaic() -> Mosaic {
        let p = Platform::orange_pi_5();
        Mosaic::new(&p, &[ModelId::AlexNet, ModelId::ResNet50, ModelId::SqueezeNetV2])
    }

    #[test]
    fn produces_valid_mappings() {
        let p = Platform::orange_pi_5();
        let mut m = mosaic();
        let w = Workload::from_ids([ModelId::AlexNet, ModelId::MobileNet]);
        let map = m.remap(&w);
        assert!(map.validate(&w, p.component_count()).is_ok());
    }

    #[test]
    fn front_of_network_goes_to_gpu() {
        let mut m = mosaic();
        let w = Workload::from_ids([ModelId::Vgg16]);
        let map = m.remap(&w);
        // The first unit must sit on the fastest (GPU) component.
        assert_eq!(map.assignment(0)[0], ComponentId::new(0));
    }

    #[test]
    fn slices_are_contiguous() {
        let mut m = mosaic();
        let w = Workload::from_ids([ModelId::ResNet50]);
        let map = m.remap(&w);
        // At most `components` stages per DNN by construction.
        assert!(map.stages(0).len() <= 3);
    }

    #[test]
    fn ignores_workload_size_same_slicing() {
        // MOSAIC's contention blindness: a DNN is sliced identically alone
        // or with co-runners.
        let mut m = mosaic();
        let alone = m.remap(&Workload::from_ids([ModelId::ResNet50]));
        let crowded = m.remap(&Workload::from_ids([
            ModelId::ResNet50,
            ModelId::Vgg16,
            ModelId::InceptionV4,
        ]));
        assert_eq!(alone.assignment(0), crowded.assignment(0));
    }
}
