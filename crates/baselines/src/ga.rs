//! The evolutionary manager (Kang et al., IEEE Access 2020): a genetic
//! algorithm whose fitness function runs every chromosome on the board.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rankmap_core::runtime::WorkloadMapper;
use rankmap_platform::{ComponentId, Platform};
use rankmap_sim::{EventEngine, Mapping, Workload};

/// GA hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaConfig {
    /// Population size.
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// Per-gene mutation probability.
    pub mutation: f64,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Elite individuals carried over unchanged.
    pub elitism: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GaConfig {
    fn default() -> Self {
        // The paper's GA is time-boxed by on-board evaluation cost: every
        // chromosome costs a real multi-second measurement, so within its
        // (already slowest) time budget it only explores a small
        // population for a few generations. The default mirrors that
        // operating point; crank it up and the GA will eventually match
        // exhaustive search — at hours per decision on the board.
        Self {
            population: 10,
            generations: 4,
            mutation: 0.08,
            tournament: 3,
            elitism: 2,
            seed: 0,
        }
    }
}

/// The GA manager. Every fitness evaluation is a full board (event
/// simulator) run — which is why the paper finds it the slowest manager,
/// "requiring evaluations for each chromosome … for every generation",
/// with no learned knowledge carried between workloads.
pub struct Ga<'p> {
    platform: &'p Platform,
    config: GaConfig,
    /// Board evaluations performed by the last `remap` (run-time metric).
    pub last_evaluations: usize,
}

impl<'p> Ga<'p> {
    /// Creates a GA manager.
    pub fn new(platform: &'p Platform, config: GaConfig) -> Self {
        Self { platform, config, last_evaluations: 0 }
    }

    fn fitness(&self, engine: &EventEngine<'_>, w: &Workload, genes: &[ComponentId]) -> f64 {
        engine.evaluate(w, &Mapping::from_flat(w, genes)).average()
    }
}

impl WorkloadMapper for Ga<'_> {
    fn name(&self) -> String {
        "GA".into()
    }

    fn remap(&mut self, workload: &Workload) -> Mapping {
        let engine = EventEngine::quick(self.platform);
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let genes = workload.total_units();
        let comps = self.platform.component_count();
        let mut evals = 0usize;
        let rand_genome = |rng: &mut StdRng| -> Vec<ComponentId> {
            (0..genes).map(|_| ComponentId::new(rng.gen_range(0..comps))).collect()
        };
        let mut pop: Vec<(Vec<ComponentId>, f64)> = (0..self.config.population)
            .map(|_| {
                let g = rand_genome(&mut rng);
                let f = self.fitness(&engine, workload, &g);
                evals += 1;
                (g, f)
            })
            .collect();
        pop.sort_by(|a, b| b.1.total_cmp(&a.1));
        for _gen in 0..self.config.generations {
            let mut next: Vec<(Vec<ComponentId>, f64)> =
                pop[..self.config.elitism.min(pop.len())].to_vec();
            while next.len() < self.config.population {
                let pick = |rng: &mut StdRng| -> usize {
                    (0..self.config.tournament)
                        .map(|_| rng.gen_range(0..pop.len()))
                        .min_by(|a, b| a.cmp(b)) // population sorted: lower index = fitter
                        .unwrap_or(0)
                };
                let pa = &pop[pick(&mut rng)].0;
                let pb = &pop[pick(&mut rng)].0;
                // Uniform crossover + mutation.
                let mut child: Vec<ComponentId> = pa
                    .iter()
                    .zip(pb)
                    .map(|(&a, &b)| if rng.gen_bool(0.5) { a } else { b })
                    .collect();
                for g in &mut child {
                    if rng.gen_bool(self.config.mutation) {
                        *g = ComponentId::new(rng.gen_range(0..comps));
                    }
                }
                let f = self.fitness(&engine, workload, &child);
                evals += 1;
                next.push((child, f));
            }
            next.sort_by(|a, b| b.1.total_cmp(&a.1));
            pop = next;
        }
        self.last_evaluations = evals;
        Mapping::from_flat(workload, &pop[0].0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rankmap_models::ModelId;

    fn tiny() -> GaConfig {
        GaConfig { population: 6, generations: 2, ..Default::default() }
    }

    #[test]
    fn produces_valid_mapping() {
        let p = Platform::orange_pi_5();
        let mut ga = Ga::new(&p, tiny());
        let w = Workload::from_ids([ModelId::AlexNet, ModelId::SqueezeNetV2]);
        let m = ga.remap(&w);
        assert!(m.validate(&w, 3).is_ok());
        assert_eq!(ga.name(), "GA");
    }

    #[test]
    fn counts_board_evaluations() {
        let p = Platform::orange_pi_5();
        let mut ga = Ga::new(&p, tiny());
        let w = Workload::from_ids([ModelId::AlexNet]);
        let _ = ga.remap(&w);
        // population + generations × (population − elitism)
        assert_eq!(ga.last_evaluations, 6 + 2 * 4);
    }

    #[test]
    fn evolved_beats_average_random() {
        let p = Platform::orange_pi_5();
        let mut ga = Ga::new(&p, GaConfig { population: 10, generations: 4, ..Default::default() });
        let w = Workload::from_ids([ModelId::SqueezeNetV2, ModelId::MobileNet, ModelId::ResNet50]);
        let best = ga.remap(&w);
        let engine = EventEngine::quick(&p);
        let best_avg = engine.evaluate(&w, &best).average();
        let mut rng = StdRng::seed_from_u64(99);
        let rand_avg: f64 = (0..8)
            .map(|_| engine.evaluate(&w, &Mapping::random(&w, 3, &mut rng)).average())
            .sum::<f64>()
            / 8.0;
        assert!(
            best_avg >= rand_avg,
            "GA should at least match average random mappings: {best_avg} vs {rand_avg}"
        );
    }
}
