//! OmniBoost (Karatzas & Anagnostopoulos, DAC 2023): MCTS + learned
//! estimator optimizing *average* throughput — no priorities, no
//! starvation guard. RankMap's closest ancestor and strongest baseline.

use rankmap_core::oracle::ThroughputOracle;
use rankmap_core::runtime::WorkloadMapper;
use rankmap_platform::{ComponentId, Platform};
use rankmap_search::{DecisionProblem, Mcts, MctsConfig};
use rankmap_sim::{Mapping, Workload};

/// The OmniBoost manager. Parameterized over the same oracles as RankMap
/// so comparisons isolate the *objective* (mean throughput vs
/// priority-weighted with disqualification), not the estimator quality.
pub struct OmniBoost<'p, O: ThroughputOracle> {
    oracle: &'p O,
    components: usize,
    iterations: usize,
    seed: u64,
}

struct MeanThroughputProblem<'a, O: ThroughputOracle> {
    workload: &'a Workload,
    oracle: &'a O,
    components: usize,
    total_units: usize,
}

impl<O: ThroughputOracle> DecisionProblem for MeanThroughputProblem<'_, O> {
    type State = Vec<ComponentId>;

    fn root(&self) -> Self::State {
        Vec::new()
    }

    fn action_count(&self, state: &Self::State) -> usize {
        if state.len() >= self.total_units {
            0
        } else {
            self.components
        }
    }

    fn apply(&self, state: &Self::State, a: usize) -> Self::State {
        let mut s = state.clone();
        s.push(ComponentId::new(a));
        s
    }

    fn evaluate(&self, state: &Self::State) -> f64 {
        let mapping = Mapping::from_flat(self.workload, state);
        let t = self.oracle.predict(self.workload, &mapping);
        // Greedy mean throughput: exactly the objective that lets it
        // sacrifice a heavy DNN for aggregate numbers.
        t.iter().sum::<f64>() / t.len().max(1) as f64
    }
}

impl<'p, O: ThroughputOracle> OmniBoost<'p, O> {
    /// Creates an OmniBoost manager.
    pub fn new(platform: &'p Platform, oracle: &'p O, iterations: usize, seed: u64) -> Self {
        Self { oracle, components: platform.component_count(), iterations, seed }
    }
}

impl<O: ThroughputOracle> WorkloadMapper for OmniBoost<'_, O> {
    fn name(&self) -> String {
        "OmniBoost".into()
    }

    fn remap(&mut self, workload: &Workload) -> Mapping {
        let problem = MeanThroughputProblem {
            workload,
            oracle: self.oracle,
            components: self.components,
            total_units: workload.total_units(),
        };
        let result = Mcts::new(MctsConfig {
            iterations: self.iterations,
            seed: self.seed,
            ..Default::default()
        })
        .search(&problem);
        Mapping::from_flat(workload, &result.best_state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rankmap_core::oracle::AnalyticalOracle;
    use rankmap_models::ModelId;
    use rankmap_sim::AnalyticalEngine;

    #[test]
    fn produces_valid_mapping() {
        let p = Platform::orange_pi_5();
        let oracle = AnalyticalOracle::new(&p);
        let mut ob = OmniBoost::new(&p, &oracle, 300, 0);
        let w = Workload::from_ids([ModelId::AlexNet, ModelId::MobileNet]);
        let m = ob.remap(&w);
        assert!(m.validate(&w, 3).is_ok());
        assert_eq!(ob.name(), "OmniBoost");
    }

    #[test]
    fn beats_gpu_baseline_on_average() {
        let p = Platform::orange_pi_5();
        let oracle = AnalyticalOracle::new(&p);
        let mut ob = OmniBoost::new(&p, &oracle, 500, 1);
        let w = Workload::from_ids([
            ModelId::SqueezeNetV2,
            ModelId::ResNet50,
            ModelId::MobileNet,
            ModelId::AlexNet,
        ]);
        let m = ob.remap(&w);
        let engine = AnalyticalEngine::new(&p);
        let found = engine.evaluate(&w, &m).average();
        let baseline = engine
            .evaluate(&w, &Mapping::uniform(&w, ComponentId::new(0)))
            .average();
        assert!(found > baseline, "OmniBoost must beat the GPU pileup: {found} vs {baseline}");
    }
}
