//! Bounded time-series ring buffers sampled on the simulation clock.
//!
//! A [`RingSeries`] holds the last `capacity` `(sim_time, sample)`
//! points for one stream (one shard, one fleet-level signal). Sampling
//! happens at the executor's `sample_dt` cadence, so a series is a
//! uniform-in-sim-time window into a run — enough for "when did tier
//! derates start" questions without unbounded memory at the
//! million-instance tier.

use std::collections::VecDeque;

/// Bounded ring of `(sim_time, sample)` points, oldest first.
#[derive(Debug, Clone, Default)]
pub struct RingSeries<T> {
    ring: VecDeque<(f64, T)>,
    capacity: usize,
    dropped: u64,
}

impl<T> RingSeries<T> {
    /// A series keeping at most `capacity` points.
    pub fn new(capacity: usize) -> Self {
        Self {
            ring: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            dropped: 0,
        }
    }

    /// Appends a point, evicting the oldest when full.
    pub fn push(&mut self, at: f64, sample: T) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back((at, sample));
    }

    /// Retained points, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &(f64, T)> + '_ {
        self.ring.iter()
    }

    /// Most recent point.
    pub fn last(&self) -> Option<&(f64, T)> {
        self.ring.back()
    }

    /// Number of retained points.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether no point is retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Points evicted (or never retained) so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_the_newest_window() {
        let mut s = RingSeries::new(3);
        for i in 0..5 {
            s.push(i as f64, i * 10);
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.dropped(), 2);
        let pts: Vec<(f64, u32)> = s.iter().cloned().collect();
        assert_eq!(pts, vec![(2.0, 20), (3.0, 30), (4.0, 40)]);
        assert_eq!(s.last(), Some(&(4.0, 40)));
    }

    #[test]
    fn zero_capacity_only_counts() {
        let mut s: RingSeries<u8> = RingSeries::new(0);
        s.push(1.0, 1);
        assert!(s.is_empty());
        assert_eq!(s.dropped(), 1);
    }
}
