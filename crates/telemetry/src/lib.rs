//! Deterministic, sim-clock-first observability for the RankMap fleet.
//!
//! The crate is built around one invariant: **instrumentation must never
//! change a decision**. Everything here is designed so that a run with
//! telemetry enabled is bit-identical to one with it disabled:
//!
//! * Metrics that feed back into assertions or exports are derived from
//!   the *simulation* clock and integer counts — never from wall time.
//!   Wall-clock stage timing exists but is config-gated ([`span`]), so
//!   deterministic replays simply leave it off.
//! * The [`histogram::Histogram`] buckets by IEEE-754 bit prefix (no
//!   libm) and stores only exactly-mergeable state, so percentiles are
//!   identical across `Threads(n)` merge orders.
//! * The [`registry::Registry`] iterates `BTreeMap`s, so exports are
//!   byte-stable for a given set of recorded facts.
//!
//! Modules:
//!
//! * [`histogram`] — log-bucketed histogram, exact merge, deterministic
//!   p50/p90/p99.
//! * [`registry`] — named counters/gauges/histograms with Prometheus and
//!   JSONL text exporters.
//! * [`series`] — bounded per-shard time series sampled on the sim clock.
//! * [`recorder`] — bounded structured-event flight recorder with
//!   event → decision → outcome causality links.
//! * [`span`] — gated wall-clock stage timers.

pub mod histogram;
pub mod recorder;
pub mod registry;
pub mod series;
pub mod span;

pub use histogram::Histogram;
pub use recorder::{FlightRecord, FlightRecorder};
pub use registry::Registry;
pub use series::RingSeries;
pub use span::StageTimer;

/// Hit/miss counters of a memo or cache, as a named pair instead of a
/// positional `(u64, u64)` tuple.
///
/// Shared by core's plan cache, the fleet's probe memo, and the
/// telemetry registry overlay, so all cache-style stats speak one type.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Lookups answered from the memo.
    pub hits: u64,
    /// Lookups that had to compute (and usually insert) fresh.
    pub misses: u64,
}

impl MemoStats {
    /// A fresh all-zero stat pair.
    pub const fn new() -> Self {
        Self { hits: 0, misses: 0 }
    }

    /// Total lookups observed.
    pub fn total(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups that hit, `0.0` when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.hits as f64 / self.total() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::MemoStats;

    #[test]
    fn memo_stats_rates() {
        let empty = MemoStats::new();
        assert_eq!(empty.total(), 0);
        assert_eq!(empty.hit_rate(), 0.0);
        let s = MemoStats { hits: 3, misses: 1 };
        assert_eq!(s.total(), 4);
        assert_eq!(s.hit_rate(), 0.75);
    }
}
