//! A bounded structured-event flight recorder.
//!
//! The recorder keeps the last `capacity` structured records in a ring,
//! each stamped with a monotone sequence number and the simulation time
//! it happened at. Records can point at the record that *caused* them
//! (`cause` = an earlier record's sequence number), which is how the
//! fleet links `shard_down → evacuate → readmit` or
//! `overload → shed` chains for post-mortem reading. Old records fall
//! off the front; `dropped()` says how many, so an export is always
//! honest about truncation.

use std::collections::VecDeque;
use std::fmt::Write as _;

/// One structured record in the flight recorder.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightRecord {
    /// Monotone sequence number, unique within a recorder's lifetime.
    pub seq: u64,
    /// Simulation time the event happened at.
    pub at: f64,
    /// Static event kind tag (`"admit"`, `"shard_down"`, ...). Static so
    /// recording never allocates for the tag.
    pub kind: &'static str,
    /// Sequence number of the record that caused this one, if any.
    pub cause: Option<u64>,
    /// Small key/value payload (shard ids, tiers, counts), in insertion
    /// order.
    pub fields: Vec<(&'static str, String)>,
}

/// Bounded ring of [`FlightRecord`]s.
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    ring: VecDeque<FlightRecord>,
    capacity: usize,
    next_seq: u64,
    dropped: u64,
}

impl FlightRecorder {
    /// A recorder keeping at most `capacity` records (`0` disables
    /// retention entirely — records are counted and dropped).
    pub fn new(capacity: usize) -> Self {
        Self {
            ring: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            next_seq: 0,
            dropped: 0,
        }
    }

    /// Appends a record and returns its sequence number (usable as a
    /// later record's `cause`).
    pub fn record(
        &mut self,
        at: f64,
        kind: &'static str,
        cause: Option<u64>,
        fields: Vec<(&'static str, String)>,
    ) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.capacity == 0 {
            self.dropped += 1;
            return seq;
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(FlightRecord { seq, at, kind, cause, fields });
        seq
    }

    /// Retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &FlightRecord> + '_ {
        self.ring.iter()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Records that fell off the front (or were never retained).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total records ever appended.
    pub fn total(&self) -> u64 {
        self.next_seq
    }

    /// The retained record with sequence number `seq`, if still in the
    /// ring — resolves a `cause` link back to its source.
    pub fn find(&self, seq: u64) -> Option<&FlightRecord> {
        // Ring is seq-ordered; the front record's seq gives the offset.
        let front = self.ring.front()?.seq;
        let idx = seq.checked_sub(front)? as usize;
        self.ring.get(idx)
    }

    /// Renders the retained records as JSON Lines, oldest first:
    /// `{"seq":..,"at":..,"kind":..,"cause":..,  <fields...>}`.
    /// Field values render as JSON strings (they are short identifiers
    /// or formatted numbers).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.ring {
            let _ = write!(out, "{{\"seq\":{},\"at\":{},\"kind\":\"{}\"", r.seq, r.at, r.kind);
            match r.cause {
                Some(c) => {
                    let _ = write!(out, ",\"cause\":{c}");
                }
                None => {
                    let _ = write!(out, ",\"cause\":null");
                }
            }
            for (k, v) in &r.fields {
                let _ = write!(out, ",\"{k}\":\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\""));
            }
            out.push_str("}\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_numbers_are_monotone_and_causal_links_resolve() {
        let mut fr = FlightRecorder::new(8);
        let down = fr.record(1.0, "shard_down", None, vec![("shard", "2".into())]);
        let evac = fr.record(1.0, "evacuate", Some(down), vec![("moved", "5".into())]);
        assert_eq!(down + 1, evac);
        let rec = fr.find(evac).unwrap();
        assert_eq!(rec.cause, Some(down));
        assert_eq!(fr.find(down).unwrap().kind, "shard_down");
        assert_eq!(fr.total(), 2);
        assert_eq!(fr.dropped(), 0);
    }

    #[test]
    fn ring_bounds_retention_and_counts_drops() {
        let mut fr = FlightRecorder::new(3);
        for i in 0..5 {
            fr.record(i as f64, "tick", None, vec![]);
        }
        assert_eq!(fr.len(), 3);
        assert_eq!(fr.dropped(), 2);
        assert_eq!(fr.total(), 5);
        let seqs: Vec<u64> = fr.records().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
        // Dropped records no longer resolve; retained ones do.
        assert!(fr.find(1).is_none());
        assert_eq!(fr.find(3).unwrap().at, 3.0);
        assert!(fr.find(99).is_none());
    }

    #[test]
    fn zero_capacity_counts_without_retaining() {
        let mut fr = FlightRecorder::new(0);
        let seq = fr.record(0.5, "noop", None, vec![]);
        assert_eq!(seq, 0);
        assert!(fr.is_empty());
        assert_eq!(fr.dropped(), 1);
        assert_eq!(fr.total(), 1);
    }

    #[test]
    fn jsonl_export_renders_cause_and_fields() {
        let mut fr = FlightRecorder::new(4);
        let a = fr.record(0.25, "admit", None, vec![("shard", "1".into()), ("model", "resnet".into())]);
        fr.record(0.5, "shed", Some(a), vec![("tier", "low\"est".into())]);
        let text = fr.to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"kind\":\"admit\"") && lines[0].contains("\"cause\":null"));
        assert!(lines[0].contains("\"shard\":\"1\"") && lines[0].contains("\"model\":\"resnet\""));
        assert!(lines[1].contains("\"cause\":0"));
        // Embedded quotes in field values are escaped.
        assert!(lines[1].contains("low\\\"est"));
    }
}
