//! Log-bucketed histogram with exact-merge semantics and deterministic
//! percentiles.
//!
//! The bucket of a value is derived **directly from its IEEE-754 bit
//! pattern** — biased exponent plus the top `SUB_BITS` mantissa bits —
//! never from `log2()` (whose libm rounding may differ across hosts), so
//! bucketing is bit-deterministic everywhere. Each octave is split into
//! `2^SUB_BITS = 32` sub-buckets, bounding the relative quantization
//! error of any derived statistic to one sub-bucket width (≈ 3%).
//!
//! The whole histogram state is a **commutative monoid of exact values**:
//! bucket counts are integers, `min`/`max` fold with `total_cmp`, and
//! there is deliberately *no* floating-point running sum. Merging two
//! histograms therefore loses nothing (no resampling, no interpolation —
//! unlike a t-digest) and is exactly associative and commutative: any
//! merge order of any partition of the samples produces a bit-identical
//! histogram, and hence bit-identical percentiles (property held by the
//! tests below). Sums and means are *derived* from the bucket counts, so
//! they inherit the same merge-order independence at the cost of the
//! quantization error.

use std::collections::BTreeMap;

/// Mantissa bits kept per bucket: 32 sub-buckets per octave.
const SUB_BITS: u32 = 5;
/// Sub-buckets per octave.
const SUBS: u32 = 1 << SUB_BITS;

/// Bucket index of a value.
///
/// * Index `0` holds everything that is not a positive finite normal
///   number: zero, negatives, NaN, and subnormals (all reported back as
///   `0.0`). Telemetry values (durations, rates, potentials) are
///   non-negative, so the floor bucket is the "nothing measurable" bin.
/// * `+inf` clamps into the top finite bucket.
/// * A positive normal `v` lands in
///   `biased_exponent(v) * SUBS + top_mantissa_bits(v)` — pure bit
///   arithmetic, so two hosts can never disagree on a bucket.
fn bucket_index(v: f64) -> u32 {
    if v.is_nan() || v <= 0.0 {
        return 0;
    }
    let bits = v.to_bits();
    let exp = ((bits >> 52) & 0x7FF) as u32;
    if exp == 0 {
        return 0; // subnormal: below any meaningful telemetry resolution
    }
    if exp == 0x7FF {
        return 0x7FE * SUBS + (SUBS - 1); // +inf clamps to the top bucket
    }
    let sub = ((bits >> (52 - SUB_BITS)) as u32) & (SUBS - 1);
    exp * SUBS + sub
}

/// The lower bound of bucket `index` (`0.0` for the floor bucket) —
/// reconstructed exactly from the index by the inverse bit arithmetic.
fn bucket_lower(index: u32) -> f64 {
    if index < SUBS {
        return 0.0;
    }
    let exp = (index / SUBS) as u64;
    let sub = (index % SUBS) as u64;
    f64::from_bits((exp << 52) | (sub << (52 - SUB_BITS)))
}

/// The deterministic representative of bucket `index`: the midpoint of
/// its `[lower, upper)` range (the floor bucket reports `0.0`).
fn bucket_mid(index: u32) -> f64 {
    if index < SUBS {
        return 0.0;
    }
    // The next index's lower bound is this bucket's exclusive upper bound
    // (the bit layout makes consecutive indices adjacent ranges).
    (bucket_lower(index) + bucket_lower(index + 1)) / 2.0
}

/// A log-bucketed histogram of non-negative samples.
///
/// See the module docs for the bucketing scheme and the exact-merge
/// argument. `PartialEq` compares the full state, so "any merge order
/// yields the same histogram" is checkable with `==`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Histogram {
    /// Sparse bucket counts, ordered by bucket index.
    buckets: BTreeMap<u32, u64>,
    /// Total recorded samples.
    count: u64,
    /// Exact smallest recorded sample (`None` when empty).
    min: Option<f64>,
    /// Exact largest recorded sample (`None` when empty).
    max: Option<f64>,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: f64) {
        self.record_n(v, 1);
    }

    /// Records `n` identical samples in one bucket update.
    pub fn record_n(&mut self, v: f64, n: u64) {
        if n == 0 {
            return;
        }
        *self.buckets.entry(bucket_index(v)).or_insert(0) += n;
        self.count += n;
        self.min = Some(match self.min {
            Some(m) if m.total_cmp(&v).is_le() => m,
            _ => v,
        });
        self.max = Some(match self.max {
            Some(m) if m.total_cmp(&v).is_ge() => m,
            _ => v,
        });
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact smallest recorded sample.
    pub fn min(&self) -> Option<f64> {
        self.min
    }

    /// Exact largest recorded sample.
    pub fn max(&self) -> Option<f64> {
        self.max
    }

    /// The `p`-th percentile (`0..=100`), `None` when empty.
    ///
    /// This is the order statistic at rank `(count - 1) · p / 100`
    /// (integer arithmetic — the same convention as a sorted-vector
    /// quantile), answered by the representative of the bucket holding
    /// that rank. Because it is a pure function of the bucket counts, it
    /// is bit-identical for any merge order of any partition of the
    /// samples.
    ///
    /// # Panics
    ///
    /// Panics if `p > 100`.
    pub fn percentile(&self, p: u32) -> Option<f64> {
        assert!(p <= 100, "a percentile is in 0..=100");
        if self.count == 0 {
            return None;
        }
        let rank = (self.count - 1) * (p as u64) / 100;
        let mut seen = 0u64;
        for (&index, &n) in &self.buckets {
            seen += n;
            if seen > rank {
                // Exact extremes beat the bucket quantization at the ends.
                if p == 0 {
                    return self.min;
                }
                if p == 100 {
                    return self.max;
                }
                return Some(bucket_mid(index));
            }
        }
        unreachable!("counts sum to count")
    }

    /// Approximate sum of all samples: Σ `bucket_mid · count` over the
    /// buckets. Within one sub-bucket width (≈ 3%) of the true sum, and —
    /// unlike a running float sum — exactly merge-order independent.
    pub fn approx_sum(&self) -> f64 {
        self.buckets.iter().map(|(&i, &n)| bucket_mid(i) * n as f64).sum()
    }

    /// Approximate mean ([`Histogram::approx_sum`] over the count).
    pub fn approx_mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.approx_sum() / self.count as f64)
    }

    /// Folds `other` into `self`. Exact: the result is bit-identical to
    /// the histogram that would have recorded both sample sets directly,
    /// in any order.
    pub fn merge(&mut self, other: &Histogram) {
        for (&index, &n) in &other.buckets {
            *self.buckets.entry(index).or_insert(0) += n;
        }
        self.count += other.count;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(if a.total_cmp(&b).is_le() { a } else { b }),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(if a.total_cmp(&b).is_ge() { a } else { b }),
            (a, b) => a.or(b),
        };
    }

    /// The non-empty buckets as `(lower bound, representative, count)`,
    /// in increasing value order — the exporters' iteration.
    pub fn buckets(&self) -> impl Iterator<Item = (f64, f64, u64)> + '_ {
        self.buckets.iter().map(|(&i, &n)| (bucket_lower(i), bucket_mid(i), n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_bit_prefixes() {
        // A power of two starts its own bucket: 1.0 and the largest
        // double below it land in different buckets...
        let below_one = f64::from_bits(1.0f64.to_bits() - 1);
        assert_ne!(bucket_index(1.0), bucket_index(below_one));
        // ...and the bucket's lower bound reconstructs exactly.
        assert_eq!(bucket_lower(bucket_index(1.0)), 1.0);
        // Values sharing exponent + top-5 mantissa bits share a bucket.
        assert_eq!(bucket_index(1.0), bucket_index(1.03));
        // One sub-bucket up (1 + 1/32 = 1.03125) is the next bucket, and
        // the boundary value itself belongs to the upper bucket.
        assert_eq!(bucket_index(1.03125), bucket_index(1.0) + 1);
        assert_eq!(bucket_lower(bucket_index(1.03125)), 1.03125);
        // Monotone across magnitudes.
        let mut last = 0;
        for v in [1e-9, 1e-3, 0.5, 1.0, 2.0, 3.0, 1e3, 1e9, 1e300] {
            let b = bucket_index(v);
            assert!(b > last, "{v} must land above the previous magnitude");
            last = b;
            assert!(bucket_lower(b) <= v && v < bucket_lower(b + 1), "{v} within its bucket");
        }
    }

    #[test]
    fn floor_bucket_absorbs_non_measurables() {
        for v in [0.0, -1.0, -0.0, f64::NAN, f64::MIN_POSITIVE / 2.0] {
            assert_eq!(bucket_index(v), 0, "{v} belongs to the floor bucket");
        }
        assert_eq!(bucket_mid(0), 0.0);
        // +inf clamps to the top finite bucket instead of a phantom one.
        assert!(bucket_lower(bucket_index(f64::INFINITY)).is_finite());
    }

    #[test]
    fn empty_histogram_reports_nothing() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.percentile(50), None);
        assert_eq!(h.approx_sum(), 0.0);
        assert_eq!(h.approx_mean(), None);
        // Merging empties stays empty; merging into an empty copies.
        let mut a = Histogram::new();
        a.merge(&h);
        assert!(a.is_empty());
        let mut b = Histogram::new();
        b.record(2.0);
        a.merge(&b);
        assert_eq!(a, b);
    }

    #[test]
    fn percentiles_are_bucket_order_statistics() {
        let mut h = Histogram::new();
        for v in 1..=100 {
            h.record(v as f64);
        }
        assert_eq!(h.count(), 100);
        // Rank convention matches a sorted vector's (len-1)*p/100 index;
        // the answer is the holding bucket's midpoint, within one
        // sub-bucket (≈3%) of the exact order statistic.
        for (p, exact) in [(50u32, 50.0f64), (90, 90.0), (99, 99.0)] {
            let got = h.percentile(p).unwrap();
            assert!(
                (got - exact).abs() / exact < 0.04,
                "p{p}: {got} vs exact {exact}"
            );
        }
        // The extremes are exact, not quantized.
        assert_eq!(h.percentile(0), Some(1.0));
        assert_eq!(h.percentile(100), Some(100.0));
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(100.0));
    }

    #[test]
    #[should_panic(expected = "0..=100")]
    fn percentile_over_100_is_rejected() {
        Histogram::new().percentile(101);
    }

    #[test]
    fn merge_is_exactly_associative_and_commutative() {
        // Three parts with awkward values (boundaries, floor-bucket
        // members, huge magnitudes). Every merge order must produce a
        // bit-identical histogram — full `==` on the state, percentiles
        // included.
        let part = |vals: &[f64]| {
            let mut h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let a = part(&[1.0, 1.03125, 0.0, 5.5e-12]);
        let b = part(&[2.0, 1.0, 1e300, 7.0]);
        let c = part(&[0.25, 1.0, 3.0]);
        let fold = |order: &[&Histogram]| {
            let mut acc = Histogram::new();
            for h in order {
                acc.merge(h);
            }
            acc
        };
        let abc = fold(&[&a, &b, &c]);
        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c) == c ⊕ b ⊕ a == ...
        for order in [
            vec![&a, &c, &b],
            vec![&b, &a, &c],
            vec![&b, &c, &a],
            vec![&c, &a, &b],
            vec![&c, &b, &a],
        ] {
            let merged = fold(&order);
            assert_eq!(merged, abc, "merge order changed the histogram");
            assert_eq!(merged.percentile(50), abc.percentile(50));
            assert_eq!(merged.percentile(99), abc.percentile(99));
        }
        // And the merged histogram equals recording everything directly.
        let direct = part(&[
            1.0, 1.03125, 0.0, 5.5e-12, 2.0, 1.0, 1e300, 7.0, 0.25, 1.0, 3.0,
        ]);
        assert_eq!(direct, abc, "merge must equal direct recording");
    }

    #[test]
    fn record_n_equals_n_records() {
        let mut a = Histogram::new();
        a.record_n(3.7, 4);
        let mut b = Histogram::new();
        for _ in 0..4 {
            b.record(3.7);
        }
        assert_eq!(a, b);
        a.record_n(1.0, 0); // a zero batch is a no-op
        assert_eq!(a, b);
    }
}
