//! A deterministic metrics registry: named counters, gauges, and
//! histograms with byte-stable text exporters.
//!
//! Metric names follow the Prometheus convention (`snake_case`, unit
//! suffix); labels are encoded into the key itself as
//! `name{key="value"}` so the registry stays one flat `BTreeMap` per
//! metric kind. `BTreeMap` (not `HashMap`) is deliberate: iteration
//! order — and hence every exporter's output — is a pure function of
//! the recorded facts, never of hash seeds.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::histogram::Histogram;

/// Named counters, gauges, and histograms.
///
/// Counters are monotone `u64` sums; gauges are last-write-wins `f64`
/// readings; histograms are [`Histogram`]s. All three merge exactly
/// (counters add, gauges keep the merged-in reading only where the
/// target has none, histograms bucket-merge), so per-shard registries
/// can fold into a fleet registry without order sensitivity.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// Builds a labeled metric key, `name{k1="v1",k2="v2"}`.
///
/// Label values are embedded verbatim; callers pass simple identifiers
/// (shard ids, tier names), not free text.
pub fn labeled(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut key = String::with_capacity(name.len() + 16 * labels.len());
    key.push_str(name);
    key.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            key.push(',');
        }
        let _ = write!(key, "{k}=\"{v}\"");
    }
    key.push('}');
    key
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to counter `key` (creating it at zero).
    pub fn counter_add(&mut self, key: &str, n: u64) {
        if let Some(c) = self.counters.get_mut(key) {
            *c += n;
        } else {
            self.counters.insert(key.to_string(), n);
        }
    }

    /// Sets counter `key` to an externally tracked absolute value.
    ///
    /// Used at snapshot time to overlay totals that live in their own
    /// structures (probe memo, plan caches) without double counting.
    pub fn counter_set(&mut self, key: &str, value: u64) {
        self.counters.insert(key.to_string(), value);
    }

    /// Current value of counter `key` (zero when absent).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Sets gauge `key` to `value` (last write wins).
    pub fn gauge_set(&mut self, key: &str, value: f64) {
        self.gauges.insert(key.to_string(), value);
    }

    /// Current value of gauge `key`.
    pub fn gauge(&self, key: &str) -> Option<f64> {
        self.gauges.get(key).copied()
    }

    /// Records `value` into histogram `key` (creating it empty).
    pub fn histogram_record(&mut self, key: &str, value: f64) {
        if let Some(h) = self.histograms.get_mut(key) {
            h.record(value);
        } else {
            let mut h = Histogram::new();
            h.record(value);
            self.histograms.insert(key.to_string(), h);
        }
    }

    /// The histogram at `key`, if any value was ever recorded.
    pub fn histogram(&self, key: &str) -> Option<&Histogram> {
        self.histograms.get(key)
    }

    /// Mutable access to histogram `key`, created empty on first use —
    /// for call sites that batch records or merge externally built
    /// histograms in.
    pub fn histogram_mut(&mut self, key: &str) -> &mut Histogram {
        if !self.histograms.contains_key(key) {
            self.histograms.insert(key.to_string(), Histogram::new());
        }
        self.histograms.get_mut(key).unwrap()
    }

    /// Folds `other` into `self`: counters add, histograms bucket-merge,
    /// and gauges copy over only where `self` has no reading (so a
    /// fleet-level overlay is not clobbered by stale per-shard values).
    pub fn merge(&mut self, other: &Registry) {
        for (k, &n) in &other.counters {
            self.counter_add(k, n);
        }
        for (k, &v) in &other.gauges {
            self.gauges.entry(k.clone()).or_insert(v);
        }
        for (k, h) in &other.histograms {
            self.histogram_mut(k).merge(h);
        }
    }

    /// All counters in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All gauges in key order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> + '_ {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms in key order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> + '_ {
        self.histograms.iter().map(|(k, h)| (k.as_str(), h))
    }

    /// Renders the registry in Prometheus text exposition format.
    ///
    /// Counters and gauges render as single samples; histograms render
    /// summary-style — `_count`, `_sum`, and `quantile`-labeled p50/p90/
    /// p99 samples (the quantile label is injected before any existing
    /// label set's closing brace). Output is byte-stable: keys iterate
    /// in `BTreeMap` order and floats format via Rust's shortest-round-
    /// trip `Display`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            let _ = writeln!(out, "{k} {v}");
        }
        for (k, v) in &self.gauges {
            let _ = writeln!(out, "{k} {v}");
        }
        for (k, h) in &self.histograms {
            let (base, labels) = split_key(k);
            let _ = writeln!(out, "{}_count{labels} {}", base, h.count());
            let _ = writeln!(out, "{}_sum{labels} {}", base, h.approx_sum());
            for (p, q) in [(50u32, "0.5"), (90, "0.9"), (99, "0.99")] {
                if let Some(v) = h.percentile(p) {
                    let with_q = inject_label(base, labels, "quantile", q);
                    let _ = writeln!(out, "{with_q} {v}");
                }
            }
        }
        out
    }

    /// Renders the registry as JSON Lines: one `{"kind":...,"name":...}`
    /// object per metric, in key order. Histogram lines carry count,
    /// min/max, approximate sum, and p50/p90/p99.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            let _ = writeln!(
                out,
                "{{\"kind\":\"counter\",\"name\":{},\"value\":{v}}}",
                json_str(k)
            );
        }
        for (k, v) in &self.gauges {
            let _ = writeln!(
                out,
                "{{\"kind\":\"gauge\",\"name\":{},\"value\":{}}}",
                json_str(k),
                json_num(*v)
            );
        }
        for (k, h) in &self.histograms {
            let _ = writeln!(
                out,
                "{{\"kind\":\"histogram\",\"name\":{},\"count\":{},\"min\":{},\"max\":{},\"sum\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
                json_str(k),
                h.count(),
                json_opt(h.min()),
                json_opt(h.max()),
                json_num(h.approx_sum()),
                json_opt(h.percentile(50)),
                json_opt(h.percentile(90)),
                json_opt(h.percentile(99)),
            );
        }
        out
    }
}

/// Splits `name{labels}` into (`name`, `{labels}`); the label part is
/// empty for bare names.
fn split_key(key: &str) -> (&str, &str) {
    match key.find('{') {
        Some(i) => (&key[..i], &key[i..]),
        None => (key, ""),
    }
}

/// Appends `extra="value"` to a metric's label set, creating one if the
/// key had none.
fn inject_label(base: &str, labels: &str, extra: &str, value: &str) -> String {
    if labels.is_empty() {
        format!("{base}{{{extra}=\"{value}\"}}")
    } else {
        // `labels` is `{...}`; splice before the closing brace.
        let inner = &labels[1..labels.len() - 1];
        format!("{base}{{{inner},{extra}=\"{value}\"}}")
    }
}

/// JSON string literal (metric keys only contain printable ASCII plus
/// `"` from label syntax, so escaping quotes and backslashes suffices).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number rendering: non-finite floats become `null`.
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn json_opt(v: Option<f64>) -> String {
    v.map(json_num).unwrap_or_else(|| "null".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labeled_keys_render_prometheus_style() {
        assert_eq!(labeled("fleet_admitted_total", &[]), "fleet_admitted_total");
        assert_eq!(
            labeled("shard_live_instances", &[("shard", "3"), ("tier", "hi")]),
            "shard_live_instances{shard=\"3\",tier=\"hi\"}"
        );
    }

    #[test]
    fn counters_gauges_histograms_round_trip() {
        let mut r = Registry::new();
        r.counter_add("a_total", 2);
        r.counter_add("a_total", 3);
        assert_eq!(r.counter("a_total"), 5);
        assert_eq!(r.counter("missing_total"), 0);
        r.counter_set("a_total", 7);
        assert_eq!(r.counter("a_total"), 7);
        r.gauge_set("g", 1.5);
        r.gauge_set("g", 2.5);
        assert_eq!(r.gauge("g"), Some(2.5));
        r.histogram_record("h_seconds", 0.25);
        assert_eq!(r.histogram("h_seconds").unwrap().count(), 1);
    }

    #[test]
    fn merge_adds_counters_and_buckets_and_keeps_own_gauges() {
        let mut a = Registry::new();
        a.counter_add("c_total", 1);
        a.gauge_set("g", 10.0);
        a.histogram_record("h", 1.0);
        let mut b = Registry::new();
        b.counter_add("c_total", 2);
        b.gauge_set("g", 99.0); // must NOT clobber a's reading
        b.gauge_set("only_b", 5.0);
        b.histogram_record("h", 2.0);
        a.merge(&b);
        assert_eq!(a.counter("c_total"), 3);
        assert_eq!(a.gauge("g"), Some(10.0));
        assert_eq!(a.gauge("only_b"), Some(5.0));
        assert_eq!(a.histogram("h").unwrap().count(), 2);
    }

    #[test]
    fn prometheus_export_is_stable_and_labeled() {
        let mut r = Registry::new();
        r.counter_add("b_total", 1);
        r.counter_add("a_total", 1);
        for v in [1.0, 2.0, 4.0] {
            r.histogram_record("lat_seconds{stage=\"apply\"}", v);
        }
        let text = r.to_prometheus();
        // BTreeMap order: a before b, regardless of insertion order.
        let a = text.find("a_total 1").unwrap();
        let b = text.find("b_total 1").unwrap();
        assert!(a < b);
        assert!(text.contains("lat_seconds_count{stage=\"apply\"} 3"));
        assert!(text.contains("lat_seconds{stage=\"apply\",quantile=\"0.5\"}"));
        // Deterministic: rendering twice is byte-identical.
        assert_eq!(text, r.to_prometheus());
    }

    #[test]
    fn jsonl_export_emits_one_object_per_metric() {
        let mut r = Registry::new();
        r.counter_add("c_total", 4);
        r.gauge_set("g", 0.5);
        r.histogram_record("h", 3.0);
        let text = r.to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"kind\":\"counter\""));
        assert!(lines[1].contains("\"kind\":\"gauge\""));
        assert!(lines[2].contains("\"kind\":\"histogram\""));
        assert!(lines[2].contains("\"p50\":"));
        // Every line parses as a JSON object shape (quick sanity check:
        // balanced braces, starts/ends correctly).
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }
}
