//! Gated wall-clock stage timers.
//!
//! Wall time is inherently non-deterministic, so it can never feed a
//! metric that a deterministic replay would compare. The compromise: a
//! [`StageTimer`] only reads the clock when constructed `enabled`, and
//! its reading goes into a *separate* wall-clock histogram family that
//! deterministic consumers simply don't look at. Disabled timers cost
//! one `Option` check — no clock syscall, no allocation.

use std::time::Instant;

use crate::registry::Registry;

/// A scoped stage timer: started at construction, resolved explicitly
/// via [`StageTimer::finish`] into a `stage_wall_seconds{stage="..."}`
/// histogram sample.
///
/// The explicit `finish(&mut Registry)` (rather than a `Drop` impl)
/// keeps borrows simple at call sites that hold the registry inside a
/// larger `&mut self`.
#[derive(Debug)]
pub struct StageTimer {
    started: Option<Instant>,
    stage: &'static str,
}

impl StageTimer {
    /// Starts timing `stage` if `enabled`; otherwise a free no-op.
    pub fn start(enabled: bool, stage: &'static str) -> Self {
        Self {
            started: enabled.then(Instant::now),
            stage,
        }
    }

    /// The stage label this timer was started for.
    pub fn stage(&self) -> &'static str {
        self.stage
    }

    /// Stops the timer and records elapsed wall seconds into
    /// `registry`'s `stage_wall_seconds{stage="<stage>"}` histogram.
    /// No-op (and no clock read) when started disabled.
    pub fn finish(self, registry: &mut Registry) {
        if let Some(started) = self.started {
            let key = crate::registry::labeled("stage_wall_seconds", &[("stage", self.stage)]);
            registry.histogram_record(&key, started.elapsed().as_secs_f64());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enabled_timer_records_a_sample() {
        let mut r = Registry::new();
        let t = StageTimer::start(true, "apply");
        assert_eq!(t.stage(), "apply");
        t.finish(&mut r);
        let h = r.histogram("stage_wall_seconds{stage=\"apply\"}").unwrap();
        assert_eq!(h.count(), 1);
        assert!(h.max().unwrap() >= 0.0);
    }

    #[test]
    fn disabled_timer_touches_nothing() {
        let mut r = Registry::new();
        StageTimer::start(false, "apply").finish(&mut r);
        assert!(r.histogram("stage_wall_seconds{stage=\"apply\"}").is_none());
        assert_eq!(r, Registry::new());
    }
}
