//! The fleet runtime: N device shards — possibly of *different* board
//! types — behind one priority-aware admission/placement layer.
//!
//! Each [`FleetRuntime`] shard is a full single-board serving stack — its
//! own `Platform`, a [`RankMapManager`] (with its own plan cache), and a
//! step-wise [`RuntimeSession`] — interleaved on one global clock. The
//! fleet's composition comes from a [`FleetSpec`]: ordered groups of
//! identical shards, each group with its own platform
//! profile and [`ThroughputOracle`] (a mixed Orange-Pi/Jetson fleet is
//! two groups).
//!
//! An arriving DNN instance is routed by **normalized potential delta**:
//! for every shard with capacity, the placement layer builds one
//! candidate mapping per component (survivors keep their incumbent
//! placements, the arrival is tried on each component), scores the
//! candidates through the shard group's oracle, and folds per-DNN
//! throughputs into priority-weighted *potentials* — each DNN's
//! throughput divided by **that shard's own measured ideal rate** for the
//! model. Normalization is what makes the comparison meaningful across
//! dissimilar boards: a Jetson-class shard's raw inf/s would otherwise
//! dominate every delta and starve slower boards of low-priority work
//! they could serve fine (see `docs/heterogeneous.md`). The arrival is
//! admitted onto the shard whose best candidate improves its
//! fraction-of-board-ideal score the most; arrivals whose best predicted
//! potential everywhere falls below the admission floor — or that find
//! every shard at capacity — are **rejected** (spill), and a shard whose
//! mean predicted potential collapses sheds its lowest-priority instance
//! to a healthier shard (**rebalancing**, one migration per event,
//! charged at the destination board's own transfer link).
//!
//! Placement scoring is **fused** by default
//! ([`FleetConfig::fused_scoring`]): probes for all shards of a platform
//! group are deduplicated (two idle Orange Pis ask the oracle the exact
//! same question) and answered by one
//! [`ThroughputOracle::predict_grouped`] call per oracle, instead of one
//! `predict_batch` round-trip per shard. Fused and serial scoring make
//! bit-identical decisions (tested); fused is the faster execution
//! strategy at high shard counts (benchmarked in `fleet_hetero`).
//!
//! The candidate batch only *routes*; the shard's own mapper still runs
//! its warm-started search (plan cache and all) once the instance lands,
//! so per-shard mapping quality is exactly the PR 2 serving runtime's.

use crate::load::{FleetEvent, RequestId};
use crate::metrics::{FleetMetrics, LatencyStats, PlacementOutcome, PlacementRecord};
use crate::spec::FleetSpec;
use crate::trace::Trace;
use rankmap_core::dataset::ideal_rates;
use rankmap_core::manager::{ManagerConfig, RankMapManager};
use rankmap_core::oracle::ThroughputOracle;
use rankmap_core::priority::PriorityMode;
use rankmap_core::runtime::{
    ideal_rate_of, priorities_or_uniform, timeline_average_potential, weighted_potential,
    DynamicEvent, DynamicRuntime, GainObjective, InstanceId, RankMapMapper, RuntimeSession,
    TimelinePoint,
};
use rankmap_models::ModelId;
use rankmap_platform::{ComponentId, Platform};
use rankmap_sim::{Mapping, MigrationModel, Workload};
use std::collections::HashMap;
use std::time::Instant;

/// Fleet-wide configuration (per-shard manager settings included).
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Timeline sampling interval of every shard session (seconds).
    pub sample_dt: f64,
    /// Per-shard manager configuration (search budgets, plan-cache
    /// capacity, ...).
    pub manager: ManagerConfig,
    /// Hard per-shard concurrency cap — the admission backstop.
    pub max_per_shard: usize,
    /// Minimum predicted potential (fraction of the *hosting shard's*
    /// ideal rate) an arrival must reach on its best candidate shard to
    /// be admitted; below it the request is rejected.
    pub admission_floor: f64,
    /// Expected residency window handed to shard sessions as the remap
    /// decision's integration horizon (seconds).
    pub decision_window: f64,
    /// A shard whose mean predicted potential falls below this value is a
    /// rebalance candidate.
    pub rebalance_threshold: f64,
    /// Required predicted improvement of the source shard's mean
    /// potential for a rebalance migration to fire.
    pub rebalance_margin: f64,
    /// Remap-gain objective of every shard runtime.
    pub objective: GainObjective,
    /// Migration awareness of every shard runtime.
    pub migration_aware: bool,
    /// Whether placement probes are answered through one fused
    /// [`ThroughputOracle::predict_grouped`] call per platform group
    /// (with duplicate probes deduplicated) instead of one
    /// `predict_batch` call per shard. Decisions are bit-identical either
    /// way; `false` keeps the serial path for A/B benchmarking.
    pub fused_scoring: bool,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            sample_dt: 30.0,
            manager: ManagerConfig {
                mcts_iterations: 400,
                warm_iterations: 150,
                ..Default::default()
            },
            max_per_shard: 5,
            admission_floor: 0.05,
            decision_window: 60.0,
            rebalance_threshold: 0.3,
            rebalance_margin: 0.05,
            objective: GainObjective::default(),
            migration_aware: true,
            fused_scoring: true,
        }
    }
}

/// One device shard: its board, mapper (manager + priority mode), and
/// step-wise serving session.
struct Shard<'p, O: ThroughputOracle> {
    /// The shard's own board profile.
    platform: &'p Platform,
    /// The oracle scoring this shard's placements (shared by its group).
    oracle: &'p O,
    /// Index of the shard's [`FleetSpec`] group — the fused scorer's
    /// batching domain.
    group: usize,
    /// Per-model ideal rates measured on *this* board — the normalization
    /// denominators of every potential this shard reports.
    ideals: HashMap<ModelId, f64>,
    mapper: RankMapMapper<'p, O>,
    session: RuntimeSession<'p>,
    /// Memoized oracle prediction of the current (workload, incumbent)
    /// pair. Placement probes run for *every* offered event against
    /// *every* shard, but a shard's incumbent only changes when its own
    /// `apply` runs — so the prediction is cached here and invalidated on
    /// apply.
    incumbent_prediction: std::cell::RefCell<Option<Vec<f64>>>,
    /// Memoized current (workload, incumbent mapping) pair — building a
    /// `Workload` constructs full per-model layer graphs, far too
    /// expensive to repeat for every probe of every offered event.
    /// `None` = not computed yet; `Some(None)` = computed, shard idle.
    /// Invalidated on apply.
    current_state: std::cell::RefCell<Option<Option<ShardState>>>,
    /// Memoized placement-probe trial workloads (live set + arrival),
    /// keyed by arrival model. Invalidated on apply.
    trial_cache: std::cell::RefCell<HashMap<ModelId, std::rc::Rc<Workload>>>,
}

/// A shard's current (workload, incumbent mapping) pair, shared out of
/// the memo without cloning the underlying layer graphs.
type ShardState = std::rc::Rc<(Workload, Mapping)>;

/// The fused scorer's memo of oracle answers: one map per platform
/// group, keyed by probe fingerprint (lookups borrow the fingerprint as
/// `&[u8]` — no allocation on the hot path).
type ProbeMemo = Vec<HashMap<Vec<u8>, Vec<Vec<f64>>>>;

impl<O: ThroughputOracle> Shard<'_, O> {
    fn live_len(&self) -> usize {
        self.session.live().len()
    }

    /// Current workload + incumbent mapping in live order, memoized until
    /// the next `apply` (`None` when idle).
    fn current(&self) -> Option<ShardState> {
        self.current_state
            .borrow_mut()
            .get_or_insert_with(|| {
                if self.session.live().is_empty() {
                    return None;
                }
                let workload =
                    Workload::from_ids(self.session.live().iter().map(|(_, m)| *m));
                let per_dnn: Vec<Vec<ComponentId>> = self
                    .session
                    .live()
                    .iter()
                    .map(|(id, _)| {
                        self.session.placement(*id).expect("live instance placed").to_vec()
                    })
                    .collect();
                Some(std::rc::Rc::new((workload, Mapping::new(per_dnn))))
            })
            .clone()
    }

    /// The probe trial workload for an arriving `model` (live set first,
    /// arrival appended), memoized until the next `apply`.
    fn trial(&self, model: ModelId) -> std::rc::Rc<Workload> {
        self.trial_cache
            .borrow_mut()
            .entry(model)
            .or_insert_with(|| {
                std::rc::Rc::new(Workload::from_ids(
                    self.session
                        .live()
                        .iter()
                        .map(|(_, m)| *m)
                        .chain(std::iter::once(model)),
                ))
            })
            .clone()
    }

    /// The oracle's per-DNN prediction for the current incumbent,
    /// memoized until the next `apply`.
    fn predict_incumbent(&self, workload: &Workload, incumbent: &Mapping) -> Vec<f64> {
        self.incumbent_prediction
            .borrow_mut()
            .get_or_insert_with(|| self.oracle.predict(workload, incumbent))
            .clone()
    }

    fn apply(&mut self, at: f64, events: &[DynamicEvent], window: f64) -> Vec<InstanceId> {
        self.incumbent_prediction.get_mut().take();
        self.current_state.get_mut().take();
        self.trial_cache.get_mut().clear();
        self.session.advance_to(at);
        self.session.apply(events, window, &mut self.mapper)
    }
}

/// One prepared placement probe: everything needed to score one shard for
/// one arrival, minus the oracle's answers.
struct Probe {
    shard: usize,
    group: usize,
    trial: std::rc::Rc<Workload>,
    candidates: Vec<Mapping>,
    weights: Vec<f64>,
    /// The shard's current weighted potential (0 when idle) — the
    /// baseline the delta is measured against.
    before: f64,
    /// The arrival model's ideal rate on this shard's board.
    arrival_ideal: f64,
    /// Dedup fingerprint: two probes of the same group with equal keys
    /// are the identical oracle question (same trial set, same survivor
    /// placements, same weights) and share one evaluation under fused
    /// scoring.
    key: Vec<u8>,
}

/// Where an admitted request currently runs.
#[derive(Debug, Clone, Copy)]
enum Disposition {
    Rejected,
    Active { shard: usize, instance: InstanceId },
}

/// Everything a fleet run produces.
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// Deterministic aggregate metrics (trace replay reproduces them
    /// bit-for-bit).
    pub metrics: FleetMetrics,
    /// The admission/placement decision log, in offered order.
    pub placements: Vec<PlacementRecord>,
    /// Per-shard serving timelines.
    pub timelines: Vec<Vec<TimelinePoint>>,
    /// Wall-clock latency of the placement decision (not part of the
    /// deterministic metrics).
    pub placement_latency: LatencyStats,
}

/// Upper bound on memoized probe answers before the fused scorer resets
/// its memo wholesale (each entry is one probe's candidate predictions —
/// a few hundred bytes).
const PROBE_MEMO_BOUND: usize = 8_192;

/// A fleet of emulated boards behind one admission/placement layer.
pub struct FleetRuntime<'p, O: ThroughputOracle> {
    config: FleetConfig,
    /// Per-group oracle, indexed by [`Shard::group`].
    group_oracles: Vec<&'p O>,
    /// Per-shard platform names, in shard order (the trace's fleet mix).
    platforms: Vec<String>,
    /// The fused scorer's cross-event memo: per-group oracle answers
    /// keyed by probe fingerprint. A fingerprint fully determines the
    /// question (trial set, survivor placements, weights), so entries are
    /// pure and never stale; the maps reset wholesale past
    /// [`PROBE_MEMO_BOUND`].
    probe_memo: std::cell::RefCell<ProbeMemo>,
    shards: Vec<Shard<'p, O>>,
}

impl<'p, O: ThroughputOracle> FleetRuntime<'p, O> {
    /// Builds a fleet from a [`FleetSpec`]: each group contributes
    /// `count` shards on its own platform, with per-model ideal rates
    /// measured once per group and cloned into its shards.
    ///
    /// # Example
    ///
    /// A two-board mixed fleet serving two arrivals (tiny search budgets
    /// keep this runnable as a doctest):
    ///
    /// ```
    /// use rankmap_core::manager::ManagerConfig;
    /// use rankmap_core::oracle::AnalyticalOracle;
    /// use rankmap_fleet::{FleetConfig, FleetEvent, FleetRuntime, FleetSpec, RequestId, ShardSpec};
    /// use rankmap_models::ModelId;
    /// use rankmap_platform::Platform;
    ///
    /// let orange = Platform::orange_pi_5();
    /// let jetson = Platform::jetson_orin_nx();
    /// let orange_oracle = AnalyticalOracle::new(&orange);
    /// let jetson_oracle = AnalyticalOracle::new(&jetson);
    /// let spec = FleetSpec::new(vec![
    ///     ShardSpec::new(&orange, &orange_oracle, 1),
    ///     ShardSpec::new(&jetson, &jetson_oracle, 1),
    /// ]);
    /// let config = FleetConfig {
    ///     manager: ManagerConfig { mcts_iterations: 40, warm_iterations: 20, ..Default::default() },
    ///     ..Default::default()
    /// };
    /// let fleet = FleetRuntime::new(&spec, config);
    /// assert_eq!(fleet.platform_names(), ["orange-pi-5", "jetson-orin-nx"]);
    /// let events = vec![
    ///     FleetEvent::Arrive { at: 0.0, request: RequestId::new(0), model: ModelId::AlexNet },
    ///     FleetEvent::Arrive { at: 10.0, request: RequestId::new(1), model: ModelId::ResNet50 },
    /// ];
    /// let outcome = fleet.execute(&events, 60.0);
    /// assert_eq!(outcome.metrics.admitted, 2);
    /// ```
    pub fn new(spec: &FleetSpec<'p, O>, config: FleetConfig) -> Self {
        let mut shards = Vec::with_capacity(spec.shard_count());
        let mut group_oracles = Vec::with_capacity(spec.groups().len());
        for (g, group) in spec.groups().iter().enumerate() {
            group_oracles.push(group.oracle);
            let ideals = ideal_rates(group.platform, &ModelId::all());
            let runtime = DynamicRuntime::new(group.platform, config.sample_dt)
                .with_gain_objective(config.objective)
                .with_migration_awareness(config.migration_aware);
            for _ in 0..group.count {
                let i = shards.len();
                shards.push(Shard {
                    platform: group.platform,
                    oracle: group.oracle,
                    group: g,
                    ideals: ideals.clone(),
                    mapper: RankMapMapper::new(
                        RankMapManager::new(group.platform, group.oracle, config.manager),
                        PriorityMode::Dynamic,
                        format!("shard-{i}"),
                    ),
                    session: runtime.session_with_ideals(ideals.clone()),
                    incumbent_prediction: std::cell::RefCell::new(None),
                    current_state: std::cell::RefCell::new(None),
                    trial_cache: std::cell::RefCell::new(HashMap::new()),
                });
            }
        }
        Self {
            config,
            probe_memo: std::cell::RefCell::new(vec![HashMap::new(); group_oracles.len()]),
            group_oracles,
            platforms: spec.platform_names(),
            shards,
        }
    }

    /// Builds a homogeneous fleet: `shards` copies of the same platform
    /// served by one shared oracle (shorthand for
    /// [`FleetSpec::homogeneous`] + [`FleetRuntime::new`]).
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn homogeneous(
        platform: &'p Platform,
        oracle: &'p O,
        shards: usize,
        config: FleetConfig,
    ) -> Self {
        assert!(shards > 0, "a fleet needs at least one shard");
        Self::new(&FleetSpec::homogeneous(platform, oracle, shards), config)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard platform names, in shard order — the fleet mix a trace
    /// records and replay verifies.
    pub fn platform_names(&self) -> &[String] {
        &self.platforms
    }

    /// Boots shard plan caches from a
    /// [`RankMapManager::export_plan_cache`] snapshot ("serve yesterday's
    /// plans"). The snapshot is parsed once, then installed onto every
    /// shard whose board it was recorded for: a platform-tagged snapshot
    /// only warms shards with the matching
    /// [`Platform::signature`], and an untagged (legacy) snapshot only
    /// shards it shape-validates against — on a mixed fleet the other
    /// shards simply boot cold. Returns the number of plans serving per
    /// warmed shard.
    ///
    /// # Errors
    ///
    /// Fails if the snapshot does not parse, or if *no* shard of the
    /// fleet can accept it (wrong board type everywhere).
    pub fn warm_plan_caches(
        &self,
        json: &str,
    ) -> Result<usize, rankmap_core::json::JsonError> {
        let loaded = rankmap_core::plan_cache::PlanCache::from_json(json)?;
        let mut served = None;
        let mut last_err = None;
        for shard in &self.shards {
            let compatible = loaded
                .validate_platform(&shard.platform.signature())
                .and_then(|()| loaded.validate_components(shard.platform.component_count()));
            match compatible {
                Ok(()) => {
                    served = Some(shard.mapper.manager().install_plan_cache(loaded.clone()));
                }
                Err(e) => last_err = Some(e),
            }
        }
        match served {
            Some(n) => Ok(n),
            None => Err(last_err.unwrap_or_else(|| {
                rankmap_core::json::JsonError::semantic("the fleet has no shards")
            })),
        }
    }

    /// Prepares the placement probe for shard `s` and an arriving
    /// `model`: trial workload, per-component candidates, weights, and
    /// the shard's baseline score. `None` if the shard is at capacity.
    fn build_probe(&self, s: usize, model: ModelId) -> Option<Probe> {
        let shard = &self.shards[s];
        if shard.live_len() >= self.config.max_per_shard {
            return None;
        }
        let arrival_ideal = ideal_rate_of(&shard.ideals, model);
        // Trial workload: survivors first (keeping their incumbent
        // placements), the arrival appended, tried on every component.
        let trial = shard.trial(model);
        // One weight basis for both sides of the delta: the trial
        // workload's resolved vector, its survivor prefix applied to the
        // "before" score. Scoring "before" under the n-DNN vector would
        // let a Static→Dynamic fallback (effective_mode on the n+1
        // workload) masquerade as a placement gain.
        let weights = priorities_or_uniform(&shard.mapper, &trial);
        let (before, survivors) = match shard.current() {
            None => (0.0, Vec::new()),
            Some(state) => {
                let (workload, incumbent) = (&state.0, &state.1);
                let per_dnn = shard.predict_incumbent(workload, incumbent);
                let score = weighted_potential(
                    &shard.ideals,
                    workload,
                    &per_dnn,
                    &weights[..workload.len()],
                );
                (score, incumbent.per_dnn().to_vec())
            }
        };
        let arrival_units = trial.models().last().expect("arrival present").unit_count();
        let candidates: Vec<Mapping> = (0..shard.platform.component_count())
            .map(|c| {
                let mut per_dnn = survivors.clone();
                per_dnn.push(vec![ComponentId::new(c); arrival_units]);
                Mapping::new(per_dnn)
            })
            .collect();
        // Fingerprint the oracle question for fused dedup: model ids,
        // survivor placements, and the weight vector pin the answer.
        let mut key = Vec::with_capacity(trial.len() * 9 + survivors.len() * 8);
        for m in trial.models() {
            key.push(m.id() as u8);
        }
        for assign in &survivors {
            key.push(0xFF);
            key.extend(assign.iter().map(|c| c.index() as u8));
        }
        for w in &weights {
            key.extend_from_slice(&w.to_bits().to_le_bytes());
        }
        Some(Probe {
            shard: s,
            group: shard.group,
            trial,
            candidates,
            weights,
            before,
            arrival_ideal,
            key,
        })
    }

    /// Folds the oracle's candidate predictions into a shard score:
    /// `(best normalized-potential delta, arrival's predicted potential
    /// under the best candidate)`.
    fn fold_probe(&self, probe: &Probe, predictions: &[Vec<f64>]) -> Option<(f64, f64)> {
        let ideals = &self.shards[probe.shard].ideals;
        // Prefer the best-scoring candidate that clears the admission
        // floor; only when *no* component placement clears it does the
        // shard report a below-floor arrival (and get skipped by
        // `place`). Judging the floor on the single best-total candidate
        // would reject arrivals a slightly-lower-scoring component could
        // serve fine.
        let mut best_any: Option<(f64, f64)> = None;
        let mut best_clearing: Option<(f64, f64)> = None;
        for per_dnn in predictions {
            let arrival_pot = per_dnn.last().copied().unwrap_or(0.0) / probe.arrival_ideal;
            let score = weighted_potential(ideals, &probe.trial, per_dnn, &probe.weights);
            if best_any.is_none_or(|(b, _)| score > b) {
                best_any = Some((score, arrival_pot));
            }
            if arrival_pot >= self.config.admission_floor
                && best_clearing.is_none_or(|(b, _)| score > b)
            {
                best_clearing = Some((score, arrival_pot));
            }
        }
        best_clearing
            .or(best_any)
            .map(|(score, arrival_pot)| (score - probe.before, arrival_pot))
    }

    /// Scores placing `model` onto shard `s` through the serial path:
    /// `(best normalized-potential delta, arrival's predicted potential
    /// under the best candidate)`. `None` if the shard is at capacity.
    fn score_shard(&self, s: usize, model: ModelId) -> Option<(f64, f64)> {
        let probe = self.build_probe(s, model)?;
        let predictions =
            self.shards[s].oracle.predict_batch(&probe.trial, &probe.candidates);
        self.fold_probe(&probe, &predictions)
    }

    /// Scores placing `model` on every shard: `scores[s]` is the shard's
    /// `(normalized potential delta, arrival potential)` — the router's
    /// decision inputs — or `None` for shards at capacity. Potentials are
    /// fractions of each shard's *own* board ideal, so the numbers are
    /// comparable across a mixed fleet.
    ///
    /// Under [`FleetConfig::fused_scoring`] the probes are grouped per
    /// platform, deduplicated — within the event (two idle Orange Pis ask
    /// the identical question) *and* across events (a probe's fingerprint
    /// fully determines the oracle's answer, so a shard whose state has
    /// not changed since the same model last arrived is answered from the
    /// probe memo) — and the remaining unique questions answered by one
    /// [`ThroughputOracle::predict_grouped`] call per oracle. Otherwise
    /// each shard is scored by its own `predict_batch` call. Both paths
    /// produce bit-identical scores.
    pub fn probe_scores(&self, model: ModelId) -> Vec<Option<(f64, f64)>> {
        self.probe_scores_excluding(model, None)
    }

    /// [`FleetRuntime::probe_scores`] with an optional shard left out
    /// entirely (no probe built, no oracle question) — the rebalancer
    /// scores a victim's destinations this way so the source shard never
    /// costs an evaluation it is about to discard.
    fn probe_scores_excluding(
        &self,
        model: ModelId,
        exclude: Option<usize>,
    ) -> Vec<Option<(f64, f64)>> {
        let mut scores: Vec<Option<(f64, f64)>> = vec![None; self.shards.len()];
        if !self.config.fused_scoring {
            for (s, score) in scores.iter_mut().enumerate() {
                if Some(s) != exclude {
                    *score = self.score_shard(s, model);
                }
            }
            return scores;
        }
        let probes: Vec<Probe> = (0..self.shards.len())
            .filter(|&s| Some(s) != exclude)
            .filter_map(|s| self.build_probe(s, model))
            .collect();
        for g in 0..self.group_oracles.len() {
            // Deduplicate this group's probes against the cross-event
            // memo and against each other: every distinct oracle question
            // is asked exactly once.
            let members: Vec<&Probe> = probes.iter().filter(|p| p.group == g).collect();
            if members.is_empty() {
                continue;
            }
            let mut unique: Vec<&Probe> = Vec::new();
            let mut slot_of: HashMap<&[u8], usize> = HashMap::new();
            // Answer per member: Ok(memoized predictions) or Err(slot
            // into the unique list awaiting this event's grouped call).
            let memo = self.probe_memo.borrow();
            let pending: Vec<Result<Vec<Vec<f64>>, usize>> = members
                .iter()
                .map(|probe| {
                    if let Some(hit) = memo[g].get(probe.key.as_slice()) {
                        return Ok(hit.clone());
                    }
                    Err(*slot_of.entry(probe.key.as_slice()).or_insert_with(|| {
                        unique.push(probe);
                        unique.len() - 1
                    }))
                })
                .collect();
            drop(memo);
            let queries: Vec<(&Workload, &[Mapping])> =
                unique.iter().map(|p| (p.trial.as_ref(), p.candidates.as_slice())).collect();
            let predictions = self.group_oracles[g].predict_grouped(&queries);
            {
                let mut memo = self.probe_memo.borrow_mut();
                // The memo is pure (key ⇒ answer), so staleness is
                // impossible; the only pressure is memory, handled by a
                // wholesale reset past the bound.
                if memo.iter().map(HashMap::len).sum::<usize>() + unique.len()
                    > PROBE_MEMO_BOUND
                {
                    memo.iter_mut().for_each(HashMap::clear);
                }
                for (probe, answer) in unique.iter().zip(&predictions) {
                    memo[g].insert(probe.key.clone(), answer.clone());
                }
            }
            for (probe, answer) in members.iter().zip(&pending) {
                let predictions = match answer {
                    Ok(memoized) => memoized,
                    Err(slot) => &predictions[*slot],
                };
                scores[probe.shard] = self.fold_probe(probe, predictions);
            }
        }
        scores
    }

    /// The admission/placement decision: the shard with the best
    /// normalized potential delta whose arrival potential clears the
    /// floor, or `None` (reject).
    fn place(&self, model: ModelId) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for (s, score) in self.probe_scores(model).into_iter().enumerate() {
            let Some((delta, arrival_pot)) = score else { continue };
            if arrival_pot < self.config.admission_floor {
                continue;
            }
            if best.is_none_or(|(_, b)| delta > b) {
                best = Some((s, delta));
            }
        }
        best
    }

    /// Unweighted mean potential of a predicted report under a shard's
    /// own ideals — the collapse signal the rebalancer watches (and
    /// re-checks on the survivor set).
    fn uniform_mean_potential(&self, s: usize, workload: &Workload, per_dnn: &[f64]) -> f64 {
        let uniform = vec![1.0; workload.len()];
        weighted_potential(&self.shards[s].ideals, workload, per_dnn, &uniform)
            / workload.len() as f64
    }

    /// Mean predicted potential of a shard's current workload under its
    /// incumbent mapping (`None` when idle).
    fn shard_mean_potential(&self, s: usize) -> Option<f64> {
        let shard = &self.shards[s];
        let state = shard.current()?;
        let per_dnn = shard.predict_incumbent(&state.0, &state.1);
        Some(self.uniform_mean_potential(s, &state.0, &per_dnn))
    }

    /// One rebalance attempt at time `t`: if some shard's mean predicted
    /// potential collapsed below the threshold, move its lowest-priority
    /// instance to the shard that takes it best — provided the move
    /// clears the admission floor at the destination and improves the
    /// source by the configured margin. Because every quantity involved
    /// is a fraction of the owning board's ideal, a collapsed Jetson can
    /// shed onto an Orange Pi (and vice versa) on equal terms. Returns
    /// the migration performed.
    fn maybe_rebalance(
        &mut self,
        t: f64,
        requests: &mut HashMap<RequestId, Disposition>,
    ) -> Option<(usize, usize)> {
        // Worst collapsed shard with something to shed.
        let (src, src_mean) = (0..self.shards.len())
            .filter(|&s| self.shards[s].live_len() >= 2)
            .filter_map(|s| self.shard_mean_potential(s).map(|m| (s, m)))
            .min_by(|a, b| a.1.total_cmp(&b.1))?;
        if src_mean >= self.config.rebalance_threshold {
            return None;
        }
        // Victim: the live instance with the smallest priority weight.
        let state = self.shards[src].current()?;
        let (workload, incumbent) = (&state.0, &state.1);
        let weights = priorities_or_uniform(&self.shards[src].mapper, workload);
        let victim_idx = weights
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)?;
        let (victim_id, victim_model) = self.shards[src].session.live()[victim_idx];
        // Does shedding the victim actually heal the source?
        let keep = |d: usize| d != victim_idx;
        let survivors = Workload::from_ids(
            workload.models().iter().enumerate().filter(|&(d, _)| keep(d)).map(|(_, m)| m.id()),
        );
        let survivor_mapping = Mapping::new(
            incumbent
                .per_dnn()
                .iter()
                .enumerate()
                .filter(|&(d, _)| keep(d))
                .map(|(_, assign)| assign.clone())
                .collect(),
        );
        let healed = self.uniform_mean_potential(
            src,
            &survivors,
            &self.shards[src].oracle.predict(&survivors, &survivor_mapping),
        );
        if healed < src_mean + self.config.rebalance_margin {
            return None;
        }
        // Best destination (capacity + floor), excluding the source. The
        // destination's own predicted loss must not exceed the source's
        // predicted healing (heuristically comparing the weighted delta
        // against the uniform mean gain — both normalized
        // fraction-of-ideal scale, so the comparison holds across board
        // types), so a move that hurts the fleet more than it heals the
        // source never fires and migrations cannot thrash between loaded
        // shards.
        let healing = healed - src_mean;
        let dst = self
            .probe_scores_excluding(victim_model, Some(src))
            .into_iter()
            .enumerate()
            .filter_map(|(s, score)| {
                score.and_then(|(delta, arrival_pot)| {
                    (arrival_pot >= self.config.admission_floor && delta >= -healing)
                        .then_some((s, delta))
                })
            })
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(s, _)| s)?;
        // Execute: depart from the source, arrive at the destination. The
        // receiving board is not free — charge it (at least) the full
        // on-board restage of the victim's weights plus its stem rebuild,
        // over *its own* transfer link, so rebalancing cannot ping-pong
        // instances at no modeled cost.
        let window = self.config.decision_window;
        self.shards[src].apply(t, &[DynamicEvent::depart(t, victim_id)], window);
        let assigned =
            self.shards[dst].apply(t, &[DynamicEvent::arrive(t, victim_model)], window);
        let new_id = assigned[0];
        let victim_workload = Workload::from_ids([victim_model]);
        let transfer = MigrationModel::new(self.shards[dst].platform)
            .full_restage(&victim_workload)
            .stall_seconds;
        self.shards[dst].session.charge_stall(transfer);
        if let Some(entry) = requests.values_mut().find(|d| {
            matches!(d, Disposition::Active { shard, instance }
                     if *shard == src && *instance == victim_id)
        }) {
            *entry = Disposition::Active { shard: dst, instance: new_id };
        }
        Some((src, dst))
    }

    /// Runs a sorted fleet event stream to `horizon`, consuming the fleet.
    ///
    /// # Panics
    ///
    /// Panics if `events` is not sorted by time or reaches outside
    /// `[0, horizon)` — e.g. a stream generated for a longer horizon than
    /// the one passed here.
    pub fn execute(mut self, events: &[FleetEvent], horizon: f64) -> FleetOutcome {
        assert!(
            events.windows(2).all(|w| w[0].at() <= w[1].at()),
            "fleet events must be sorted by time"
        );
        assert!(
            events
                .iter()
                .all(|e| (0.0..horizon).contains(&e.at())),
            "fleet events must lie within [0, horizon)"
        );
        let window = self.config.decision_window;
        let mut requests: HashMap<RequestId, Disposition> = HashMap::new();
        let mut placements = Vec::new();
        let mut latencies = Vec::new();
        let mut admitted = 0u64;
        let mut rejected = 0u64;
        let mut migrations = 0u64;
        let mut per_shard_admitted = vec![0u64; self.shards.len()];
        for event in events {
            let t = event.at();
            match event {
                FleetEvent::Arrive { request, model, .. } => {
                    let started = Instant::now();
                    let decision = self.place(*model);
                    latencies.push(started.elapsed());
                    match decision {
                        Some((s, delta)) => {
                            let assigned =
                                self.shards[s].apply(t, &[DynamicEvent::arrive(t, *model)], window);
                            requests.insert(
                                *request,
                                Disposition::Active { shard: s, instance: assigned[0] },
                            );
                            admitted += 1;
                            per_shard_admitted[s] += 1;
                            placements.push(PlacementRecord {
                                request: *request,
                                at: t,
                                outcome: PlacementOutcome::Admitted { shard: s },
                                predicted_delta: delta,
                            });
                        }
                        None => {
                            requests.insert(*request, Disposition::Rejected);
                            rejected += 1;
                            placements.push(PlacementRecord {
                                request: *request,
                                at: t,
                                outcome: PlacementOutcome::Rejected,
                                predicted_delta: 0.0,
                            });
                        }
                    }
                }
                FleetEvent::Depart { request, .. } => {
                    if let Some(Disposition::Active { shard, instance }) =
                        requests.remove(request)
                    {
                        self.shards[shard].apply(t, &[DynamicEvent::depart(t, instance)], window);
                    }
                }
                FleetEvent::SetPriorities { mode, .. } => {
                    for shard in &mut self.shards {
                        shard.apply(
                            t,
                            &[DynamicEvent::SetPriorities { at: t, mode: mode.clone() }],
                            window,
                        );
                    }
                }
            }
            // Departures free capacity and arrivals shift contention —
            // both are rebalance opportunities.
            if let Some((_, dst)) = self.maybe_rebalance(t, &mut requests) {
                migrations += 1;
                per_shard_admitted[dst] += 1;
            }
        }
        let timelines: Vec<Vec<TimelinePoint>> = self
            .shards
            .into_iter()
            .map(|mut shard| {
                shard.session.finish(horizon);
                shard.session.into_timeline()
            })
            .collect();
        let per_shard_potential: Vec<f64> =
            timelines.iter().map(|tl| timeline_average_potential(tl)).collect();
        let aggregate_potential_seconds: f64 = timelines
            .iter()
            .flat_map(|tl| tl.iter())
            .map(|pt| pt.potentials.iter().sum::<f64>() * pt.span)
            .sum();
        FleetOutcome {
            metrics: FleetMetrics {
                shards: per_shard_potential.len(),
                offered: admitted + rejected,
                admitted,
                rejected,
                migrations,
                per_shard_potential,
                per_shard_admitted,
                per_shard_platform: self.platforms,
                aggregate_potential_seconds,
            },
            placements,
            timelines,
            placement_latency: LatencyStats::from_durations(latencies),
        }
    }

    /// Replays a recorded trace (see [`Trace`]): the trace's shard count
    /// — and, for version-2 traces, its per-shard platform mix — must
    /// match this fleet's.
    ///
    /// # Panics
    ///
    /// Panics if `trace.meta.shards != self.shard_count()`, or if the
    /// trace declares a platform mix that differs from this fleet's
    /// [`FleetRuntime::platform_names`].
    pub fn execute_trace(self, trace: &Trace) -> FleetOutcome {
        assert_eq!(
            trace.meta.shards,
            self.shard_count(),
            "trace was recorded for a different fleet size"
        );
        if !trace.meta.platforms.is_empty() {
            assert_eq!(
                trace.meta.platforms, self.platforms,
                "trace was recorded on a different fleet platform mix"
            );
        }
        self.execute(&trace.events, trace.meta.horizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ShardSpec;
    use rankmap_core::oracle::AnalyticalOracle;

    fn quick_config() -> FleetConfig {
        FleetConfig {
            manager: ManagerConfig { mcts_iterations: 80, warm_iterations: 40, ..Default::default() },
            ..Default::default()
        }
    }

    fn arrive(at: f64, k: u64, model: ModelId) -> FleetEvent {
        FleetEvent::Arrive { at, request: RequestId::new(k), model }
    }

    #[test]
    fn arrivals_spread_across_idle_shards() {
        let p = Platform::orange_pi_5();
        let oracle = AnalyticalOracle::new(&p);
        let fleet = FleetRuntime::homogeneous(&p, &oracle, 2, quick_config());
        let events = vec![
            arrive(0.0, 0, ModelId::InceptionV4),
            arrive(10.0, 1, ModelId::ResNet50),
        ];
        let outcome = fleet.execute(&events, 100.0);
        assert_eq!(outcome.metrics.admitted, 2);
        assert_eq!(outcome.metrics.rejected, 0);
        let shards: Vec<usize> = outcome
            .placements
            .iter()
            .map(|r| match r.outcome {
                PlacementOutcome::Admitted { shard } => shard,
                PlacementOutcome::Rejected => panic!("unexpected rejection"),
            })
            .collect();
        assert_ne!(shards[0], shards[1], "the second heavy DNN must take the idle shard");
    }

    #[test]
    fn overcommitted_fleet_spills_and_rejects() {
        let p = Platform::orange_pi_5();
        let oracle = AnalyticalOracle::new(&p);
        let config = FleetConfig { max_per_shard: 2, ..quick_config() };
        let fleet = FleetRuntime::homogeneous(&p, &oracle, 1, config);
        let events: Vec<FleetEvent> = (0..3)
            .map(|k| arrive(k as f64, k, ModelId::ResNet50))
            .collect();
        let outcome = fleet.execute(&events, 100.0);
        assert_eq!(outcome.metrics.admitted, 2, "capacity admits two");
        assert_eq!(outcome.metrics.rejected, 1, "the third spills nowhere and is rejected");
        assert_eq!(outcome.placements[2].outcome, PlacementOutcome::Rejected);
    }

    #[test]
    fn admission_floor_rejects_predicted_starvation() {
        let p = Platform::orange_pi_5();
        let oracle = AnalyticalOracle::new(&p);
        // A floor so high that sharing a board at all is unacceptable.
        let config = FleetConfig { admission_floor: 0.95, ..quick_config() };
        let fleet = FleetRuntime::homogeneous(&p, &oracle, 1, config);
        let events = vec![
            arrive(0.0, 0, ModelId::InceptionV4),
            arrive(1.0, 1, ModelId::InceptionV4),
        ];
        let outcome = fleet.execute(&events, 100.0);
        assert_eq!(outcome.metrics.admitted, 1);
        assert_eq!(
            outcome.metrics.rejected, 1,
            "an arrival predicted below the floor must be rejected even with capacity"
        );
    }

    #[test]
    fn collapsed_shard_sheds_load_to_an_idle_one() {
        let p = Platform::orange_pi_5();
        let oracle = AnalyticalOracle::new(&p);
        let config = FleetConfig {
            max_per_shard: 3,
            // Trigger aggressively so the crowded shard must shed.
            rebalance_threshold: 0.95,
            rebalance_margin: 0.01,
            admission_floor: 0.01,
            ..quick_config()
        };
        let fleet = FleetRuntime::homogeneous(&p, &oracle, 2, config);
        // Fill both shards with heavyweights, then empty shard 1 by
        // departing everything placed on it: shard 0 is left crowded next
        // to an idle board.
        let heavies = [
            ModelId::InceptionV4,
            ModelId::ResNet50,
            ModelId::Vgg16,
            ModelId::InceptionResnetV1,
            ModelId::DenseNet121,
            ModelId::GoogleNet,
        ];
        let mut events: Vec<FleetEvent> = heavies
            .iter()
            .enumerate()
            .map(|(k, &m)| arrive(k as f64, k as u64, m))
            .collect();
        // Probe run to learn the placement, then depart one shard's load.
        let probe = FleetRuntime::homogeneous(
            &p,
            &oracle,
            2,
            FleetConfig { rebalance_threshold: 0.0, ..quick_config() },
        );
        let placements = probe.execute(&events, 10.0).placements;
        for record in &placements {
            if record.outcome == (PlacementOutcome::Admitted { shard: 1 }) {
                events.push(FleetEvent::Depart { at: 10.0, request: record.request });
            }
        }
        let outcome = fleet.execute(&events, 300.0);
        assert!(
            outcome.metrics.migrations >= 1,
            "the crowded shard must shed an instance to the idle one: {:?}",
            outcome.metrics
        );
        // A cross-shard move is not free: the receiving board pays the
        // weight restage + stem rebuild as a visible stall point.
        assert!(
            outcome
                .timelines
                .iter()
                .flatten()
                .any(|pt| pt.time >= 10.0 && pt.migration_stall > 0.0),
            "the migration's transfer stall must surface on a timeline"
        );
    }

    #[test]
    fn warm_plan_caches_boot_every_shard() {
        let p = Platform::orange_pi_5();
        let oracle = AnalyticalOracle::new(&p);
        // Yesterday: one board mapped a workload set.
        let mgr = RankMapManager::new(
            &p,
            &oracle,
            ManagerConfig { mcts_iterations: 80, ..Default::default() },
        );
        let w = Workload::from_ids([ModelId::AlexNet, ModelId::MobileNet]);
        let _ = mgr.map_cached(&w, &PriorityMode::Dynamic);
        let snapshot = mgr.export_plan_cache();
        // Today: the fleet boots serving it.
        let fleet = FleetRuntime::homogeneous(&p, &oracle, 3, quick_config());
        let served = fleet.warm_plan_caches(&snapshot).expect("snapshot loads");
        assert_eq!(served, 1);
    }

    #[test]
    fn warm_plan_caches_skip_mismatched_boards_on_a_mixed_fleet() {
        let orange = Platform::orange_pi_5();
        let jetson = Platform::jetson_orin_nx();
        let orange_oracle = AnalyticalOracle::new(&orange);
        let jetson_oracle = AnalyticalOracle::new(&jetson);
        // Yesterday's plans were recorded on an Orange Pi.
        let mgr = RankMapManager::new(
            &orange,
            &orange_oracle,
            ManagerConfig { mcts_iterations: 80, ..Default::default() },
        );
        let w = Workload::from_ids([ModelId::AlexNet]);
        let _ = mgr.map_cached(&w, &PriorityMode::Dynamic);
        let snapshot = mgr.export_plan_cache();
        // A mixed fleet warms only its Orange Pi shards with them.
        let spec = FleetSpec::new(vec![
            ShardSpec::new(&orange, &orange_oracle, 1),
            ShardSpec::new(&jetson, &jetson_oracle, 1),
        ]);
        let fleet = FleetRuntime::new(&spec, quick_config());
        assert_eq!(fleet.warm_plan_caches(&snapshot).expect("orange shards warm"), 1);
        // A Jetson-only fleet refuses the snapshot outright.
        let jetson_fleet = FleetRuntime::homogeneous(&jetson, &jetson_oracle, 2, quick_config());
        let err = jetson_fleet.warm_plan_caches(&snapshot).unwrap_err();
        assert!(
            err.to_string().contains("never cross board types"),
            "a wrong-board snapshot must fail loudly: {err}"
        );
    }

    #[test]
    fn fused_and_serial_scoring_make_identical_decisions() {
        // Fused scoring is an execution strategy, not a policy: a mixed
        // fleet must admit, place, reject, and rebalance identically with
        // it on or off.
        let orange = Platform::orange_pi_5();
        let jetson = Platform::jetson_orin_nx();
        let orange_oracle = AnalyticalOracle::new(&orange);
        let jetson_oracle = AnalyticalOracle::new(&jetson);
        let spec = || {
            FleetSpec::new(vec![
                ShardSpec::new(&orange, &orange_oracle, 2),
                ShardSpec::new(&jetson, &jetson_oracle, 2),
            ])
        };
        let events: Vec<FleetEvent> = [
            ModelId::ResNet50,
            ModelId::AlexNet,
            ModelId::InceptionV4,
            ModelId::MobileNet,
            ModelId::Vgg16,
            ModelId::SqueezeNetV2,
        ]
        .iter()
        .enumerate()
        .map(|(k, &m)| arrive(k as f64 * 5.0, k as u64, m))
        .collect();
        let fused = FleetRuntime::new(&spec(), quick_config()).execute(&events, 120.0);
        let serial = FleetRuntime::new(
            &spec(),
            FleetConfig { fused_scoring: false, ..quick_config() },
        )
        .execute(&events, 120.0);
        assert_eq!(fused.placements, serial.placements);
        assert_eq!(fused.metrics, serial.metrics);
        assert_eq!(fused.timelines, serial.timelines);
    }

    #[test]
    fn fast_board_does_not_monopolize_normalized_routing() {
        // The heterogeneity point: under normalized scoring an idle
        // Orange Pi outbids a busy Jetson for a model it can serve near
        // its own ideal — raw-throughput scoring would never route there.
        let orange = Platform::orange_pi_5();
        let jetson = Platform::jetson_orin_nx();
        let orange_oracle = AnalyticalOracle::new(&orange);
        let jetson_oracle = AnalyticalOracle::new(&jetson);
        let spec = FleetSpec::new(vec![
            ShardSpec::new(&orange, &orange_oracle, 1),
            ShardSpec::new(&jetson, &jetson_oracle, 1),
        ]);
        let fleet = FleetRuntime::new(&spec, quick_config());
        let events: Vec<FleetEvent> = [
            ModelId::InceptionV4,
            ModelId::ResNet50,
            ModelId::Vgg16,
            ModelId::AlexNet,
        ]
        .iter()
        .enumerate()
        .map(|(k, &m)| arrive(k as f64, k as u64, m))
        .collect();
        let outcome = fleet.execute(&events, 100.0);
        assert_eq!(outcome.metrics.admitted, 4);
        let oranges = outcome.metrics.per_shard_admitted[0];
        assert!(
            oranges >= 1,
            "the slower board must win some arrivals under normalized routing: {:?}",
            outcome.metrics.per_shard_admitted
        );
        assert_eq!(
            outcome.metrics.per_shard_platform,
            vec!["orange-pi-5".to_string(), "jetson-orin-nx".to_string()]
        );
    }
}
